//! `lognic` — a command-line explorer for the built-in case-study
//! scenarios.
//!
//! ```text
//! lognic list
//! lognic estimate inline-md5 [--rate-gbps 25] [--cores 9]
//! lognic simulate nvmeof-rrd4k [--rate-gbps 15] [--seed 7] [--ms 100]
//! lognic dot nf-opt
//! lognic suggest all
//! ```

use lognic::devices::liquidio::{Accelerator, LiquidIo};
use lognic::devices::stingray::IoPattern;
use lognic::optimizer::suggest;
use lognic::prelude::*;
use lognic::workloads::{inline_accel, microservices, nf_placement, nvmeof, panic_scenarios};

struct Flags {
    rate_gbps: Option<f64>,
    size: Option<u64>,
    cores: Option<u32>,
    seed: u64,
    ms: f64,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        rate_gbps: None,
        size: None,
        cores: None,
        seed: 42,
        ms: 40.0,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<f64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<f64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--rate-gbps" => flags.rate_gbps = Some(value("--rate-gbps")?),
            "--size" => flags.size = Some(value("--size")? as u64),
            "--cores" => flags.cores = Some(value("--cores")? as u32),
            "--seed" => flags.seed = value("--seed")? as u64,
            "--ms" => flags.ms = value("--ms")?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(flags)
}

const SCENARIOS: [(&str, &str); 10] = [
    (
        "inline-md5",
        "LiquidIO inline MD5 at MTU line rate (case study 1)",
    ),
    ("inline-crc", "LiquidIO inline CRC at MTU line rate"),
    ("inline-hfa", "LiquidIO inline HFA (off-chip regex engine)"),
    (
        "nvmeof-rrd4k",
        "Stingray NVMe-oF target, 4KB random reads (case study 2)",
    ),
    (
        "nvmeof-swr4k",
        "Stingray NVMe-oF target, 4KB sequential writes",
    ),
    (
        "e3-nfvdin-opt",
        "E3 intrusion detection, LogNIC-opt cores (case study 3)",
    ),
    (
        "e3-nfvdin-rr",
        "E3 intrusion detection, round-robin baseline",
    ),
    (
        "nf-opt",
        "BlueField-2 NF chain, optimal placement (case study 4)",
    ),
    (
        "panic-credits",
        "PANIC pipelined chain, default credits (case study 5)",
    ),
    (
        "panic-steering",
        "PANIC parallelized chain, LogNIC steering split",
    ),
];

fn build(name: &str, flags: &Flags) -> Option<Scenario> {
    let size = Bytes::new(flags.size.unwrap_or(1500));
    let rate = |default: f64| Bandwidth::gbps(flags.rate_gbps.unwrap_or(default));
    Some(match name {
        "inline-md5" => inline_accel::inline(
            Accelerator::Md5,
            flags.cores.unwrap_or(LiquidIo::CORES),
            size,
            rate(25.0),
        ),
        "inline-crc" => inline_accel::inline(
            Accelerator::Crc,
            flags.cores.unwrap_or(LiquidIo::CORES),
            size,
            rate(25.0),
        ),
        "inline-hfa" => inline_accel::inline(
            Accelerator::Hfa,
            flags.cores.unwrap_or(LiquidIo::CORES),
            size,
            rate(25.0),
        ),
        "nvmeof-rrd4k" => nvmeof::nvmeof(IoPattern::RandRead4k, rate(15.0)),
        "nvmeof-swr4k" => nvmeof::nvmeof(IoPattern::SeqWrite4k, rate(7.0)),
        "e3-nfvdin-opt" => {
            let app = microservices::App::NfvDin;
            let rps =
                0.85 * microservices::capacity(app, microservices::AllocationScheme::LogNicOpt);
            microservices::scenario(app, microservices::AllocationScheme::LogNicOpt, rps)
        }
        "e3-nfvdin-rr" => {
            let app = microservices::App::NfvDin;
            let rps =
                0.85 * microservices::capacity(app, microservices::AllocationScheme::LogNicOpt);
            microservices::scenario(app, microservices::AllocationScheme::RoundRobin, rps)
        }
        "nf-opt" => {
            let placement = nf_placement::optimal_for(size);
            nf_placement::scenario(placement, size, rate(60.0))
        }
        "panic-credits" => {
            panic_scenarios::pipelined_chain(8, panic_scenarios::CREDIT_PROFILES[0], rate(100.0))
        }
        "panic-steering" => {
            panic_scenarios::steering(panic_scenarios::lognic_steering_split(), size, rate(80.0))
        }
        _ => return None,
    })
}

fn cmd_estimate(s: &Scenario) -> Result<(), String> {
    let est = s.estimate().map_err(|e| e.to_string())?;
    println!("scenario : {}", s.name);
    println!("offered  : {}", s.traffic.ingress_bandwidth());
    println!("attain   : {}", est.throughput.attainable());
    println!("delivered: {}", est.delivered);
    println!("latency  : {}", est.latency.mean());
    println!("binds at : {}", est.throughput.bottleneck().component);
    println!();
    println!("capacity bounds:");
    for b in est.throughput.bounds() {
        println!("  {:<28} {}", b.component.to_string(), b.limit);
    }
    println!();
    println!("per-node timing:");
    for t in est.latency.per_node() {
        println!(
            "  {:<24} service {:>10}  queue {:>10}  rho {:>5.2}  drop {:>6.3}",
            s.graph.node(t.node).name(),
            t.service.to_string(),
            t.queueing_delay.to_string(),
            t.utilization,
            t.drop_probability
        );
    }
    Ok(())
}

fn cmd_simulate(s: &Scenario, flags: &Flags) {
    let cfg = SimConfig {
        seed: flags.seed,
        duration: Seconds::millis(flags.ms),
        warmup: Seconds::millis(flags.ms * 0.2),
        ..SimConfig::default()
    };
    let r = s.simulate(cfg);
    println!("scenario  : {}", s.name);
    println!("offered   : {}", r.offered);
    println!("throughput: {}", r.throughput);
    println!(
        "packets   : {} completed, {} dropped ({:.2}% loss)",
        r.completed,
        r.dropped,
        r.loss_rate() * 100.0
    );
    println!(
        "latency   : mean {}  p50 {}  p99 {}  max {}",
        r.latency.mean, r.latency.p50, r.latency.p99, r.latency.max
    );
    println!();
    println!("nodes:");
    for n in &r.nodes {
        println!(
            "  {:<24} arrivals {:>9}  drops {:>7}  util {:>5.2}  L {:>6.2}  maxq {:>4}",
            n.name, n.arrivals, n.drops, n.utilization, n.mean_occupancy, n.max_queue
        );
    }
    println!("media:");
    for m in &r.media {
        println!(
            "  {:<24} {:>12}  util {:>5.2}",
            m.name,
            m.transferred.to_string(),
            m.utilization
        );
    }
}

fn cmd_suggest() {
    let mtu = Bytes::new(1500);
    println!("case study 1 — inline cores to saturate (MTU):");
    for a in [Accelerator::Md5, Accelerator::Kasumi, Accelerator::Hfa] {
        println!(
            "  {:<8} {}",
            a.name(),
            suggest::suggest_inline_cores(a, mtu)
        );
    }
    println!("case study 3 — E3 core allocations:");
    for app in microservices::App::ALL {
        println!(
            "  {:<8} {:?}",
            app.name(),
            suggest::suggest_core_allocation(app)
        );
    }
    println!("case study 4 — NF placements by packet size:");
    for size in [64u64, 512, 1500] {
        let p = suggest::suggest_placement(Bytes::new(size));
        println!("  {size:>5}B  {:?}", p.0);
    }
    println!("case study 5 — PANIC:");
    let line = Bandwidth::gbps(100.0);
    let credits: Vec<String> = panic_scenarios::CREDIT_PROFILES
        .iter()
        .map(|s| suggest::suggest_credits(s, line).to_string())
        .collect();
    println!("  credits per profile: {}", credits.join("/"));
    println!(
        "  steering split: {:.0}% to A2",
        suggest::suggest_steering_split(Bytes::new(512), Bandwidth::gbps(80.0)) * 100.0
    );
    println!(
        "  IP4 degrees: {} / {}",
        suggest::suggest_ip4_degree(0.5, Bytes::new(1024), Bandwidth::gbps(80.0)),
        suggest::suggest_ip4_degree(0.8, Bytes::new(1024), Bandwidth::gbps(80.0))
    );
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use lognic::service::{serve, ServeOptions, Service};
    let options = ServeOptions::parse(args.iter().cloned())?;
    let mut service = Service::new(options.config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = std::io::BufReader::new(stdin.lock());
    let mut output = std::io::BufWriter::new(stdout.lock());
    serve(&mut service, &mut input, &mut output).map_err(|e| format!("I/O error: {e}"))?;
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!("usage: lognic (list | estimate <scenario> | simulate <scenario> | dot <scenario> | suggest | serve) [flags]");
        eprintln!("flags: --rate-gbps N  --size BYTES  --cores N  --seed N  --ms N");
        eprintln!("scenarios:");
        for (name, desc) in SCENARIOS {
            eprintln!("  {name:<16} {desc}");
        }
    };
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let result: Result<(), String> = match args[0].as_str() {
        "list" => {
            for (name, desc) in SCENARIOS {
                println!("{name:<16} {desc}");
            }
            Ok(())
        }
        "suggest" => {
            cmd_suggest();
            Ok(())
        }
        "serve" => cmd_serve(&args[1..]),
        cmd @ ("estimate" | "simulate" | "dot") => {
            let Some(name) = args.get(1) else {
                usage();
                std::process::exit(2);
            };
            match parse_flags(&args[2..]) {
                Err(e) => Err(e),
                Ok(flags) => match build(name, &flags) {
                    None => Err(format!("unknown scenario `{name}` (try `lognic list`)")),
                    Some(s) => match cmd {
                        "estimate" => cmd_estimate(&s),
                        "simulate" => {
                            cmd_simulate(&s, &flags);
                            Ok(())
                        }
                        _ => {
                            print!("{}", s.graph.to_dot());
                            Ok(())
                        }
                    },
                },
            }
        }
        other => Err(format!("unknown command `{other}`")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
