//! # lognic
//!
//! A Rust reproduction of **LogNIC: A High-Level Performance Model for
//! SmartNICs** (MICRO '23). This facade crate re-exports the whole
//! workspace:
//!
//! * [`model`] — the analytical LogNIC model: execution graphs,
//!   throughput/latency estimation, M/M/1/N (and M/M/c/N) queueing,
//!   multi-tenant and mixed-traffic extensions, extended rooflines.
//! * [`sim`] — a packet-level discrete-event simulator of the same
//!   hardware abstraction, standing in for the paper's physical
//!   SmartNIC testbeds.
//! * [`devices`] — calibrated profiles of the paper's four devices
//!   (LiquidIO-II, Stingray + SSD, BlueField-2, PANIC).
//! * [`workloads`] — the five case-study scenarios (inline
//!   acceleration, NVMe-oF target, E3 microservices, NF placement,
//!   PANIC design exploration).
//! * [`optimizer`] — the optimizer mode: constrained search over the
//!   model's configurable parameters.
//! * [`service`] — the hardened `lognic serve` JSON-lines loop:
//!   admission control, deadlines, budgets and load shedding around
//!   the model and simulator.
//!
//! ## Quick start
//!
//! ```
//! use lognic::model::prelude::*;
//!
//! # fn main() -> lognic::model::error::Result<()> {
//! let graph = ExecutionGraph::chain(
//!     "udp-echo",
//!     &[("nic-cores", IpParams::new(Bandwidth::gbps(18.0)).with_parallelism(8))],
//! )?;
//! let hw = HardwareModel::new(Bandwidth::gbps(50.0), Bandwidth::gbps(40.0));
//! let traffic = TrafficProfile::fixed(Bandwidth::gbps(25.0), Bytes::new(1500));
//! let estimate = Estimator::new(&graph, &hw, &traffic).estimate()?;
//! assert_eq!(estimate.throughput.attainable(), Bandwidth::gbps(18.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use lognic_devices as devices;
pub use lognic_model as model;
pub use lognic_optimizer as optimizer;
pub use lognic_service as service;
pub use lognic_sim as sim;
pub use lognic_workloads as workloads;

/// The blessed API surface of the whole workspace, aggregated: the
/// analytical model ([`model::prelude`]), the simulator and its trace
/// observers ([`sim::prelude`]), the calibrated scenarios
/// ([`workloads::prelude`]) and the optimizer
/// ([`optimizer::prelude`]) behind one glob import.
///
/// ```
/// use lognic::prelude::*;
///
/// # fn main() -> LogNicResult<()> {
/// let g = ExecutionGraph::chain("echo", &[("core", IpParams::new(Bandwidth::gbps(10.0)))])?;
/// let hw = HardwareModel::default();
/// let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500));
/// let estimate = Estimator::new(&g, &hw, &t).request().evaluate()?;
/// let report = Simulation::builder(&g, &hw, &t).run()?;
/// assert!((estimate.delivered.as_gbps() - report.throughput.as_gbps()).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use lognic_model::prelude::*;
    pub use lognic_optimizer::prelude::*;
    pub use lognic_sim::prelude::*;
    pub use lognic_workloads::prelude::*;

    pub use lognic_devices::prelude::CostModel;
}
