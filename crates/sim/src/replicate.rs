//! Multi-seed parallel replication of simulations.
//!
//! One seeded run is a single draw from the simulator's output
//! distribution; asserting a hand-tuned tolerance against it bakes the
//! noise of that particular seed into the test. A [`Replication`]
//! instead executes N independent seeds (in parallel across
//! `std::thread::scope` workers) and aggregates every scalar metric
//! into mean / standard deviation / 95 % confidence interval across
//! seeds. Model-vs-sim validation then asserts the analytical estimate
//! falls *inside the interval* — a statistically sound claim that
//! tightens automatically as N grows.
//!
//! Determinism: each replica is fully determined by its seed, and the
//! aggregation folds results in seed order regardless of which worker
//! finished first — so the same seed set produces bit-identical
//! aggregates on every invocation, at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use lognic_model::error::{LogNicError, LogNicResult};
use lognic_model::fault::FaultPlan;
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{HardwareModel, TrafficProfile};

use crate::faults::CompiledFaultPlan;
use crate::metrics::SimReport;
use crate::rng::SimRng;
use crate::sim::{SimConfig, Simulation};
use crate::stats::{MetricSummary, Welford};
use crate::trace::SimObserver;

/// The default base seed replications derive their seed sets from.
pub const DEFAULT_BASE_SEED: u64 = 0x4C6F_674E_4943_5253; // "LogNICRS"

/// A multi-seed replication plan: which seeds to run and how many
/// worker threads to spread them across.
///
/// # Examples
///
/// ```
/// use lognic_model::prelude::*;
/// use lognic_sim::prelude::*;
///
/// # fn main() -> LogNicResult<()> {
/// let g = ExecutionGraph::chain("echo", &[("core", IpParams::new(Bandwidth::gbps(10.0)))])?;
/// let hw = HardwareModel::default();
/// let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(1000));
/// let cfg = SimConfig {
///     duration: Seconds::millis(2.0),
///     warmup: Seconds::micros(400.0),
///     ..SimConfig::default()
/// };
/// let rep = Replication::new(4).run_sim(&g, &hw, &t, cfg)?;
/// assert_eq!(rep.n(), 4);
/// assert!(rep.throughput_gbps.contains(rep.throughput_gbps.mean));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Replication {
    seeds: Vec<u64>,
    threads: usize,
}

impl Replication {
    /// A replication of `n` seeds derived from
    /// [`DEFAULT_BASE_SEED`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32) -> Self {
        Replication::with_base_seed(DEFAULT_BASE_SEED, n)
    }

    /// A replication of `n` seeds derived from `base` via
    /// [`SimRng::replica_seed`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_base_seed(base: u64, n: u32) -> Self {
        assert!(n > 0, "a replication needs at least one seed");
        Replication {
            seeds: (0..n as u64)
                .map(|i| SimRng::replica_seed(base, i))
                .collect(),
            threads: 0,
        }
    }

    /// A replication over an explicit seed set.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn from_seeds(seeds: Vec<u64>) -> Self {
        assert!(!seeds.is_empty(), "a replication needs at least one seed");
        Replication { seeds, threads: 0 }
    }

    /// Caps the worker-thread count (default: available parallelism,
    /// never more than the seed count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The seed set, in aggregation order.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    fn worker_count(&self) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let requested = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        requested.clamp(1, self.seeds.len())
    }

    /// Runs `run_one` once per seed across scoped worker threads and
    /// aggregates the reports in seed order.
    ///
    /// `run_one` must be a pure function of the seed for the
    /// determinism guarantee to hold (a `Simulation` run is).
    pub fn run<F>(&self, run_one: F) -> ReplicatedReport
    where
        F: Fn(u64) -> SimReport + Sync,
    {
        let slots: Mutex<Vec<Option<SimReport>>> = Mutex::new(vec![None; self.seeds.len()]);
        let next = AtomicUsize::new(0);
        let workers = self.worker_count();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&seed) = self.seeds.get(i) else {
                        break;
                    };
                    let report = run_one(seed);
                    slots.lock().expect("no poisoned workers")[i] = Some(report);
                });
            }
        });
        let reports: Vec<SimReport> = slots
            .into_inner()
            .expect("scope joined all workers")
            .into_iter()
            .map(|r| r.expect("every seed index was claimed exactly once"))
            .collect();
        ReplicatedReport::aggregate(self.seeds.clone(), reports)
    }

    /// Like [`Replication::run`] for fallible replicas: runs every
    /// seed, then reports failures *in seed order* (not in completion
    /// order, which would make the reported error depend on the
    /// thread schedule).
    ///
    /// When every replica fails, the first seed's error propagates
    /// as-is (a structurally broken scenario fails the same way on
    /// every seed, and that error is the useful one). When only
    /// *some* replicas fail — one pathological seed tripping the
    /// event-budget watchdog while the rest complete — the result is
    /// a structured [`LogNicError::ReplicationPartial`] naming which
    /// seeds completed and which aborted with what, instead of a bare
    /// abort that hides how close the replication came to finishing.
    pub fn try_run<F>(&self, run_one: F) -> LogNicResult<ReplicatedReport>
    where
        F: Fn(u64) -> LogNicResult<SimReport> + Sync,
    {
        let slots: Mutex<Vec<Option<LogNicResult<SimReport>>>> =
            Mutex::new((0..self.seeds.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let workers = self.worker_count();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&seed) = self.seeds.get(i) else {
                        break;
                    };
                    let report = run_one(seed);
                    slots.lock().expect("no poisoned workers")[i] = Some(report);
                });
            }
        });
        let outcomes: Vec<LogNicResult<SimReport>> = slots
            .into_inner()
            .expect("scope joined all workers")
            .into_iter()
            .map(|r| r.expect("every seed index was claimed exactly once"))
            .collect();
        if outcomes.iter().all(|r| r.is_ok()) {
            let reports = outcomes
                .into_iter()
                .map(|r| r.expect("checked ok"))
                .collect();
            return Ok(ReplicatedReport::aggregate(self.seeds.clone(), reports));
        }
        if outcomes.iter().all(|r| r.is_err()) {
            return Err(outcomes
                .into_iter()
                .next()
                .expect("a replication has at least one seed")
                .expect_err("checked err"));
        }
        let mut completed = Vec::new();
        let mut failed = Vec::new();
        for (seed, outcome) in self.seeds.iter().zip(outcomes) {
            match outcome {
                Ok(_) => completed.push(*seed),
                Err(e) => failed.push((*seed, Box::new(e))),
            }
        }
        Err(LogNicError::ReplicationPartial { completed, failed })
    }

    /// Convenience: replicates a plain [`Simulation`] built from the
    /// three model inputs, overriding only the seed per replica.
    pub fn run_sim(
        &self,
        graph: &ExecutionGraph,
        hw: &HardwareModel,
        traffic: &TrafficProfile,
        config: SimConfig,
    ) -> LogNicResult<ReplicatedReport> {
        self.try_run(|seed| {
            Simulation::builder(graph, hw, traffic)
                .config(SimConfig { seed, ..config })
                .run()
        })
    }

    /// Convenience: like [`Replication::run_sim`] with a
    /// [`FaultPlan`] installed on every replica. Fault outcomes are a
    /// pure function of each replica's seed, so the aggregate is as
    /// deterministic as a fault-free replication.
    ///
    /// The plan is validated and compiled **once**; every replica
    /// shares the compiled per-node fault tables by reference
    /// (`Arc`-cloned) instead of cloning the whole plan per seed.
    pub fn run_sim_faulted(
        &self,
        graph: &ExecutionGraph,
        hw: &HardwareModel,
        traffic: &TrafficProfile,
        config: SimConfig,
        plan: &FaultPlan,
    ) -> LogNicResult<ReplicatedReport> {
        let compiled = CompiledFaultPlan::compile(plan, graph)?;
        self.try_run(|seed| {
            Simulation::builder(graph, hw, traffic)
                .config(SimConfig { seed, ..config })
                .with_compiled_faults(&compiled)
                .run()
        })
    }

    /// Replicates a simulation with a per-seed trace observer
    /// attached: `make_observer(seed)` constructs one sink per
    /// replica (e.g. a [`RingLog`] or [`ChromeTrace`]), each replica
    /// runs under its own sink, and the sinks are returned *in seed
    /// order* alongside the aggregate.
    ///
    /// Observers are passive and each replica is a pure function of
    /// its seed, so both the aggregate and every returned sink are
    /// bit-identical across invocations and thread counts (the trace
    /// suite asserts [`RingLog::bytes`] equality between 1-thread and
    /// N-thread replications). An optional [`FaultPlan`] is compiled
    /// once and shared across replicas, as in
    /// [`Replication::run_sim_faulted`].
    ///
    /// # Errors
    ///
    /// Propagates plan compilation errors, then the first replica
    /// error in seed order.
    ///
    /// [`RingLog`]: crate::trace::RingLog
    /// [`RingLog::bytes`]: crate::trace::RingLog::bytes
    /// [`ChromeTrace`]: crate::trace::ChromeTrace
    pub fn run_sim_observed<O, F>(
        &self,
        graph: &ExecutionGraph,
        hw: &HardwareModel,
        traffic: &TrafficProfile,
        config: SimConfig,
        plan: Option<&FaultPlan>,
        make_observer: F,
    ) -> LogNicResult<(ReplicatedReport, Vec<O>)>
    where
        O: SimObserver + Send,
        F: Fn(u64) -> O + Sync,
    {
        let compiled = plan
            .map(|p| CompiledFaultPlan::compile(p, graph))
            .transpose()?;
        type Slots<O> = Mutex<Vec<Option<LogNicResult<(SimReport, O)>>>>;
        let slots: Slots<O> = Mutex::new((0..self.seeds.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let workers = self.worker_count();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&seed) = self.seeds.get(i) else {
                        break;
                    };
                    let mut obs = make_observer(seed);
                    let mut builder = Simulation::builder(graph, hw, traffic)
                        .config(SimConfig { seed, ..config });
                    if let Some(c) = compiled.as_ref() {
                        builder = builder.with_compiled_faults(c);
                    }
                    let result = builder.run_with(&mut obs).map(|report| (report, obs));
                    slots.lock().expect("no poisoned workers")[i] = Some(result);
                });
            }
        });
        let mut reports = Vec::with_capacity(self.seeds.len());
        let mut observers = Vec::with_capacity(self.seeds.len());
        for slot in slots.into_inner().expect("scope joined all workers") {
            let (report, obs) = slot.expect("every seed index was claimed exactly once")?;
            reports.push(report);
            observers.push(obs);
        }
        Ok((
            ReplicatedReport::aggregate(self.seeds.clone(), reports),
            observers,
        ))
    }
}

/// The aggregate of N replicated runs: per-metric mean / stddev /
/// 95 % CI across seeds, plus the underlying per-seed reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedReport {
    /// The seeds, in aggregation order (parallel to `reports`).
    pub seeds: Vec<u64>,
    /// Mean packet latency, in seconds.
    pub latency_mean: MetricSummary,
    /// Median packet latency, in seconds.
    pub latency_p50: MetricSummary,
    /// 99th-percentile packet latency, in seconds.
    pub latency_p99: MetricSummary,
    /// Delivered throughput, in Gb/s.
    pub throughput_gbps: MetricSummary,
    /// Delivered packet rate, in packets per second.
    pub packet_rate: MetricSummary,
    /// Packet loss fraction.
    pub loss_rate: MetricSummary,
    /// Dropped packets per run.
    pub drops: MetricSummary,
    /// The per-seed reports backing the aggregates.
    pub reports: Vec<SimReport>,
}

impl ReplicatedReport {
    fn aggregate(seeds: Vec<u64>, reports: Vec<SimReport>) -> Self {
        let metric = |f: &dyn Fn(&SimReport) -> f64| {
            let mut w = Welford::new();
            for r in &reports {
                w.push(f(r));
            }
            MetricSummary::from_accumulator(&w)
        };
        ReplicatedReport {
            latency_mean: metric(&|r| r.latency.mean.as_secs()),
            latency_p50: metric(&|r| r.latency.p50.as_secs()),
            latency_p99: metric(&|r| r.latency.p99.as_secs()),
            throughput_gbps: metric(&|r| r.throughput.as_gbps()),
            packet_rate: metric(&|r| r.packet_rate),
            loss_rate: metric(&|r| r.loss_rate()),
            drops: metric(&|r| r.dropped as f64),
            seeds,
            reports,
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.reports.len()
    }

    /// Summarizes a custom scalar metric across the replicas (e.g. a
    /// node's occupancy or a medium's utilization).
    pub fn summarize(&self, f: impl Fn(&SimReport) -> f64) -> MetricSummary {
        let mut w = Welford::new();
        for r in &self.reports {
            w.push(f(r));
        }
        MetricSummary::from_accumulator(&w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::params::IpParams;
    use lognic_model::units::{Bandwidth, Bytes, Seconds};

    fn chain(gbps: f64) -> ExecutionGraph {
        ExecutionGraph::chain(
            "r",
            &[(
                "ip",
                IpParams::new(Bandwidth::gbps(gbps)).with_queue_capacity(64),
            )],
        )
        .unwrap()
    }

    fn cfg(ms: f64) -> SimConfig {
        SimConfig {
            duration: Seconds::millis(ms),
            warmup: Seconds::millis(ms * 0.2),
            ..SimConfig::default()
        }
    }

    fn fast_hw() -> HardwareModel {
        HardwareModel::new(Bandwidth::gbps(10_000.0), Bandwidth::gbps(10_000.0))
    }

    #[test]
    fn seed_sets_are_deterministic_and_distinct() {
        let a = Replication::new(8);
        let b = Replication::new(8);
        assert_eq!(a.seeds(), b.seeds());
        let mut sorted = a.seeds().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "no duplicate seeds");
        assert_ne!(
            Replication::with_base_seed(1, 4).seeds(),
            Replication::with_base_seed(2, 4).seeds()
        );
    }

    #[test]
    fn aggregates_are_bit_identical_across_invocations_and_thread_counts() {
        let g = chain(10.0);
        let hw = fast_hw();
        let t = TrafficProfile::fixed(Bandwidth::gbps(6.0), Bytes::new(1000));
        let wide = Replication::new(6).run_sim(&g, &hw, &t, cfg(2.0)).unwrap();
        let narrow = Replication::new(6)
            .threads(1)
            .run_sim(&g, &hw, &t, cfg(2.0))
            .unwrap();
        assert_eq!(wide, narrow, "thread schedule must not leak into results");
        let again = Replication::new(6).run_sim(&g, &hw, &t, cfg(2.0)).unwrap();
        assert_eq!(wide, again, "same seed set, same bits");
    }

    #[test]
    fn per_seed_reports_match_single_runs() {
        let g = chain(10.0);
        let hw = fast_hw();
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(800));
        let rep = Replication::from_seeds(vec![3, 99])
            .run_sim(&g, &hw, &t, cfg(2.0))
            .unwrap();
        let direct = Simulation::builder(&g, &hw, &t)
            .config(SimConfig {
                seed: 99,
                ..cfg(2.0)
            })
            .run()
            .unwrap();
        assert_eq!(rep.reports[1], direct);
        assert_eq!(rep.seeds, vec![3, 99]);
        assert_eq!(rep.n(), 2);
    }

    #[test]
    fn summaries_bracket_the_truth_at_light_load() {
        let g = chain(10.0);
        let hw = fast_hw();
        let t = TrafficProfile::fixed(Bandwidth::gbps(2.0), Bytes::new(1000));
        let rep = Replication::new(8).run_sim(&g, &hw, &t, cfg(4.0)).unwrap();
        // Offered 2 Gb/s, no overload: the CI must cover it.
        assert!(
            rep.throughput_gbps.contains(2.0),
            "throughput {}",
            rep.throughput_gbps
        );
        assert_eq!(rep.loss_rate.mean, 0.0);
        assert!(rep.latency_p99.mean >= rep.latency_p50.mean);
    }

    #[test]
    fn custom_metric_summary() {
        let g = chain(10.0);
        let hw = fast_hw();
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(1000));
        let rep = Replication::new(4).run_sim(&g, &hw, &t, cfg(2.0)).unwrap();
        let util = rep.summarize(|r| r.node("ip").unwrap().utilization);
        assert_eq!(util.n, 4);
        assert!(util.mean > 0.0 && util.mean < 1.0, "util {util}");
    }

    #[test]
    fn observed_replication_matches_unobserved_and_is_thread_invariant() {
        use crate::trace::RingLog;
        let g = chain(10.0);
        let hw = fast_hw();
        let t = TrafficProfile::fixed(Bandwidth::gbps(6.0), Bytes::new(1000));
        let rep = Replication::new(4);
        let plain = rep.run_sim(&g, &hw, &t, cfg(2.0)).unwrap();
        let (wide, wide_logs) = rep
            .run_sim_observed(&g, &hw, &t, cfg(2.0), None, |_| {
                RingLog::with_capacity(4096)
            })
            .unwrap();
        let (narrow, narrow_logs) = rep
            .threads(1)
            .run_sim_observed(&g, &hw, &t, cfg(2.0), None, |_| {
                RingLog::with_capacity(4096)
            })
            .unwrap();
        assert_eq!(plain, wide, "observers must not perturb the aggregate");
        assert_eq!(wide, narrow);
        assert_eq!(wide_logs.len(), 4);
        for (w, n) in wide_logs.iter().zip(&narrow_logs) {
            assert!(w.written() > 0, "traces captured events");
            assert_eq!(
                w.bytes(),
                n.bytes(),
                "per-seed traces are byte-identical across thread counts"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_set_rejected() {
        let _ = Replication::from_seeds(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_replicas_rejected() {
        let _ = Replication::new(0);
    }
}
