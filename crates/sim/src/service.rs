//! Engine service-time models.
//!
//! Most IPs are rate-based: a request of `w` work-bytes on an engine
//! running at rate `r` takes `w / r`, optionally jittered
//! exponentially (the M/M/1/N assumption of the analytical model).
//! Opaque devices — the paper's SSD is the canonical example — plug in
//! their own [`ServiceModel`] implementation with internal state.

use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::SimTime;
use lognic_model::units::{Bandwidth, Bytes};

/// The distribution of engine service times around their mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceDist {
    /// Deterministic service: exactly the mean.
    Deterministic,
    /// Exponential service with the given mean (matches the analytical
    /// model's M/M/1/N assumption).
    #[default]
    Exponential,
}

/// Produces per-request service times for one node's engines.
///
/// Implementations may keep internal state (queue-depth effects,
/// garbage collection, cache behaviour). `work` is the node's
/// work-bytes for this packet (`packet.size × work_factor`).
pub trait ServiceModel: Send {
    /// The time one engine spends executing this request, starting at
    /// simulation time `now`.
    fn service_time(
        &mut self,
        now: SimTime,
        packet: &Packet,
        work: Bytes,
        rng: &mut SimRng,
    ) -> SimTime;
}

impl std::fmt::Debug for dyn ServiceModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dyn ServiceModel")
    }
}

/// A rate-based service model: mean time = `work / per_engine_rate`.
#[derive(Debug, Clone, Copy)]
pub struct RateService {
    per_engine_rate: Bandwidth,
    dist: ServiceDist,
}

impl RateService {
    /// Creates a rate-based model with the given per-engine data rate.
    pub fn new(per_engine_rate: Bandwidth, dist: ServiceDist) -> Self {
        RateService {
            per_engine_rate,
            dist,
        }
    }

    /// The per-engine data rate.
    pub fn per_engine_rate(&self) -> Bandwidth {
        self.per_engine_rate
    }

    /// The configured jitter distribution.
    pub fn dist(&self) -> ServiceDist {
        self.dist
    }

    /// The mean service time for `work` bytes.
    pub fn mean_time(&self, work: Bytes) -> SimTime {
        if self.per_engine_rate.is_zero() {
            return SimTime::MAX;
        }
        SimTime::from_secs(self.per_engine_rate.transfer_time(work).as_secs())
    }
}

impl ServiceModel for RateService {
    fn service_time(
        &mut self,
        _now: SimTime,
        _packet: &Packet,
        work: Bytes,
        rng: &mut SimRng,
    ) -> SimTime {
        let mean = self.mean_time(work);
        match self.dist {
            ServiceDist::Deterministic => mean,
            ServiceDist::Exponential => rng.exponential(mean),
        }
    }
}

/// A fixed per-request service time regardless of size (useful for
/// request-granular engines such as lookup tables).
#[derive(Debug, Clone, Copy)]
pub struct FixedService {
    time: SimTime,
    dist: ServiceDist,
}

impl FixedService {
    /// Creates a fixed-time model.
    pub fn new(time: SimTime, dist: ServiceDist) -> Self {
        FixedService { time, dist }
    }
}

impl ServiceModel for FixedService {
    fn service_time(
        &mut self,
        _now: SimTime,
        _packet: &Packet,
        _work: Bytes,
        rng: &mut SimRng,
    ) -> SimTime {
        match self.dist {
            ServiceDist::Deterministic => self.time,
            ServiceDist::Exponential => rng.exponential(self.time),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::new(0, Bytes::new(1000), SimTime::ZERO, 0)
    }

    #[test]
    fn rate_service_deterministic() {
        let mut m = RateService::new(Bandwidth::gbps(8.0), ServiceDist::Deterministic);
        let mut rng = SimRng::seed_from(1);
        // 1000 B = 8000 bits at 8 Gb/s = 1 µs.
        let t = m.service_time(SimTime::ZERO, &pkt(), Bytes::new(1000), &mut rng);
        assert_eq!(t, SimTime::from_micros(1.0));
        assert_eq!(m.per_engine_rate(), Bandwidth::gbps(8.0));
        assert_eq!(m.dist(), ServiceDist::Deterministic);
    }

    #[test]
    fn rate_service_exponential_mean() {
        let mut m = RateService::new(Bandwidth::gbps(8.0), ServiceDist::Exponential);
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| {
                m.service_time(SimTime::ZERO, &pkt(), Bytes::new(1000), &mut rng)
                    .as_micros()
            })
            .sum();
        let mean = total / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean = {mean}");
    }

    #[test]
    fn zero_rate_is_starved() {
        let m = RateService::new(Bandwidth::ZERO, ServiceDist::Deterministic);
        assert_eq!(m.mean_time(Bytes::new(1)), SimTime::MAX);
    }

    #[test]
    fn fixed_service_ignores_size() {
        let mut m = FixedService::new(SimTime::from_micros(2.0), ServiceDist::Deterministic);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(
            m.service_time(SimTime::ZERO, &pkt(), Bytes::new(1), &mut rng),
            SimTime::from_micros(2.0)
        );
        assert_eq!(
            m.service_time(SimTime::ZERO, &pkt(), Bytes::mib(1), &mut rng),
            SimTime::from_micros(2.0)
        );
    }

    #[test]
    fn service_dist_default_is_exponential() {
        assert_eq!(ServiceDist::default(), ServiceDist::Exponential);
    }
}
