//! Fault injection for the discrete-event simulator.
//!
//! The declarative side — [`FaultPlan`], [`FaultKind`],
//! [`FaultWindow`], [`RetryPolicy`] — lives in
//! [`lognic_model::fault`] so the analytical model can evaluate the
//! same plan; this module re-exports it and adds the runtime side:
//! the per-node compiled schedule the event loop consults on every
//! arrival.
//!
//! Compiled schedules are deliberately simple (a linear scan of a
//! node's windows): plans hold a handful of windows, and the scan is
//! branch-predictable. The important property is *determinism* — a
//! node with no fault windows never touches the RNG, so fault-free
//! runs reproduce the exact event sequence of builds that predate the
//! fault subsystem.

pub use lognic_model::fault::{FaultKind, FaultPlan, FaultWindow, RetryPolicy};

use std::sync::Arc;

use lognic_model::error::LogNicResult;
use lognic_model::graph::ExecutionGraph;
use lognic_model::intern::NameTable;

use crate::time::SimTime;

/// A fault effect compiled to simulator time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CompiledKind {
    /// Refuse every arrival.
    Outage,
    /// Serve at this fraction of the nominal rate.
    Rate(f64),
    /// Refuse each arrival with this probability.
    Drop(f64),
    /// Corrupt each arrival with this probability.
    Corrupt(f64),
    /// Remove this many credits from the node's bounded queue.
    CreditLoss(u32),
}

/// One node's compiled fault schedule.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeFaults {
    windows: Vec<(SimTime, SimTime, CompiledKind)>,
}

impl NodeFaults {
    pub(crate) fn push(&mut self, from: SimTime, until: SimTime, kind: CompiledKind) {
        self.windows.push((from, until, kind));
    }

    /// True when the node has no scheduled faults: the event loop
    /// skips every fault check *and every fault RNG draw*, keeping
    /// fault-free runs bit-identical to pre-fault builds.
    pub(crate) fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The compiled window schedule, for trace observers reporting
    /// fault windows at run start.
    pub(crate) fn windows(&self) -> &[(SimTime, SimTime, CompiledKind)] {
        &self.windows
    }

    fn active(&self, now: SimTime) -> impl Iterator<Item = CompiledKind> + '_ {
        self.windows
            .iter()
            .filter(move |(from, until, _)| now >= *from && now < *until)
            .map(|(_, _, k)| *k)
    }

    /// True when an outage window covers `now`.
    pub(crate) fn outage_at(&self, now: SimTime) -> bool {
        self.active(now).any(|k| matches!(k, CompiledKind::Outage))
    }

    /// The product of all active rate-degradation factors (1.0 when
    /// none are active). Outages are handled separately.
    pub(crate) fn rate_factor_at(&self, now: SimTime) -> f64 {
        self.active(now)
            .filter_map(|k| match k {
                CompiledKind::Rate(f) => Some(f),
                _ => None,
            })
            .product()
    }

    /// The combined drop probability of all active drop windows:
    /// `1 − Π(1 − p)`.
    pub(crate) fn drop_prob_at(&self, now: SimTime) -> f64 {
        1.0 - self
            .active(now)
            .filter_map(|k| match k {
                CompiledKind::Drop(p) => Some(1.0 - p),
                _ => None,
            })
            .product::<f64>()
    }

    /// The combined corruption probability of all active corruption
    /// windows.
    pub(crate) fn corrupt_prob_at(&self, now: SimTime) -> f64 {
        1.0 - self
            .active(now)
            .filter_map(|k| match k {
                CompiledKind::Corrupt(p) => Some(1.0 - p),
                _ => None,
            })
            .product::<f64>()
    }

    /// The total credits removed from the node's bounded queue at
    /// `now`.
    pub(crate) fn credit_loss_at(&self, now: SimTime) -> u32 {
        self.active(now)
            .map(|k| match k {
                CompiledKind::CreditLoss(c) => c,
                _ => 0,
            })
            .sum()
    }
}

/// A [`FaultPlan`] compiled against one execution graph: per-node
/// fault schedules in simulator time, indexed by dense node id, plus
/// the plan-wide retry policy and deadline.
///
/// Compilation validates the plan and resolves node names exactly
/// once. The per-node tables are held behind [`Arc`]s, so cloning a
/// compiled plan (or installing it on a builder) is a few reference
/// bumps — the replication engine compiles a plan once and shares it
/// across all worker threads instead of cloning and re-validating the
/// declarative plan per seed.
///
/// # Examples
///
/// ```
/// use lognic_model::prelude::*;
/// use lognic_sim::faults::CompiledFaultPlan;
///
/// # fn main() -> LogNicResult<()> {
/// let g = ExecutionGraph::chain("t", &[("ip", IpParams::new(Bandwidth::gbps(1.0)))])?;
/// let plan = FaultPlan::new().outage("ip", Seconds::millis(1.0), Seconds::millis(2.0));
/// let compiled = CompiledFaultPlan::compile(&plan, &g)?;
/// let shared = compiled.clone(); // cheap: Arc bumps, no re-validation
/// # let _ = shared;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledFaultPlan {
    /// One schedule per graph node, indexed like the node list.
    /// Fault-free nodes all share one empty schedule.
    pub(crate) per_node: Vec<Arc<NodeFaults>>,
    /// Plan-wide retry/backoff policy.
    pub(crate) retry: Option<RetryPolicy>,
    /// Plan-wide sojourn deadline, in simulator time.
    pub(crate) deadline: Option<SimTime>,
}

impl CompiledFaultPlan {
    /// Validates `plan` against `graph` and compiles it to per-node
    /// schedules.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::validate`] errors: windows naming nodes
    /// absent from the graph, empty/inverted windows, out-of-range
    /// fault parameters.
    pub fn compile(plan: &FaultPlan, graph: &ExecutionGraph) -> LogNicResult<Self> {
        plan.validate(graph)?;
        let table = NameTable::for_graph(graph);
        let mut per_node: Vec<NodeFaults> = vec![NodeFaults::default(); graph.nodes().len()];
        for w in plan.windows() {
            let id = table
                .resolve(w.node())
                .expect("validated plan only names graph nodes");
            per_node[id.index()].push(
                SimTime::from_secs(w.from().as_secs()),
                SimTime::from_secs(w.until().as_secs()),
                compile_kind(w.kind()),
            );
        }
        let empty = Arc::new(NodeFaults::default());
        Ok(CompiledFaultPlan {
            per_node: per_node
                .into_iter()
                .map(|f| {
                    if f.is_empty() {
                        Arc::clone(&empty)
                    } else {
                        Arc::new(f)
                    }
                })
                .collect(),
            retry: plan.retry().copied(),
            deadline: plan.deadline().map(|d| SimTime::from_secs(d.as_secs())),
        })
    }

    /// True when no node has a scheduled fault window.
    pub fn is_fault_free(&self) -> bool {
        self.per_node.iter().all(|f| f.is_empty())
    }
}

/// Compiles a declarative fault kind to simulator time.
pub(crate) fn compile_kind(kind: FaultKind) -> CompiledKind {
    match kind {
        FaultKind::Outage => CompiledKind::Outage,
        FaultKind::RateDegradation { factor } => CompiledKind::Rate(factor),
        FaultKind::PacketDrop { probability } => CompiledKind::Drop(probability),
        FaultKind::PacketCorruption { probability } => CompiledKind::Corrupt(probability),
        FaultKind::CreditLoss { credits } => CompiledKind::CreditLoss(credits),
        // FaultKind is #[non_exhaustive]; unknown future kinds are
        // rejected by FaultPlan::validate before compilation.
        #[allow(unreachable_patterns)]
        _ => unreachable!("unvalidated fault kind reached the compiler"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn empty_schedule_is_identity() {
        let f = NodeFaults::default();
        assert!(f.is_empty());
        assert!(!f.outage_at(t(1.0)));
        assert_eq!(f.rate_factor_at(t(1.0)), 1.0);
        assert_eq!(f.drop_prob_at(t(1.0)), 0.0);
        assert_eq!(f.corrupt_prob_at(t(1.0)), 0.0);
        assert_eq!(f.credit_loss_at(t(1.0)), 0);
    }

    #[test]
    fn windows_are_half_open() {
        let mut f = NodeFaults::default();
        f.push(t(2.0), t(4.0), CompiledKind::Outage);
        assert!(!f.outage_at(t(1.9)));
        assert!(f.outage_at(t(2.0)), "start is inclusive");
        assert!(f.outage_at(t(3.9)));
        assert!(!f.outage_at(t(4.0)), "end is exclusive");
    }

    #[test]
    fn active_effects_compose() {
        let mut f = NodeFaults::default();
        f.push(t(0.0), t(10.0), CompiledKind::Rate(0.5));
        f.push(t(5.0), t(10.0), CompiledKind::Rate(0.5));
        f.push(t(0.0), t(10.0), CompiledKind::Drop(0.5));
        f.push(t(0.0), t(10.0), CompiledKind::Drop(0.5));
        f.push(t(0.0), t(10.0), CompiledKind::CreditLoss(3));
        f.push(t(0.0), t(10.0), CompiledKind::CreditLoss(4));
        assert_eq!(f.rate_factor_at(t(1.0)), 0.5);
        assert_eq!(f.rate_factor_at(t(6.0)), 0.25, "factors multiply");
        assert!((f.drop_prob_at(t(1.0)) - 0.75).abs() < 1e-12, "1-(1-p)^2");
        assert_eq!(f.credit_loss_at(t(1.0)), 7, "credits sum");
    }

    #[test]
    fn compiled_plan_shares_tables_by_reference() {
        use lognic_model::params::IpParams;
        use lognic_model::units::{Bandwidth, Seconds};
        let g = ExecutionGraph::chain(
            "c",
            &[
                ("a", IpParams::new(Bandwidth::gbps(1.0))),
                ("b", IpParams::new(Bandwidth::gbps(1.0))),
            ],
        )
        .unwrap();
        let plan = FaultPlan::new()
            .outage("a", Seconds::millis(1.0), Seconds::millis(2.0))
            .with_retry(RetryPolicy::new(2, Seconds::micros(10.0)))
            .with_deadline(Seconds::millis(5.0));
        let compiled = CompiledFaultPlan::compile(&plan, &g).unwrap();
        assert_eq!(compiled.per_node.len(), g.nodes().len());
        assert!(!compiled.is_fault_free());
        assert!(compiled.retry.is_some());
        assert_eq!(compiled.deadline, Some(SimTime::from_secs(5e-3)));
        // Cloning shares every per-node table.
        let cloned = compiled.clone();
        for (a, b) in compiled.per_node.iter().zip(&cloned.per_node) {
            assert!(Arc::ptr_eq(a, b), "clone must not deep-copy tables");
        }
        // Unknown node → typed error, not a panic.
        let bad = FaultPlan::new().outage("ghost", Seconds::ZERO, Seconds::millis(1.0));
        assert!(CompiledFaultPlan::compile(&bad, &g).is_err());
        // Fault-free plans share one empty table across all nodes.
        let free = CompiledFaultPlan::compile(&FaultPlan::new(), &g).unwrap();
        assert!(free.is_fault_free());
        assert!(Arc::ptr_eq(&free.per_node[0], &free.per_node[1]));
    }

    #[test]
    fn compile_maps_every_declarative_kind() {
        assert_eq!(compile_kind(FaultKind::Outage), CompiledKind::Outage);
        assert_eq!(
            compile_kind(FaultKind::RateDegradation { factor: 0.3 }),
            CompiledKind::Rate(0.3)
        );
        assert_eq!(
            compile_kind(FaultKind::PacketDrop { probability: 0.1 }),
            CompiledKind::Drop(0.1)
        );
        assert_eq!(
            compile_kind(FaultKind::PacketCorruption { probability: 0.2 }),
            CompiledKind::Corrupt(0.2)
        );
        assert_eq!(
            compile_kind(FaultKind::CreditLoss { credits: 5 }),
            CompiledKind::CreditLoss(5)
        );
    }
}
