//! Fault injection for the discrete-event simulator.
//!
//! The declarative side — [`FaultPlan`], [`FaultKind`],
//! [`FaultWindow`], [`RetryPolicy`] — lives in
//! [`lognic_model::fault`] so the analytical model can evaluate the
//! same plan; this module re-exports it and adds the runtime side:
//! the per-node compiled schedule the event loop consults on every
//! arrival.
//!
//! Compiled schedules are deliberately simple (a linear scan of a
//! node's windows): plans hold a handful of windows, and the scan is
//! branch-predictable. The important property is *determinism* — a
//! node with no fault windows never touches the RNG, so fault-free
//! runs reproduce the exact event sequence of builds that predate the
//! fault subsystem.

pub use lognic_model::fault::{FaultKind, FaultPlan, FaultWindow, RetryPolicy};

use crate::time::SimTime;

/// A fault effect compiled to simulator time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CompiledKind {
    /// Refuse every arrival.
    Outage,
    /// Serve at this fraction of the nominal rate.
    Rate(f64),
    /// Refuse each arrival with this probability.
    Drop(f64),
    /// Corrupt each arrival with this probability.
    Corrupt(f64),
    /// Remove this many credits from the node's bounded queue.
    CreditLoss(u32),
}

/// One node's compiled fault schedule.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeFaults {
    windows: Vec<(SimTime, SimTime, CompiledKind)>,
}

impl NodeFaults {
    pub(crate) fn push(&mut self, from: SimTime, until: SimTime, kind: CompiledKind) {
        self.windows.push((from, until, kind));
    }

    /// True when the node has no scheduled faults: the event loop
    /// skips every fault check *and every fault RNG draw*, keeping
    /// fault-free runs bit-identical to pre-fault builds.
    pub(crate) fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    fn active(&self, now: SimTime) -> impl Iterator<Item = CompiledKind> + '_ {
        self.windows
            .iter()
            .filter(move |(from, until, _)| now >= *from && now < *until)
            .map(|(_, _, k)| *k)
    }

    /// True when an outage window covers `now`.
    pub(crate) fn outage_at(&self, now: SimTime) -> bool {
        self.active(now).any(|k| matches!(k, CompiledKind::Outage))
    }

    /// The product of all active rate-degradation factors (1.0 when
    /// none are active). Outages are handled separately.
    pub(crate) fn rate_factor_at(&self, now: SimTime) -> f64 {
        self.active(now)
            .filter_map(|k| match k {
                CompiledKind::Rate(f) => Some(f),
                _ => None,
            })
            .product()
    }

    /// The combined drop probability of all active drop windows:
    /// `1 − Π(1 − p)`.
    pub(crate) fn drop_prob_at(&self, now: SimTime) -> f64 {
        1.0 - self
            .active(now)
            .filter_map(|k| match k {
                CompiledKind::Drop(p) => Some(1.0 - p),
                _ => None,
            })
            .product::<f64>()
    }

    /// The combined corruption probability of all active corruption
    /// windows.
    pub(crate) fn corrupt_prob_at(&self, now: SimTime) -> f64 {
        1.0 - self
            .active(now)
            .filter_map(|k| match k {
                CompiledKind::Corrupt(p) => Some(1.0 - p),
                _ => None,
            })
            .product::<f64>()
    }

    /// The total credits removed from the node's bounded queue at
    /// `now`.
    pub(crate) fn credit_loss_at(&self, now: SimTime) -> u32 {
        self.active(now)
            .map(|k| match k {
                CompiledKind::CreditLoss(c) => c,
                _ => 0,
            })
            .sum()
    }
}

/// Compiles a declarative fault kind to simulator time.
pub(crate) fn compile_kind(kind: FaultKind) -> CompiledKind {
    match kind {
        FaultKind::Outage => CompiledKind::Outage,
        FaultKind::RateDegradation { factor } => CompiledKind::Rate(factor),
        FaultKind::PacketDrop { probability } => CompiledKind::Drop(probability),
        FaultKind::PacketCorruption { probability } => CompiledKind::Corrupt(probability),
        FaultKind::CreditLoss { credits } => CompiledKind::CreditLoss(credits),
        // FaultKind is #[non_exhaustive]; unknown future kinds are
        // rejected by FaultPlan::validate before compilation.
        #[allow(unreachable_patterns)]
        _ => unreachable!("unvalidated fault kind reached the compiler"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn empty_schedule_is_identity() {
        let f = NodeFaults::default();
        assert!(f.is_empty());
        assert!(!f.outage_at(t(1.0)));
        assert_eq!(f.rate_factor_at(t(1.0)), 1.0);
        assert_eq!(f.drop_prob_at(t(1.0)), 0.0);
        assert_eq!(f.corrupt_prob_at(t(1.0)), 0.0);
        assert_eq!(f.credit_loss_at(t(1.0)), 0);
    }

    #[test]
    fn windows_are_half_open() {
        let mut f = NodeFaults::default();
        f.push(t(2.0), t(4.0), CompiledKind::Outage);
        assert!(!f.outage_at(t(1.9)));
        assert!(f.outage_at(t(2.0)), "start is inclusive");
        assert!(f.outage_at(t(3.9)));
        assert!(!f.outage_at(t(4.0)), "end is exclusive");
    }

    #[test]
    fn active_effects_compose() {
        let mut f = NodeFaults::default();
        f.push(t(0.0), t(10.0), CompiledKind::Rate(0.5));
        f.push(t(5.0), t(10.0), CompiledKind::Rate(0.5));
        f.push(t(0.0), t(10.0), CompiledKind::Drop(0.5));
        f.push(t(0.0), t(10.0), CompiledKind::Drop(0.5));
        f.push(t(0.0), t(10.0), CompiledKind::CreditLoss(3));
        f.push(t(0.0), t(10.0), CompiledKind::CreditLoss(4));
        assert_eq!(f.rate_factor_at(t(1.0)), 0.5);
        assert_eq!(f.rate_factor_at(t(6.0)), 0.25, "factors multiply");
        assert!((f.drop_prob_at(t(1.0)) - 0.75).abs() < 1e-12, "1-(1-p)^2");
        assert_eq!(f.credit_loss_at(t(1.0)), 7, "credits sum");
    }

    #[test]
    fn compile_maps_every_declarative_kind() {
        assert_eq!(compile_kind(FaultKind::Outage), CompiledKind::Outage);
        assert_eq!(
            compile_kind(FaultKind::RateDegradation { factor: 0.3 }),
            CompiledKind::Rate(0.3)
        );
        assert_eq!(
            compile_kind(FaultKind::PacketDrop { probability: 0.1 }),
            CompiledKind::Drop(0.1)
        );
        assert_eq!(
            compile_kind(FaultKind::PacketCorruption { probability: 0.2 }),
            CompiledKind::Corrupt(0.2)
        );
        assert_eq!(
            compile_kind(FaultKind::CreditLoss { credits: 5 }),
            CompiledKind::CreditLoss(5)
        );
    }
}
