//! Traffic generation: arrival processes and packet-size sampling.
//!
//! The generator realizes a [`TrafficProfile`] as a packet stream whose
//! long-run byte rate equals the profile's `BW_in` and whose sizes
//! follow `dist_size`. Three arrival processes are provided; the
//! analytical model assumes Poisson (§3.6).

use crate::rng::SimRng;
use crate::time::SimTime;
use lognic_model::error::{LogNicError, LogNicResult};
use lognic_model::params::{PacketSizeDist, TrafficProfile};
use lognic_model::units::{Bandwidth, Bytes};

/// The packet arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrivalProcess {
    /// Poisson arrivals (exponential inter-arrival gaps) — the
    /// data-center default and the model's assumption.
    #[default]
    Poisson,
    /// Fully paced arrivals: each packet is spaced by exactly its own
    /// serialization time at `BW_in`.
    Paced,
    /// Bursts of `burst` back-to-back packets, with the inter-burst
    /// gap sized to preserve the average rate.
    Bursty {
        /// Packets per burst (≥ 1).
        burst: u32,
    },
}

/// Generates the packet stream for one ingress port.
#[derive(Debug, Clone)]
pub struct TrafficSource {
    byte_rate: f64,
    mean_size: f64,
    sizes: Vec<Bytes>,
    cumulative: Vec<f64>,
    process: ArrivalProcess,
    next_id: u64,
    burst_left: u32,
}

/// One generated packet descriptor: the gap since the previous
/// injection, the wire size and the traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Time gap from the previous injection.
    pub gap: SimTime,
    /// Packet id.
    pub id: u64,
    /// Packet size.
    pub size: Bytes,
    /// Traffic class (index into the profile's `dist_size`).
    pub class: u32,
}

impl TrafficSource {
    /// Creates a source for the given profile and arrival process.
    pub fn new(profile: &TrafficProfile, process: ArrivalProcess) -> Self {
        let entries = profile.sizes().entries();
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        for (_, w) in entries {
            acc += w;
            cumulative.push(acc);
        }
        TrafficSource {
            byte_rate: profile.ingress_bandwidth().as_bytes_per_sec(),
            mean_size: entries.iter().map(|(s, w)| s.as_f64() * w).sum(),
            sizes: entries.iter().map(|(s, _)| *s).collect(),
            cumulative,
            process,
            next_id: 0,
            burst_left: 0,
        }
    }

    /// True when the source will never produce a packet (zero rate).
    pub fn is_silent(&self) -> bool {
        self.byte_rate <= 0.0
    }

    /// Draws the next injection.
    pub fn next_injection(&mut self, rng: &mut SimRng) -> Injection {
        let class = rng.pick_cumulative(&self.cumulative) as u32;
        let size = self.sizes[class as usize];
        let mean_gap_secs = size.as_f64() / self.byte_rate;
        let gap = match self.process {
            // A true (marked) Poisson process: inter-arrival gaps are
            // iid at the mean packet rate, independent of the size
            // just drawn. Size-correlated gaps would cluster small
            // packets and break the model's M/M/1 assumption.
            ArrivalProcess::Poisson => {
                rng.exponential(SimTime::from_secs(self.mean_size / self.byte_rate))
            }
            ArrivalProcess::Paced => SimTime::from_secs(mean_gap_secs),
            ArrivalProcess::Bursty { burst } => {
                let burst = burst.max(1);
                if self.burst_left > 0 {
                    self.burst_left -= 1;
                    SimTime::ZERO
                } else {
                    self.burst_left = burst - 1;
                    SimTime::from_secs(mean_gap_secs * burst as f64)
                }
            }
        };
        let id = self.next_id;
        self.next_id += 1;
        Injection {
            gap,
            id,
            size,
            class,
        }
    }
}

/// A recorded packet trace: absolute injection times, sizes and
/// classes. Traces realize the paper's *empirical* traffic profiles —
/// replaying a capture instead of sampling a synthetic distribution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<(SimTime, Bytes, u32)>,
}

impl Trace {
    /// Builds a trace from absolute `(time, size, class)` events.
    ///
    /// # Panics
    ///
    /// Panics if the events are not sorted by time. Use
    /// [`Trace::try_from_events`] to surface the defect as a typed
    /// error instead.
    pub fn from_events(events: Vec<(SimTime, Bytes, u32)>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace events must be time-sorted"
        );
        Trace { events }
    }

    /// Builds a trace from absolute `(time, size, class)` events,
    /// reporting unsorted timestamps as a typed error instead of
    /// panicking — the ingest-facing constructor.
    ///
    /// # Errors
    ///
    /// Returns [`LogNicError::InvalidTrace`] naming the first record
    /// whose timestamp runs backwards.
    pub fn try_from_events(events: Vec<(SimTime, Bytes, u32)>) -> LogNicResult<Self> {
        for (i, w) in events.windows(2).enumerate() {
            if w[0].0 > w[1].0 {
                return Err(LogNicError::InvalidTrace {
                    reason: format!(
                        "arrival timestamps run backwards ({} ps after {} ps)",
                        w[1].0.as_picos(),
                        w[0].0.as_picos()
                    ),
                    record: Some(i as u64 + 1),
                });
            }
        }
        Ok(Trace { events })
    }

    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total bytes across the trace.
    pub fn total_bytes(&self) -> u64 {
        self.events.iter().map(|(_, s, _)| s.get()).sum()
    }

    /// The trace's span (time of the last event).
    pub fn span(&self) -> SimTime {
        self.events
            .last()
            .map(|(t, _, _)| *t)
            .unwrap_or(SimTime::ZERO)
    }

    /// The trace's mean byte rate in bits per second (zero for traces
    /// spanning no time).
    pub fn mean_rate_bps(&self) -> f64 {
        let span = self.span().as_secs();
        if span <= 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / span
    }

    /// A replay cursor over the trace.
    pub fn cursor(&self) -> TraceCursor {
        TraceCursor {
            events: self.events.clone(),
            idx: 0,
            last: SimTime::ZERO,
        }
    }
}

/// Replays a [`Trace`] as a sequence of [`Injection`]s.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    events: Vec<(SimTime, Bytes, u32)>,
    idx: usize,
    last: SimTime,
}

impl TraceCursor {
    /// The next injection, or `None` when the trace is exhausted.
    pub fn next_injection(&mut self) -> Option<Injection> {
        let (t, size, class) = *self.events.get(self.idx)?;
        let gap = t.since(self.last);
        self.last = t;
        let id = self.idx as u64;
        self.idx += 1;
        Some(Injection {
            gap,
            id,
            size,
            class,
        })
    }

    /// Packets remaining.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.idx
    }
}

// ---------------------------------------------------------------------------
// Packet-trace corpus files
// ---------------------------------------------------------------------------

/// One record of a packet-trace corpus file: an absolute arrival
/// timestamp, the wire size, a flow tag and a traffic class.
///
/// The flow tag is opaque to the simulator (the engine keys behaviour
/// on `class` alone) but survives the file round trip, so captures
/// from multi-flow sources keep their per-flow structure for offline
/// analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Absolute arrival time.
    pub arrival: SimTime,
    /// Wire size in bytes (must be positive).
    pub size: Bytes,
    /// Opaque flow identifier.
    pub flow: u32,
    /// Traffic class (drives WRR queue mapping and per-class reports).
    pub class: u32,
}

impl TraceEntry {
    /// Creates a record.
    pub fn new(arrival: SimTime, size: Bytes, flow: u32, class: u32) -> Self {
        TraceEntry {
            arrival,
            size,
            flow,
            class,
        }
    }
}

/// Size of one encoded [`TraceEntry`] in the binary framing.
const RECORD_BYTES: usize = 20;

/// A validated packet-trace corpus: the empirical counterpart of a
/// synthetic [`TrafficProfile`]. Traces are recorded from live runs
/// (via [`crate::trace::ArrivalRecorder`]) or written by external
/// tools, persisted in a compact binary or CSV framing, and re-ingested
/// through [`PacketTrace::to_sim_trace`] to drive a replayed
/// simulation — or through [`PacketTrace::empirical_profile`] to feed
/// the analytical model's size-mixture machinery.
///
/// Construction always validates: arrivals must be non-decreasing and
/// sizes positive; defects are reported as typed
/// [`LogNicError::InvalidTrace`] values, never panics — a corrupt
/// capture file is user input, not a programming error.
///
/// # Binary framing
///
/// ```text
/// magic "LNTR" (4 B) | version 0x01 (1 B) | record count (u64 LE)
/// then per record (20 B each):
///   arrival_ps (u64 LE) | size_bytes (u32 LE) | flow (u32 LE) | class (u32 LE)
/// ```
///
/// # CSV framing
///
/// A header line `arrival_ps,size_bytes,flow,class` followed by one
/// integer row per record; blank lines and `#` comments are ignored.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PacketTrace {
    entries: Vec<TraceEntry>,
}

impl PacketTrace {
    /// The binary framing's magic bytes.
    pub const MAGIC: [u8; 4] = *b"LNTR";
    /// The binary framing's current version byte.
    pub const VERSION: u8 = 1;
    /// The CSV header line.
    pub const CSV_HEADER: &'static str = "arrival_ps,size_bytes,flow,class";

    /// Builds a trace from records, validating order and sizes.
    ///
    /// # Errors
    ///
    /// Returns [`LogNicError::InvalidTrace`] naming the first record
    /// with a zero size or a timestamp behind its predecessor.
    pub fn new(entries: Vec<TraceEntry>) -> LogNicResult<Self> {
        let mut last = SimTime::ZERO;
        for (i, e) in entries.iter().enumerate() {
            if e.size.get() == 0 {
                return Err(LogNicError::InvalidTrace {
                    reason: "zero-byte packet".into(),
                    record: Some(i as u64),
                });
            }
            if i > 0 && e.arrival < last {
                return Err(LogNicError::InvalidTrace {
                    reason: format!(
                        "arrival timestamps run backwards ({} ps after {} ps)",
                        e.arrival.as_picos(),
                        last.as_picos()
                    ),
                    record: Some(i as u64),
                });
            }
            last = e.arrival;
        }
        Ok(PacketTrace { entries })
    }

    /// The validated records, in arrival order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes across the trace.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size.get()).sum()
    }

    /// The trace's span (time of the last arrival).
    pub fn span(&self) -> SimTime {
        self.entries
            .last()
            .map(|e| e.arrival)
            .unwrap_or(SimTime::ZERO)
    }

    /// Number of distinct flow tags.
    pub fn flow_count(&self) -> usize {
        let mut flows: Vec<u32> = self.entries.iter().map(|e| e.flow).collect();
        flows.sort_unstable();
        flows.dedup();
        flows.len()
    }

    /// Mean byte rate over the trace span, in bits per second (zero
    /// for traces spanning no time).
    pub fn mean_rate_bps(&self) -> f64 {
        let span = self.span().as_secs();
        if span <= 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / span
    }

    /// Encodes the trace in the compact binary framing.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(13 + self.entries.len() * RECORD_BYTES);
        out.extend_from_slice(&Self::MAGIC);
        out.push(Self::VERSION);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.arrival.as_picos().to_le_bytes());
            out.extend_from_slice(&(e.size.get() as u32).to_le_bytes());
            out.extend_from_slice(&e.flow.to_le_bytes());
            out.extend_from_slice(&e.class.to_le_bytes());
        }
        out
    }

    /// Decodes a binary-framed trace.
    ///
    /// # Errors
    ///
    /// Returns [`LogNicError::InvalidTrace`] on a bad magic or
    /// version, a truncated header or record section, trailing bytes,
    /// or any record that fails [`PacketTrace::new`] validation.
    pub fn from_binary(bytes: &[u8]) -> LogNicResult<Self> {
        let framing = |reason: String| LogNicError::InvalidTrace {
            reason,
            record: None,
        };
        if bytes.len() < 13 {
            return Err(framing(format!(
                "truncated header: {} bytes, need at least 13",
                bytes.len()
            )));
        }
        if bytes[..4] != Self::MAGIC {
            return Err(framing(format!(
                "bad magic {:02x?}, expected \"LNTR\"",
                &bytes[..4]
            )));
        }
        if bytes[4] != Self::VERSION {
            return Err(framing(format!(
                "unsupported version {}, expected {}",
                bytes[4],
                Self::VERSION
            )));
        }
        let count = u64::from_le_bytes(bytes[5..13].try_into().expect("8-byte slice"));
        let body = &bytes[13..];
        let expected = (count as usize)
            .checked_mul(RECORD_BYTES)
            .ok_or_else(|| framing(format!("record count {count} overflows the file size")))?;
        if body.len() != expected {
            return Err(framing(format!(
                "truncated records: {} bytes for {count} records, expected {expected}",
                body.len()
            )));
        }
        let mut entries = Vec::with_capacity(count as usize);
        for rec in body.chunks_exact(RECORD_BYTES) {
            let arrival = u64::from_le_bytes(rec[0..8].try_into().expect("8-byte slice"));
            let size = u32::from_le_bytes(rec[8..12].try_into().expect("4-byte slice"));
            let flow = u32::from_le_bytes(rec[12..16].try_into().expect("4-byte slice"));
            let class = u32::from_le_bytes(rec[16..20].try_into().expect("4-byte slice"));
            entries.push(TraceEntry::new(
                SimTime::from_picos(arrival),
                Bytes::new(size as u64),
                flow,
                class,
            ));
        }
        PacketTrace::new(entries)
    }

    /// Renders the trace as CSV (header + one row per record).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(32 + self.entries.len() * 24);
        out.push_str(Self::CSV_HEADER);
        out.push('\n');
        for e in &self.entries {
            out.push_str(&format!(
                "{},{},{},{}\n",
                e.arrival.as_picos(),
                e.size.get(),
                e.flow,
                e.class
            ));
        }
        out
    }

    /// Parses a CSV-framed trace. The header line is required; blank
    /// lines and lines starting with `#` are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`LogNicError::InvalidTrace`] on a missing or wrong
    /// header, a row with the wrong field count or an unparsable
    /// integer, or any record that fails [`PacketTrace::new`]
    /// validation.
    pub fn from_csv(text: &str) -> LogNicResult<Self> {
        let mut rows = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'));
        match rows.next() {
            Some(header) if header.trim() == Self::CSV_HEADER => {}
            other => {
                return Err(LogNicError::InvalidTrace {
                    reason: format!(
                        "missing CSV header `{}` (got {:?})",
                        Self::CSV_HEADER,
                        other.unwrap_or("<empty>")
                    ),
                    record: None,
                })
            }
        }
        let mut entries = Vec::new();
        for (i, row) in rows.enumerate() {
            let fields: Vec<&str> = row.trim().split(',').collect();
            if fields.len() != 4 {
                return Err(LogNicError::InvalidTrace {
                    reason: format!("expected 4 fields, found {} in `{row}`", fields.len()),
                    record: Some(i as u64),
                });
            }
            let field = |idx: usize, name: &str| -> LogNicResult<u64> {
                fields[idx]
                    .trim()
                    .parse()
                    .map_err(|_| LogNicError::InvalidTrace {
                        reason: format!("unparsable {name} `{}`", fields[idx].trim()),
                        record: Some(i as u64),
                    })
            };
            entries.push(TraceEntry::new(
                SimTime::from_picos(field(0, "arrival_ps")?),
                Bytes::new(field(1, "size_bytes")?),
                field(2, "flow")? as u32,
                field(3, "class")? as u32,
            ));
        }
        PacketTrace::new(entries)
    }

    /// Re-ingests a Chrome `trace_event` export produced by
    /// [`crate::trace::ChromeTrace`]: the `inject` instants carry the
    /// full arrival stream (timestamps are rendered at picosecond
    /// precision, so the recovery is lossless), which closes the loop
    /// between the observability layer's output and the corpus
    /// ingest path — an exported trace is a valid regression input.
    ///
    /// The simulator keys on traffic class, so the recovered flow tag
    /// mirrors the class tag (as [`crate::trace::ArrivalRecorder`]
    /// records it).
    ///
    /// # Errors
    ///
    /// Returns [`LogNicError::InvalidTrace`] when an `inject` event
    /// lacks a parsable `ts`, `size` or `class` field, or when the
    /// recovered records fail [`PacketTrace::new`] validation.
    pub fn from_chrome_trace(json: &str) -> LogNicResult<Self> {
        fn json_number(line: &str, key: &str, record: u64) -> LogNicResult<String> {
            let at = line.find(key).ok_or_else(|| LogNicError::InvalidTrace {
                reason: format!("inject event lacks `{key}`"),
                record: Some(record),
            })?;
            let rest = &line[at + key.len()..];
            let end = rest
                .find([',', '}'])
                .ok_or_else(|| LogNicError::InvalidTrace {
                    reason: format!("unterminated `{key}` value"),
                    record: Some(record),
                })?;
            Ok(rest[..end].trim().to_owned())
        }
        fn parse_u64(text: &str, what: &str, record: u64) -> LogNicResult<u64> {
            text.parse().map_err(|_| LogNicError::InvalidTrace {
                reason: format!("unparsable {what} `{text}`"),
                record: Some(record),
            })
        }
        let mut entries = Vec::new();
        for line in json.lines() {
            if !line.contains("\"name\":\"inject\"") {
                continue;
            }
            let record = entries.len() as u64;
            // `ts` is microseconds with six fractional digits — i.e.
            // picoseconds split at the decimal point.
            let ts = json_number(line, "\"ts\":", record)?;
            let arrival_ps = match ts.split_once('.') {
                Some((whole, frac)) if frac.len() == 6 => {
                    parse_u64(whole, "ts", record)? * 1_000_000
                        + parse_u64(frac, "ts fraction", record)?
                }
                _ => {
                    return Err(LogNicError::InvalidTrace {
                        reason: format!("timestamp `{ts}` is not µs with 6 fraction digits"),
                        record: Some(record),
                    })
                }
            };
            let size = parse_u64(&json_number(line, "\"size\":", record)?, "size", record)?;
            let class =
                parse_u64(&json_number(line, "\"class\":", record)?, "class", record)? as u32;
            entries.push(TraceEntry::new(
                SimTime::from_picos(arrival_ps),
                Bytes::new(size),
                class,
                class,
            ));
        }
        PacketTrace::new(entries)
    }

    /// Converts the corpus trace into the simulator's replay form
    /// (flow tags are dropped — the engine keys on class alone).
    pub fn to_sim_trace(&self) -> Trace {
        Trace::from_events(
            self.entries
                .iter()
                .map(|e| (e.arrival, e.size, e.class))
                .collect(),
        )
    }

    /// Derives an empirical [`TrafficProfile`] from the trace: the
    /// observed size mixture (weighted by packet count) at the trace's
    /// mean byte rate — the ingest path into the analytical model's
    /// size-mixture machinery.
    ///
    /// # Errors
    ///
    /// Returns [`LogNicError::InvalidTrace`] for traces spanning no
    /// time (fewer than two distinct arrival instants), whose mean
    /// rate is undefined.
    pub fn empirical_profile(&self) -> LogNicResult<TrafficProfile> {
        let rate = self.mean_rate_bps();
        if rate <= 0.0 {
            return Err(LogNicError::InvalidTrace {
                reason: "trace spans no time; its mean rate is undefined".into(),
                record: None,
            });
        }
        let mut counts: Vec<(u64, f64)> = Vec::new();
        for e in &self.entries {
            match counts.iter_mut().find(|(s, _)| *s == e.size.get()) {
                Some((_, w)) => *w += 1.0,
                None => counts.push((e.size.get(), 1.0)),
            }
        }
        counts.sort_unstable_by_key(|(s, _)| *s);
        let dist = PacketSizeDist::mix(counts.into_iter().map(|(s, w)| (Bytes::new(s), w)))
            .map_err(|e| LogNicError::InvalidTrace {
                reason: format!("size mixture rejected: {e}"),
                record: None,
            })?;
        Ok(TrafficProfile::new(Bandwidth::bps(rate), dist))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::params::PacketSizeDist;
    use lognic_model::units::Bandwidth;

    fn profile(gbps: f64, size: u64) -> TrafficProfile {
        TrafficProfile::fixed(Bandwidth::gbps(gbps), Bytes::new(size))
    }

    fn long_run_rate(src: &mut TrafficSource, rng: &mut SimRng, n: usize) -> f64 {
        let mut t = SimTime::ZERO;
        let mut bytes = 0u64;
        for _ in 0..n {
            let inj = src.next_injection(rng);
            t += inj.gap;
            bytes += inj.size.get();
        }
        bytes as f64 * 8.0 / t.as_secs()
    }

    #[test]
    fn paced_rate_is_exact() {
        let mut src = TrafficSource::new(&profile(10.0, 1000), ArrivalProcess::Paced);
        let mut rng = SimRng::seed_from(1);
        let rate = long_run_rate(&mut src, &mut rng, 1000);
        assert!((rate - 10e9).abs() / 10e9 < 1e-6, "rate = {rate}");
    }

    #[test]
    fn poisson_rate_converges() {
        let mut src = TrafficSource::new(&profile(10.0, 1000), ArrivalProcess::Poisson);
        let mut rng = SimRng::seed_from(2);
        let rate = long_run_rate(&mut src, &mut rng, 50_000);
        assert!((rate - 10e9).abs() / 10e9 < 0.02, "rate = {rate}");
    }

    #[test]
    fn bursty_rate_converges_and_bursts_are_back_to_back() {
        let mut src = TrafficSource::new(&profile(10.0, 1000), ArrivalProcess::Bursty { burst: 4 });
        let mut rng = SimRng::seed_from(3);
        // First injection opens a burst with a gap; next 3 have zero gap.
        let first = src.next_injection(&mut rng);
        assert!(first.gap > SimTime::ZERO);
        for _ in 0..3 {
            assert_eq!(src.next_injection(&mut rng).gap, SimTime::ZERO);
        }
        assert!(src.next_injection(&mut rng).gap > SimTime::ZERO);
        let rate = long_run_rate(&mut src, &mut rng, 10_000);
        assert!((rate - 10e9).abs() / 10e9 < 0.01, "rate = {rate}");
    }

    #[test]
    fn mixture_classes_follow_weights() {
        let dist = PacketSizeDist::mix([(Bytes::new(64), 0.25), (Bytes::new(1500), 0.75)]).unwrap();
        let t = TrafficProfile::new(Bandwidth::gbps(10.0), dist);
        let mut src = TrafficSource::new(&t, ArrivalProcess::Paced);
        let mut rng = SimRng::seed_from(4);
        let n = 20_000;
        let mut class1 = 0;
        for _ in 0..n {
            let inj = src.next_injection(&mut rng);
            if inj.class == 1 {
                class1 += 1;
                assert_eq!(inj.size, Bytes::new(1500));
            } else {
                assert_eq!(inj.size, Bytes::new(64));
            }
        }
        let frac = class1 as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn ids_are_sequential() {
        let mut src = TrafficSource::new(&profile(1.0, 64), ArrivalProcess::Paced);
        let mut rng = SimRng::seed_from(5);
        for want in 0..10 {
            assert_eq!(src.next_injection(&mut rng).id, want);
        }
    }

    #[test]
    fn trace_replays_exact_times() {
        let trace = Trace::from_events(vec![
            (SimTime::from_micros(1.0), Bytes::new(64), 0),
            (SimTime::from_micros(3.0), Bytes::new(128), 1),
            (SimTime::from_micros(3.0), Bytes::new(256), 0),
        ]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.total_bytes(), 448);
        assert_eq!(trace.span(), SimTime::from_micros(3.0));
        let mut c = trace.cursor();
        let a = c.next_injection().unwrap();
        assert_eq!(a.gap, SimTime::from_micros(1.0));
        assert_eq!(a.size, Bytes::new(64));
        let b = c.next_injection().unwrap();
        assert_eq!(b.gap, SimTime::from_micros(2.0));
        let d = c.next_injection().unwrap();
        assert_eq!(d.gap, SimTime::ZERO, "simultaneous arrivals");
        assert_eq!(d.class, 0);
        assert!(c.next_injection().is_none());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn trace_mean_rate() {
        let trace = Trace::from_events(vec![
            (SimTime::from_micros(0.0), Bytes::new(1000), 0),
            (SimTime::from_micros(8.0), Bytes::new(1000), 0),
        ]);
        // 2000 B over 8 µs = 2 Gb/s.
        assert!((trace.mean_rate_bps() - 2e9).abs() < 1e-3);
        assert_eq!(Trace::default().mean_rate_bps(), 0.0);
        assert!(Trace::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn trace_rejects_unsorted() {
        let _ = Trace::from_events(vec![
            (SimTime::from_micros(5.0), Bytes::new(64), 0),
            (SimTime::from_micros(1.0), Bytes::new(64), 0),
        ]);
    }

    #[test]
    fn zero_rate_is_silent() {
        let t = TrafficProfile::fixed(Bandwidth::ZERO, Bytes::new(64));
        let src = TrafficSource::new(&t, ArrivalProcess::Poisson);
        assert!(src.is_silent());
        assert!(!TrafficSource::new(&profile(1.0, 64), ArrivalProcess::Poisson).is_silent());
    }

    fn sample_trace() -> PacketTrace {
        PacketTrace::new(vec![
            TraceEntry::new(SimTime::from_picos(0), Bytes::new(64), 1, 0),
            TraceEntry::new(SimTime::from_picos(4_000), Bytes::new(1500), 2, 1),
            TraceEntry::new(SimTime::from_picos(4_000), Bytes::new(64), 1, 0),
            TraceEntry::new(SimTime::from_picos(9_500), Bytes::new(512), 3, 2),
        ])
        .expect("valid trace")
    }

    #[test]
    fn packet_trace_binary_round_trips() {
        let trace = sample_trace();
        let bytes = trace.to_binary();
        assert_eq!(&bytes[..4], b"LNTR");
        let back = PacketTrace::from_binary(&bytes).expect("round trip");
        assert_eq!(trace, back);
        assert_eq!(back.len(), 4);
        assert_eq!(back.flow_count(), 3);
        assert_eq!(back.total_bytes(), 64 + 1500 + 64 + 512);
        assert_eq!(back.span(), SimTime::from_picos(9_500));
    }

    #[test]
    fn packet_trace_csv_round_trips() {
        let trace = sample_trace();
        let csv = trace.to_csv();
        assert!(csv.starts_with(PacketTrace::CSV_HEADER));
        let back = PacketTrace::from_csv(&csv).expect("round trip");
        assert_eq!(trace, back);
        // Comments and blank lines are tolerated.
        let commented = format!("# capture\n\n{csv}");
        assert_eq!(PacketTrace::from_csv(&commented).expect("comments"), trace);
    }

    #[test]
    fn packet_trace_rejects_malformed_input() {
        let backwards = PacketTrace::new(vec![
            TraceEntry::new(SimTime::from_picos(10), Bytes::new(64), 0, 0),
            TraceEntry::new(SimTime::from_picos(5), Bytes::new(64), 0, 0),
        ]);
        assert!(matches!(
            backwards,
            Err(LogNicError::InvalidTrace {
                record: Some(1),
                ..
            })
        ));
        let zero = PacketTrace::new(vec![TraceEntry::new(SimTime::ZERO, Bytes::new(0), 0, 0)]);
        assert!(matches!(
            zero,
            Err(LogNicError::InvalidTrace {
                record: Some(0),
                ..
            })
        ));
        // Truncated binary bodies and bad framing are typed errors.
        let bytes = sample_trace().to_binary();
        assert!(PacketTrace::from_binary(&bytes[..bytes.len() - 1]).is_err());
        assert!(PacketTrace::from_binary(&bytes[..7]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(PacketTrace::from_binary(&bad_magic).is_err());
        let mut bad_version = bytes;
        bad_version[4] = 99;
        assert!(PacketTrace::from_binary(&bad_version).is_err());
        // CSV defects.
        assert!(PacketTrace::from_csv("").is_err());
        assert!(PacketTrace::from_csv("wrong,header\n1,2,3,4\n").is_err());
        let rows = format!("{}\n1,2,3\n", PacketTrace::CSV_HEADER);
        assert!(PacketTrace::from_csv(&rows).is_err());
        let rows = format!("{}\n1,nope,3,4\n", PacketTrace::CSV_HEADER);
        assert!(PacketTrace::from_csv(&rows).is_err());
    }

    #[test]
    fn packet_trace_empty_is_valid_and_round_trips() {
        let empty = PacketTrace::new(Vec::new()).expect("empty is valid");
        assert!(empty.is_empty());
        assert_eq!(empty.span(), SimTime::ZERO);
        assert_eq!(empty.mean_rate_bps(), 0.0);
        let back = PacketTrace::from_binary(&empty.to_binary()).expect("binary");
        assert!(back.is_empty());
        let back = PacketTrace::from_csv(&empty.to_csv()).expect("csv");
        assert!(back.is_empty());
        // But its mean rate is undefined, so no empirical profile.
        assert!(empty.empirical_profile().is_err());
    }

    #[test]
    fn packet_trace_feeds_sim_trace_and_profile() {
        let trace = sample_trace();
        let sim = trace.to_sim_trace();
        assert_eq!(sim.len(), trace.len());
        assert_eq!(sim.total_bytes(), trace.total_bytes());
        let profile = trace.empirical_profile().expect("spanning trace");
        // Mean rate: 2140 B over 9.5 ns.
        let expected = 2140.0 * 8.0 / 9.5e-9;
        assert!(
            (profile.ingress_bandwidth().as_bps() - expected).abs() / expected < 1e-9,
            "rate {}",
            profile.ingress_bandwidth()
        );
        // Size mixture: three distinct sizes, 64 B carrying half the weight.
        let entries = profile.sizes().entries();
        assert_eq!(entries.len(), 3);
        let w64 = entries
            .iter()
            .find(|(s, _)| s.get() == 64)
            .map(|(_, w)| *w)
            .expect("64 B bucket");
        assert!((w64 - 0.5).abs() < 1e-12, "weight {w64}");
    }
}
