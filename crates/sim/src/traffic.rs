//! Traffic generation: arrival processes and packet-size sampling.
//!
//! The generator realizes a [`TrafficProfile`] as a packet stream whose
//! long-run byte rate equals the profile's `BW_in` and whose sizes
//! follow `dist_size`. Three arrival processes are provided; the
//! analytical model assumes Poisson (§3.6).

use crate::rng::SimRng;
use crate::time::SimTime;
use lognic_model::params::TrafficProfile;
use lognic_model::units::Bytes;

/// The packet arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrivalProcess {
    /// Poisson arrivals (exponential inter-arrival gaps) — the
    /// data-center default and the model's assumption.
    #[default]
    Poisson,
    /// Fully paced arrivals: each packet is spaced by exactly its own
    /// serialization time at `BW_in`.
    Paced,
    /// Bursts of `burst` back-to-back packets, with the inter-burst
    /// gap sized to preserve the average rate.
    Bursty {
        /// Packets per burst (≥ 1).
        burst: u32,
    },
}

/// Generates the packet stream for one ingress port.
#[derive(Debug, Clone)]
pub struct TrafficSource {
    byte_rate: f64,
    mean_size: f64,
    sizes: Vec<Bytes>,
    cumulative: Vec<f64>,
    process: ArrivalProcess,
    next_id: u64,
    burst_left: u32,
}

/// One generated packet descriptor: the gap since the previous
/// injection, the wire size and the traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Time gap from the previous injection.
    pub gap: SimTime,
    /// Packet id.
    pub id: u64,
    /// Packet size.
    pub size: Bytes,
    /// Traffic class (index into the profile's `dist_size`).
    pub class: u32,
}

impl TrafficSource {
    /// Creates a source for the given profile and arrival process.
    pub fn new(profile: &TrafficProfile, process: ArrivalProcess) -> Self {
        let entries = profile.sizes().entries();
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        for (_, w) in entries {
            acc += w;
            cumulative.push(acc);
        }
        TrafficSource {
            byte_rate: profile.ingress_bandwidth().as_bytes_per_sec(),
            mean_size: entries.iter().map(|(s, w)| s.as_f64() * w).sum(),
            sizes: entries.iter().map(|(s, _)| *s).collect(),
            cumulative,
            process,
            next_id: 0,
            burst_left: 0,
        }
    }

    /// True when the source will never produce a packet (zero rate).
    pub fn is_silent(&self) -> bool {
        self.byte_rate <= 0.0
    }

    /// Draws the next injection.
    pub fn next_injection(&mut self, rng: &mut SimRng) -> Injection {
        let class = rng.pick_cumulative(&self.cumulative) as u32;
        let size = self.sizes[class as usize];
        let mean_gap_secs = size.as_f64() / self.byte_rate;
        let gap = match self.process {
            // A true (marked) Poisson process: inter-arrival gaps are
            // iid at the mean packet rate, independent of the size
            // just drawn. Size-correlated gaps would cluster small
            // packets and break the model's M/M/1 assumption.
            ArrivalProcess::Poisson => {
                rng.exponential(SimTime::from_secs(self.mean_size / self.byte_rate))
            }
            ArrivalProcess::Paced => SimTime::from_secs(mean_gap_secs),
            ArrivalProcess::Bursty { burst } => {
                let burst = burst.max(1);
                if self.burst_left > 0 {
                    self.burst_left -= 1;
                    SimTime::ZERO
                } else {
                    self.burst_left = burst - 1;
                    SimTime::from_secs(mean_gap_secs * burst as f64)
                }
            }
        };
        let id = self.next_id;
        self.next_id += 1;
        Injection {
            gap,
            id,
            size,
            class,
        }
    }
}

/// A recorded packet trace: absolute injection times, sizes and
/// classes. Traces realize the paper's *empirical* traffic profiles —
/// replaying a capture instead of sampling a synthetic distribution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<(SimTime, Bytes, u32)>,
}

impl Trace {
    /// Builds a trace from absolute `(time, size, class)` events.
    ///
    /// # Panics
    ///
    /// Panics if the events are not sorted by time.
    pub fn from_events(events: Vec<(SimTime, Bytes, u32)>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace events must be time-sorted"
        );
        Trace { events }
    }

    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total bytes across the trace.
    pub fn total_bytes(&self) -> u64 {
        self.events.iter().map(|(_, s, _)| s.get()).sum()
    }

    /// The trace's span (time of the last event).
    pub fn span(&self) -> SimTime {
        self.events
            .last()
            .map(|(t, _, _)| *t)
            .unwrap_or(SimTime::ZERO)
    }

    /// The trace's mean byte rate in bits per second (zero for traces
    /// spanning no time).
    pub fn mean_rate_bps(&self) -> f64 {
        let span = self.span().as_secs();
        if span <= 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / span
    }

    /// A replay cursor over the trace.
    pub fn cursor(&self) -> TraceCursor {
        TraceCursor {
            events: self.events.clone(),
            idx: 0,
            last: SimTime::ZERO,
        }
    }
}

/// Replays a [`Trace`] as a sequence of [`Injection`]s.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    events: Vec<(SimTime, Bytes, u32)>,
    idx: usize,
    last: SimTime,
}

impl TraceCursor {
    /// The next injection, or `None` when the trace is exhausted.
    pub fn next_injection(&mut self) -> Option<Injection> {
        let (t, size, class) = *self.events.get(self.idx)?;
        let gap = t.since(self.last);
        self.last = t;
        let id = self.idx as u64;
        self.idx += 1;
        Some(Injection {
            gap,
            id,
            size,
            class,
        })
    }

    /// Packets remaining.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::params::PacketSizeDist;
    use lognic_model::units::Bandwidth;

    fn profile(gbps: f64, size: u64) -> TrafficProfile {
        TrafficProfile::fixed(Bandwidth::gbps(gbps), Bytes::new(size))
    }

    fn long_run_rate(src: &mut TrafficSource, rng: &mut SimRng, n: usize) -> f64 {
        let mut t = SimTime::ZERO;
        let mut bytes = 0u64;
        for _ in 0..n {
            let inj = src.next_injection(rng);
            t += inj.gap;
            bytes += inj.size.get();
        }
        bytes as f64 * 8.0 / t.as_secs()
    }

    #[test]
    fn paced_rate_is_exact() {
        let mut src = TrafficSource::new(&profile(10.0, 1000), ArrivalProcess::Paced);
        let mut rng = SimRng::seed_from(1);
        let rate = long_run_rate(&mut src, &mut rng, 1000);
        assert!((rate - 10e9).abs() / 10e9 < 1e-6, "rate = {rate}");
    }

    #[test]
    fn poisson_rate_converges() {
        let mut src = TrafficSource::new(&profile(10.0, 1000), ArrivalProcess::Poisson);
        let mut rng = SimRng::seed_from(2);
        let rate = long_run_rate(&mut src, &mut rng, 50_000);
        assert!((rate - 10e9).abs() / 10e9 < 0.02, "rate = {rate}");
    }

    #[test]
    fn bursty_rate_converges_and_bursts_are_back_to_back() {
        let mut src = TrafficSource::new(&profile(10.0, 1000), ArrivalProcess::Bursty { burst: 4 });
        let mut rng = SimRng::seed_from(3);
        // First injection opens a burst with a gap; next 3 have zero gap.
        let first = src.next_injection(&mut rng);
        assert!(first.gap > SimTime::ZERO);
        for _ in 0..3 {
            assert_eq!(src.next_injection(&mut rng).gap, SimTime::ZERO);
        }
        assert!(src.next_injection(&mut rng).gap > SimTime::ZERO);
        let rate = long_run_rate(&mut src, &mut rng, 10_000);
        assert!((rate - 10e9).abs() / 10e9 < 0.01, "rate = {rate}");
    }

    #[test]
    fn mixture_classes_follow_weights() {
        let dist = PacketSizeDist::mix([(Bytes::new(64), 0.25), (Bytes::new(1500), 0.75)]).unwrap();
        let t = TrafficProfile::new(Bandwidth::gbps(10.0), dist);
        let mut src = TrafficSource::new(&t, ArrivalProcess::Paced);
        let mut rng = SimRng::seed_from(4);
        let n = 20_000;
        let mut class1 = 0;
        for _ in 0..n {
            let inj = src.next_injection(&mut rng);
            if inj.class == 1 {
                class1 += 1;
                assert_eq!(inj.size, Bytes::new(1500));
            } else {
                assert_eq!(inj.size, Bytes::new(64));
            }
        }
        let frac = class1 as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn ids_are_sequential() {
        let mut src = TrafficSource::new(&profile(1.0, 64), ArrivalProcess::Paced);
        let mut rng = SimRng::seed_from(5);
        for want in 0..10 {
            assert_eq!(src.next_injection(&mut rng).id, want);
        }
    }

    #[test]
    fn trace_replays_exact_times() {
        let trace = Trace::from_events(vec![
            (SimTime::from_micros(1.0), Bytes::new(64), 0),
            (SimTime::from_micros(3.0), Bytes::new(128), 1),
            (SimTime::from_micros(3.0), Bytes::new(256), 0),
        ]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.total_bytes(), 448);
        assert_eq!(trace.span(), SimTime::from_micros(3.0));
        let mut c = trace.cursor();
        let a = c.next_injection().unwrap();
        assert_eq!(a.gap, SimTime::from_micros(1.0));
        assert_eq!(a.size, Bytes::new(64));
        let b = c.next_injection().unwrap();
        assert_eq!(b.gap, SimTime::from_micros(2.0));
        let d = c.next_injection().unwrap();
        assert_eq!(d.gap, SimTime::ZERO, "simultaneous arrivals");
        assert_eq!(d.class, 0);
        assert!(c.next_injection().is_none());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn trace_mean_rate() {
        let trace = Trace::from_events(vec![
            (SimTime::from_micros(0.0), Bytes::new(1000), 0),
            (SimTime::from_micros(8.0), Bytes::new(1000), 0),
        ]);
        // 2000 B over 8 µs = 2 Gb/s.
        assert!((trace.mean_rate_bps() - 2e9).abs() < 1e-3);
        assert_eq!(Trace::default().mean_rate_bps(), 0.0);
        assert!(Trace::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn trace_rejects_unsorted() {
        let _ = Trace::from_events(vec![
            (SimTime::from_micros(5.0), Bytes::new(64), 0),
            (SimTime::from_micros(1.0), Bytes::new(64), 0),
        ]);
    }

    #[test]
    fn zero_rate_is_silent() {
        let t = TrafficProfile::fixed(Bandwidth::ZERO, Bytes::new(64));
        let src = TrafficSource::new(&t, ArrivalProcess::Poisson);
        assert!(src.is_silent());
        assert!(!TrafficSource::new(&profile(1.0, 64), ArrivalProcess::Poisson).is_silent());
    }
}
