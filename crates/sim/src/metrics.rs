//! Measurement results of a simulation run.

use crate::histogram::LatencyRecorder;
use crate::time::SimTime;
use lognic_model::units::{Bandwidth, Bytes, Seconds};

/// Order statistics over observed packet latencies.
///
/// Computed by the engine from a streaming [`LatencyRecorder`] —
/// Welford moments for mean/stddev and a log-scale histogram for the
/// percentiles — so runs never buffer per-packet samples.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: Seconds,
    /// Population standard deviation.
    pub stddev: Seconds,
    /// Median.
    pub p50: Seconds,
    /// 90th percentile.
    pub p90: Seconds,
    /// 99th percentile.
    pub p99: Seconds,
    /// Maximum observed.
    pub max: Seconds,
}

impl LatencySummary {
    /// Summarizes a streaming recorder's accumulated statistics.
    pub fn from_recorder(rec: &LatencyRecorder) -> Self {
        LatencySummary {
            count: rec.count(),
            mean: rec.mean(),
            stddev: rec.stddev(),
            p50: rec.quantile(0.50),
            p90: rec.quantile(0.90),
            p99: rec.quantile(0.99),
            max: rec.max().to_seconds(),
        }
    }

    /// Summarizes a set of latency samples by feeding them through a
    /// [`LatencyRecorder`] — one code path with the engine's streaming
    /// statistics.
    pub fn from_samples(samples: Vec<SimTime>) -> Self {
        let mut rec = LatencyRecorder::new();
        for s in samples {
            rec.record(s);
        }
        Self::from_recorder(&rec)
    }
}

/// Per-node counters.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Vertex name.
    pub name: String,
    /// Requests that reached the node.
    pub arrivals: u64,
    /// Requests completed by the node's engines.
    pub served: u64,
    /// Requests dropped because the queue was full.
    pub drops: u64,
    /// Largest queue depth observed (waiting requests, excluding those
    /// in service).
    pub max_queue: usize,
    /// Fraction of the run the node's engines spent busy, averaged
    /// over engines.
    pub utilization: f64,
    /// Time-averaged requests in system (waiting + in service) — the
    /// measured counterpart of the model's `L` (Eq. 9).
    pub mean_occupancy: f64,
}

impl NodeReport {
    /// The node's observed drop rate.
    pub fn drop_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.drops as f64 / self.arrivals as f64
        }
    }
}

/// Per-medium counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MediumReport {
    /// Medium name (`"interface"`, `"memory"`, or an edge link name).
    pub name: String,
    /// Total bytes moved.
    pub transferred: Bytes,
    /// Fraction of the run spent transferring.
    pub utilization: f64,
}

/// Per-traffic-class counters (classes index the profile's
/// `dist_size` entries).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Packets of this class that completed.
    pub completed: u64,
    /// Bytes of this class that completed.
    pub bytes: Bytes,
    /// Mean latency of this class's completed packets.
    pub mean_latency: Seconds,
}

/// The complete result of one simulation run.
///
/// Rates and latency are measured over packets injected after the
/// warmup cutoff.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Configured run length.
    pub duration: Seconds,
    /// Length of the measurement window (duration − warmup).
    pub window: Seconds,
    /// Packets injected inside the window.
    pub injected: u64,
    /// Packets that reached the egress inside the window.
    pub completed: u64,
    /// Packets dropped at some node.
    pub dropped: u64,
    /// Offered ingress rate over the window.
    pub offered: Bandwidth,
    /// Delivered egress rate over the window.
    pub throughput: Bandwidth,
    /// Delivered egress rate counting only uncorrupted packets.
    /// Equals `throughput` unless a packet-corruption fault window
    /// was active during the run.
    pub goodput: Bandwidth,
    /// Retry attempts consumed by the fault-recovery policy inside
    /// the window (0 without a [`RetryPolicy`]).
    ///
    /// [`RetryPolicy`]: lognic_model::fault::RetryPolicy
    pub retries: u64,
    /// Packets abandoned because their sojourn exceeded the plan
    /// deadline. Also counted in `dropped`.
    pub timed_out: u64,
    /// Completed packets whose payload a corruption window flipped.
    /// Also counted in `completed`.
    pub corrupted: u64,
    /// Delivered packet rate over the window (packets per second).
    pub packet_rate: f64,
    /// Discrete events the engine processed over the whole run —
    /// the denominator of the perf baseline's events/sec metric.
    /// Identical across scheduler engines for the same scenario/seed.
    pub events: u64,
    /// Latency statistics of completed packets.
    pub latency: LatencySummary,
    /// Per-class completion breakdown.
    pub classes: Vec<ClassReport>,
    /// Per-node counters, indexed like the execution graph's vertices.
    pub nodes: Vec<NodeReport>,
    /// Shared-media counters (interface, memory, dedicated links).
    pub media: Vec<MediumReport>,
}

impl SimReport {
    /// The measured packet loss fraction.
    pub fn loss_rate(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.dropped as f64 / self.injected as f64
        }
    }

    /// Looks up a node report by vertex name.
    pub fn node(&self, name: &str) -> Option<&NodeReport> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Looks up a medium report by name.
    pub fn medium(&self, name: &str) -> Option<&MediumReport> {
        self.media.iter().find(|m| m.name == name)
    }

    /// The completion share of one traffic class.
    pub fn class_share(&self, class: u32) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.classes
            .get(class as usize)
            .map(|c| c.completed as f64 / self.completed as f64)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, Seconds::ZERO);
        assert_eq!(s.max, Seconds::ZERO);
    }

    #[test]
    fn summary_statistics() {
        let samples: Vec<SimTime> = (1..=100).map(|i| SimTime::from_micros(i as f64)).collect();
        let s = LatencySummary::from_samples(samples);
        assert_eq!(s.count, 100);
        assert!((s.mean.as_micros() - 50.5).abs() < 1e-9);
        assert!((s.p50.as_micros() - 50.0).abs() < 1.01);
        assert!((s.p90.as_micros() - 90.0).abs() < 1.01);
        assert!((s.p99.as_micros() - 99.0).abs() < 1.01);
        assert!((s.max.as_micros() - 100.0).abs() < 1e-9);
        // Population stddev of 1..=100 µs is sqrt((100²−1)/12) ≈ 28.87.
        assert!((s.stddev.as_micros() - 28.866).abs() < 0.01);
    }

    #[test]
    fn summary_single_sample() {
        let s = LatencySummary::from_samples(vec![SimTime::from_micros(3.0)]);
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, s.max);
        assert_eq!(s.p99, s.max);
    }

    #[test]
    fn node_drop_rate() {
        let n = NodeReport {
            name: "x".into(),
            arrivals: 100,
            served: 90,
            drops: 10,
            max_queue: 5,
            utilization: 0.5,
            mean_occupancy: 1.5,
        };
        assert!((n.drop_rate() - 0.1).abs() < 1e-12);
        let empty = NodeReport { arrivals: 0, ..n };
        assert_eq!(empty.drop_rate(), 0.0);
    }
}
