//! The multi-queue IP front end of Fig. 2b: `m` input queues with `k`
//! entries each, drained by a (weighted) round-robin scheduler.
//!
//! The analytical model concatenates these queues into one *virtual
//! shared queue* (§3.6); the simulator can either do the same (the
//! default single-queue plan) or keep them distinct, which is what
//! multi-tenant isolation experiments need: one tenant overflowing its
//! own queue must not drop another tenant's packets.
//!
//! Queues hold dense [`PacketHandle`]s into the run's packet arena,
//! not `Packet` values — enqueue/dequeue move a `u32`, and once the
//! per-queue rings reach their peak depth the front end performs no
//! further heap allocation.
//!
//! [`PacketHandle`]: crate::arena::PacketHandle

use crate::arena::PacketHandle;
use std::collections::VecDeque;

/// Configuration of one input queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSpec {
    /// Entries the queue holds (`k`).
    pub capacity: u32,
    /// The scheduler's round-robin weight for this queue (≥ 1).
    pub weight: u32,
}

/// The queue plan of a node: how many queues, their sizes and weights,
/// and how packets map onto them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuePlan {
    queues: Vec<QueueSpec>,
}

impl QueuePlan {
    /// A single shared queue — the model's virtual-shared-queue
    /// abstraction.
    pub fn single(capacity: u32) -> Self {
        QueuePlan {
            queues: vec![QueueSpec {
                capacity,
                weight: 1,
            }],
        }
    }

    /// `m` queues with the given specs. Packets are assigned by
    /// `class mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is empty, or any weight or capacity is zero.
    pub fn weighted(queues: Vec<QueueSpec>) -> Self {
        assert!(!queues.is_empty(), "need at least one queue");
        for q in &queues {
            assert!(q.capacity > 0, "queue capacity must be at least 1");
            assert!(q.weight > 0, "queue weight must be at least 1");
        }
        QueuePlan { queues }
    }

    /// The queue specs.
    pub fn queues(&self) -> &[QueueSpec] {
        &self.queues
    }

    /// Total buffering across queues.
    pub fn total_capacity(&self) -> u32 {
        self.queues.iter().map(|q| q.capacity).sum()
    }
}

/// The runtime state of a node's multi-queue front end.
#[derive(Debug)]
pub struct WrrQueues {
    specs: Vec<QueueSpec>,
    queues: Vec<VecDeque<PacketHandle>>,
    /// WRR cursor: which queue the scheduler is draining.
    cursor: usize,
    /// Deficit remaining for the cursor queue in this round.
    remaining: u32,
    /// Per-queue drop counters.
    drops: Vec<u64>,
}

impl WrrQueues {
    /// Instantiates a plan.
    pub fn new(plan: &QueuePlan) -> Self {
        let specs = plan.queues().to_vec();
        let remaining = specs[0].weight;
        let n = specs.len();
        WrrQueues {
            specs,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            remaining,
            drops: vec![0; n],
        }
    }

    /// The queue index a traffic class maps to.
    pub fn queue_for(&self, class: u32) -> usize {
        class as usize % self.queues.len()
    }

    /// Enqueues a packet handle; returns `false` (a drop) when the
    /// class's queue is full.
    pub fn enqueue(&mut self, class: u32, handle: PacketHandle) -> bool {
        let idx = self.queue_for(class);
        if self.queues[idx].len() >= self.specs[idx].capacity as usize {
            self.drops[idx] += 1;
            return false;
        }
        self.queues[idx].push_back(handle);
        true
    }

    /// Dequeues the next packet handle under weighted round-robin: the
    /// scheduler serves up to `weight` packets from the cursor queue,
    /// then moves on; empty queues are skipped without consuming their
    /// turn.
    pub fn dequeue(&mut self) -> Option<PacketHandle> {
        let m = self.queues.len();
        if self.queues.iter().all(VecDeque::is_empty) {
            return None;
        }
        loop {
            if self.remaining > 0 {
                if let Some(h) = self.queues[self.cursor].pop_front() {
                    self.remaining -= 1;
                    return Some(h);
                }
            }
            self.cursor = (self.cursor + 1) % m;
            self.remaining = self.specs[self.cursor].weight;
        }
    }

    /// Packets currently waiting across all queues.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// True when no packet waits.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Depth of one queue.
    pub fn queue_len(&self, idx: usize) -> usize {
        self.queues[idx].len()
    }

    /// Drops charged to one queue.
    pub fn queue_drops(&self, idx: usize) -> u64 {
        self.drops[idx]
    }

    /// Number of queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Total waiting-packet capacity across all queues.
    pub fn total_capacity(&self) -> u32 {
        self.specs.iter().map(|q| q.capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_plan_behaves_fifo() {
        let mut q = WrrQueues::new(&QueuePlan::single(4));
        for i in 0..4 {
            assert!(q.enqueue(0, i));
        }
        assert!(!q.enqueue(0, 9), "fifth packet overflows");
        let order: Vec<PacketHandle> = std::iter::from_fn(|| q.dequeue()).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(q.queue_drops(0), 1);
    }

    #[test]
    fn classes_map_to_queues_mod_m() {
        let plan = QueuePlan::weighted(vec![
            QueueSpec {
                capacity: 8,
                weight: 1,
            },
            QueueSpec {
                capacity: 8,
                weight: 1,
            },
        ]);
        let q = WrrQueues::new(&plan);
        assert_eq!(q.queue_for(0), 0);
        assert_eq!(q.queue_for(1), 1);
        assert_eq!(q.queue_for(5), 1);
        assert_eq!(q.queue_count(), 2);
    }

    #[test]
    fn weighted_drain_follows_weights() {
        // Weights 3:1 — the scheduler serves three from queue 0 per
        // one from queue 1 while both are backlogged. Handles encode
        // the class in their low bit for the assertion.
        let plan = QueuePlan::weighted(vec![
            QueueSpec {
                capacity: 32,
                weight: 3,
            },
            QueueSpec {
                capacity: 32,
                weight: 1,
            },
        ]);
        let mut q = WrrQueues::new(&plan);
        for i in 0..12 {
            assert!(q.enqueue(0, i * 2));
            assert!(q.enqueue(1, i * 2 + 1));
        }
        let first8: Vec<PacketHandle> = (0..8).map(|_| q.dequeue().unwrap()).collect();
        let zeros = first8.iter().filter(|h| *h % 2 == 0).count();
        assert_eq!(zeros, 6, "3:1 weighting over 8 dequeues: {first8:?}");
    }

    #[test]
    fn empty_queue_does_not_stall_the_scheduler() {
        let plan = QueuePlan::weighted(vec![
            QueueSpec {
                capacity: 8,
                weight: 4,
            },
            QueueSpec {
                capacity: 8,
                weight: 1,
            },
        ]);
        let mut q = WrrQueues::new(&plan);
        // Only class 1 traffic: the scheduler must skip queue 0.
        for i in 0..4 {
            assert!(q.enqueue(1, i));
        }
        let drained: Vec<PacketHandle> = std::iter::from_fn(|| q.dequeue()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn per_queue_isolation_of_drops() {
        let plan = QueuePlan::weighted(vec![
            QueueSpec {
                capacity: 2,
                weight: 1,
            },
            QueueSpec {
                capacity: 8,
                weight: 1,
            },
        ]);
        let mut q = WrrQueues::new(&plan);
        // Class 0 floods its 2-entry queue.
        for i in 0..6 {
            q.enqueue(0, i);
        }
        // Class 1 is unaffected.
        for i in 0..6 {
            assert!(q.enqueue(1, 100 + i), "class 1 must not drop");
        }
        assert_eq!(q.queue_drops(0), 4);
        assert_eq!(q.queue_drops(1), 0);
        assert_eq!(q.queue_len(0), 2);
        assert_eq!(q.queue_len(1), 6);
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn plan_accessors() {
        let plan = QueuePlan::weighted(vec![
            QueueSpec {
                capacity: 4,
                weight: 2,
            },
            QueueSpec {
                capacity: 6,
                weight: 1,
            },
        ]);
        assert_eq!(plan.total_capacity(), 10);
        assert_eq!(plan.queues().len(), 2);
        assert_eq!(QueuePlan::single(16).total_capacity(), 16);
    }

    mod properties {
        use super::*;
        use lognic_testkit::{ensure, ensure_eq, Gen, Property};

        fn arb_plan(g: &mut Gen) -> QueuePlan {
            QueuePlan::weighted(g.vec(1..5, |g| QueueSpec {
                capacity: g.u32(1..32),
                weight: g.u32(1..8),
            }))
        }

        #[test]
        fn conservation_under_random_traffic() {
            Property::new("wrr_conservation_under_random_traffic").check(|g| {
                let plan = arb_plan(g);
                let classes = g.vec(1..200, |g| g.u32(0..8));
                let mut q = WrrQueues::new(&plan);
                let mut admitted = 0u64;
                for (i, class) in classes.iter().enumerate() {
                    if q.enqueue(*class, i as PacketHandle) {
                        admitted += 1;
                    }
                }
                let drained = std::iter::from_fn(|| q.dequeue()).count() as u64;
                ensure_eq!(drained, admitted);
                ensure!(q.is_empty());
                // Per-queue drops account for the rest.
                let dropped: u64 = (0..q.queue_count()).map(|i| q.queue_drops(i)).sum();
                ensure_eq!(admitted + dropped, classes.len() as u64);
                Ok(())
            });
        }

        #[test]
        fn no_queue_exceeds_its_capacity() {
            Property::new("wrr_no_queue_exceeds_its_capacity").check(|g| {
                let plan = arb_plan(g);
                let classes = g.vec(1..300, |g| g.u32(0..8));
                let mut q = WrrQueues::new(&plan);
                for (i, class) in classes.iter().enumerate() {
                    let _ = q.enqueue(*class, i as PacketHandle);
                    for idx in 0..q.queue_count() {
                        ensure!(
                            q.queue_len(idx) <= plan.queues()[idx].capacity as usize,
                            "queue {idx} over capacity"
                        );
                    }
                }
                Ok(())
            });
        }

        #[test]
        fn fifo_within_a_class() {
            Property::new("wrr_fifo_within_a_class").check(|g| {
                let plan = arb_plan(g);
                let count = g.usize(1..50);
                // All packets in one class drain in insertion order.
                let mut q = WrrQueues::new(&plan);
                let mut admitted = Vec::new();
                for i in 0..count {
                    if q.enqueue(0, i as PacketHandle) {
                        admitted.push(i as PacketHandle);
                    }
                }
                let drained: Vec<PacketHandle> = std::iter::from_fn(|| q.dequeue()).collect();
                ensure_eq!(drained, admitted);
                Ok(())
            });
        }
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn empty_plan_rejected() {
        let _ = QueuePlan::weighted(vec![]);
    }

    #[test]
    #[should_panic(expected = "weight must be at least 1")]
    fn zero_weight_rejected() {
        let _ = QueuePlan::weighted(vec![QueueSpec {
            capacity: 1,
            weight: 0,
        }]);
    }
}
