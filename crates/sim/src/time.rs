//! Simulation time: integer picoseconds.
//!
//! Picosecond resolution keeps event ordering exact (no float
//! accumulation drift) while still representing ~10⁷ seconds in a
//! `u64` — far beyond any simulation horizon. At 100 Gb/s a 64 B frame
//! lasts 5 120 ps, so sub-nanosecond resolution matters.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};
use lognic_model::units::Seconds;

/// A point in (or span of) simulation time, in picoseconds.
///
/// # Examples
///
/// ```
/// use lognic_sim::time::SimTime;
///
/// let t = SimTime::from_nanos(2.5);
/// assert_eq!(t.as_picos(), 2500);
/// assert_eq!(t + SimTime::from_picos(500), SimTime::from_nanos(3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from (fractional) nanoseconds, rounding to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_nanos(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "time must be finite and non-negative"
        );
        SimTime((ns * 1e3).round() as u64)
    }

    /// Creates a time from (fractional) microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_nanos(us * 1e3)
    }

    /// Creates a time from (fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time must be finite and non-negative"
        );
        let ps = secs * 1e12;
        assert!(
            ps <= u64::MAX as f64,
            "time {secs}s overflows simulation clock"
        );
        SimTime(ps.round() as u64)
    }

    /// The raw picosecond count.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// The time in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The time in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The time in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Converts to the model's float-seconds type.
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.as_secs())
    }

    /// Elapsed time since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000_000 {
            write!(f, "{:.6}s", self.as_secs())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_micros())
        } else {
            write!(f, "{:.3}ns", self.as_nanos())
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl From<Seconds> for SimTime {
    fn from(s: Seconds) -> Self {
        SimTime::from_secs(s.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_picos(1500).as_picos(), 1500);
        assert_eq!(SimTime::from_nanos(1.0).as_picos(), 1000);
        assert_eq!(SimTime::from_micros(1.0).as_picos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1e-6).as_picos(), 1_000_000);
        assert!((SimTime::from_picos(2500).as_nanos() - 2.5).abs() < 1e-12);
        assert!((SimTime::from_micros(7.0).as_micros() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = SimTime::from_picos(10);
        let b = SimTime::from_picos(25);
        assert_eq!(b - a, SimTime::from_picos(15));
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(a + b, SimTime::from_picos(35));
        assert_eq!(SimTime::MAX + a, SimTime::MAX);
    }

    #[test]
    fn since_and_max() {
        let a = SimTime::from_picos(10);
        let b = SimTime::from_picos(25);
        assert_eq!(b.since(a), SimTime::from_picos(15));
        assert_eq!(a.since(b), SimTime::ZERO);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_picos(5),
            SimTime::ZERO,
            SimTime::from_picos(2),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_picos(5));
    }

    #[test]
    fn seconds_conversion() {
        let s = Seconds::micros(3.0);
        let t: SimTime = s.into();
        assert_eq!(t, SimTime::from_micros(3.0));
        assert!((t.to_seconds().as_micros() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        let _ = SimTime::from_nanos(-1.0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_nanos(1.5).to_string(), "1.500ns");
        assert_eq!(SimTime::from_micros(2.0).to_string(), "2.000us");
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500000s");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [SimTime::from_picos(1), SimTime::from_picos(2)]
            .into_iter()
            .sum();
        assert_eq!(total, SimTime::from_picos(3));
    }
}
