//! # lognic-sim
//!
//! A packet-level discrete-event simulator of the LogNIC SmartNIC
//! hardware model. In the paper, model predictions are validated
//! against real SmartNICs (LiquidIO-II, BlueField-2, Stingray, PANIC);
//! this crate plays the role of that hardware: it executes the *same*
//! scenario description (execution graph + hardware model + traffic
//! profile) with explicit packets, bounded queues, parallel engines
//! and bandwidth-serialized media, and reports measured throughput,
//! latency distributions and drops.
//!
//! The simulator deliberately mirrors the analytical model's
//! structural assumptions (Poisson arrivals, exponential service,
//! virtual shared queues, FIFO media) so that model-vs-sim deviations
//! isolate *modeling* error rather than description mismatch — while
//! still supporting the behaviours the model cannot express (tail
//! latencies, bursty arrivals, stateful devices such as SSDs with
//! garbage collection).
//!
//! ## Quick start
//!
//! ```
//! use lognic_model::prelude::*;
//! use lognic_sim::prelude::*;
//!
//! # fn main() -> LogNicResult<()> {
//! let graph = ExecutionGraph::chain(
//!     "udp-echo",
//!     &[("nic-cores", IpParams::new(Bandwidth::gbps(10.0)).with_parallelism(8))],
//! )?;
//! let hw = HardwareModel::new(Bandwidth::gbps(50.0), Bandwidth::gbps(40.0));
//! let traffic = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500));
//!
//! let report = Simulation::builder(&graph, &hw, &traffic)
//!     .seed(7)
//!     .duration(Seconds::millis(5.0))
//!     .warmup(Seconds::millis(1.0))
//!     .run()?;
//! assert!((report.throughput.as_gbps() - 5.0).abs() < 0.5);
//! # Ok(())
//! # }
//! ```
//!
//! ## Fault injection
//!
//! Runs degrade gracefully under a [`faults::FaultPlan`]: outages,
//! rate degradation, probabilistic drop/corruption and credit loss
//! are scheduled per node, while a [`faults::RetryPolicy`] re-submits
//! refused packets with exponential backoff. See
//! [`sim::SimulationBuilder::with_fault_plan`].

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(clippy::perf)]

pub mod arena;
pub mod calendar;
pub mod faults;
pub mod histogram;
pub mod medium;
pub mod metrics;
pub mod packet;
pub mod replicate;
pub mod rng;
pub mod service;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;
pub mod traffic;
pub mod wrr;

/// The most commonly used items, layered on the workspace-wide
/// blessed surface (`lognic_model::prelude`) — one glob import covers
/// both the analytical model and the simulator.
pub mod prelude {
    pub use lognic_model::prelude::*;

    pub use crate::arena::{PacketArena, PacketHandle, NO_PACKET};
    pub use crate::calendar::CalendarQueue;
    pub use crate::faults::{CompiledFaultPlan, FaultKind, FaultPlan, FaultWindow, RetryPolicy};
    pub use crate::histogram::LatencyRecorder;
    pub use crate::metrics::{LatencySummary, MediumReport, NodeReport, SimReport};
    pub use crate::packet::Packet;
    pub use crate::replicate::{ReplicatedReport, Replication};
    pub use crate::rng::SimRng;
    pub use crate::service::{FixedService, RateService, ServiceDist, ServiceModel};
    pub use crate::sim::{Engine, SimConfig, Simulation, SimulationBuilder};
    pub use crate::stats::{MetricSummary, Welford};
    pub use crate::time::SimTime;
    pub use crate::trace::{
        ArrivalRecorder, ChromeTrace, DropReason, FaultWindowKind, NodeMeta, NoopObserver,
        RecordKind, RingLog, RunMeta, Sample, SimObserver, TimeSeriesSampler, Timeline,
        TraceRecord,
    };
    pub use crate::traffic::{
        ArrivalProcess, Injection, PacketTrace, Trace, TraceCursor, TraceEntry, TrafficSource,
    };
    pub use crate::wrr::{QueuePlan, QueueSpec};
}
