//! A slab/free-list arena for in-flight packets.
//!
//! The event loop used to move `Packet` structs by value through
//! events and per-node queues. With the calendar queue the event
//! payload must stay small and `Copy`, so packets live in one arena
//! and everything else carries a dense `u32` handle. Freed slots are
//! recycled through a free list, so after the in-flight population
//! peaks the steady-state loop performs **zero** heap allocation —
//! the property `tests/zero_alloc.rs` proves with a counting
//! allocator.

use crate::packet::Packet;

/// Handle into a [`PacketArena`]; `u32::MAX` is reserved as a niche
/// for "no packet" (used by injection events).
pub type PacketHandle = u32;

/// Sentinel handle meaning "no packet attached".
pub const NO_PACKET: PacketHandle = u32::MAX;

/// Slab of live packets with a LIFO free list.
///
/// # Examples
///
/// ```
/// use lognic_sim::arena::PacketArena;
/// use lognic_sim::packet::Packet;
/// use lognic_model::units::Bytes;
/// use lognic_sim::time::SimTime;
///
/// let mut arena = PacketArena::new();
/// let h = arena.alloc(Packet::new(7, Bytes::new(512), SimTime::ZERO, 0));
/// assert_eq!(arena.get(h).id, 7);
/// arena.free(h);
/// // The slot is recycled: no new capacity needed.
/// let h2 = arena.alloc(Packet::new(8, Bytes::new(64), SimTime::ZERO, 0));
/// assert_eq!(h, h2);
/// ```
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<PacketHandle>,
    /// Highest simultaneous live-packet count ever observed.
    high_water: usize,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena with room for `cap` packets before any reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        PacketArena {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            high_water: 0,
        }
    }

    /// Stores a packet, recycling a freed slot when one is available.
    pub fn alloc(&mut self, pkt: Packet) -> PacketHandle {
        if let Some(h) = self.free.pop() {
            self.slots[h as usize] = pkt;
            self.track_high_water();
            return h;
        }
        let h = self.slots.len();
        assert!(h < NO_PACKET as usize, "packet arena exhausted u32 handles");
        self.slots.push(pkt);
        self.track_high_water();
        h as PacketHandle
    }

    /// Shared access to a live packet.
    #[inline]
    pub fn get(&self, h: PacketHandle) -> &Packet {
        &self.slots[h as usize]
    }

    /// Exclusive access to a live packet.
    #[inline]
    pub fn get_mut(&mut self, h: PacketHandle) -> &mut Packet {
        &mut self.slots[h as usize]
    }

    /// Returns a slot to the free list. The slot's contents stay in
    /// place until recycled; callers must not use `h` afterwards
    /// (debug builds catch double-frees).
    pub fn free(&mut self, h: PacketHandle) {
        debug_assert!(!self.free.contains(&h), "double free of packet handle {h}");
        self.free.push(h);
    }

    /// Packets currently live (allocated and not freed).
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever created — the arena's capacity footprint.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Highest simultaneous live count observed; with `capacity()`
    /// this tells the bench whether the arena plateaued (capacity ==
    /// high-water ⇒ no slot was created after the peak).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    #[inline]
    fn track_high_water(&mut self) {
        let live = self.live();
        if live > self.high_water {
            self.high_water = live;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use lognic_model::units::Bytes;

    fn pkt(id: u64) -> Packet {
        Packet::new(id, Bytes::new(100), SimTime::ZERO, 0)
    }

    #[test]
    fn alloc_free_recycles_slots() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(pkt(1));
        let b = arena.alloc(pkt(2));
        assert_ne!(a, b);
        assert_eq!(arena.live(), 2);
        arena.free(a);
        assert_eq!(arena.live(), 1);
        let c = arena.alloc(pkt(3));
        assert_eq!(c, a, "freed slot must be recycled");
        assert_eq!(arena.get(c).id, 3);
        assert_eq!(arena.capacity(), 2);
        assert_eq!(arena.high_water(), 2);
    }

    #[test]
    fn capacity_plateaus_at_high_water() {
        let mut arena = PacketArena::with_capacity(4);
        // Churn: never more than 3 live at once.
        let mut live = Vec::new();
        for round in 0u64..100 {
            live.push(arena.alloc(pkt(round)));
            if live.len() == 3 {
                for h in live.drain(..) {
                    arena.free(h);
                }
            }
        }
        assert_eq!(arena.high_water(), 3);
        assert_eq!(arena.capacity(), 3, "no slot created after the peak");
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut arena = PacketArena::new();
        let h = arena.alloc(pkt(9));
        arena.get_mut(h).corrupted = true;
        assert!(arena.get(h).corrupted);
    }
}
