//! Deterministic random numbers for reproducible simulations.
//!
//! Since the hermetic-build change, [`SimRng`] is backed by the
//! in-repo xoshiro256++ generator from `lognic-testkit` instead of
//! `rand::SmallRng`. The API is unchanged, but the *stream* is not:
//! any golden value derived from a specific seed's draws moved once
//! with that swap (all in-repo anchors were re-pinned at the same
//! time; statistical assertions now use replication confidence
//! intervals and did not need re-pinning).

use crate::time::SimTime;
use lognic_testkit::rng::{splitmix64, Xoshiro256pp};

/// A seeded random source. Every simulation run with the same seed and
/// configuration produces identical results.
///
/// # Examples
///
/// ```
/// use lognic_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    inner: Xoshiro256pp,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256pp::seed_from(seed),
        }
    }

    /// Derives the seed of the `index`-th replica of a multi-seed run
    /// from a base seed. Consecutive indices give decorrelated seeds
    /// (SplitMix64 of the pair), so replications can use `base, 0..n`
    /// without worrying about stream overlap.
    pub fn replica_seed(base: u64, index: u64) -> u64 {
        let mut sm = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut sm)
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// An exponentially distributed interval with the given mean.
    /// Returns zero when the mean is zero.
    pub fn exponential(&mut self, mean: SimTime) -> SimTime {
        if mean == SimTime::ZERO {
            return SimTime::ZERO;
        }
        // Inverse CDF; guard against ln(0).
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let factor = -u.ln();
        SimTime::from_picos((mean.as_picos() as f64 * factor).round() as u64)
    }

    /// Picks an index from cumulative weights `cum` (non-decreasing,
    /// last element is the total). Returns `cum.len() - 1` when the
    /// draw lands beyond the last boundary (floating-point slack).
    ///
    /// # Panics
    ///
    /// Panics if `cum` is empty.
    pub fn pick_cumulative(&mut self, cum: &[f64]) -> usize {
        assert!(!cum.is_empty(), "cumulative weights must be non-empty");
        let total = *cum.last().expect("non-empty");
        let draw = self.uniform() * total;
        cum.iter().position(|&c| draw < c).unwrap_or(cum.len() - 1)
    }

    /// Picks an index with probability proportional to `weights`
    /// (plain, non-cumulative weights; convenience over
    /// [`pick_cumulative`](Self::pick_cumulative)).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        let draw = self.uniform() * total;
        let mut acc = 0.0;
        for (i, w) in weights.iter().enumerate() {
            acc += w;
            if draw < acc {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..10).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 10);
    }

    #[test]
    fn replica_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..64).map(|i| SimRng::replica_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "no collisions across replicas");
        assert_eq!(SimRng::replica_seed(42, 7), SimRng::replica_seed(42, 7));
        assert_ne!(SimRng::replica_seed(42, 7), SimRng::replica_seed(43, 7));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::seed_from(11);
        let mean = SimTime::from_micros(5.0);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exponential(mean).as_micros()).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - 5.0).abs() < 0.15,
            "sample mean {sample_mean} too far from 5.0"
        );
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut r = SimRng::seed_from(1);
        assert_eq!(r.exponential(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    fn pick_cumulative_respects_weights() {
        let mut r = SimRng::seed_from(5);
        // 25% / 75%.
        let cum = [0.25, 1.0];
        let n = 10_000;
        let ones = (0..n).filter(|_| r.pick_cumulative(&cum) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn pick_weighted_matches_cumulative() {
        let mut a = SimRng::seed_from(21);
        let mut b = SimRng::seed_from(21);
        let weights = [1.0, 3.0, 6.0];
        let cum = [1.0, 4.0, 10.0];
        for _ in 0..1000 {
            assert_eq!(a.pick_weighted(&weights), b.pick_cumulative(&cum));
        }
    }

    #[test]
    fn pick_cumulative_single_entry() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..10 {
            assert_eq!(r.pick_cumulative(&[1.0]), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn pick_cumulative_empty_panics() {
        let mut r = SimRng::seed_from(5);
        let _ = r.pick_cumulative(&[]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn pick_weighted_empty_panics() {
        let mut r = SimRng::seed_from(5);
        let _ = r.pick_weighted(&[]);
    }
}
