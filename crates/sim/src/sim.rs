//! The discrete-event simulation engine.
//!
//! A [`Simulation`] is built from the same three inputs as the
//! analytical model — an [`ExecutionGraph`], a [`HardwareModel`] and a
//! [`TrafficProfile`] — so that every scenario can be both estimated
//! and simulated from one description. Packets are injected at the
//! ingress engine, routed along edges (probabilistically by `δ` at
//! fan-outs), serialized across shared media, queued and served at IP
//! nodes with bounded queues and `D` parallel engines, and measured at
//! the egress.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use lognic_model::error::{LogNicError, LogNicResult};
use lognic_model::fault::{FaultPlan, RetryPolicy};
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{HardwareModel, TrafficProfile};
use lognic_model::units::{Bandwidth, Seconds};

use crate::faults::{compile_kind, NodeFaults};
use crate::medium::Medium;
use crate::metrics::{ClassReport, LatencySummary, MediumReport, NodeReport, SimReport};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::service::{RateService, ServiceDist, ServiceModel};
use crate::time::SimTime;
use crate::traffic::{ArrivalProcess, Trace, TraceCursor, TrafficSource};
use crate::wrr::{QueuePlan, WrrQueues};

/// Run-control parameters of a simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// RNG seed; identical seeds reproduce identical runs.
    pub seed: u64,
    /// Injection horizon. Packets injected in `[0, duration]`; the run
    /// then drains in-flight packets.
    pub duration: Seconds,
    /// Measurement cutoff: packets injected before this are ignored.
    pub warmup: Seconds,
    /// The arrival process realized by the traffic source.
    pub arrival: ArrivalProcess,
    /// Service-time distribution for rate-based nodes.
    pub service_dist: ServiceDist,
    /// Safety cap on total injected packets.
    pub max_packets: u64,
    /// Maximum reservation backlog tolerated on a shared medium,
    /// expressed as time-ahead-of-now; transfers beyond it are dropped
    /// (finite buffering in front of a saturated interconnect).
    pub medium_backlog: Seconds,
    /// Watchdog budget: the run aborts with a structured
    /// [`LogNicError::WatchdogAbort`] after processing this many
    /// events. `0` (the default) derives a generous bound from
    /// `max_packets`, the graph size and the retry budget — large
    /// enough that only a non-terminating run can hit it.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            duration: Seconds::millis(20.0),
            warmup: Seconds::millis(4.0),
            arrival: ArrivalProcess::Poisson,
            service_dist: ServiceDist::Exponential,
            max_packets: 20_000_000,
            medium_backlog: Seconds::micros(50.0),
            max_events: 0,
        }
    }
}

#[derive(Debug)]
enum EventKind {
    Inject,
    Arrive { node: usize, pkt: Packet },
    Done { node: usize, pkt: Packet },
}

#[derive(Debug)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The waiting-room of a compute node.
enum QueueState {
    /// The default virtual shared queue: `capacity` bounds the total
    /// in system (waiting + in service), matching M/M/c/N.
    Shared {
        queue: VecDeque<Packet>,
        capacity: u32,
    },
    /// An explicit multi-queue WRR plan (Fig. 2b): per-queue `k`
    /// bounds apply to *waiting* packets only.
    Wrr(WrrQueues),
}

impl QueueState {
    fn len(&self) -> usize {
        match self {
            QueueState::Shared { queue, .. } => queue.len(),
            QueueState::Wrr(w) => w.len(),
        }
    }

    /// Tries to admit a waiting packet; `busy` is the number of
    /// occupied engines (relevant to the shared total-in-system
    /// bound). `credit_penalty` removes credits from the shared bound
    /// while a credit-loss fault window is active; WRR plans model
    /// explicit per-queue buffers and are unaffected.
    fn enqueue(&mut self, pkt: Packet, busy: u32, credit_penalty: u32) -> bool {
        match self {
            QueueState::Shared { queue, capacity } => {
                let effective = capacity.saturating_sub(credit_penalty).max(1);
                if busy as usize + queue.len() >= effective as usize {
                    false
                } else {
                    queue.push_back(pkt);
                    true
                }
            }
            QueueState::Wrr(w) => w.enqueue(pkt),
        }
    }

    fn dequeue(&mut self) -> Option<Packet> {
        match self {
            QueueState::Shared { queue, .. } => queue.pop_front(),
            QueueState::Wrr(w) => w.dequeue(),
        }
    }
}

struct NodeRuntime {
    engines: u32,
    busy: u32,
    queue: QueueState,
    service: Box<dyn ServiceModel>,
    overhead: SimTime,
    work_factor: f64,
    busy_time: SimTime,
    faults: NodeFaults,
    /// Time-weighted integral of requests in system (packet-seconds),
    /// accumulated up to the injection horizon.
    occupancy_integral: f64,
    occupancy_last: SimTime,
}

struct SimNode {
    name: String,
    runtime: Option<NodeRuntime>,
    arrivals: u64,
    served: u64,
    drops: u64,
    max_queue: usize,
}

struct SimEdge {
    dst: usize,
    interface_per_packet: f64,
    memory_per_packet: f64,
    dedicated: Option<usize>,
    resize: f64,
}

/// Builds a [`Simulation`], allowing per-node service-model overrides.
pub struct SimulationBuilder<'a> {
    graph: &'a ExecutionGraph,
    hw: &'a HardwareModel,
    traffic: &'a TrafficProfile,
    config: SimConfig,
    overrides: Vec<(String, Box<dyn ServiceModel>)>,
    queue_plans: Vec<(String, QueuePlan)>,
    trace: Option<Trace>,
    outages: Vec<(String, Seconds, Seconds)>,
    plan: FaultPlan,
}

impl std::fmt::Debug for SimulationBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("graph", &self.graph.name())
            .field("config", &self.config)
            .field("overrides", &self.overrides.len())
            .finish()
    }
}

impl<'a> SimulationBuilder<'a> {
    /// Replaces the whole run configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the injection horizon.
    pub fn duration(mut self, duration: Seconds) -> Self {
        self.config.duration = duration;
        self
    }

    /// Sets the warmup cutoff.
    pub fn warmup(mut self, warmup: Seconds) -> Self {
        self.config.warmup = warmup;
        self
    }

    /// Sets the arrival process.
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.config.arrival = arrival;
        self
    }

    /// Sets the service-time distribution of rate-based nodes.
    pub fn service_dist(mut self, dist: ServiceDist) -> Self {
        self.config.service_dist = dist;
        self
    }

    /// Overrides the service model of the named node (e.g. an SSD
    /// model with internal state).
    pub fn override_service(mut self, node_name: &str, model: Box<dyn ServiceModel>) -> Self {
        self.overrides.push((node_name.to_owned(), model));
        self
    }

    /// Replaces the named node's virtual shared queue with an explicit
    /// multi-queue WRR plan (Fig. 2b). Packets map to queues by
    /// `class mod m`; per-queue capacities bound waiting packets.
    pub fn override_queues(mut self, node_name: &str, plan: QueuePlan) -> Self {
        self.queue_plans.push((node_name.to_owned(), plan));
        self
    }

    /// Replays a recorded packet trace instead of sampling the traffic
    /// profile (the profile still supplies the nominal offered rate
    /// for reporting).
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Injects a fault: the named node drops every arriving packet
    /// during `[from, until)` (engines crashed / firmware reset).
    /// Packets already in service complete normally.
    ///
    /// Shorthand for a [`FaultPlan`] holding one outage window; use
    /// [`SimulationBuilder::with_fault_plan`] to compose richer fault
    /// scenarios (rate degradation, drops, corruption, credit loss,
    /// retry/backoff, deadlines).
    pub fn inject_outage(mut self, node_name: &str, from: Seconds, until: Seconds) -> Self {
        self.outages.push((node_name.to_owned(), from, until));
        self
    }

    /// Installs a composable fault-injection plan: scheduled fault
    /// windows plus plan-wide retry/backoff and deadline semantics.
    /// The plan is validated against the graph by
    /// [`SimulationBuilder::build`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    fn validate(&self) -> LogNicResult<()> {
        let cfg = &self.config;
        if cfg.warmup.as_secs() > cfg.duration.as_secs() {
            return Err(LogNicError::InvalidConfig {
                reason: format!(
                    "warmup {} exceeds the injection horizon {}",
                    cfg.warmup, cfg.duration
                ),
            });
        }
        if cfg.max_packets == 0 {
            return Err(LogNicError::InvalidConfig {
                reason: "max_packets must be positive".into(),
            });
        }
        for (name, _) in &self.overrides {
            if self.graph.node_by_name(name).is_none() {
                return Err(LogNicError::UnknownNode {
                    context: "service override",
                    node: name.clone(),
                });
            }
        }
        for (name, _) in &self.queue_plans {
            if self.graph.node_by_name(name).is_none() {
                return Err(LogNicError::UnknownNode {
                    context: "queue plan",
                    node: name.clone(),
                });
            }
        }
        for (name, from, until) in &self.outages {
            if self.graph.node_by_name(name).is_none() {
                return Err(LogNicError::UnknownNode {
                    context: "outage",
                    node: name.clone(),
                });
            }
            if until.as_secs() <= from.as_secs() {
                return Err(LogNicError::InvalidFaultWindow {
                    node: name.clone(),
                    from: from.as_secs(),
                    until: until.as_secs(),
                });
            }
        }
        self.plan.validate(self.graph)?;
        Ok(())
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns a typed [`LogNicError`] instead of panicking when the
    /// inputs are malformed: a service override, queue plan, outage or
    /// fault window naming a node absent from the graph; an empty or
    /// inverted fault window; an out-of-range fault parameter; or an
    /// unusable run configuration (warmup beyond the horizon, zero
    /// packet budget).
    pub fn build(self) -> LogNicResult<Simulation> {
        self.validate()?;
        let cfg = self.config;
        let mut overrides = self.overrides;
        let queue_plans = self.queue_plans;
        // Merge `inject_outage` shorthands and the fault plan into one
        // per-node compiled schedule.
        let mut plan = self.plan;
        for (name, from, until) in self.outages {
            plan = plan.outage(&name, from, until);
        }
        let retry = plan.retry().copied();
        let deadline = plan.deadline().map(|d| SimTime::from_secs(d.as_secs()));
        let nodes: Vec<SimNode> = self
            .graph
            .nodes()
            .iter()
            .map(|n| {
                let runtime = n.params().map(|p| {
                    let service: Box<dyn ServiceModel> =
                        match overrides.iter().position(|(name, _)| name == n.name()) {
                            Some(i) => overrides.swap_remove(i).1,
                            None => Box::new(RateService::new(
                                p.effective_peak() / p.parallelism() as f64,
                                cfg.service_dist,
                            )),
                        };
                    let queue = match queue_plans.iter().find(|(name, _)| name == n.name()) {
                        Some((_, plan)) => QueueState::Wrr(WrrQueues::new(plan)),
                        None => QueueState::Shared {
                            queue: VecDeque::new(),
                            capacity: p.effective_queue_capacity(),
                        },
                    };
                    let mut faults = NodeFaults::default();
                    for w in plan.windows().iter().filter(|w| w.node() == n.name()) {
                        faults.push(
                            SimTime::from_secs(w.from().as_secs()),
                            SimTime::from_secs(w.until().as_secs()),
                            compile_kind(w.kind()),
                        );
                    }
                    NodeRuntime {
                        engines: p.parallelism(),
                        busy: 0,
                        queue,
                        service,
                        overhead: SimTime::from_secs(p.overhead().as_secs()),
                        work_factor: p.work_factor(),
                        busy_time: SimTime::ZERO,
                        faults,
                        occupancy_integral: 0.0,
                        occupancy_last: SimTime::ZERO,
                    }
                });
                SimNode {
                    name: n.name().to_owned(),
                    runtime,
                    arrivals: 0,
                    served: 0,
                    drops: 0,
                    max_queue: 0,
                }
            })
            .collect();

        let mut media = vec![
            Medium::new("interface", self.hw.interface_bandwidth()),
            Medium::new("memory", self.hw.memory_bandwidth()),
        ];
        let mut edges = Vec::with_capacity(self.graph.edges().len());
        for (i, e) in self.graph.edges().iter().enumerate() {
            let p = e.params();
            let delta = if p.delta() > 0.0 { p.delta() } else { 1.0 };
            let dedicated = p.dedicated_bandwidth().map(|bw| {
                media.push(Medium::new(&format!("link#{i}"), bw));
                media.len() - 1
            });
            edges.push(SimEdge {
                dst: e.dst().index(),
                interface_per_packet: p.interface_fraction() / delta,
                memory_per_packet: p.memory_fraction() / delta,
                dedicated,
                resize: p.size_factor(),
            });
        }

        let n = nodes.len();
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut out_cum: Vec<Vec<f64>> = vec![Vec::new(); n];
        for (i, e) in self.graph.edges().iter().enumerate() {
            out_edges[e.src().index()].push(i);
        }
        for (v, eids) in out_edges.iter().enumerate() {
            let total: f64 = eids
                .iter()
                .map(|&i| self.graph.edges()[i].params().delta())
                .sum();
            let mut acc = 0.0;
            for &i in eids {
                let d = self.graph.edges()[i].params().delta();
                acc += if total > 0.0 { d } else { 1.0 };
                out_cum[v].push(acc);
            }
        }

        // Watchdog budget: explicit, or a generous structural bound —
        // every packet visits each node at most once per attempt, each
        // visit costs a handful of events, and retries multiply
        // attempts by at most budget + 1.
        let max_events = if cfg.max_events > 0 {
            cfg.max_events
        } else {
            let attempts = retry.map(|r| r.budget() as u64 + 1).unwrap_or(1);
            let per_packet = (n as u64 + 2).saturating_mul(4).saturating_mul(attempts);
            cfg.max_packets.saturating_mul(per_packet).max(1_000)
        };

        Ok(Simulation {
            nodes,
            edges,
            out_edges,
            out_cum,
            ingress: self.graph.ingress().index(),
            egress: self.graph.egress().index(),
            media,
            source: match self.trace {
                Some(t) => Source::Trace(t.cursor()),
                None => Source::Synthetic(TrafficSource::new(self.traffic, cfg.arrival)),
            },
            rng: SimRng::seed_from(cfg.seed),
            config: cfg,
            offered: self.traffic.ingress_bandwidth(),
            backlog_cap: SimTime::from_secs(cfg.medium_backlog.as_secs()),
            retry,
            deadline,
            max_events,
        })
    }

    /// Builds and runs the simulation.
    ///
    /// # Errors
    ///
    /// Propagates [`SimulationBuilder::build`] validation errors and
    /// the watchdog abort of [`Simulation::run`].
    pub fn run(self) -> LogNicResult<SimReport> {
        self.build()?.run()
    }
}

enum Source {
    Synthetic(TrafficSource),
    Trace(TraceCursor),
}

impl Source {
    fn is_silent(&self) -> bool {
        match self {
            Source::Synthetic(s) => s.is_silent(),
            Source::Trace(t) => t.remaining() == 0,
        }
    }

    fn next_injection(&mut self, rng: &mut SimRng) -> Option<crate::traffic::Injection> {
        match self {
            Source::Synthetic(s) => Some(s.next_injection(rng)),
            Source::Trace(t) => t.next_injection(),
        }
    }
}

/// A runnable discrete-event simulation of one SmartNIC program.
///
/// # Examples
///
/// ```
/// use lognic_model::graph::ExecutionGraph;
/// use lognic_model::params::{HardwareModel, IpParams, TrafficProfile};
/// use lognic_model::units::{Bandwidth, Bytes, Seconds};
/// use lognic_sim::sim::Simulation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = ExecutionGraph::chain("echo", &[("core", IpParams::new(Bandwidth::gbps(10.0)))])?;
/// let hw = HardwareModel::default();
/// let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500));
/// let report = Simulation::builder(&g, &hw, &t)
///     .duration(Seconds::millis(5.0))
///     .warmup(Seconds::millis(1.0))
///     .run()?;
/// assert!(report.completed > 0);
/// # Ok(())
/// # }
/// ```
pub struct Simulation {
    nodes: Vec<SimNode>,
    edges: Vec<SimEdge>,
    out_edges: Vec<Vec<usize>>,
    out_cum: Vec<Vec<f64>>,
    ingress: usize,
    egress: usize,
    media: Vec<Medium>,
    source: Source,
    rng: SimRng,
    config: SimConfig,
    offered: Bandwidth,
    backlog_cap: SimTime,
    retry: Option<RetryPolicy>,
    deadline: Option<SimTime>,
    max_events: u64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("edges", &self.edges.len())
            .field("config", &self.config)
            .finish()
    }
}

struct RunState {
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    injected: u64,
    total_injected: u64,
    completed: u64,
    completed_bytes_in_window: u64,
    good_bytes_in_window: u64,
    dropped: u64,
    retries: u64,
    timed_out: u64,
    corrupted: u64,
    /// Retry attempts consumed per in-flight packet id; entries are
    /// removed at the egress so the map only holds packets that have
    /// actually been refused somewhere.
    attempts: HashMap<u64, u32>,
    latencies: Vec<SimTime>,
    class_completed: Vec<u64>,
    class_bytes: Vec<u64>,
    class_latency: Vec<SimTime>,
}

impl RunState {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }
}

impl Simulation {
    /// Starts building a simulation over the three model inputs.
    pub fn builder<'a>(
        graph: &'a ExecutionGraph,
        hw: &'a HardwareModel,
        traffic: &'a TrafficProfile,
    ) -> SimulationBuilder<'a> {
        SimulationBuilder {
            graph,
            hw,
            traffic,
            config: SimConfig::default(),
            overrides: Vec::new(),
            queue_plans: Vec::new(),
            trace: None,
            outages: Vec::new(),
            plan: FaultPlan::new(),
        }
    }

    /// Runs the simulation to completion and reports the measurements.
    ///
    /// # Errors
    ///
    /// Returns [`LogNicError::WatchdogAbort`] with a structured
    /// progress report when the run exceeds its event budget
    /// ([`SimConfig::max_events`]) instead of hanging.
    pub fn run(mut self) -> LogNicResult<SimReport> {
        let end = SimTime::from_secs(self.config.duration.as_secs());
        let warmup = SimTime::from_secs(self.config.warmup.as_secs());
        let mut st = RunState {
            events: BinaryHeap::new(),
            seq: 0,
            injected: 0,
            total_injected: 0,
            completed: 0,
            completed_bytes_in_window: 0,
            good_bytes_in_window: 0,
            dropped: 0,
            retries: 0,
            timed_out: 0,
            corrupted: 0,
            attempts: HashMap::new(),
            latencies: Vec::new(),
            class_completed: Vec::new(),
            class_bytes: Vec::new(),
            class_latency: Vec::new(),
        };

        if !self.source.is_silent() {
            if let Some(first) = self.source.next_injection(&mut self.rng) {
                let t = SimTime::ZERO + first.gap;
                if t <= end {
                    st.push(
                        t,
                        EventKind::Arrive {
                            node: self.ingress,
                            pkt: Packet::new(first.id, first.size, t, first.class),
                        },
                    );
                    st.push(t, EventKind::Inject);
                }
            }
        }

        let mut processed: u64 = 0;
        while let Some(Reverse(ev)) = st.events.pop() {
            processed += 1;
            if processed > self.max_events {
                let in_flight: u64 = self
                    .nodes
                    .iter()
                    .filter_map(|nd| nd.runtime.as_ref())
                    .map(|rt| rt.busy as u64 + rt.queue.len() as u64)
                    .sum();
                return Err(LogNicError::WatchdogAbort {
                    events: processed,
                    sim_time: ev.time.as_secs(),
                    injected: st.total_injected,
                    in_flight,
                });
            }
            let now = ev.time;
            match ev.kind {
                EventKind::Inject => {
                    if st.total_injected + 1 >= self.config.max_packets {
                        continue;
                    }
                    let Some(inj) = self.source.next_injection(&mut self.rng) else {
                        continue; // trace exhausted
                    };
                    let t = now + inj.gap;
                    if t <= end {
                        st.push(
                            t,
                            EventKind::Arrive {
                                node: self.ingress,
                                pkt: Packet::new(inj.id, inj.size, t, inj.class),
                            },
                        );
                        st.push(t, EventKind::Inject);
                    }
                }
                EventKind::Arrive { node, pkt } => {
                    if node == self.ingress {
                        st.total_injected += 1;
                        if pkt.injected_at >= warmup {
                            st.injected += 1;
                        }
                    }
                    self.arrive(node, pkt, now, warmup, end, &mut st);
                }
                EventKind::Done { node, pkt } => {
                    self.finish(node, pkt, now, warmup, end, &mut st);
                }
            }
        }

        Ok(self.report(end, warmup, st))
    }

    /// Accumulates `node`'s in-system occupancy integral up to
    /// `min(now, horizon)`; call before any occupancy change.
    fn touch_occupancy(&mut self, node: usize, now: SimTime, horizon: SimTime) {
        if let Some(rt) = self.nodes[node].runtime.as_mut() {
            let upto = if now < horizon { now } else { horizon };
            if upto > rt.occupancy_last {
                let span = upto.since(rt.occupancy_last).as_secs();
                let in_system = rt.busy as usize + rt.queue.len();
                rt.occupancy_integral += in_system as f64 * span;
                rt.occupancy_last = upto;
            }
        }
    }

    /// Occupies one engine of `node` for `pkt`; returns the occupancy
    /// span (service plus computation-transfer overhead). Active
    /// rate-degradation windows stretch the service time by the
    /// inverse of the degradation factor.
    fn start_service(&mut self, node: usize, now: SimTime, pkt: &Packet) -> SimTime {
        let rng = &mut self.rng;
        let rt = self.nodes[node].runtime.as_mut().expect("compute node");
        rt.busy += 1;
        let work = pkt.size.scaled(rt.work_factor);
        let mut service = rt.service.service_time(now, pkt, work, rng);
        if !rt.faults.is_empty() {
            let factor = rt.faults.rate_factor_at(now);
            if factor < 1.0 {
                service = SimTime::from_secs(service.as_secs() / factor.max(1e-9));
            }
        }
        let occupancy = service + rt.overhead;
        rt.busy_time += occupancy;
        occupancy
    }

    /// Handles a packet refused at `node` (outage, probabilistic drop
    /// or queue overflow): re-presents it after exponential backoff
    /// while retry budget remains, otherwise drops it.
    fn fail(&mut self, node: usize, pkt: Packet, now: SimTime, warmup: SimTime, st: &mut RunState) {
        if let Some(rp) = self.retry {
            let attempts = st.attempts.entry(pkt.id).or_insert(0);
            if *attempts < rp.budget() {
                let backoff = SimTime::from_secs(rp.backoff_for(*attempts).as_secs());
                *attempts += 1;
                if pkt.injected_at >= warmup {
                    st.retries += 1;
                }
                st.push(now + backoff, EventKind::Arrive { node, pkt });
                return;
            }
            st.attempts.remove(&pkt.id);
        }
        self.nodes[node].drops += 1;
        if pkt.injected_at >= warmup {
            st.dropped += 1;
        }
    }

    fn arrive(
        &mut self,
        node: usize,
        mut pkt: Packet,
        now: SimTime,
        warmup: SimTime,
        end: SimTime,
        st: &mut RunState,
    ) {
        self.nodes[node].arrivals += 1;
        // Deadline accounting: a packet whose sojourn (including
        // retry backoffs) exceeds the plan-wide deadline is timed out
        // wherever it is next observed, not served.
        if let Some(deadline) = self.deadline {
            if pkt.latency_at(now) > deadline {
                self.nodes[node].drops += 1;
                st.attempts.remove(&pkt.id);
                if pkt.injected_at >= warmup {
                    st.dropped += 1;
                    st.timed_out += 1;
                }
                return;
            }
        }
        if self.nodes[node].runtime.is_none() {
            // Pure mover: forward immediately (the egress completes).
            self.forward(node, pkt, now, warmup, end, st);
            return;
        }
        self.touch_occupancy(node, now, end);
        let (busy, engines, has_faults) = {
            let rt = self.nodes[node].runtime.as_ref().expect("compute node");
            (rt.busy, rt.engines, !rt.faults.is_empty())
        };
        let mut credit_penalty = 0;
        if has_faults {
            // Fault checks draw from the RNG only on nodes that
            // actually schedule faults, so fault-free runs keep the
            // exact RNG stream (and golden anchors) of plain builds.
            let (is_out, drop_p, corrupt_p) = {
                let rt = self.nodes[node].runtime.as_ref().expect("compute node");
                (
                    rt.faults.outage_at(now),
                    rt.faults.drop_prob_at(now),
                    rt.faults.corrupt_prob_at(now),
                )
            };
            if is_out {
                self.fail(node, pkt, now, warmup, st);
                return;
            }
            if drop_p > 0.0 && self.rng.uniform() < drop_p {
                self.fail(node, pkt, now, warmup, st);
                return;
            }
            if corrupt_p > 0.0 && self.rng.uniform() < corrupt_p {
                pkt.corrupted = true;
            }
            credit_penalty = self.nodes[node]
                .runtime
                .as_ref()
                .expect("compute node")
                .faults
                .credit_loss_at(now);
        }
        if busy < engines {
            let occupancy = self.start_service(node, now, &pkt);
            st.push(now + occupancy, EventKind::Done { node, pkt });
            return;
        }
        let (admitted, depth) = {
            let rt = self.nodes[node].runtime.as_mut().expect("compute node");
            let admitted = rt.queue.enqueue(pkt, busy, credit_penalty);
            (admitted, rt.queue.len())
        };
        if admitted {
            if depth > self.nodes[node].max_queue {
                self.nodes[node].max_queue = depth;
            }
        } else {
            self.fail(node, pkt, now, warmup, st);
        }
    }

    fn finish(
        &mut self,
        node: usize,
        pkt: Packet,
        now: SimTime,
        warmup: SimTime,
        end: SimTime,
        st: &mut RunState,
    ) {
        self.nodes[node].served += 1;
        self.touch_occupancy(node, now, end);
        let deadline = self.deadline;
        let (next, expired) = {
            let rt = self.nodes[node]
                .runtime
                .as_mut()
                .expect("Done only on compute nodes");
            rt.busy -= 1;
            // Head-of-line packets whose sojourn already exceeds the
            // plan deadline are reaped instead of served — serving
            // them would waste engine time on answers nobody waits
            // for.
            let mut expired: Vec<Packet> = Vec::new();
            let next = loop {
                match rt.queue.dequeue() {
                    Some(p) => {
                        if let Some(dl) = deadline {
                            if p.latency_at(now) > dl {
                                expired.push(p);
                                continue;
                            }
                        }
                        break Some(p);
                    }
                    None => break None,
                }
            };
            (next, expired)
        };
        for p in expired {
            self.nodes[node].drops += 1;
            st.attempts.remove(&p.id);
            if p.injected_at >= warmup {
                st.dropped += 1;
                st.timed_out += 1;
            }
        }
        if let Some(next) = next {
            let occupancy = self.start_service(node, now, &next);
            st.push(now + occupancy, EventKind::Done { node, pkt: next });
        }
        self.forward(node, pkt, now, warmup, end, st);
    }

    fn forward(
        &mut self,
        node: usize,
        pkt: Packet,
        now: SimTime,
        warmup: SimTime,
        end: SimTime,
        st: &mut RunState,
    ) {
        if node == self.egress {
            st.attempts.remove(&pkt.id);
            if pkt.injected_at >= warmup {
                st.completed += 1;
                if pkt.corrupted {
                    st.corrupted += 1;
                }
                let latency = pkt.latency_at(now);
                st.latencies.push(latency);
                let c = pkt.class as usize;
                if st.class_completed.len() <= c {
                    st.class_completed.resize(c + 1, 0);
                    st.class_bytes.resize(c + 1, 0);
                    st.class_latency.resize(c + 1, SimTime::ZERO);
                }
                st.class_completed[c] += 1;
                st.class_bytes[c] += pkt.size.get();
                st.class_latency[c] += latency;
            }
            // Delivered rate counts completions *by completion time*
            // inside [warmup, end]; counting by injection time would
            // credit backlog that drains after the horizon and report
            // rates above hardware capacity.
            if now >= warmup && now <= end {
                st.completed_bytes_in_window += pkt.size.get();
                if !pkt.corrupted {
                    st.good_bytes_in_window += pkt.size.get();
                }
            }
            return;
        }
        let outs = &self.out_edges[node];
        if outs.is_empty() {
            return;
        }
        let pick = self.rng.pick_cumulative(&self.out_cum[node]);
        let eid = outs[pick];
        let edge = &self.edges[eid];
        let dst = edge.dst;
        // Compression/decompression edges resize the request; the
        // resized data is what crosses the media and what downstream
        // stages compute on.
        let pkt = if (edge.resize - 1.0).abs() > f64::EPSILON {
            let mut resized = Packet::new(
                pkt.id,
                pkt.size.scaled(edge.resize),
                pkt.injected_at,
                pkt.class,
            );
            resized.corrupted = pkt.corrupted;
            resized
        } else {
            pkt
        };

        // Finite ingress buffering: transfers issued by the ingress
        // engine are refused (RX overflow) once a medium's backlog
        // exceeds the cap. Mid-pipeline transfers are never refused —
        // their packets already occupy on-chip resources and drain the
        // backlog, so dropping them would deadlock the pipeline's
        // share of a saturated medium.
        let cap = if node == self.ingress {
            self.backlog_cap
        } else {
            SimTime::MAX
        };
        let mut t = Some(now);
        if edge.interface_per_packet > 0.0 {
            t = t.and_then(|at| {
                self.media[0].try_acquire(at, pkt.size.scaled(edge.interface_per_packet), cap)
            });
        }
        if edge.memory_per_packet > 0.0 {
            t = t.and_then(|at| {
                self.media[1].try_acquire(at, pkt.size.scaled(edge.memory_per_packet), cap)
            });
        }
        if let Some(d) = edge.dedicated {
            t = t.and_then(|at| self.media[d].try_acquire(at, pkt.size, cap));
        }
        match t {
            Some(at) if at != SimTime::MAX => {
                st.push(at, EventKind::Arrive { node: dst, pkt });
            }
            _ => {
                // Medium starved or its buffering overflowed. Media
                // rejections are not retried — the packet never held
                // node credits, and RX overflow under sustained
                // overload would retry forever.
                st.attempts.remove(&pkt.id);
                self.nodes[node].drops += 1;
                if pkt.injected_at >= warmup {
                    st.dropped += 1;
                }
            }
        }
    }

    fn report(&self, end: SimTime, warmup: SimTime, st: RunState) -> SimReport {
        let window = end.since(warmup).to_seconds();
        let secs = window.as_secs().max(f64::MIN_POSITIVE);
        let nodes = self
            .nodes
            .iter()
            .map(|n| NodeReport {
                name: n.name.clone(),
                arrivals: n.arrivals,
                served: n.served,
                drops: n.drops,
                max_queue: n.max_queue,
                utilization: n
                    .runtime
                    .as_ref()
                    .map(|rt| {
                        (rt.busy_time.as_secs()
                            / (end.as_secs().max(f64::MIN_POSITIVE) * rt.engines as f64))
                            .min(1.0)
                    })
                    .unwrap_or(0.0),
                mean_occupancy: n
                    .runtime
                    .as_ref()
                    .map(|rt| rt.occupancy_integral / end.as_secs().max(f64::MIN_POSITIVE))
                    .unwrap_or(0.0),
            })
            .collect();
        let media = self
            .media
            .iter()
            .map(|m| MediumReport {
                name: m.name().to_owned(),
                transferred: m.transferred(),
                utilization: m.utilization(end),
            })
            .collect();
        let classes = st
            .class_completed
            .iter()
            .zip(&st.class_bytes)
            .zip(&st.class_latency)
            .map(|((&completed, &bytes), &latency)| ClassReport {
                completed,
                bytes: lognic_model::units::Bytes::new(bytes),
                mean_latency: if completed > 0 {
                    Seconds::new(latency.as_secs() / completed as f64)
                } else {
                    Seconds::ZERO
                },
            })
            .collect();
        SimReport {
            duration: end.to_seconds(),
            window,
            injected: st.injected,
            completed: st.completed,
            dropped: st.dropped,
            offered: self.offered,
            throughput: Bandwidth::bps(st.completed_bytes_in_window as f64 * 8.0 / secs),
            goodput: Bandwidth::bps(st.good_bytes_in_window as f64 * 8.0 / secs),
            retries: st.retries,
            timed_out: st.timed_out,
            corrupted: st.corrupted,
            packet_rate: st.completed as f64 / secs,
            latency: LatencySummary::from_samples(st.latencies),
            classes,
            nodes,
            media,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::params::{EdgeParams, IpParams};
    use lognic_model::units::Bytes;

    fn chain(gbps: f64, queue: u32) -> ExecutionGraph {
        ExecutionGraph::chain(
            "t",
            &[(
                "ip",
                IpParams::new(Bandwidth::gbps(gbps)).with_queue_capacity(queue),
            )],
        )
        .unwrap()
    }

    fn fast_hw() -> HardwareModel {
        HardwareModel::new(Bandwidth::gbps(10_000.0), Bandwidth::gbps(10_000.0))
    }

    fn run(g: &ExecutionGraph, hw: &HardwareModel, t: &TrafficProfile) -> SimReport {
        Simulation::builder(g, hw, t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .run()
            .unwrap()
    }

    #[test]
    fn underloaded_chain_delivers_offered_rate() {
        let g = chain(10.0, 256);
        let t = TrafficProfile::fixed(Bandwidth::gbps(2.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        assert!(r.completed > 1000, "completed = {}", r.completed);
        let err = (r.throughput.as_gbps() - 2.0).abs() / 2.0;
        assert!(err < 0.05, "throughput = {} ({err})", r.throughput);
        assert!(r.loss_rate() < 0.01);
    }

    #[test]
    fn overloaded_chain_saturates_at_capacity() {
        let g = chain(5.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(20.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        let got = r.throughput.as_gbps();
        assert!((got - 5.0).abs() / 5.0 < 0.07, "throughput = {got}");
        assert!(r.dropped > 0, "overload must drop");
        let ip = r.node("ip").unwrap();
        assert!(ip.utilization > 0.9, "utilization = {}", ip.utilization);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let g = chain(5.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(512));
        let a = run(&g, &fast_hw(), &t);
        let b = run(&g, &fast_hw(), &t);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let g = chain(5.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(512));
        let a = Simulation::builder(&g, &fast_hw(), &t)
            .seed(1)
            .run()
            .unwrap();
        let b = Simulation::builder(&g, &fast_hw(), &t)
            .seed(2)
            .run()
            .unwrap();
        assert_ne!(a.latency.mean, b.latency.mean);
    }

    #[test]
    fn conservation_injected_equals_completed_plus_dropped_plus_inflight() {
        let g = chain(5.0, 8);
        let t = TrafficProfile::fixed(Bandwidth::gbps(6.0), Bytes::new(1500));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::ZERO)
            .run()
            .unwrap();
        // With zero warmup and full drain, every injected packet either
        // completed or was dropped.
        assert_eq!(r.injected, r.completed + r.dropped);
    }

    #[test]
    fn latency_grows_with_load() {
        let g = chain(10.0, 512);
        let low = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(1500));
        let high = TrafficProfile::fixed(Bandwidth::gbps(9.0), Bytes::new(1500));
        let rl = run(&g, &fast_hw(), &low);
        let rh = run(&g, &fast_hw(), &high);
        assert!(rh.latency.mean > rl.latency.mean);
        assert!(rh.latency.p99 >= rh.latency.p50);
    }

    #[test]
    fn tiny_queue_drops_under_bursts() {
        let g = chain(10.0, 1);
        let t = TrafficProfile::fixed(Bandwidth::gbps(8.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        assert!(r.loss_rate() > 0.1, "loss = {}", r.loss_rate());
    }

    #[test]
    fn fanout_routes_by_delta() {
        let mut b = ExecutionGraph::builder("f");
        let ing = b.ingress("in");
        let a = b.ip(
            "a",
            IpParams::new(Bandwidth::gbps(100.0)).with_queue_capacity(256),
        );
        let c = b.ip(
            "c",
            IpParams::new(Bandwidth::gbps(100.0)).with_queue_capacity(256),
        );
        let eg = b.egress("out");
        b.edge(ing, a, EdgeParams::new(0.8).unwrap());
        b.edge(ing, c, EdgeParams::new(0.2).unwrap());
        b.edge(a, eg, EdgeParams::new(0.8).unwrap());
        b.edge(c, eg, EdgeParams::new(0.2).unwrap());
        let g = b.build().unwrap();
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        let na = r.node("a").unwrap().arrivals as f64;
        let nc = r.node("c").unwrap().arrivals as f64;
        let frac = na / (na + nc);
        assert!((frac - 0.8).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn shared_interface_limits_throughput() {
        // IP is fast, interface is 5 Gb/s and both edges use it fully:
        // each packet crosses twice → ~2.5 Gb/s delivered.
        let g = chain(1000.0, 256);
        let hw = HardwareModel::new(Bandwidth::gbps(5.0), Bandwidth::gbps(10_000.0));
        let t = TrafficProfile::fixed(Bandwidth::gbps(20.0), Bytes::new(1500));
        let r = run(&g, &hw, &t);
        let got = r.throughput.as_gbps();
        assert!((got - 2.5).abs() / 2.5 < 0.15, "throughput = {got}");
        let m = r.medium("interface").unwrap();
        assert!(m.utilization > 0.95);
    }

    #[test]
    fn dedicated_link_is_used() {
        let mut b = ExecutionGraph::builder("d");
        let ing = b.ingress("in");
        let ip = b.ip(
            "ip",
            IpParams::new(Bandwidth::gbps(100.0)).with_queue_capacity(64),
        );
        let eg = b.egress("out");
        b.edge(
            ing,
            ip,
            EdgeParams::full()
                .with_interface_fraction(0.0)
                .with_dedicated_bandwidth(Bandwidth::gbps(3.0)),
        );
        b.edge(ip, eg, EdgeParams::full().with_interface_fraction(0.0));
        let g = b.build().unwrap();
        let t = TrafficProfile::fixed(Bandwidth::gbps(10.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        let got = r.throughput.as_gbps();
        assert!((got - 3.0).abs() / 3.0 < 0.1, "throughput = {got}");
        assert!(r.medium("link#0").unwrap().transferred > Bytes::new(0));
    }

    #[test]
    fn zero_traffic_runs_empty() {
        let g = chain(10.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::ZERO, Bytes::new(64));
        let r = run(&g, &fast_hw(), &t);
        assert_eq!(r.completed, 0);
        assert_eq!(r.injected, 0);
        assert_eq!(r.latency.count, 0);
    }

    #[test]
    fn paced_deterministic_run_has_low_variance() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .arrival(ArrivalProcess::Paced)
            .service_dist(ServiceDist::Deterministic)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::millis(1.0))
            .run()
            .unwrap();
        // With pacing at 50% load there is no queueing at all: every
        // packet sees the same latency.
        assert!(r.latency.max.as_secs() - r.latency.p50.as_secs() < 1e-9);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn parallel_engines_increase_capacity() {
        // Four engines at the same per-engine rate quadruple the
        // node's aggregate capacity.
        let p1 = IpParams::new(Bandwidth::gbps(5.0)).with_queue_capacity(128);
        let p4 = IpParams::new(Bandwidth::gbps(20.0))
            .with_parallelism(4)
            .with_queue_capacity(128);
        let g1 = ExecutionGraph::chain("d1", &[("ip", p1)]).unwrap();
        let g4 = ExecutionGraph::chain("d4", &[("ip", p4)]).unwrap();
        let t = TrafficProfile::fixed(Bandwidth::gbps(18.0), Bytes::new(1500));
        let r1 = run(&g1, &fast_hw(), &t);
        let r4 = run(&g4, &fast_hw(), &t);
        assert!(
            (r1.throughput.as_gbps() - 5.0).abs() / 5.0 < 0.08,
            "{}",
            r1.throughput
        );
        assert!(
            (r4.throughput.as_gbps() - 18.0).abs() / 18.0 < 0.08,
            "{}",
            r4.throughput
        );
        assert!(
            r4.latency.mean < r1.latency.mean,
            "the overloaded D=1 node queues hard"
        );
    }

    #[test]
    fn wrr_plan_isolates_tenant_drops() {
        use crate::wrr::{QueuePlan, QueueSpec};
        use lognic_model::params::PacketSizeDist;
        // Two classes share one node; class 0 floods. With a shared
        // queue, class 1 suffers; with per-class queues it is isolated.
        let g = ExecutionGraph::chain(
            "iso",
            &[(
                "ip",
                IpParams::new(Bandwidth::gbps(5.0)).with_queue_capacity(16),
            )],
        )
        .unwrap();
        let dist = PacketSizeDist::mix([
            (Bytes::new(1000), 0.8), // class 0: the aggressor
            (Bytes::new(1000), 0.2), // class 1: the victim
        ])
        .unwrap();
        let t = TrafficProfile::new(Bandwidth::gbps(8.0), dist);
        let plan = QueuePlan::weighted(vec![
            QueueSpec {
                capacity: 8,
                weight: 1,
            },
            QueueSpec {
                capacity: 8,
                weight: 1,
            },
        ]);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .override_queues("ip", plan)
            .run()
            .unwrap();
        // The node is overloaded (8 > 5 Gb/s): drops happen, but the
        // victim's share of completions stays near its 20% offered
        // share because the WRR scheduler serves both queues equally
        // and the victim's queue rarely fills.
        assert!(r.dropped > 0);
        let ip = r.node("ip").unwrap();
        assert!(ip.drops > 0);
        // Delivered rate equals the node capacity.
        assert!(
            (r.throughput.as_gbps() - 5.0).abs() / 5.0 < 0.08,
            "{}",
            r.throughput
        );
    }

    #[test]
    fn wrr_weights_shape_service_shares_under_overload() {
        use crate::wrr::{QueuePlan, QueueSpec};
        use lognic_model::params::PacketSizeDist;
        // Equal offered shares, 3:1 weights: completions skew 3:1.
        let g = ExecutionGraph::chain(
            "wrr",
            &[(
                "ip",
                IpParams::new(Bandwidth::gbps(4.0)).with_queue_capacity(16),
            )],
        )
        .unwrap();
        let dist = PacketSizeDist::mix([(Bytes::new(1000), 0.5), (Bytes::new(1000), 0.5)]).unwrap();
        let t = TrafficProfile::new(Bandwidth::gbps(12.0), dist);
        let plan = QueuePlan::weighted(vec![
            QueueSpec {
                capacity: 16,
                weight: 3,
            },
            QueueSpec {
                capacity: 16,
                weight: 1,
            },
        ]);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .override_queues("ip", plan)
            .run()
            .unwrap();
        assert!(
            (r.throughput.as_gbps() - 4.0).abs() / 4.0 < 0.08,
            "{}",
            r.throughput
        );
        assert!(r.loss_rate() > 0.5, "loss = {}", r.loss_rate());
        // Completions skew toward the weight-3 class.
        let share0 = r.class_share(0);
        assert!((share0 - 0.75).abs() < 0.05, "class-0 share = {share0}");
    }

    #[test]
    fn trace_replay_drives_the_simulation() {
        use crate::traffic::Trace;
        // 1000 paced packets of 1000 B every 2 µs = 4 Gb/s.
        let events: Vec<_> = (0..1000)
            .map(|i| (SimTime::from_micros(2.0 * i as f64), Bytes::new(1000), 0u32))
            .collect();
        let trace = Trace::from_events(events);
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(1000));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .with_trace(trace)
            .duration(Seconds::millis(2.0))
            .warmup(Seconds::ZERO)
            .run()
            .unwrap();
        assert_eq!(r.injected, 1000);
        assert_eq!(r.dropped, 0);
        assert!(
            (r.throughput.as_gbps() - 4.0).abs() < 0.1,
            "{}",
            r.throughput
        );
    }

    #[test]
    fn empty_trace_is_silent() {
        use crate::traffic::Trace;
        let g = chain(10.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(1000));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .with_trace(Trace::default())
            .duration(Seconds::millis(1.0))
            .warmup(Seconds::ZERO)
            .run()
            .unwrap();
        assert_eq!(r.injected, 0);
        assert_eq!(r.completed, 0);
    }

    #[test]
    fn outage_drops_traffic_during_the_window() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let healthy = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::ZERO)
            .run()
            .unwrap();
        let faulty = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::ZERO)
            .inject_outage("ip", Seconds::millis(2.0), Seconds::millis(6.0))
            .run()
            .unwrap();
        assert_eq!(healthy.dropped, 0);
        // The 4 ms outage kills ~40% of the packets.
        let loss = faulty.loss_rate();
        assert!((loss - 0.4).abs() < 0.05, "loss = {loss}");
        // Conservation still holds under faults.
        assert_eq!(faulty.injected, faulty.completed + faulty.dropped);
    }

    #[test]
    fn outage_outside_window_is_harmless() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::ZERO)
            .inject_outage("ip", Seconds::millis(50.0), Seconds::millis(60.0))
            .run()
            .unwrap();
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn builder_debug_and_config() {
        let g = chain(1.0, 4);
        let hw = fast_hw();
        let t = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(64));
        let b = Simulation::builder(&g, &hw, &t).config(SimConfig::default());
        assert!(format!("{b:?}").contains("SimulationBuilder"));
        let sim = b.build().unwrap();
        assert!(format!("{sim:?}").contains("Simulation"));
    }

    #[test]
    fn retry_recovers_outage_refusals() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let plan = FaultPlan::new()
            .outage("ip", Seconds::millis(2.0), Seconds::millis(3.0))
            .with_retry(RetryPolicy::new(8, Seconds::micros(200.0)));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::ZERO)
            .with_fault_plan(plan)
            .run()
            .unwrap();
        // A 1 ms outage refuses ~10 % of arrivals, but exponential
        // backoff (200 µs base) re-submits them past the window: with
        // a budget of 8 the longest cumulative backoff is ~51 ms, so
        // essentially every refused packet eventually lands.
        assert!(r.retries > 0, "outage must trigger retries");
        assert!(
            r.loss_rate() < 0.01,
            "retries should recover the outage: loss {} retries {}",
            r.loss_rate(),
            r.retries
        );
        assert_eq!(r.injected, r.completed + r.dropped, "conservation");
    }

    #[test]
    fn zero_budget_matches_plain_outage() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let run_with = |plan: FaultPlan| {
            Simulation::builder(&g, &fast_hw(), &t)
                .duration(Seconds::millis(10.0))
                .warmup(Seconds::ZERO)
                .with_fault_plan(plan)
                .run()
                .unwrap()
        };
        let outage = FaultPlan::new().outage("ip", Seconds::millis(2.0), Seconds::millis(6.0));
        let plain = run_with(outage.clone());
        let zero_budget = run_with(outage.with_retry(RetryPolicy::new(0, Seconds::micros(100.0))));
        assert_eq!(plain.dropped, zero_budget.dropped);
        assert_eq!(zero_budget.retries, 0);
    }

    #[test]
    fn rate_degradation_throttles_the_node() {
        let g = chain(10.0, 8);
        let t = TrafficProfile::fixed(Bandwidth::gbps(8.0), Bytes::new(1000));
        let horizon = Seconds::millis(20.0);
        let plan = FaultPlan::new().degrade_rate("ip", 0.25, Seconds::ZERO, horizon);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(horizon)
            .warmup(Seconds::millis(4.0))
            .with_fault_plan(plan)
            .run()
            .unwrap();
        // Serving at 25 % of 10 Gb/s caps delivery near 2.5 Gb/s; the
        // short queue sheds the rest.
        assert!(
            (r.throughput.as_gbps() - 2.5).abs() < 0.4,
            "degraded throughput {}",
            r.throughput
        );
        assert!(r.loss_rate() > 0.5, "overload must shed load");
    }

    #[test]
    fn packet_drop_probability_is_respected() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(2.0), Bytes::new(1000));
        let horizon = Seconds::millis(20.0);
        let plan = FaultPlan::new().drop_packets("ip", 0.3, Seconds::ZERO, horizon);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(horizon)
            .warmup(Seconds::ZERO)
            .with_fault_plan(plan)
            .run()
            .unwrap();
        let loss = r.loss_rate();
        assert!((loss - 0.3).abs() < 0.03, "loss {loss} should be ~0.3");
    }

    #[test]
    fn corruption_reduces_goodput_not_throughput() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(2.0), Bytes::new(1000));
        let horizon = Seconds::millis(20.0);
        let plan = FaultPlan::new().corrupt_packets("ip", 0.5, Seconds::ZERO, horizon);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(horizon)
            .warmup(Seconds::ZERO)
            .with_fault_plan(plan)
            .run()
            .unwrap();
        assert_eq!(r.dropped, 0, "corruption does not drop packets");
        assert!(r.corrupted > 0);
        let ratio = r.goodput.as_bps() / r.throughput.as_bps();
        assert!((ratio - 0.5).abs() < 0.05, "goodput ratio {ratio}");
    }

    #[test]
    fn credit_loss_shrinks_the_queue() {
        let g = chain(10.0, 32);
        // Push hard so the queue bound is what matters.
        let t = TrafficProfile::fixed(Bandwidth::gbps(12.0), Bytes::new(1000));
        let horizon = Seconds::millis(10.0);
        let run_with = |plan: FaultPlan| {
            Simulation::builder(&g, &fast_hw(), &t)
                .duration(horizon)
                .warmup(Seconds::ZERO)
                .with_fault_plan(plan)
                .run()
                .unwrap()
        };
        let full = run_with(FaultPlan::new());
        let starved = run_with(FaultPlan::new().lose_credits("ip", 28, Seconds::ZERO, horizon));
        assert!(
            starved.node("ip").unwrap().max_queue < full.node("ip").unwrap().max_queue,
            "lost credits must cap the backlog: {} vs {}",
            starved.node("ip").unwrap().max_queue,
            full.node("ip").unwrap().max_queue
        );
        assert!(starved.dropped > full.dropped);
    }

    #[test]
    fn deadline_times_out_backlogged_packets() {
        // 1-wide queue at heavy overload: sojourns grow until the
        // deadline reaps them.
        let g = chain(2.0, 256);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(1000));
        let plan = FaultPlan::new().with_deadline(Seconds::micros(30.0));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::ZERO)
            .with_fault_plan(plan)
            .run()
            .unwrap();
        assert!(r.timed_out > 0, "overload must breach a 30 µs deadline");
        assert!(r.timed_out <= r.dropped, "timeouts are a kind of drop");
        // A packet passes the deadline gate at dequeue and then holds
        // an engine for one (exponential) service draw, so completed
        // latency is bounded by deadline + the service tail — far
        // below the ~1 ms head-of-line delay of a full 256-deep queue.
        assert!(
            r.latency.max.as_micros() <= 150.0,
            "deadline must bound completed sojourns: {}",
            r.latency.max
        );
    }

    #[test]
    fn faulted_runs_are_deterministic_per_seed() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let run_seeded = |seed: u64| {
            let plan = FaultPlan::new()
                .outage("ip", Seconds::millis(1.0), Seconds::millis(2.0))
                .drop_packets("ip", 0.1, Seconds::millis(3.0), Seconds::millis(5.0))
                .corrupt_packets("ip", 0.1, Seconds::millis(5.0), Seconds::millis(7.0))
                .with_retry(RetryPolicy::new(3, Seconds::micros(50.0)));
            Simulation::builder(&g, &fast_hw(), &t)
                .seed(seed)
                .duration(Seconds::millis(8.0))
                .warmup(Seconds::ZERO)
                .with_fault_plan(plan)
                .run()
                .unwrap()
        };
        assert_eq!(run_seeded(7), run_seeded(7), "same seed, same bits");
        assert_ne!(run_seeded(7), run_seeded(8), "fault draws follow the seed");
    }

    #[test]
    fn fault_free_plan_preserves_the_rng_stream() {
        // Installing an *empty* plan (or one with a retry policy but
        // no windows) must not perturb the event sequence.
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let plain = Simulation::builder(&g, &fast_hw(), &t)
            .seed(3)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::ZERO)
            .run()
            .unwrap();
        let with_empty_plan = Simulation::builder(&g, &fast_hw(), &t)
            .seed(3)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::ZERO)
            .with_fault_plan(
                FaultPlan::new().with_retry(RetryPolicy::new(4, Seconds::micros(10.0))),
            )
            .run()
            .unwrap();
        assert_eq!(plain, with_empty_plan);
    }

    #[test]
    fn watchdog_aborts_with_a_structured_report() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let err = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .config(SimConfig {
                max_events: 50,
                duration: Seconds::millis(10.0),
                warmup: Seconds::ZERO,
                ..SimConfig::default()
            })
            .run()
            .unwrap_err();
        match err {
            LogNicError::WatchdogAbort {
                events, injected, ..
            } => {
                assert_eq!(events, 51, "aborts on the first event past the budget");
                assert!(injected > 0);
            }
            other => panic!("expected WatchdogAbort, got {other}"),
        }
    }

    #[test]
    fn build_rejects_malformed_inputs_with_typed_errors() {
        let g = chain(10.0, 64);
        let hw = fast_hw();
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let base = || Simulation::builder(&g, &hw, &t);

        let err = base()
            .inject_outage("ghost", Seconds::ZERO, Seconds::millis(1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, LogNicError::UnknownNode { .. }), "{err}");

        let err = base()
            .inject_outage("ip", Seconds::millis(2.0), Seconds::millis(1.0))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, LogNicError::InvalidFaultWindow { .. }),
            "{err}"
        );

        let err = base()
            .with_fault_plan(FaultPlan::new().drop_packets(
                "ip",
                1.5,
                Seconds::ZERO,
                Seconds::millis(1.0),
            ))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, LogNicError::InvalidFaultParameter { .. }),
            "{err}"
        );

        let err = base()
            .override_service(
                "ghost",
                Box::new(RateService::new(
                    Bandwidth::gbps(1.0),
                    ServiceDist::Exponential,
                )),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, LogNicError::UnknownNode { .. }), "{err}");

        let err = base()
            .config(SimConfig {
                warmup: Seconds::millis(10.0),
                duration: Seconds::millis(1.0),
                ..SimConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, LogNicError::InvalidConfig { .. }), "{err}");

        let err = base()
            .config(SimConfig {
                max_packets: 0,
                ..SimConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, LogNicError::InvalidConfig { .. }), "{err}");
    }
}
