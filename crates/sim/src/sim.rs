//! The discrete-event simulation engine.
//!
//! A [`Simulation`] is built from the same three inputs as the
//! analytical model — an [`ExecutionGraph`], a [`HardwareModel`] and a
//! [`TrafficProfile`] — so that every scenario can be both estimated
//! and simulated from one description. Packets are injected at the
//! ingress engine, routed along edges (probabilistically by `δ` at
//! fan-outs), serialized across shared media, queued and served at IP
//! nodes with bounded queues and `D` parallel engines, and measured at
//! the egress.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{HardwareModel, TrafficProfile};
use lognic_model::units::{Bandwidth, Seconds};

use crate::medium::Medium;
use crate::metrics::{ClassReport, LatencySummary, MediumReport, NodeReport, SimReport};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::service::{RateService, ServiceDist, ServiceModel};
use crate::time::SimTime;
use crate::traffic::{ArrivalProcess, Trace, TraceCursor, TrafficSource};
use crate::wrr::{QueuePlan, WrrQueues};

/// Run-control parameters of a simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// RNG seed; identical seeds reproduce identical runs.
    pub seed: u64,
    /// Injection horizon. Packets injected in `[0, duration]`; the run
    /// then drains in-flight packets.
    pub duration: Seconds,
    /// Measurement cutoff: packets injected before this are ignored.
    pub warmup: Seconds,
    /// The arrival process realized by the traffic source.
    pub arrival: ArrivalProcess,
    /// Service-time distribution for rate-based nodes.
    pub service_dist: ServiceDist,
    /// Safety cap on total injected packets.
    pub max_packets: u64,
    /// Maximum reservation backlog tolerated on a shared medium,
    /// expressed as time-ahead-of-now; transfers beyond it are dropped
    /// (finite buffering in front of a saturated interconnect).
    pub medium_backlog: Seconds,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            duration: Seconds::millis(20.0),
            warmup: Seconds::millis(4.0),
            arrival: ArrivalProcess::Poisson,
            service_dist: ServiceDist::Exponential,
            max_packets: 20_000_000,
            medium_backlog: Seconds::micros(50.0),
        }
    }
}

#[derive(Debug)]
enum EventKind {
    Inject,
    Arrive { node: usize, pkt: Packet },
    Done { node: usize, pkt: Packet },
}

#[derive(Debug)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The waiting-room of a compute node.
enum QueueState {
    /// The default virtual shared queue: `capacity` bounds the total
    /// in system (waiting + in service), matching M/M/c/N.
    Shared {
        queue: VecDeque<Packet>,
        capacity: u32,
    },
    /// An explicit multi-queue WRR plan (Fig. 2b): per-queue `k`
    /// bounds apply to *waiting* packets only.
    Wrr(WrrQueues),
}

impl QueueState {
    fn len(&self) -> usize {
        match self {
            QueueState::Shared { queue, .. } => queue.len(),
            QueueState::Wrr(w) => w.len(),
        }
    }

    /// Tries to admit a waiting packet; `busy` is the number of
    /// occupied engines (relevant to the shared total-in-system
    /// bound).
    fn enqueue(&mut self, pkt: Packet, busy: u32) -> bool {
        match self {
            QueueState::Shared { queue, capacity } => {
                if busy as usize + queue.len() >= *capacity as usize {
                    false
                } else {
                    queue.push_back(pkt);
                    true
                }
            }
            QueueState::Wrr(w) => w.enqueue(pkt),
        }
    }

    fn dequeue(&mut self) -> Option<Packet> {
        match self {
            QueueState::Shared { queue, .. } => queue.pop_front(),
            QueueState::Wrr(w) => w.dequeue(),
        }
    }
}

struct NodeRuntime {
    engines: u32,
    busy: u32,
    queue: QueueState,
    service: Box<dyn ServiceModel>,
    overhead: SimTime,
    work_factor: f64,
    busy_time: SimTime,
    outage: Option<(SimTime, SimTime)>,
    /// Time-weighted integral of requests in system (packet-seconds),
    /// accumulated up to the injection horizon.
    occupancy_integral: f64,
    occupancy_last: SimTime,
}

struct SimNode {
    name: String,
    runtime: Option<NodeRuntime>,
    arrivals: u64,
    served: u64,
    drops: u64,
    max_queue: usize,
}

struct SimEdge {
    dst: usize,
    interface_per_packet: f64,
    memory_per_packet: f64,
    dedicated: Option<usize>,
    resize: f64,
}

/// Builds a [`Simulation`], allowing per-node service-model overrides.
pub struct SimulationBuilder<'a> {
    graph: &'a ExecutionGraph,
    hw: &'a HardwareModel,
    traffic: &'a TrafficProfile,
    config: SimConfig,
    overrides: Vec<(String, Box<dyn ServiceModel>)>,
    queue_plans: Vec<(String, QueuePlan)>,
    trace: Option<Trace>,
    outages: Vec<(String, SimTime, SimTime)>,
}

impl std::fmt::Debug for SimulationBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("graph", &self.graph.name())
            .field("config", &self.config)
            .field("overrides", &self.overrides.len())
            .finish()
    }
}

impl<'a> SimulationBuilder<'a> {
    /// Replaces the whole run configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the injection horizon.
    pub fn duration(mut self, duration: Seconds) -> Self {
        self.config.duration = duration;
        self
    }

    /// Sets the warmup cutoff.
    pub fn warmup(mut self, warmup: Seconds) -> Self {
        self.config.warmup = warmup;
        self
    }

    /// Sets the arrival process.
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.config.arrival = arrival;
        self
    }

    /// Sets the service-time distribution of rate-based nodes.
    pub fn service_dist(mut self, dist: ServiceDist) -> Self {
        self.config.service_dist = dist;
        self
    }

    /// Overrides the service model of the named node (e.g. an SSD
    /// model with internal state).
    pub fn override_service(mut self, node_name: &str, model: Box<dyn ServiceModel>) -> Self {
        self.overrides.push((node_name.to_owned(), model));
        self
    }

    /// Replaces the named node's virtual shared queue with an explicit
    /// multi-queue WRR plan (Fig. 2b). Packets map to queues by
    /// `class mod m`; per-queue capacities bound waiting packets.
    pub fn override_queues(mut self, node_name: &str, plan: QueuePlan) -> Self {
        self.queue_plans.push((node_name.to_owned(), plan));
        self
    }

    /// Replays a recorded packet trace instead of sampling the traffic
    /// profile (the profile still supplies the nominal offered rate
    /// for reporting).
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Injects a fault: the named node drops every arriving packet
    /// during `[from, until)` (engines crashed / firmware reset).
    /// Packets already in service complete normally.
    pub fn inject_outage(mut self, node_name: &str, from: Seconds, until: Seconds) -> Self {
        self.outages.push((
            node_name.to_owned(),
            SimTime::from_secs(from.as_secs()),
            SimTime::from_secs(until.as_secs()),
        ));
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Simulation {
        let cfg = self.config;
        let mut overrides = self.overrides;
        let queue_plans = self.queue_plans;
        let outages = self.outages;
        let nodes: Vec<SimNode> = self
            .graph
            .nodes()
            .iter()
            .map(|n| {
                let runtime = n.params().map(|p| {
                    let service: Box<dyn ServiceModel> =
                        match overrides.iter().position(|(name, _)| name == n.name()) {
                            Some(i) => overrides.swap_remove(i).1,
                            None => Box::new(RateService::new(
                                p.effective_peak() / p.parallelism() as f64,
                                cfg.service_dist,
                            )),
                        };
                    let queue = match queue_plans.iter().find(|(name, _)| name == n.name()) {
                        Some((_, plan)) => QueueState::Wrr(WrrQueues::new(plan)),
                        None => QueueState::Shared {
                            queue: VecDeque::new(),
                            capacity: p.effective_queue_capacity(),
                        },
                    };
                    NodeRuntime {
                        engines: p.parallelism(),
                        busy: 0,
                        queue,
                        service,
                        overhead: SimTime::from_secs(p.overhead().as_secs()),
                        work_factor: p.work_factor(),
                        busy_time: SimTime::ZERO,
                        outage: outages
                            .iter()
                            .find(|(name, _, _)| name == n.name())
                            .map(|(_, from, until)| (*from, *until)),
                        occupancy_integral: 0.0,
                        occupancy_last: SimTime::ZERO,
                    }
                });
                SimNode {
                    name: n.name().to_owned(),
                    runtime,
                    arrivals: 0,
                    served: 0,
                    drops: 0,
                    max_queue: 0,
                }
            })
            .collect();

        let mut media = vec![
            Medium::new("interface", self.hw.interface_bandwidth()),
            Medium::new("memory", self.hw.memory_bandwidth()),
        ];
        let mut edges = Vec::with_capacity(self.graph.edges().len());
        for (i, e) in self.graph.edges().iter().enumerate() {
            let p = e.params();
            let delta = if p.delta() > 0.0 { p.delta() } else { 1.0 };
            let dedicated = p.dedicated_bandwidth().map(|bw| {
                media.push(Medium::new(&format!("link#{i}"), bw));
                media.len() - 1
            });
            edges.push(SimEdge {
                dst: e.dst().index(),
                interface_per_packet: p.interface_fraction() / delta,
                memory_per_packet: p.memory_fraction() / delta,
                dedicated,
                resize: p.size_factor(),
            });
        }

        let n = nodes.len();
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut out_cum: Vec<Vec<f64>> = vec![Vec::new(); n];
        for (i, e) in self.graph.edges().iter().enumerate() {
            out_edges[e.src().index()].push(i);
        }
        for (v, eids) in out_edges.iter().enumerate() {
            let total: f64 = eids
                .iter()
                .map(|&i| self.graph.edges()[i].params().delta())
                .sum();
            let mut acc = 0.0;
            for &i in eids {
                let d = self.graph.edges()[i].params().delta();
                acc += if total > 0.0 { d } else { 1.0 };
                out_cum[v].push(acc);
            }
        }

        Simulation {
            nodes,
            edges,
            out_edges,
            out_cum,
            ingress: self.graph.ingress().index(),
            egress: self.graph.egress().index(),
            media,
            source: match self.trace {
                Some(t) => Source::Trace(t.cursor()),
                None => Source::Synthetic(TrafficSource::new(self.traffic, cfg.arrival)),
            },
            rng: SimRng::seed_from(cfg.seed),
            config: cfg,
            offered: self.traffic.ingress_bandwidth(),
            backlog_cap: SimTime::from_secs(cfg.medium_backlog.as_secs()),
        }
    }

    /// Builds and runs the simulation.
    pub fn run(self) -> SimReport {
        self.build().run()
    }
}

enum Source {
    Synthetic(TrafficSource),
    Trace(TraceCursor),
}

impl Source {
    fn is_silent(&self) -> bool {
        match self {
            Source::Synthetic(s) => s.is_silent(),
            Source::Trace(t) => t.remaining() == 0,
        }
    }

    fn next_injection(&mut self, rng: &mut SimRng) -> Option<crate::traffic::Injection> {
        match self {
            Source::Synthetic(s) => Some(s.next_injection(rng)),
            Source::Trace(t) => t.next_injection(),
        }
    }
}

/// A runnable discrete-event simulation of one SmartNIC program.
///
/// # Examples
///
/// ```
/// use lognic_model::graph::ExecutionGraph;
/// use lognic_model::params::{HardwareModel, IpParams, TrafficProfile};
/// use lognic_model::units::{Bandwidth, Bytes, Seconds};
/// use lognic_sim::sim::Simulation;
///
/// # fn main() -> Result<(), lognic_model::error::ModelError> {
/// let g = ExecutionGraph::chain("echo", &[("core", IpParams::new(Bandwidth::gbps(10.0)))])?;
/// let hw = HardwareModel::default();
/// let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500));
/// let report = Simulation::builder(&g, &hw, &t)
///     .duration(Seconds::millis(5.0))
///     .warmup(Seconds::millis(1.0))
///     .run();
/// assert!(report.completed > 0);
/// # Ok(())
/// # }
/// ```
pub struct Simulation {
    nodes: Vec<SimNode>,
    edges: Vec<SimEdge>,
    out_edges: Vec<Vec<usize>>,
    out_cum: Vec<Vec<f64>>,
    ingress: usize,
    egress: usize,
    media: Vec<Medium>,
    source: Source,
    rng: SimRng,
    config: SimConfig,
    offered: Bandwidth,
    backlog_cap: SimTime,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("edges", &self.edges.len())
            .field("config", &self.config)
            .finish()
    }
}

struct RunState {
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    injected: u64,
    total_injected: u64,
    completed: u64,
    completed_bytes_in_window: u64,
    dropped: u64,
    latencies: Vec<SimTime>,
    class_completed: Vec<u64>,
    class_bytes: Vec<u64>,
    class_latency: Vec<SimTime>,
}

impl RunState {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }
}

impl Simulation {
    /// Starts building a simulation over the three model inputs.
    pub fn builder<'a>(
        graph: &'a ExecutionGraph,
        hw: &'a HardwareModel,
        traffic: &'a TrafficProfile,
    ) -> SimulationBuilder<'a> {
        SimulationBuilder {
            graph,
            hw,
            traffic,
            config: SimConfig::default(),
            overrides: Vec::new(),
            queue_plans: Vec::new(),
            trace: None,
            outages: Vec::new(),
        }
    }

    /// Runs the simulation to completion and reports the measurements.
    pub fn run(mut self) -> SimReport {
        let end = SimTime::from_secs(self.config.duration.as_secs());
        let warmup = SimTime::from_secs(self.config.warmup.as_secs());
        let mut st = RunState {
            events: BinaryHeap::new(),
            seq: 0,
            injected: 0,
            total_injected: 0,
            completed: 0,
            completed_bytes_in_window: 0,
            dropped: 0,
            latencies: Vec::new(),
            class_completed: Vec::new(),
            class_bytes: Vec::new(),
            class_latency: Vec::new(),
        };

        if !self.source.is_silent() {
            if let Some(first) = self.source.next_injection(&mut self.rng) {
                let t = SimTime::ZERO + first.gap;
                if t <= end {
                    st.push(
                        t,
                        EventKind::Arrive {
                            node: self.ingress,
                            pkt: Packet::new(first.id, first.size, t, first.class),
                        },
                    );
                    st.push(t, EventKind::Inject);
                }
            }
        }

        while let Some(Reverse(ev)) = st.events.pop() {
            let now = ev.time;
            match ev.kind {
                EventKind::Inject => {
                    if st.total_injected + 1 >= self.config.max_packets {
                        continue;
                    }
                    let Some(inj) = self.source.next_injection(&mut self.rng) else {
                        continue; // trace exhausted
                    };
                    let t = now + inj.gap;
                    if t <= end {
                        st.push(
                            t,
                            EventKind::Arrive {
                                node: self.ingress,
                                pkt: Packet::new(inj.id, inj.size, t, inj.class),
                            },
                        );
                        st.push(t, EventKind::Inject);
                    }
                }
                EventKind::Arrive { node, pkt } => {
                    if node == self.ingress {
                        st.total_injected += 1;
                        if pkt.injected_at >= warmup {
                            st.injected += 1;
                        }
                    }
                    self.arrive(node, pkt, now, warmup, end, &mut st);
                }
                EventKind::Done { node, pkt } => {
                    self.finish(node, pkt, now, warmup, end, &mut st);
                }
            }
        }

        self.report(end, warmup, st)
    }

    /// Accumulates `node`'s in-system occupancy integral up to
    /// `min(now, horizon)`; call before any occupancy change.
    fn touch_occupancy(&mut self, node: usize, now: SimTime, horizon: SimTime) {
        if let Some(rt) = self.nodes[node].runtime.as_mut() {
            let upto = if now < horizon { now } else { horizon };
            if upto > rt.occupancy_last {
                let span = upto.since(rt.occupancy_last).as_secs();
                let in_system = rt.busy as usize + rt.queue.len();
                rt.occupancy_integral += in_system as f64 * span;
                rt.occupancy_last = upto;
            }
        }
    }

    /// Occupies one engine of `node` for `pkt`; returns the occupancy
    /// span (service plus computation-transfer overhead).
    fn start_service(&mut self, node: usize, now: SimTime, pkt: &Packet) -> SimTime {
        let rng = &mut self.rng;
        let rt = self.nodes[node].runtime.as_mut().expect("compute node");
        rt.busy += 1;
        let work = pkt.size.scaled(rt.work_factor);
        let service = rt.service.service_time(now, pkt, work, rng);
        let occupancy = service + rt.overhead;
        rt.busy_time += occupancy;
        occupancy
    }

    fn arrive(
        &mut self,
        node: usize,
        pkt: Packet,
        now: SimTime,
        warmup: SimTime,
        end: SimTime,
        st: &mut RunState,
    ) {
        self.nodes[node].arrivals += 1;
        if self.nodes[node].runtime.is_none() {
            // Pure mover: forward immediately (the egress completes).
            self.forward(node, pkt, now, warmup, end, st);
            return;
        }
        self.touch_occupancy(node, now, end);
        let (busy, engines, outage) = {
            let rt = self.nodes[node].runtime.as_ref().expect("compute node");
            (rt.busy, rt.engines, rt.outage)
        };
        if let Some((from, until)) = outage {
            if now >= from && now < until {
                self.nodes[node].drops += 1;
                if pkt.injected_at >= warmup {
                    st.dropped += 1;
                }
                return;
            }
        }
        if busy < engines {
            let occupancy = self.start_service(node, now, &pkt);
            st.push(now + occupancy, EventKind::Done { node, pkt });
            return;
        }
        let (admitted, depth) = {
            let rt = self.nodes[node].runtime.as_mut().expect("compute node");
            let admitted = rt.queue.enqueue(pkt, busy);
            (admitted, rt.queue.len())
        };
        if admitted {
            if depth > self.nodes[node].max_queue {
                self.nodes[node].max_queue = depth;
            }
        } else {
            self.nodes[node].drops += 1;
            if pkt.injected_at >= warmup {
                st.dropped += 1;
            }
        }
    }

    fn finish(
        &mut self,
        node: usize,
        pkt: Packet,
        now: SimTime,
        warmup: SimTime,
        end: SimTime,
        st: &mut RunState,
    ) {
        self.nodes[node].served += 1;
        self.touch_occupancy(node, now, end);
        let next = {
            let rt = self.nodes[node]
                .runtime
                .as_mut()
                .expect("Done only on compute nodes");
            rt.busy -= 1;
            rt.queue.dequeue()
        };
        if let Some(next) = next {
            let occupancy = self.start_service(node, now, &next);
            st.push(now + occupancy, EventKind::Done { node, pkt: next });
        }
        self.forward(node, pkt, now, warmup, end, st);
    }

    fn forward(
        &mut self,
        node: usize,
        pkt: Packet,
        now: SimTime,
        warmup: SimTime,
        end: SimTime,
        st: &mut RunState,
    ) {
        if node == self.egress {
            if pkt.injected_at >= warmup {
                st.completed += 1;
                let latency = pkt.latency_at(now);
                st.latencies.push(latency);
                let c = pkt.class as usize;
                if st.class_completed.len() <= c {
                    st.class_completed.resize(c + 1, 0);
                    st.class_bytes.resize(c + 1, 0);
                    st.class_latency.resize(c + 1, SimTime::ZERO);
                }
                st.class_completed[c] += 1;
                st.class_bytes[c] += pkt.size.get();
                st.class_latency[c] += latency;
            }
            // Delivered rate counts completions *by completion time*
            // inside [warmup, end]; counting by injection time would
            // credit backlog that drains after the horizon and report
            // rates above hardware capacity.
            if now >= warmup && now <= end {
                st.completed_bytes_in_window += pkt.size.get();
            }
            return;
        }
        let outs = &self.out_edges[node];
        if outs.is_empty() {
            return;
        }
        let pick = self.rng.pick_cumulative(&self.out_cum[node]);
        let eid = outs[pick];
        let edge = &self.edges[eid];
        let dst = edge.dst;
        // Compression/decompression edges resize the request; the
        // resized data is what crosses the media and what downstream
        // stages compute on.
        let pkt = if (edge.resize - 1.0).abs() > f64::EPSILON {
            Packet::new(
                pkt.id,
                pkt.size.scaled(edge.resize),
                pkt.injected_at,
                pkt.class,
            )
        } else {
            pkt
        };

        // Finite ingress buffering: transfers issued by the ingress
        // engine are refused (RX overflow) once a medium's backlog
        // exceeds the cap. Mid-pipeline transfers are never refused —
        // their packets already occupy on-chip resources and drain the
        // backlog, so dropping them would deadlock the pipeline's
        // share of a saturated medium.
        let cap = if node == self.ingress {
            self.backlog_cap
        } else {
            SimTime::MAX
        };
        let mut t = Some(now);
        if edge.interface_per_packet > 0.0 {
            t = t.and_then(|at| {
                self.media[0].try_acquire(at, pkt.size.scaled(edge.interface_per_packet), cap)
            });
        }
        if edge.memory_per_packet > 0.0 {
            t = t.and_then(|at| {
                self.media[1].try_acquire(at, pkt.size.scaled(edge.memory_per_packet), cap)
            });
        }
        if let Some(d) = edge.dedicated {
            t = t.and_then(|at| self.media[d].try_acquire(at, pkt.size, cap));
        }
        match t {
            Some(at) if at != SimTime::MAX => {
                st.push(at, EventKind::Arrive { node: dst, pkt });
            }
            _ => {
                // Medium starved or its buffering overflowed.
                self.nodes[node].drops += 1;
                if pkt.injected_at >= warmup {
                    st.dropped += 1;
                }
            }
        }
    }

    fn report(&self, end: SimTime, warmup: SimTime, st: RunState) -> SimReport {
        let window = end.since(warmup).to_seconds();
        let secs = window.as_secs().max(f64::MIN_POSITIVE);
        let nodes = self
            .nodes
            .iter()
            .map(|n| NodeReport {
                name: n.name.clone(),
                arrivals: n.arrivals,
                served: n.served,
                drops: n.drops,
                max_queue: n.max_queue,
                utilization: n
                    .runtime
                    .as_ref()
                    .map(|rt| {
                        (rt.busy_time.as_secs()
                            / (end.as_secs().max(f64::MIN_POSITIVE) * rt.engines as f64))
                            .min(1.0)
                    })
                    .unwrap_or(0.0),
                mean_occupancy: n
                    .runtime
                    .as_ref()
                    .map(|rt| rt.occupancy_integral / end.as_secs().max(f64::MIN_POSITIVE))
                    .unwrap_or(0.0),
            })
            .collect();
        let media = self
            .media
            .iter()
            .map(|m| MediumReport {
                name: m.name().to_owned(),
                transferred: m.transferred(),
                utilization: m.utilization(end),
            })
            .collect();
        let classes = st
            .class_completed
            .iter()
            .zip(&st.class_bytes)
            .zip(&st.class_latency)
            .map(|((&completed, &bytes), &latency)| ClassReport {
                completed,
                bytes: lognic_model::units::Bytes::new(bytes),
                mean_latency: if completed > 0 {
                    Seconds::new(latency.as_secs() / completed as f64)
                } else {
                    Seconds::ZERO
                },
            })
            .collect();
        SimReport {
            duration: end.to_seconds(),
            window,
            injected: st.injected,
            completed: st.completed,
            dropped: st.dropped,
            offered: self.offered,
            throughput: Bandwidth::bps(st.completed_bytes_in_window as f64 * 8.0 / secs),
            packet_rate: st.completed as f64 / secs,
            latency: LatencySummary::from_samples(st.latencies),
            classes,
            nodes,
            media,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::params::{EdgeParams, IpParams};
    use lognic_model::units::Bytes;

    fn chain(gbps: f64, queue: u32) -> ExecutionGraph {
        ExecutionGraph::chain(
            "t",
            &[(
                "ip",
                IpParams::new(Bandwidth::gbps(gbps)).with_queue_capacity(queue),
            )],
        )
        .unwrap()
    }

    fn fast_hw() -> HardwareModel {
        HardwareModel::new(Bandwidth::gbps(10_000.0), Bandwidth::gbps(10_000.0))
    }

    fn run(g: &ExecutionGraph, hw: &HardwareModel, t: &TrafficProfile) -> SimReport {
        Simulation::builder(g, hw, t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .run()
    }

    #[test]
    fn underloaded_chain_delivers_offered_rate() {
        let g = chain(10.0, 256);
        let t = TrafficProfile::fixed(Bandwidth::gbps(2.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        assert!(r.completed > 1000, "completed = {}", r.completed);
        let err = (r.throughput.as_gbps() - 2.0).abs() / 2.0;
        assert!(err < 0.05, "throughput = {} ({err})", r.throughput);
        assert!(r.loss_rate() < 0.01);
    }

    #[test]
    fn overloaded_chain_saturates_at_capacity() {
        let g = chain(5.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(20.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        let got = r.throughput.as_gbps();
        assert!((got - 5.0).abs() / 5.0 < 0.07, "throughput = {got}");
        assert!(r.dropped > 0, "overload must drop");
        let ip = r.node("ip").unwrap();
        assert!(ip.utilization > 0.9, "utilization = {}", ip.utilization);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let g = chain(5.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(512));
        let a = run(&g, &fast_hw(), &t);
        let b = run(&g, &fast_hw(), &t);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let g = chain(5.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(512));
        let a = Simulation::builder(&g, &fast_hw(), &t).seed(1).run();
        let b = Simulation::builder(&g, &fast_hw(), &t).seed(2).run();
        assert_ne!(a.latency.mean, b.latency.mean);
    }

    #[test]
    fn conservation_injected_equals_completed_plus_dropped_plus_inflight() {
        let g = chain(5.0, 8);
        let t = TrafficProfile::fixed(Bandwidth::gbps(6.0), Bytes::new(1500));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::ZERO)
            .run();
        // With zero warmup and full drain, every injected packet either
        // completed or was dropped.
        assert_eq!(r.injected, r.completed + r.dropped);
    }

    #[test]
    fn latency_grows_with_load() {
        let g = chain(10.0, 512);
        let low = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(1500));
        let high = TrafficProfile::fixed(Bandwidth::gbps(9.0), Bytes::new(1500));
        let rl = run(&g, &fast_hw(), &low);
        let rh = run(&g, &fast_hw(), &high);
        assert!(rh.latency.mean > rl.latency.mean);
        assert!(rh.latency.p99 >= rh.latency.p50);
    }

    #[test]
    fn tiny_queue_drops_under_bursts() {
        let g = chain(10.0, 1);
        let t = TrafficProfile::fixed(Bandwidth::gbps(8.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        assert!(r.loss_rate() > 0.1, "loss = {}", r.loss_rate());
    }

    #[test]
    fn fanout_routes_by_delta() {
        let mut b = ExecutionGraph::builder("f");
        let ing = b.ingress("in");
        let a = b.ip(
            "a",
            IpParams::new(Bandwidth::gbps(100.0)).with_queue_capacity(256),
        );
        let c = b.ip(
            "c",
            IpParams::new(Bandwidth::gbps(100.0)).with_queue_capacity(256),
        );
        let eg = b.egress("out");
        b.edge(ing, a, EdgeParams::new(0.8).unwrap());
        b.edge(ing, c, EdgeParams::new(0.2).unwrap());
        b.edge(a, eg, EdgeParams::new(0.8).unwrap());
        b.edge(c, eg, EdgeParams::new(0.2).unwrap());
        let g = b.build().unwrap();
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        let na = r.node("a").unwrap().arrivals as f64;
        let nc = r.node("c").unwrap().arrivals as f64;
        let frac = na / (na + nc);
        assert!((frac - 0.8).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn shared_interface_limits_throughput() {
        // IP is fast, interface is 5 Gb/s and both edges use it fully:
        // each packet crosses twice → ~2.5 Gb/s delivered.
        let g = chain(1000.0, 256);
        let hw = HardwareModel::new(Bandwidth::gbps(5.0), Bandwidth::gbps(10_000.0));
        let t = TrafficProfile::fixed(Bandwidth::gbps(20.0), Bytes::new(1500));
        let r = run(&g, &hw, &t);
        let got = r.throughput.as_gbps();
        assert!((got - 2.5).abs() / 2.5 < 0.15, "throughput = {got}");
        let m = r.medium("interface").unwrap();
        assert!(m.utilization > 0.95);
    }

    #[test]
    fn dedicated_link_is_used() {
        let mut b = ExecutionGraph::builder("d");
        let ing = b.ingress("in");
        let ip = b.ip(
            "ip",
            IpParams::new(Bandwidth::gbps(100.0)).with_queue_capacity(64),
        );
        let eg = b.egress("out");
        b.edge(
            ing,
            ip,
            EdgeParams::full()
                .with_interface_fraction(0.0)
                .with_dedicated_bandwidth(Bandwidth::gbps(3.0)),
        );
        b.edge(ip, eg, EdgeParams::full().with_interface_fraction(0.0));
        let g = b.build().unwrap();
        let t = TrafficProfile::fixed(Bandwidth::gbps(10.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        let got = r.throughput.as_gbps();
        assert!((got - 3.0).abs() / 3.0 < 0.1, "throughput = {got}");
        assert!(r.medium("link#0").unwrap().transferred > Bytes::new(0));
    }

    #[test]
    fn zero_traffic_runs_empty() {
        let g = chain(10.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::ZERO, Bytes::new(64));
        let r = run(&g, &fast_hw(), &t);
        assert_eq!(r.completed, 0);
        assert_eq!(r.injected, 0);
        assert_eq!(r.latency.count, 0);
    }

    #[test]
    fn paced_deterministic_run_has_low_variance() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .arrival(ArrivalProcess::Paced)
            .service_dist(ServiceDist::Deterministic)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::millis(1.0))
            .run();
        // With pacing at 50% load there is no queueing at all: every
        // packet sees the same latency.
        assert!(r.latency.max.as_secs() - r.latency.p50.as_secs() < 1e-9);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn parallel_engines_increase_capacity() {
        // Four engines at the same per-engine rate quadruple the
        // node's aggregate capacity.
        let p1 = IpParams::new(Bandwidth::gbps(5.0)).with_queue_capacity(128);
        let p4 = IpParams::new(Bandwidth::gbps(20.0))
            .with_parallelism(4)
            .with_queue_capacity(128);
        let g1 = ExecutionGraph::chain("d1", &[("ip", p1)]).unwrap();
        let g4 = ExecutionGraph::chain("d4", &[("ip", p4)]).unwrap();
        let t = TrafficProfile::fixed(Bandwidth::gbps(18.0), Bytes::new(1500));
        let r1 = run(&g1, &fast_hw(), &t);
        let r4 = run(&g4, &fast_hw(), &t);
        assert!(
            (r1.throughput.as_gbps() - 5.0).abs() / 5.0 < 0.08,
            "{}",
            r1.throughput
        );
        assert!(
            (r4.throughput.as_gbps() - 18.0).abs() / 18.0 < 0.08,
            "{}",
            r4.throughput
        );
        assert!(
            r4.latency.mean < r1.latency.mean,
            "the overloaded D=1 node queues hard"
        );
    }

    #[test]
    fn wrr_plan_isolates_tenant_drops() {
        use crate::wrr::{QueuePlan, QueueSpec};
        use lognic_model::params::PacketSizeDist;
        // Two classes share one node; class 0 floods. With a shared
        // queue, class 1 suffers; with per-class queues it is isolated.
        let g = ExecutionGraph::chain(
            "iso",
            &[(
                "ip",
                IpParams::new(Bandwidth::gbps(5.0)).with_queue_capacity(16),
            )],
        )
        .unwrap();
        let dist = PacketSizeDist::mix([
            (Bytes::new(1000), 0.8), // class 0: the aggressor
            (Bytes::new(1000), 0.2), // class 1: the victim
        ])
        .unwrap();
        let t = TrafficProfile::new(Bandwidth::gbps(8.0), dist);
        let plan = QueuePlan::weighted(vec![
            QueueSpec {
                capacity: 8,
                weight: 1,
            },
            QueueSpec {
                capacity: 8,
                weight: 1,
            },
        ]);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .override_queues("ip", plan)
            .run();
        // The node is overloaded (8 > 5 Gb/s): drops happen, but the
        // victim's share of completions stays near its 20% offered
        // share because the WRR scheduler serves both queues equally
        // and the victim's queue rarely fills.
        assert!(r.dropped > 0);
        let ip = r.node("ip").unwrap();
        assert!(ip.drops > 0);
        // Delivered rate equals the node capacity.
        assert!(
            (r.throughput.as_gbps() - 5.0).abs() / 5.0 < 0.08,
            "{}",
            r.throughput
        );
    }

    #[test]
    fn wrr_weights_shape_service_shares_under_overload() {
        use crate::wrr::{QueuePlan, QueueSpec};
        use lognic_model::params::PacketSizeDist;
        // Equal offered shares, 3:1 weights: completions skew 3:1.
        let g = ExecutionGraph::chain(
            "wrr",
            &[(
                "ip",
                IpParams::new(Bandwidth::gbps(4.0)).with_queue_capacity(16),
            )],
        )
        .unwrap();
        let dist = PacketSizeDist::mix([(Bytes::new(1000), 0.5), (Bytes::new(1000), 0.5)]).unwrap();
        let t = TrafficProfile::new(Bandwidth::gbps(12.0), dist);
        let plan = QueuePlan::weighted(vec![
            QueueSpec {
                capacity: 16,
                weight: 3,
            },
            QueueSpec {
                capacity: 16,
                weight: 1,
            },
        ]);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .override_queues("ip", plan)
            .run();
        assert!(
            (r.throughput.as_gbps() - 4.0).abs() / 4.0 < 0.08,
            "{}",
            r.throughput
        );
        assert!(r.loss_rate() > 0.5, "loss = {}", r.loss_rate());
        // Completions skew toward the weight-3 class.
        let share0 = r.class_share(0);
        assert!((share0 - 0.75).abs() < 0.05, "class-0 share = {share0}");
    }

    #[test]
    fn trace_replay_drives_the_simulation() {
        use crate::traffic::Trace;
        // 1000 paced packets of 1000 B every 2 µs = 4 Gb/s.
        let events: Vec<_> = (0..1000)
            .map(|i| (SimTime::from_micros(2.0 * i as f64), Bytes::new(1000), 0u32))
            .collect();
        let trace = Trace::from_events(events);
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(1000));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .with_trace(trace)
            .duration(Seconds::millis(2.0))
            .warmup(Seconds::ZERO)
            .run();
        assert_eq!(r.injected, 1000);
        assert_eq!(r.dropped, 0);
        assert!(
            (r.throughput.as_gbps() - 4.0).abs() < 0.1,
            "{}",
            r.throughput
        );
    }

    #[test]
    fn empty_trace_is_silent() {
        use crate::traffic::Trace;
        let g = chain(10.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(1000));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .with_trace(Trace::default())
            .duration(Seconds::millis(1.0))
            .warmup(Seconds::ZERO)
            .run();
        assert_eq!(r.injected, 0);
        assert_eq!(r.completed, 0);
    }

    #[test]
    fn outage_drops_traffic_during_the_window() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let healthy = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::ZERO)
            .run();
        let faulty = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::ZERO)
            .inject_outage("ip", Seconds::millis(2.0), Seconds::millis(6.0))
            .run();
        assert_eq!(healthy.dropped, 0);
        // The 4 ms outage kills ~40% of the packets.
        let loss = faulty.loss_rate();
        assert!((loss - 0.4).abs() < 0.05, "loss = {loss}");
        // Conservation still holds under faults.
        assert_eq!(faulty.injected, faulty.completed + faulty.dropped);
    }

    #[test]
    fn outage_outside_window_is_harmless() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::ZERO)
            .inject_outage("ip", Seconds::millis(50.0), Seconds::millis(60.0))
            .run();
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn builder_debug_and_config() {
        let g = chain(1.0, 4);
        let hw = fast_hw();
        let t = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(64));
        let b = Simulation::builder(&g, &hw, &t).config(SimConfig::default());
        assert!(format!("{b:?}").contains("SimulationBuilder"));
        let sim = b.build();
        assert!(format!("{sim:?}").contains("Simulation"));
    }
}
