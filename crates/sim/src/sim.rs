//! The discrete-event simulation engine.
//!
//! A [`Simulation`] is built from the same three inputs as the
//! analytical model — an [`ExecutionGraph`], a [`HardwareModel`] and a
//! [`TrafficProfile`] — so that every scenario can be both estimated
//! and simulated from one description. Packets are injected at the
//! ingress engine, routed along edges (probabilistically by `δ` at
//! fan-outs), serialized across shared media, queued and served at IP
//! nodes with bounded queues and `D` parallel engines, and measured at
//! the egress.
//!
//! # Engine internals
//!
//! The hot loop is allocation-free in steady state: events are 8-byte
//! [`Ev`] records scheduled on a calendar queue ([`CalendarQueue`]),
//! packets live in a slab arena ([`PacketArena`]) addressed by dense
//! `u32` handles, and latency statistics stream through a
//! [`LatencyRecorder`] instead of a per-packet sample vector. The
//! original binary-heap scheduler is retained as
//! [`Engine::ReferenceHeap`] — both engines pop events in exactly
//! (time, seq) order, so every [`SimReport`] is bit-identical across
//! them (the differential suite asserts this).
//!
//! [`Ev`]: self::Simulation
//! [`CalendarQueue`]: crate::calendar::CalendarQueue
//! [`PacketArena`]: crate::arena::PacketArena
//! [`LatencyRecorder`]: crate::histogram::LatencyRecorder

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use lognic_model::analyze::{AnalysisConfig, Analyzer, Diagnostic};
use lognic_model::error::{LogNicError, LogNicResult};
use lognic_model::fault::{FaultPlan, RetryPolicy};
use lognic_model::graph::ExecutionGraph;
use lognic_model::intern::NameTable;
use lognic_model::params::{HardwareModel, TrafficProfile};
use lognic_model::units::{Bandwidth, Seconds};

use crate::arena::{PacketArena, PacketHandle, NO_PACKET};
use crate::calendar::CalendarQueue;
use crate::faults::{CompiledFaultPlan, CompiledKind, NodeFaults};
use crate::histogram::LatencyRecorder;
use crate::medium::Medium;
use crate::metrics::{ClassReport, LatencySummary, MediumReport, NodeReport, SimReport};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::service::{RateService, ServiceDist, ServiceModel};
use crate::time::SimTime;
use crate::trace::{
    DropReason, FaultWindowKind, NodeMeta, NoopObserver, RunMeta, SimObserver, TimeSeriesSampler,
    Timeline,
};
use crate::traffic::{ArrivalProcess, Trace, TraceCursor, TrafficSource};
use crate::wrr::{QueuePlan, WrrQueues};

/// Which event-scheduler implementation a run uses.
///
/// Both engines pop events in exactly `(time, seq)` order, so for a
/// given scenario and seed every field of the resulting [`SimReport`]
/// is bit-identical. The calendar queue is O(1) amortized per
/// operation where the heap pays O(log n); it is the default and the
/// heap survives purely as a differential-testing reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Calendar-queue scheduler (Brown, CACM '88): O(1) amortized
    /// push/pop on a power-of-two bucket wheel.
    #[default]
    Calendar,
    /// The original `BinaryHeap`-based scheduler, kept as the
    /// reference implementation for differential tests and the perf
    /// baseline's speedup denominator.
    ReferenceHeap,
}

/// Run-control parameters of a simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// RNG seed; identical seeds reproduce identical runs.
    pub seed: u64,
    /// Injection horizon. Packets injected in `[0, duration]`; the run
    /// then drains in-flight packets.
    pub duration: Seconds,
    /// Measurement cutoff: packets injected before this are ignored.
    pub warmup: Seconds,
    /// The arrival process realized by the traffic source.
    pub arrival: ArrivalProcess,
    /// Service-time distribution for rate-based nodes.
    pub service_dist: ServiceDist,
    /// Safety cap on total injected packets.
    pub max_packets: u64,
    /// Maximum reservation backlog tolerated on a shared medium,
    /// expressed as time-ahead-of-now; transfers beyond it are dropped
    /// (finite buffering in front of a saturated interconnect).
    pub medium_backlog: Seconds,
    /// Watchdog budget: the run aborts with a structured
    /// [`LogNicError::WatchdogAbort`] after processing this many
    /// events. `0` (the default) derives a generous bound from
    /// `max_packets`, the graph size and the retry budget — large
    /// enough that only a non-terminating run can hit it.
    pub max_events: u64,
    /// The event-scheduler implementation. Reports are bit-identical
    /// across engines; this knob exists for differential testing and
    /// perf baselines.
    pub engine: Engine,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            duration: Seconds::millis(20.0),
            warmup: Seconds::millis(4.0),
            arrival: ArrivalProcess::Poisson,
            service_dist: ServiceDist::Exponential,
            max_packets: 20_000_000,
            medium_backlog: Seconds::micros(50.0),
            max_events: 0,
            engine: Engine::Calendar,
        }
    }
}

/// Event kinds, packed into the top bits of [`Ev::kind_node`].
const K_INJECT: u32 = 0;
const K_ARRIVE: u32 = 1;
const K_DONE: u32 = 2;
const KIND_SHIFT: u32 = 30;
const NODE_MASK: u32 = (1 << KIND_SHIFT) - 1;

/// A compact 8-byte event record: the kind lives in the top two bits
/// of `kind_node`, the destination node in the low 30, and the packet
/// is an arena handle ([`NO_PACKET`] for injections). Keeping events
/// `Copy` and word-sized is what lets the calendar queue shuffle them
/// between buckets without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ev {
    kind_node: u32,
    pkt: PacketHandle,
}

impl Ev {
    #[inline]
    fn inject() -> Self {
        Ev {
            kind_node: K_INJECT << KIND_SHIFT,
            pkt: NO_PACKET,
        }
    }

    #[inline]
    fn arrive(node: usize, pkt: PacketHandle) -> Self {
        debug_assert!(node < NODE_MASK as usize);
        Ev {
            kind_node: (K_ARRIVE << KIND_SHIFT) | node as u32,
            pkt,
        }
    }

    #[inline]
    fn done(node: usize, pkt: PacketHandle) -> Self {
        debug_assert!(node < NODE_MASK as usize);
        Ev {
            kind_node: (K_DONE << KIND_SHIFT) | node as u32,
            pkt,
        }
    }

    #[inline]
    fn kind(self) -> u32 {
        self.kind_node >> KIND_SHIFT
    }

    #[inline]
    fn node(self) -> usize {
        (self.kind_node & NODE_MASK) as usize
    }
}

/// The pending-event set, behind one of the two scheduler engines.
/// Both pop in exactly `(time, seq)` order.
enum EventQueue {
    Wheel(CalendarQueue<Ev>),
    Heap(BinaryHeap<Reverse<(u64, u64, Ev)>>),
}

impl EventQueue {
    #[inline]
    fn push(&mut self, time_ps: u64, seq: u64, ev: Ev) {
        match self {
            EventQueue::Wheel(w) => w.push(time_ps, seq, ev),
            EventQueue::Heap(h) => h.push(Reverse((time_ps, seq, ev))),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(u64, u64, Ev)> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Heap(h) => h.pop().map(|Reverse(t)| t),
        }
    }
}

/// The waiting-room of a compute node. Queues hold arena handles, not
/// packets — enqueue/dequeue move 4 bytes.
enum QueueState {
    /// The default virtual shared queue: `capacity` bounds the total
    /// in system (waiting + in service), matching M/M/c/N.
    Shared {
        queue: VecDeque<PacketHandle>,
        capacity: u32,
    },
    /// An explicit multi-queue WRR plan (Fig. 2b): per-queue `k`
    /// bounds apply to *waiting* packets only.
    Wrr(WrrQueues),
}

impl QueueState {
    fn len(&self) -> usize {
        match self {
            QueueState::Shared { queue, .. } => queue.len(),
            QueueState::Wrr(w) => w.len(),
        }
    }

    /// Tries to admit a waiting packet; `busy` is the number of
    /// occupied engines (relevant to the shared total-in-system
    /// bound). `credit_penalty` removes credits from the shared bound
    /// while a credit-loss fault window is active; WRR plans model
    /// explicit per-queue buffers and are unaffected.
    fn enqueue(&mut self, h: PacketHandle, class: u32, busy: u32, credit_penalty: u32) -> bool {
        match self {
            QueueState::Shared { queue, capacity } => {
                let effective = capacity.saturating_sub(credit_penalty).max(1);
                if busy as usize + queue.len() >= effective as usize {
                    false
                } else {
                    queue.push_back(h);
                    true
                }
            }
            QueueState::Wrr(w) => w.enqueue(class, h),
        }
    }

    fn dequeue(&mut self) -> Option<PacketHandle> {
        match self {
            QueueState::Shared { queue, .. } => queue.pop_front(),
            QueueState::Wrr(w) => w.dequeue(),
        }
    }

    /// Nominal capacity, for trace metadata.
    fn capacity(&self) -> u32 {
        match self {
            QueueState::Shared { capacity, .. } => *capacity,
            QueueState::Wrr(w) => w.total_capacity(),
        }
    }
}

/// Maps a compiled fault effect to the public trace-facing kind.
fn observed_kind(kind: CompiledKind) -> FaultWindowKind {
    match kind {
        CompiledKind::Outage => FaultWindowKind::Outage,
        CompiledKind::Rate(factor) => FaultWindowKind::RateDegradation { factor },
        CompiledKind::Drop(probability) => FaultWindowKind::PacketDrop { probability },
        CompiledKind::Corrupt(probability) => FaultWindowKind::PacketCorruption { probability },
        CompiledKind::CreditLoss(credits) => FaultWindowKind::CreditLoss { credits },
    }
}

struct NodeRuntime {
    engines: u32,
    busy: u32,
    queue: QueueState,
    service: Box<dyn ServiceModel>,
    overhead: SimTime,
    work_factor: f64,
    busy_time: SimTime,
    /// Shared compiled fault table — an `Arc` so replicated runs reuse
    /// one compilation across every seed instead of cloning windows.
    faults: Arc<NodeFaults>,
    /// Time-weighted integral of requests in system (packet-seconds),
    /// accumulated up to the injection horizon.
    occupancy_integral: f64,
    occupancy_last: SimTime,
}

struct SimNode {
    name: String,
    runtime: Option<NodeRuntime>,
    arrivals: u64,
    served: u64,
    drops: u64,
    max_queue: usize,
}

struct SimEdge {
    dst: usize,
    interface_per_packet: f64,
    memory_per_packet: f64,
    dedicated: Option<usize>,
    resize: f64,
}

/// Builds a [`Simulation`], allowing per-node service-model overrides.
pub struct SimulationBuilder<'a> {
    graph: &'a ExecutionGraph,
    hw: &'a HardwareModel,
    traffic: &'a TrafficProfile,
    config: SimConfig,
    overrides: Vec<(String, Box<dyn ServiceModel>)>,
    queue_plans: Vec<(String, QueuePlan)>,
    trace: Option<Trace>,
    outages: Vec<(String, Seconds, Seconds)>,
    plan: FaultPlan,
    compiled: Option<&'a CompiledFaultPlan>,
    analysis: AnalysisConfig,
}

impl std::fmt::Debug for SimulationBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("graph", &self.graph.name())
            .field("config", &self.config)
            .field("overrides", &self.overrides.len())
            .finish()
    }
}

impl<'a> SimulationBuilder<'a> {
    /// Replaces the whole run configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the injection horizon.
    pub fn duration(mut self, duration: Seconds) -> Self {
        self.config.duration = duration;
        self
    }

    /// Sets the warmup cutoff.
    pub fn warmup(mut self, warmup: Seconds) -> Self {
        self.config.warmup = warmup;
        self
    }

    /// Sets the arrival process.
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.config.arrival = arrival;
        self
    }

    /// Sets the service-time distribution of rate-based nodes.
    pub fn service_dist(mut self, dist: ServiceDist) -> Self {
        self.config.service_dist = dist;
        self
    }

    /// Selects the event-scheduler implementation (the calendar queue
    /// by default). Reports are bit-identical across engines.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.config.engine = engine;
        self
    }

    /// Overrides the service model of the named node (e.g. an SSD
    /// model with internal state).
    pub fn override_service(mut self, node_name: &str, model: Box<dyn ServiceModel>) -> Self {
        self.overrides.push((node_name.to_owned(), model));
        self
    }

    /// Replaces the named node's virtual shared queue with an explicit
    /// multi-queue WRR plan (Fig. 2b). Packets map to queues by
    /// `class mod m`; per-queue capacities bound waiting packets.
    pub fn override_queues(mut self, node_name: &str, plan: QueuePlan) -> Self {
        self.queue_plans.push((node_name.to_owned(), plan));
        self
    }

    /// Replays a recorded packet trace instead of sampling the traffic
    /// profile (the profile still supplies the nominal offered rate
    /// for reporting).
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Injects a fault: the named node drops every arriving packet
    /// during `[from, until)` (engines crashed / firmware reset).
    /// Packets already in service complete normally.
    ///
    /// Shorthand for a [`FaultPlan`] holding one outage window; use
    /// [`SimulationBuilder::with_fault_plan`] to compose richer fault
    /// scenarios (rate degradation, drops, corruption, credit loss,
    /// retry/backoff, deadlines).
    pub fn inject_outage(mut self, node_name: &str, from: Seconds, until: Seconds) -> Self {
        self.outages.push((node_name.to_owned(), from, until));
        self
    }

    /// Installs a composable fault-injection plan: scheduled fault
    /// windows plus plan-wide retry/backoff and deadline semantics.
    /// The plan is validated against the graph by
    /// [`SimulationBuilder::build`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Replaces the static-analysis severity policy the builder
    /// applies before constructing the runtime (the default policy
    /// denies hard errors — degenerate quantities, credit cycles —
    /// and records the rest as warnings on the built [`Simulation`]).
    pub fn analysis(mut self, config: AnalysisConfig) -> Self {
        self.analysis = config;
        self
    }

    /// Installs an already-compiled fault plan, sharing its per-node
    /// tables by reference. Replicated runs compile a [`FaultPlan`]
    /// once and hand the same [`CompiledFaultPlan`] to every seed.
    ///
    /// Takes precedence over [`SimulationBuilder::with_fault_plan`]
    /// and [`SimulationBuilder::inject_outage`]: when a compiled plan
    /// is installed, declarative plans/outages are ignored (their node
    /// names are still validated).
    pub fn with_compiled_faults(mut self, compiled: &'a CompiledFaultPlan) -> Self {
        self.compiled = Some(compiled);
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns a typed [`LogNicError`] instead of panicking when the
    /// inputs are malformed: a service override, queue plan, outage or
    /// fault window naming a node absent from the graph (one dangling
    /// name yields [`LogNicError::UnknownNode`]; several are
    /// aggregated into [`LogNicError::UnknownNodes`] so a misconfigured
    /// scenario surfaces every bad reference at once); an empty or
    /// inverted fault window; an out-of-range fault parameter; or an
    /// unusable run configuration (warmup beyond the horizon, zero
    /// packet budget). The static analyzer runs over the scenario
    /// first: findings the active [`AnalysisConfig`] puts at `Deny`
    /// level reject the build with
    /// [`LogNicError::AnalysisRejected`]; `Warn`-level findings are
    /// retained on the built simulation
    /// ([`Simulation::analysis_warnings`]).
    pub fn build(self) -> LogNicResult<Simulation> {
        let report = Analyzer::new(self.graph)
            .with_hardware(self.hw)
            .with_traffic(self.traffic)
            .with_fault_plan(&self.plan)
            .run(&self.analysis);
        if report.is_rejected() {
            return Err(LogNicError::AnalysisRejected {
                diagnostics: report.diagnostics().to_vec(),
            });
        }
        let analysis_warnings: Vec<Diagnostic> = report.warnings().into_iter().cloned().collect();

        let cfg = self.config;
        if cfg.warmup.as_secs() > cfg.duration.as_secs() {
            return Err(LogNicError::InvalidConfig {
                reason: format!(
                    "warmup {} exceeds the injection horizon {}",
                    cfg.warmup, cfg.duration
                ),
            });
        }
        if cfg.max_packets == 0 {
            return Err(LogNicError::InvalidConfig {
                reason: "max_packets must be positive".into(),
            });
        }

        // One resolve pass over the interned name table replaces the
        // old per-node linear scans through every override list, and
        // collects *all* dangling names instead of failing on the
        // first.
        let n = self.graph.nodes().len();
        let table = NameTable::for_graph(self.graph);
        let mut svc_over: Vec<Option<Box<dyn ServiceModel>>> = (0..n).map(|_| None).collect();
        let mut plan_over: Vec<Option<QueuePlan>> = vec![None; n];
        let mut unknown: Vec<(&'static str, String)> = Vec::new();
        let mut window_err: Option<LogNicError> = None;
        for (name, model) in self.overrides {
            match table.resolve(&name) {
                // First override wins, matching the old scan order.
                Some(id) => {
                    let slot = &mut svc_over[id.index()];
                    if slot.is_none() {
                        *slot = Some(model);
                    }
                }
                None => unknown.push(("service override", name)),
            }
        }
        for (name, plan) in self.queue_plans {
            match table.resolve(&name) {
                Some(id) => {
                    let slot = &mut plan_over[id.index()];
                    if slot.is_none() {
                        *slot = Some(plan);
                    }
                }
                None => unknown.push(("queue plan", name)),
            }
        }
        for (name, from, until) in &self.outages {
            if table.resolve(name).is_none() {
                unknown.push(("outage", name.clone()));
            } else if until.as_secs() <= from.as_secs() && window_err.is_none() {
                window_err = Some(LogNicError::InvalidFaultWindow {
                    node: name.clone(),
                    from: from.as_secs(),
                    until: until.as_secs(),
                });
            }
        }
        match unknown.len() {
            0 => {}
            1 => {
                let (context, node) = unknown.remove(0);
                return Err(LogNicError::UnknownNode { context, node });
            }
            _ => {
                return Err(LogNicError::UnknownNodes {
                    references: unknown,
                })
            }
        }
        if let Some(e) = window_err {
            return Err(e);
        }

        // Fault compilation: a pre-compiled plan is shared by
        // reference (Arc-cloned tables); otherwise merge the
        // `inject_outage` shorthands into the declarative plan and
        // compile here. Both paths validate window/parameter domains.
        let (per_node, retry, deadline) = match self.compiled {
            Some(c) => (c.per_node.clone(), c.retry, c.deadline),
            None => {
                let mut plan = self.plan;
                for (name, from, until) in self.outages {
                    plan = plan.outage(&name, from, until);
                }
                let c = CompiledFaultPlan::compile(&plan, self.graph)?;
                (c.per_node, c.retry, c.deadline)
            }
        };

        let nodes: Vec<SimNode> = self
            .graph
            .nodes()
            .iter()
            .zip(svc_over)
            .zip(plan_over)
            .zip(&per_node)
            .map(|(((gn, svc), qplan), faults)| {
                let runtime = gn.params().map(|p| {
                    let service: Box<dyn ServiceModel> = match svc {
                        Some(model) => model,
                        None => Box::new(RateService::new(
                            p.effective_peak() / p.parallelism() as f64,
                            cfg.service_dist,
                        )),
                    };
                    let queue = match qplan {
                        Some(plan) => QueueState::Wrr(WrrQueues::new(&plan)),
                        None => QueueState::Shared {
                            queue: VecDeque::new(),
                            capacity: p.effective_queue_capacity(),
                        },
                    };
                    NodeRuntime {
                        engines: p.parallelism(),
                        busy: 0,
                        queue,
                        service,
                        overhead: SimTime::from_secs(p.overhead().as_secs()),
                        work_factor: p.work_factor(),
                        busy_time: SimTime::ZERO,
                        faults: Arc::clone(faults),
                        occupancy_integral: 0.0,
                        occupancy_last: SimTime::ZERO,
                    }
                });
                SimNode {
                    name: gn.name().to_owned(),
                    runtime,
                    arrivals: 0,
                    served: 0,
                    drops: 0,
                    max_queue: 0,
                }
            })
            .collect();

        let mut media = vec![
            Medium::new("interface", self.hw.interface_bandwidth()),
            Medium::new("memory", self.hw.memory_bandwidth()),
        ];
        let mut edges = Vec::with_capacity(self.graph.edges().len());
        for (i, e) in self.graph.edges().iter().enumerate() {
            let p = e.params();
            let delta = if p.delta() > 0.0 { p.delta() } else { 1.0 };
            let dedicated = p.dedicated_bandwidth().map(|bw| {
                media.push(Medium::new(&format!("link#{i}"), bw));
                media.len() - 1
            });
            edges.push(SimEdge {
                dst: e.dst().index(),
                interface_per_packet: p.interface_fraction() / delta,
                memory_per_packet: p.memory_fraction() / delta,
                dedicated,
                resize: p.size_factor(),
            });
        }

        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut out_cum: Vec<Vec<f64>> = vec![Vec::new(); n];
        for (i, e) in self.graph.edges().iter().enumerate() {
            out_edges[e.src().index()].push(i);
        }
        for (v, eids) in out_edges.iter().enumerate() {
            let total: f64 = eids
                .iter()
                .map(|&i| self.graph.edges()[i].params().delta())
                .sum();
            let mut acc = 0.0;
            for &i in eids {
                let d = self.graph.edges()[i].params().delta();
                acc += if total > 0.0 { d } else { 1.0 };
                out_cum[v].push(acc);
            }
        }

        // Watchdog budget: explicit, or a generous structural bound —
        // every packet visits each node at most once per attempt, each
        // visit costs a handful of events, and retries multiply
        // attempts by at most budget + 1.
        let max_events = if cfg.max_events > 0 {
            cfg.max_events
        } else {
            let attempts = retry.map(|r| r.budget() as u64 + 1).unwrap_or(1);
            let per_packet = (n as u64 + 2).saturating_mul(4).saturating_mul(attempts);
            cfg.max_packets.saturating_mul(per_packet).max(1_000)
        };

        // Calendar-queue day width: target the mean inter-*event* gap,
        // estimated as the mean inter-packet gap divided by the events
        // a packet generates traversing the pipeline.
        let rate = self.traffic.mean_packet_rate();
        let wheel_gap_ps = if rate > 0.0 {
            (1e12 / rate / (n as f64 + 2.0)) as u64
        } else {
            0
        };

        Ok(Simulation {
            nodes,
            edges,
            out_edges,
            out_cum,
            ingress: self.graph.ingress().index(),
            egress: self.graph.egress().index(),
            media,
            source: match self.trace {
                Some(t) => Source::Trace(t.cursor()),
                None => Source::Synthetic(TrafficSource::new(self.traffic, cfg.arrival)),
            },
            rng: SimRng::seed_from(cfg.seed),
            config: cfg,
            offered: self.traffic.ingress_bandwidth(),
            backlog_cap: SimTime::from_secs(cfg.medium_backlog.as_secs()),
            retry,
            deadline,
            max_events,
            wheel_gap_ps,
            analysis_warnings,
        })
    }

    /// Builds and runs the simulation.
    ///
    /// # Errors
    ///
    /// Propagates [`SimulationBuilder::build`] validation errors and
    /// the watchdog abort of [`Simulation::run`].
    pub fn run(self) -> LogNicResult<SimReport> {
        self.build()?.run()
    }

    /// Builds and runs the simulation under a trace observer (see
    /// [`Simulation::run_with`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SimulationBuilder::build`] validation errors and
    /// the watchdog abort of [`Simulation::run_with`].
    pub fn run_with<O: SimObserver>(self, obs: &mut O) -> LogNicResult<SimReport> {
        self.build()?.run_with(obs)
    }

    /// Builds and runs the simulation with a [`TimeSeriesSampler`] at
    /// interval `dt` attached, returning the report alongside the
    /// collected [`Timeline`] (see [`Simulation::timeline`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SimulationBuilder::build`] validation errors and
    /// the watchdog abort of [`Simulation::run_with`].
    pub fn timeline(self, dt: Seconds) -> LogNicResult<(SimReport, Timeline)> {
        self.build()?.timeline(dt)
    }
}

enum Source {
    Synthetic(TrafficSource),
    Trace(TraceCursor),
}

impl Source {
    fn is_silent(&self) -> bool {
        match self {
            Source::Synthetic(s) => s.is_silent(),
            Source::Trace(t) => t.remaining() == 0,
        }
    }

    fn next_injection(&mut self, rng: &mut SimRng) -> Option<crate::traffic::Injection> {
        match self {
            Source::Synthetic(s) => Some(s.next_injection(rng)),
            Source::Trace(t) => t.next_injection(),
        }
    }
}

/// A runnable discrete-event simulation of one SmartNIC program.
///
/// # Examples
///
/// ```
/// use lognic_model::graph::ExecutionGraph;
/// use lognic_model::params::{HardwareModel, IpParams, TrafficProfile};
/// use lognic_model::units::{Bandwidth, Bytes, Seconds};
/// use lognic_sim::sim::Simulation;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = ExecutionGraph::chain("echo", &[("core", IpParams::new(Bandwidth::gbps(10.0)))])?;
/// let hw = HardwareModel::default();
/// let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500));
/// let report = Simulation::builder(&g, &hw, &t)
///     .duration(Seconds::millis(5.0))
///     .warmup(Seconds::millis(1.0))
///     .run()?;
/// assert!(report.completed > 0);
/// # Ok(())
/// # }
/// ```
pub struct Simulation {
    nodes: Vec<SimNode>,
    edges: Vec<SimEdge>,
    out_edges: Vec<Vec<usize>>,
    out_cum: Vec<Vec<f64>>,
    ingress: usize,
    egress: usize,
    media: Vec<Medium>,
    source: Source,
    rng: SimRng,
    config: SimConfig,
    offered: Bandwidth,
    backlog_cap: SimTime,
    retry: Option<RetryPolicy>,
    deadline: Option<SimTime>,
    max_events: u64,
    /// Estimated mean inter-event gap, sizing the calendar wheel's day
    /// width.
    wheel_gap_ps: u64,
    /// Non-gating findings the pre-build static analysis surfaced.
    analysis_warnings: Vec<Diagnostic>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("edges", &self.edges.len())
            .field("config", &self.config)
            .finish()
    }
}

struct RunState {
    queue: EventQueue,
    seq: u64,
    /// All in-flight packets; events reference slots by handle.
    arena: PacketArena,
    /// Reused scratch buffer for deadline-reaped handles — taken and
    /// restored by `finish` so the drain loop never allocates.
    scratch_expired: Vec<PacketHandle>,
    injected: u64,
    total_injected: u64,
    completed: u64,
    completed_bytes_in_window: u64,
    good_bytes_in_window: u64,
    dropped: u64,
    retries: u64,
    timed_out: u64,
    corrupted: u64,
    recorder: LatencyRecorder,
    class_completed: Vec<u64>,
    class_bytes: Vec<u64>,
    class_latency: Vec<SimTime>,
}

impl RunState {
    #[inline]
    fn push(&mut self, time: SimTime, ev: Ev) {
        self.seq += 1;
        self.queue.push(time.as_picos(), self.seq, ev);
    }
}

impl Simulation {
    /// Starts building a simulation over the three model inputs.
    pub fn builder<'a>(
        graph: &'a ExecutionGraph,
        hw: &'a HardwareModel,
        traffic: &'a TrafficProfile,
    ) -> SimulationBuilder<'a> {
        SimulationBuilder {
            graph,
            hw,
            traffic,
            config: SimConfig::default(),
            overrides: Vec::new(),
            queue_plans: Vec::new(),
            trace: None,
            outages: Vec::new(),
            plan: FaultPlan::new(),
            compiled: None,
            analysis: AnalysisConfig::default(),
        }
    }

    /// The `Warn`-level diagnostics the pre-build static analysis
    /// surfaced (the `Deny`-level ones reject
    /// [`SimulationBuilder::build`] outright).
    pub fn analysis_warnings(&self) -> &[Diagnostic] {
        &self.analysis_warnings
    }

    /// Runs the simulation to completion and reports the measurements.
    ///
    /// Equivalent to [`Simulation::run_with`] under the
    /// [`NoopObserver`] — the monomorphized no-op compiles to exactly
    /// the untraced hot loop, so this path pays nothing for the
    /// observability layer.
    ///
    /// # Errors
    ///
    /// Returns [`LogNicError::WatchdogAbort`] with a structured
    /// progress report when the run exceeds its event budget
    /// ([`SimConfig::max_events`]) instead of hanging.
    pub fn run(self) -> LogNicResult<SimReport> {
        self.run_with(&mut NoopObserver)
    }

    /// Runs the simulation with a [`TimeSeriesSampler`] at interval
    /// `dt` attached, returning the report alongside the collected
    /// per-node [`Timeline`] (queue depth, busy engines, ρ(t),
    /// drop/retry counters on the Δt grid).
    ///
    /// # Errors
    ///
    /// Propagates the watchdog abort of [`Simulation::run_with`].
    pub fn timeline(self, dt: Seconds) -> LogNicResult<(SimReport, Timeline)> {
        let mut sampler = TimeSeriesSampler::new(dt);
        let report = self.run_with(&mut sampler)?;
        Ok((report, sampler.into_timeline()))
    }

    /// Runs the simulation to completion under a trace observer,
    /// reporting every engine state transition to `obs`.
    ///
    /// Observers are passive — they never touch the RNG or the event
    /// queue — so for a given scenario and seed the returned
    /// [`SimReport`] is bit-identical whichever observer is attached
    /// (the differential suite asserts this against [`Simulation::run`]
    /// on both engines). Every hook site is guarded by
    /// [`SimObserver::ENABLED`], which monomorphization resolves at
    /// compile time: disabled observers leave the hot loop untouched.
    ///
    /// # Errors
    ///
    /// Returns [`LogNicError::WatchdogAbort`] with a structured
    /// progress report when the run exceeds its event budget
    /// ([`SimConfig::max_events`]) instead of hanging.
    pub fn run_with<O: SimObserver>(mut self, obs: &mut O) -> LogNicResult<SimReport> {
        let end = SimTime::from_secs(self.config.duration.as_secs());
        let warmup = SimTime::from_secs(self.config.warmup.as_secs());
        let mut st = RunState {
            queue: match self.config.engine {
                Engine::Calendar => EventQueue::Wheel(CalendarQueue::new(self.wheel_gap_ps)),
                Engine::ReferenceHeap => EventQueue::Heap(BinaryHeap::new()),
            },
            seq: 0,
            arena: PacketArena::new(),
            scratch_expired: Vec::new(),
            injected: 0,
            total_injected: 0,
            completed: 0,
            completed_bytes_in_window: 0,
            good_bytes_in_window: 0,
            dropped: 0,
            retries: 0,
            timed_out: 0,
            corrupted: 0,
            recorder: LatencyRecorder::new(),
            class_completed: Vec::new(),
            class_bytes: Vec::new(),
            class_latency: Vec::new(),
        };

        if O::ENABLED {
            let meta = RunMeta {
                seed: self.config.seed,
                duration: end,
                warmup,
                nodes: self
                    .nodes
                    .iter()
                    .map(|n| NodeMeta {
                        name: n.name.clone(),
                        engines: n.runtime.as_ref().map(|rt| rt.engines).unwrap_or(0),
                        queue_capacity: n
                            .runtime
                            .as_ref()
                            .map(|rt| rt.queue.capacity())
                            .unwrap_or(0),
                    })
                    .collect(),
                ingress: self.ingress as u32,
                egress: self.egress as u32,
            };
            obs.on_run_start(&meta);
            // Fault windows are static schedules: report them up front
            // (in node order) rather than detecting transitions in the
            // hot loop.
            for (i, n) in self.nodes.iter().enumerate() {
                if let Some(rt) = n.runtime.as_ref() {
                    for &(from, until, kind) in rt.faults.windows() {
                        obs.on_fault_window(i as u32, observed_kind(kind), from, until);
                    }
                }
            }
        }

        if !self.source.is_silent() {
            if let Some(first) = self.source.next_injection(&mut self.rng) {
                let t = SimTime::ZERO + first.gap;
                if t <= end {
                    let h = st
                        .arena
                        .alloc(Packet::new(first.id, first.size, t, first.class));
                    st.push(t, Ev::arrive(self.ingress, h));
                    st.push(t, Ev::inject());
                }
            }
        }

        let mut processed: u64 = 0;
        let mut last = end;
        while let Some((time_ps, _seq, ev)) = st.queue.pop() {
            processed += 1;
            let now = SimTime::from_picos(time_ps);
            if O::ENABLED && now > last {
                last = now;
            }
            if processed > self.max_events {
                let in_flight: u64 = self
                    .nodes
                    .iter()
                    .filter_map(|nd| nd.runtime.as_ref())
                    .map(|rt| rt.busy as u64 + rt.queue.len() as u64)
                    .sum();
                return Err(LogNicError::WatchdogAbort {
                    events: processed,
                    sim_time: now.as_secs(),
                    injected: st.total_injected,
                    in_flight,
                });
            }
            match ev.kind() {
                K_INJECT => {
                    if st.total_injected + 1 >= self.config.max_packets {
                        continue;
                    }
                    let Some(inj) = self.source.next_injection(&mut self.rng) else {
                        continue; // trace exhausted
                    };
                    let t = now + inj.gap;
                    if t <= end {
                        let h = st.arena.alloc(Packet::new(inj.id, inj.size, t, inj.class));
                        st.push(t, Ev::arrive(self.ingress, h));
                        st.push(t, Ev::inject());
                    }
                }
                K_ARRIVE => {
                    let node = ev.node();
                    if node == self.ingress {
                        st.total_injected += 1;
                        if st.arena.get(ev.pkt).injected_at >= warmup {
                            st.injected += 1;
                        }
                        // Injection is observed here — when the packet
                        // enters the system — so the event stream stays
                        // chronological (the K_INJECT handler schedules
                        // the *next* packet one gap into the future).
                        if O::ENABLED {
                            let p = st.arena.get(ev.pkt);
                            obs.on_inject(now, p.id, p.size.get(), p.class);
                        }
                    }
                    self.arrive(node, ev.pkt, now, warmup, end, &mut st, obs);
                }
                _ => {
                    self.finish(ev.node(), ev.pkt, now, warmup, end, &mut st, obs);
                }
            }
        }

        if O::ENABLED {
            obs.on_run_end(last);
        }
        Ok(self.report(end, warmup, st, processed))
    }

    /// Accumulates `node`'s in-system occupancy integral up to
    /// `min(now, horizon)`; call before any occupancy change.
    fn touch_occupancy(&mut self, node: usize, now: SimTime, horizon: SimTime) {
        if let Some(rt) = self.nodes[node].runtime.as_mut() {
            let upto = if now < horizon { now } else { horizon };
            if upto > rt.occupancy_last {
                let span = upto.since(rt.occupancy_last).as_secs();
                let in_system = rt.busy as usize + rt.queue.len();
                rt.occupancy_integral += in_system as f64 * span;
                rt.occupancy_last = upto;
            }
        }
    }

    /// Occupies one engine of `node` for `pkt`; returns the occupancy
    /// span (service plus computation-transfer overhead). Active
    /// rate-degradation windows stretch the service time by the
    /// inverse of the degradation factor.
    fn start_service(&mut self, node: usize, now: SimTime, pkt: &Packet) -> SimTime {
        let rng = &mut self.rng;
        let rt = self.nodes[node].runtime.as_mut().expect("compute node");
        rt.busy += 1;
        let work = pkt.size.scaled(rt.work_factor);
        let mut service = rt.service.service_time(now, pkt, work, rng);
        if !rt.faults.is_empty() {
            let factor = rt.faults.rate_factor_at(now);
            if factor < 1.0 {
                service = SimTime::from_secs(service.as_secs() / factor.max(1e-9));
            }
        }
        let occupancy = service + rt.overhead;
        rt.busy_time += occupancy;
        occupancy
    }

    /// Handles a packet refused at `node` (outage, probabilistic drop
    /// or queue overflow): re-presents it after exponential backoff
    /// while retry budget remains, otherwise drops it with `cause`.
    #[allow(clippy::too_many_arguments)]
    fn fail<O: SimObserver>(
        &mut self,
        node: usize,
        h: PacketHandle,
        now: SimTime,
        warmup: SimTime,
        st: &mut RunState,
        obs: &mut O,
        cause: DropReason,
    ) {
        if let Some(rp) = self.retry {
            let attempts = st.arena.get(h).attempts;
            if attempts < rp.budget() {
                let backoff = SimTime::from_secs(rp.backoff_for(attempts).as_secs());
                let pkt = st.arena.get_mut(h);
                pkt.attempts = attempts + 1;
                if pkt.injected_at >= warmup {
                    st.retries += 1;
                }
                if O::ENABLED {
                    obs.on_retry(
                        now,
                        node as u32,
                        st.arena.get(h).id,
                        attempts + 1,
                        now + backoff,
                    );
                }
                st.push(now + backoff, Ev::arrive(node, h));
                return;
            }
        }
        self.nodes[node].drops += 1;
        if O::ENABLED {
            obs.on_drop(now, node as u32, st.arena.get(h).id, cause);
        }
        if st.arena.get(h).injected_at >= warmup {
            st.dropped += 1;
        }
        st.arena.free(h);
    }

    #[allow(clippy::too_many_arguments)]
    fn arrive<O: SimObserver>(
        &mut self,
        node: usize,
        h: PacketHandle,
        now: SimTime,
        warmup: SimTime,
        end: SimTime,
        st: &mut RunState,
        obs: &mut O,
    ) {
        self.nodes[node].arrivals += 1;
        // Deadline accounting: a packet whose sojourn (including
        // retry backoffs) exceeds the plan-wide deadline is timed out
        // wherever it is next observed, not served.
        if let Some(deadline) = self.deadline {
            let injected_at = st.arena.get(h).injected_at;
            if now.since(injected_at) > deadline {
                self.nodes[node].drops += 1;
                if O::ENABLED {
                    obs.on_drop(
                        now,
                        node as u32,
                        st.arena.get(h).id,
                        DropReason::DeadlineExpired,
                    );
                }
                if injected_at >= warmup {
                    st.dropped += 1;
                    st.timed_out += 1;
                }
                st.arena.free(h);
                return;
            }
        }
        if self.nodes[node].runtime.is_none() {
            // Pure mover: forward immediately (the egress completes).
            self.forward(node, h, now, warmup, end, st, obs);
            return;
        }
        self.touch_occupancy(node, now, end);
        let (busy, engines, has_faults) = {
            let rt = self.nodes[node].runtime.as_ref().expect("compute node");
            (rt.busy, rt.engines, !rt.faults.is_empty())
        };
        let mut credit_penalty = 0;
        if has_faults {
            // Fault checks draw from the RNG only on nodes that
            // actually schedule faults, so fault-free runs keep the
            // exact RNG stream (and golden anchors) of plain builds.
            let (is_out, drop_p, corrupt_p) = {
                let rt = self.nodes[node].runtime.as_ref().expect("compute node");
                (
                    rt.faults.outage_at(now),
                    rt.faults.drop_prob_at(now),
                    rt.faults.corrupt_prob_at(now),
                )
            };
            if is_out {
                self.fail(node, h, now, warmup, st, obs, DropReason::Outage);
                return;
            }
            if drop_p > 0.0 && self.rng.uniform() < drop_p {
                self.fail(node, h, now, warmup, st, obs, DropReason::FaultDrop);
                return;
            }
            if corrupt_p > 0.0 && self.rng.uniform() < corrupt_p {
                st.arena.get_mut(h).corrupted = true;
            }
            credit_penalty = self.nodes[node]
                .runtime
                .as_ref()
                .expect("compute node")
                .faults
                .credit_loss_at(now);
        }
        if busy < engines {
            let occupancy = self.start_service(node, now, st.arena.get(h));
            if O::ENABLED {
                obs.on_service_start(now, node as u32, st.arena.get(h).id, occupancy);
            }
            st.push(now + occupancy, Ev::done(node, h));
            return;
        }
        let class = st.arena.get(h).class;
        let (admitted, depth) = {
            let rt = self.nodes[node].runtime.as_mut().expect("compute node");
            let admitted = rt.queue.enqueue(h, class, busy, credit_penalty);
            (admitted, rt.queue.len())
        };
        if admitted {
            if O::ENABLED {
                obs.on_enqueue(now, node as u32, st.arena.get(h).id, depth as u32);
            }
            if depth > self.nodes[node].max_queue {
                self.nodes[node].max_queue = depth;
            }
        } else {
            self.fail(node, h, now, warmup, st, obs, DropReason::QueueFull);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish<O: SimObserver>(
        &mut self,
        node: usize,
        h: PacketHandle,
        now: SimTime,
        warmup: SimTime,
        end: SimTime,
        st: &mut RunState,
        obs: &mut O,
    ) {
        self.nodes[node].served += 1;
        if O::ENABLED {
            obs.on_complete(now, node as u32, st.arena.get(h).id);
        }
        self.touch_occupancy(node, now, end);
        let deadline = self.deadline;
        let mut expired = std::mem::take(&mut st.scratch_expired);
        let (next, depth_after) = {
            let rt = self.nodes[node]
                .runtime
                .as_mut()
                .expect("Done only on compute nodes");
            rt.busy -= 1;
            // Head-of-line packets whose sojourn already exceeds the
            // plan deadline are reaped instead of served — serving
            // them would waste engine time on answers nobody waits
            // for.
            let next = loop {
                match rt.queue.dequeue() {
                    Some(p) => {
                        if let Some(dl) = deadline {
                            if now.since(st.arena.get(p).injected_at) > dl {
                                expired.push(p);
                                continue;
                            }
                        }
                        break Some(p);
                    }
                    None => break None,
                }
            };
            (next, rt.queue.len())
        };
        for p in expired.drain(..) {
            self.nodes[node].drops += 1;
            if O::ENABLED {
                obs.on_drop(
                    now,
                    node as u32,
                    st.arena.get(p).id,
                    DropReason::DeadlineExpired,
                );
            }
            let injected_at = st.arena.get(p).injected_at;
            st.arena.free(p);
            if injected_at >= warmup {
                st.dropped += 1;
                st.timed_out += 1;
            }
        }
        st.scratch_expired = expired;
        if let Some(next) = next {
            if O::ENABLED {
                obs.on_dequeue(now, node as u32, st.arena.get(next).id, depth_after as u32);
            }
            let occupancy = self.start_service(node, now, st.arena.get(next));
            if O::ENABLED {
                obs.on_service_start(now, node as u32, st.arena.get(next).id, occupancy);
            }
            st.push(now + occupancy, Ev::done(node, next));
        }
        self.forward(node, h, now, warmup, end, st, obs);
    }

    #[allow(clippy::too_many_arguments)]
    fn forward<O: SimObserver>(
        &mut self,
        node: usize,
        h: PacketHandle,
        now: SimTime,
        warmup: SimTime,
        end: SimTime,
        st: &mut RunState,
        obs: &mut O,
    ) {
        if node == self.egress {
            let pkt = *st.arena.get(h);
            st.arena.free(h);
            if O::ENABLED {
                obs.on_deliver(now, pkt.id, pkt.latency_at(now));
            }
            if pkt.injected_at >= warmup {
                st.completed += 1;
                if pkt.corrupted {
                    st.corrupted += 1;
                }
                let latency = pkt.latency_at(now);
                st.recorder.record(latency);
                let c = pkt.class as usize;
                if st.class_completed.len() <= c {
                    st.class_completed.resize(c + 1, 0);
                    st.class_bytes.resize(c + 1, 0);
                    st.class_latency.resize(c + 1, SimTime::ZERO);
                }
                st.class_completed[c] += 1;
                st.class_bytes[c] += pkt.size.get();
                st.class_latency[c] += latency;
            }
            // Delivered rate counts completions *by completion time*
            // inside [warmup, end]; counting by injection time would
            // credit backlog that drains after the horizon and report
            // rates above hardware capacity.
            if now >= warmup && now <= end {
                st.completed_bytes_in_window += pkt.size.get();
                if !pkt.corrupted {
                    st.good_bytes_in_window += pkt.size.get();
                }
            }
            return;
        }
        let outs = &self.out_edges[node];
        if outs.is_empty() {
            st.arena.free(h);
            return;
        }
        let pick = self.rng.pick_cumulative(&self.out_cum[node]);
        let eid = outs[pick];
        let (dst, interface_pp, memory_pp, dedicated, resize) = {
            let e = &self.edges[eid];
            (
                e.dst,
                e.interface_per_packet,
                e.memory_per_packet,
                e.dedicated,
                e.resize,
            )
        };
        // Compression/decompression edges resize the request in place;
        // the resized data is what crosses the media and what
        // downstream stages compute on.
        if (resize - 1.0).abs() > f64::EPSILON {
            let p = st.arena.get_mut(h);
            p.size = p.size.scaled(resize);
        }
        let size = st.arena.get(h).size;

        // Finite ingress buffering: transfers issued by the ingress
        // engine are refused (RX overflow) once a medium's backlog
        // exceeds the cap. Mid-pipeline transfers are never refused —
        // their packets already occupy on-chip resources and drain the
        // backlog, so dropping them would deadlock the pipeline's
        // share of a saturated medium.
        let cap = if node == self.ingress {
            self.backlog_cap
        } else {
            SimTime::MAX
        };
        let mut t = Some(now);
        if interface_pp > 0.0 {
            t = t.and_then(|at| self.media[0].try_acquire(at, size.scaled(interface_pp), cap));
        }
        if memory_pp > 0.0 {
            t = t.and_then(|at| self.media[1].try_acquire(at, size.scaled(memory_pp), cap));
        }
        if let Some(d) = dedicated {
            t = t.and_then(|at| self.media[d].try_acquire(at, size, cap));
        }
        match t {
            Some(at) if at != SimTime::MAX => {
                st.push(at, Ev::arrive(dst, h));
            }
            _ => {
                // Medium starved or its buffering overflowed. Media
                // rejections are not retried — the packet never held
                // node credits, and RX overflow under sustained
                // overload would retry forever.
                self.nodes[node].drops += 1;
                if O::ENABLED {
                    obs.on_drop(
                        now,
                        node as u32,
                        st.arena.get(h).id,
                        DropReason::MediaBacklog,
                    );
                }
                let injected_at = st.arena.get(h).injected_at;
                st.arena.free(h);
                if injected_at >= warmup {
                    st.dropped += 1;
                }
            }
        }
    }

    fn report(&self, end: SimTime, warmup: SimTime, st: RunState, events: u64) -> SimReport {
        let window = end.since(warmup).to_seconds();
        let secs = window.as_secs().max(f64::MIN_POSITIVE);
        let nodes = self
            .nodes
            .iter()
            .map(|n| NodeReport {
                name: n.name.clone(),
                arrivals: n.arrivals,
                served: n.served,
                drops: n.drops,
                max_queue: n.max_queue,
                utilization: n
                    .runtime
                    .as_ref()
                    .map(|rt| {
                        (rt.busy_time.as_secs()
                            / (end.as_secs().max(f64::MIN_POSITIVE) * rt.engines as f64))
                            .min(1.0)
                    })
                    .unwrap_or(0.0),
                mean_occupancy: n
                    .runtime
                    .as_ref()
                    .map(|rt| rt.occupancy_integral / end.as_secs().max(f64::MIN_POSITIVE))
                    .unwrap_or(0.0),
            })
            .collect();
        let media = self
            .media
            .iter()
            .map(|m| MediumReport {
                name: m.name().to_owned(),
                transferred: m.transferred(),
                utilization: m.utilization(end),
            })
            .collect();
        let classes = st
            .class_completed
            .iter()
            .zip(&st.class_bytes)
            .zip(&st.class_latency)
            .map(|((&completed, &bytes), &latency)| ClassReport {
                completed,
                bytes: lognic_model::units::Bytes::new(bytes),
                mean_latency: if completed > 0 {
                    Seconds::new(latency.as_secs() / completed as f64)
                } else {
                    Seconds::ZERO
                },
            })
            .collect();
        SimReport {
            duration: end.to_seconds(),
            window,
            injected: st.injected,
            completed: st.completed,
            dropped: st.dropped,
            offered: self.offered,
            throughput: Bandwidth::bps(st.completed_bytes_in_window as f64 * 8.0 / secs),
            goodput: Bandwidth::bps(st.good_bytes_in_window as f64 * 8.0 / secs),
            retries: st.retries,
            timed_out: st.timed_out,
            corrupted: st.corrupted,
            packet_rate: st.completed as f64 / secs,
            events,
            latency: LatencySummary::from_recorder(&st.recorder),
            classes,
            nodes,
            media,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::params::{EdgeParams, IpParams};
    use lognic_model::units::Bytes;

    fn chain(gbps: f64, queue: u32) -> ExecutionGraph {
        ExecutionGraph::chain(
            "t",
            &[(
                "ip",
                IpParams::new(Bandwidth::gbps(gbps)).with_queue_capacity(queue),
            )],
        )
        .unwrap()
    }

    fn fast_hw() -> HardwareModel {
        HardwareModel::new(Bandwidth::gbps(10_000.0), Bandwidth::gbps(10_000.0))
    }

    fn run(g: &ExecutionGraph, hw: &HardwareModel, t: &TrafficProfile) -> SimReport {
        Simulation::builder(g, hw, t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .run()
            .unwrap()
    }

    #[test]
    fn underloaded_chain_delivers_offered_rate() {
        let g = chain(10.0, 256);
        let t = TrafficProfile::fixed(Bandwidth::gbps(2.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        assert!(r.completed > 1000, "completed = {}", r.completed);
        let err = (r.throughput.as_gbps() - 2.0).abs() / 2.0;
        assert!(err < 0.05, "throughput = {} ({err})", r.throughput);
        assert!(r.loss_rate() < 0.01);
    }

    #[test]
    fn overloaded_chain_saturates_at_capacity() {
        let g = chain(5.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(20.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        let got = r.throughput.as_gbps();
        assert!((got - 5.0).abs() / 5.0 < 0.07, "throughput = {got}");
        assert!(r.dropped > 0, "overload must drop");
        let ip = r.node("ip").unwrap();
        assert!(ip.utilization > 0.9, "utilization = {}", ip.utilization);
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let g = chain(5.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(512));
        let a = run(&g, &fast_hw(), &t);
        let b = run(&g, &fast_hw(), &t);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let g = chain(5.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(512));
        let a = Simulation::builder(&g, &fast_hw(), &t)
            .seed(1)
            .run()
            .unwrap();
        let b = Simulation::builder(&g, &fast_hw(), &t)
            .seed(2)
            .run()
            .unwrap();
        assert_ne!(a.latency.mean, b.latency.mean);
    }

    #[test]
    fn conservation_injected_equals_completed_plus_dropped_plus_inflight() {
        let g = chain(5.0, 8);
        let t = TrafficProfile::fixed(Bandwidth::gbps(6.0), Bytes::new(1500));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::ZERO)
            .run()
            .unwrap();
        // With zero warmup and full drain, every injected packet either
        // completed or was dropped.
        assert_eq!(r.injected, r.completed + r.dropped);
    }

    #[test]
    fn latency_grows_with_load() {
        let g = chain(10.0, 512);
        let low = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(1500));
        let high = TrafficProfile::fixed(Bandwidth::gbps(9.0), Bytes::new(1500));
        let rl = run(&g, &fast_hw(), &low);
        let rh = run(&g, &fast_hw(), &high);
        assert!(rh.latency.mean > rl.latency.mean);
        assert!(rh.latency.p99 >= rh.latency.p50);
    }

    #[test]
    fn tiny_queue_drops_under_bursts() {
        let g = chain(10.0, 1);
        let t = TrafficProfile::fixed(Bandwidth::gbps(8.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        assert!(r.loss_rate() > 0.1, "loss = {}", r.loss_rate());
    }

    #[test]
    fn fanout_routes_by_delta() {
        let mut b = ExecutionGraph::builder("f");
        let ing = b.ingress("in");
        let a = b.ip(
            "a",
            IpParams::new(Bandwidth::gbps(100.0)).with_queue_capacity(256),
        );
        let c = b.ip(
            "c",
            IpParams::new(Bandwidth::gbps(100.0)).with_queue_capacity(256),
        );
        let eg = b.egress("out");
        b.edge(ing, a, EdgeParams::new(0.8).unwrap());
        b.edge(ing, c, EdgeParams::new(0.2).unwrap());
        b.edge(a, eg, EdgeParams::new(0.8).unwrap());
        b.edge(c, eg, EdgeParams::new(0.2).unwrap());
        let g = b.build().unwrap();
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        let na = r.node("a").unwrap().arrivals as f64;
        let nc = r.node("c").unwrap().arrivals as f64;
        let frac = na / (na + nc);
        assert!((frac - 0.8).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn shared_interface_limits_throughput() {
        // IP is fast, interface is 5 Gb/s and both edges use it fully:
        // each packet crosses twice → ~2.5 Gb/s delivered.
        let g = chain(1000.0, 256);
        let hw = HardwareModel::new(Bandwidth::gbps(5.0), Bandwidth::gbps(10_000.0));
        let t = TrafficProfile::fixed(Bandwidth::gbps(20.0), Bytes::new(1500));
        let r = run(&g, &hw, &t);
        let got = r.throughput.as_gbps();
        assert!((got - 2.5).abs() / 2.5 < 0.15, "throughput = {got}");
        let m = r.medium("interface").unwrap();
        assert!(m.utilization > 0.95);
    }

    #[test]
    fn dedicated_link_is_used() {
        let mut b = ExecutionGraph::builder("d");
        let ing = b.ingress("in");
        let ip = b.ip(
            "ip",
            IpParams::new(Bandwidth::gbps(100.0)).with_queue_capacity(64),
        );
        let eg = b.egress("out");
        b.edge(
            ing,
            ip,
            EdgeParams::full()
                .with_interface_fraction(0.0)
                .with_dedicated_bandwidth(Bandwidth::gbps(3.0)),
        );
        b.edge(ip, eg, EdgeParams::full().with_interface_fraction(0.0));
        let g = b.build().unwrap();
        let t = TrafficProfile::fixed(Bandwidth::gbps(10.0), Bytes::new(1500));
        let r = run(&g, &fast_hw(), &t);
        let got = r.throughput.as_gbps();
        assert!((got - 3.0).abs() / 3.0 < 0.1, "throughput = {got}");
        assert!(r.medium("link#0").unwrap().transferred > Bytes::new(0));
    }

    #[test]
    fn zero_traffic_runs_empty() {
        use lognic_model::analyze::{Code, Severity};
        let g = chain(10.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::ZERO, Bytes::new(64));
        // A zero ingress rate is denied by default; the degenerate run
        // is still reachable by explicitly allowing L0402.
        let denied = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .run();
        assert!(matches!(denied, Err(LogNicError::AnalysisRejected { .. })));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .analysis(
                AnalysisConfig::default().set_severity(Code::ZeroIngressRate, Severity::Allow),
            )
            .run()
            .unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.injected, 0);
        assert_eq!(r.latency.count, 0);
    }

    #[test]
    fn build_surfaces_analysis_warnings() {
        use lognic_model::analyze::Code;
        // ρ = 2.5 on the compute bound: warned, not denied.
        let g = chain(10.0, 256);
        let t = TrafficProfile::fixed(Bandwidth::gbps(25.0), Bytes::new(1500));
        let sim = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .build()
            .unwrap();
        assert!(sim
            .analysis_warnings()
            .iter()
            .any(|d| d.code == Code::SaturatedPartition));
        // Escalating warnings rejects the same scenario.
        let strict = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .analysis(AnalysisConfig::default().deny_warnings(true))
            .build();
        assert!(matches!(strict, Err(LogNicError::AnalysisRejected { .. })));
        // A clean scenario carries no warnings.
        let calm = TrafficProfile::fixed(Bandwidth::gbps(2.0), Bytes::new(1500));
        let sim = Simulation::builder(&g, &fast_hw(), &calm)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .build()
            .unwrap();
        assert!(sim.analysis_warnings().is_empty());
    }

    #[test]
    fn paced_deterministic_run_has_low_variance() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .arrival(ArrivalProcess::Paced)
            .service_dist(ServiceDist::Deterministic)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::millis(1.0))
            .run()
            .unwrap();
        // With pacing at 50% load there is no queueing at all: every
        // packet sees the same latency.
        assert!(r.latency.max.as_secs() - r.latency.p50.as_secs() < 1e-9);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn parallel_engines_increase_capacity() {
        // Four engines at the same per-engine rate quadruple the
        // node's aggregate capacity.
        let p1 = IpParams::new(Bandwidth::gbps(5.0)).with_queue_capacity(128);
        let p4 = IpParams::new(Bandwidth::gbps(20.0))
            .with_parallelism(4)
            .with_queue_capacity(128);
        let g1 = ExecutionGraph::chain("d1", &[("ip", p1)]).unwrap();
        let g4 = ExecutionGraph::chain("d4", &[("ip", p4)]).unwrap();
        let t = TrafficProfile::fixed(Bandwidth::gbps(18.0), Bytes::new(1500));
        let r1 = run(&g1, &fast_hw(), &t);
        let r4 = run(&g4, &fast_hw(), &t);
        assert!(
            (r1.throughput.as_gbps() - 5.0).abs() / 5.0 < 0.08,
            "{}",
            r1.throughput
        );
        assert!(
            (r4.throughput.as_gbps() - 18.0).abs() / 18.0 < 0.08,
            "{}",
            r4.throughput
        );
        assert!(
            r4.latency.mean < r1.latency.mean,
            "the overloaded D=1 node queues hard"
        );
    }

    #[test]
    fn wrr_plan_isolates_tenant_drops() {
        use crate::wrr::{QueuePlan, QueueSpec};
        use lognic_model::params::PacketSizeDist;
        // Two classes share one node; class 0 floods. With a shared
        // queue, class 1 suffers; with per-class queues it is isolated.
        let g = ExecutionGraph::chain(
            "iso",
            &[(
                "ip",
                IpParams::new(Bandwidth::gbps(5.0)).with_queue_capacity(16),
            )],
        )
        .unwrap();
        let dist = PacketSizeDist::mix([
            (Bytes::new(1000), 0.8), // class 0: the aggressor
            (Bytes::new(1000), 0.2), // class 1: the victim
        ])
        .unwrap();
        let t = TrafficProfile::new(Bandwidth::gbps(8.0), dist);
        let plan = QueuePlan::weighted(vec![
            QueueSpec {
                capacity: 8,
                weight: 1,
            },
            QueueSpec {
                capacity: 8,
                weight: 1,
            },
        ]);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .override_queues("ip", plan)
            .run()
            .unwrap();
        // The node is overloaded (8 > 5 Gb/s): drops happen, but the
        // victim's share of completions stays near its 20% offered
        // share because the WRR scheduler serves both queues equally
        // and the victim's queue rarely fills.
        assert!(r.dropped > 0);
        let ip = r.node("ip").unwrap();
        assert!(ip.drops > 0);
        // Delivered rate equals the node capacity.
        assert!(
            (r.throughput.as_gbps() - 5.0).abs() / 5.0 < 0.08,
            "{}",
            r.throughput
        );
    }

    #[test]
    fn wrr_weights_shape_service_shares_under_overload() {
        use crate::wrr::{QueuePlan, QueueSpec};
        use lognic_model::params::PacketSizeDist;
        // Equal offered shares, 3:1 weights: completions skew 3:1.
        let g = ExecutionGraph::chain(
            "wrr",
            &[(
                "ip",
                IpParams::new(Bandwidth::gbps(4.0)).with_queue_capacity(16),
            )],
        )
        .unwrap();
        let dist = PacketSizeDist::mix([(Bytes::new(1000), 0.5), (Bytes::new(1000), 0.5)]).unwrap();
        let t = TrafficProfile::new(Bandwidth::gbps(12.0), dist);
        let plan = QueuePlan::weighted(vec![
            QueueSpec {
                capacity: 16,
                weight: 3,
            },
            QueueSpec {
                capacity: 16,
                weight: 1,
            },
        ]);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::millis(2.0))
            .override_queues("ip", plan)
            .run()
            .unwrap();
        assert!(
            (r.throughput.as_gbps() - 4.0).abs() / 4.0 < 0.08,
            "{}",
            r.throughput
        );
        assert!(r.loss_rate() > 0.5, "loss = {}", r.loss_rate());
        // Completions skew toward the weight-3 class.
        let share0 = r.class_share(0);
        assert!((share0 - 0.75).abs() < 0.05, "class-0 share = {share0}");
    }

    #[test]
    fn trace_replay_drives_the_simulation() {
        use crate::traffic::Trace;
        // 1000 paced packets of 1000 B every 2 µs = 4 Gb/s.
        let events: Vec<_> = (0..1000)
            .map(|i| (SimTime::from_micros(2.0 * i as f64), Bytes::new(1000), 0u32))
            .collect();
        let trace = Trace::from_events(events);
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(1000));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .with_trace(trace)
            .duration(Seconds::millis(2.0))
            .warmup(Seconds::ZERO)
            .run()
            .unwrap();
        assert_eq!(r.injected, 1000);
        assert_eq!(r.dropped, 0);
        assert!(
            (r.throughput.as_gbps() - 4.0).abs() < 0.1,
            "{}",
            r.throughput
        );
    }

    #[test]
    fn empty_trace_is_silent() {
        use crate::traffic::Trace;
        let g = chain(10.0, 16);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(1000));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .with_trace(Trace::default())
            .duration(Seconds::millis(1.0))
            .warmup(Seconds::ZERO)
            .run()
            .unwrap();
        assert_eq!(r.injected, 0);
        assert_eq!(r.completed, 0);
    }

    #[test]
    fn outage_drops_traffic_during_the_window() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let healthy = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::ZERO)
            .run()
            .unwrap();
        let faulty = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::ZERO)
            .inject_outage("ip", Seconds::millis(2.0), Seconds::millis(6.0))
            .run()
            .unwrap();
        assert_eq!(healthy.dropped, 0);
        // The 4 ms outage kills ~40% of the packets.
        let loss = faulty.loss_rate();
        assert!((loss - 0.4).abs() < 0.05, "loss = {loss}");
        // Conservation still holds under faults.
        assert_eq!(faulty.injected, faulty.completed + faulty.dropped);
    }

    #[test]
    fn outage_outside_window_is_harmless() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::ZERO)
            .inject_outage("ip", Seconds::millis(50.0), Seconds::millis(60.0))
            .run()
            .unwrap();
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn builder_debug_and_config() {
        let g = chain(1.0, 4);
        let hw = fast_hw();
        let t = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(64));
        let b = Simulation::builder(&g, &hw, &t).config(SimConfig::default());
        assert!(format!("{b:?}").contains("SimulationBuilder"));
        let sim = b.build().unwrap();
        assert!(format!("{sim:?}").contains("Simulation"));
    }

    #[test]
    fn retry_recovers_outage_refusals() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let plan = FaultPlan::new()
            .outage("ip", Seconds::millis(2.0), Seconds::millis(3.0))
            .with_retry(RetryPolicy::new(8, Seconds::micros(200.0)));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::ZERO)
            .with_fault_plan(plan)
            .run()
            .unwrap();
        // A 1 ms outage refuses ~10 % of arrivals, but exponential
        // backoff (200 µs base) re-submits them past the window: with
        // a budget of 8 the longest cumulative backoff is ~51 ms, so
        // essentially every refused packet eventually lands.
        assert!(r.retries > 0, "outage must trigger retries");
        assert!(
            r.loss_rate() < 0.01,
            "retries should recover the outage: loss {} retries {}",
            r.loss_rate(),
            r.retries
        );
        assert_eq!(r.injected, r.completed + r.dropped, "conservation");
    }

    #[test]
    fn zero_budget_matches_plain_outage() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let run_with = |plan: FaultPlan| {
            Simulation::builder(&g, &fast_hw(), &t)
                .duration(Seconds::millis(10.0))
                .warmup(Seconds::ZERO)
                .with_fault_plan(plan)
                .run()
                .unwrap()
        };
        let outage = FaultPlan::new().outage("ip", Seconds::millis(2.0), Seconds::millis(6.0));
        let plain = run_with(outage.clone());
        let zero_budget = run_with(outage.with_retry(RetryPolicy::new(0, Seconds::micros(100.0))));
        assert_eq!(plain.dropped, zero_budget.dropped);
        assert_eq!(zero_budget.retries, 0);
    }

    #[test]
    fn rate_degradation_throttles_the_node() {
        let g = chain(10.0, 8);
        let t = TrafficProfile::fixed(Bandwidth::gbps(8.0), Bytes::new(1000));
        let horizon = Seconds::millis(20.0);
        let plan = FaultPlan::new().degrade_rate("ip", 0.25, Seconds::ZERO, horizon);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(horizon)
            .warmup(Seconds::millis(4.0))
            .with_fault_plan(plan)
            .run()
            .unwrap();
        // Serving at 25 % of 10 Gb/s caps delivery near 2.5 Gb/s; the
        // short queue sheds the rest.
        assert!(
            (r.throughput.as_gbps() - 2.5).abs() < 0.4,
            "degraded throughput {}",
            r.throughput
        );
        assert!(r.loss_rate() > 0.5, "overload must shed load");
    }

    #[test]
    fn packet_drop_probability_is_respected() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(2.0), Bytes::new(1000));
        let horizon = Seconds::millis(20.0);
        let plan = FaultPlan::new().drop_packets("ip", 0.3, Seconds::ZERO, horizon);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(horizon)
            .warmup(Seconds::ZERO)
            .with_fault_plan(plan)
            .run()
            .unwrap();
        let loss = r.loss_rate();
        assert!((loss - 0.3).abs() < 0.03, "loss {loss} should be ~0.3");
    }

    #[test]
    fn corruption_reduces_goodput_not_throughput() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(2.0), Bytes::new(1000));
        let horizon = Seconds::millis(20.0);
        let plan = FaultPlan::new().corrupt_packets("ip", 0.5, Seconds::ZERO, horizon);
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(horizon)
            .warmup(Seconds::ZERO)
            .with_fault_plan(plan)
            .run()
            .unwrap();
        assert_eq!(r.dropped, 0, "corruption does not drop packets");
        assert!(r.corrupted > 0);
        let ratio = r.goodput.as_bps() / r.throughput.as_bps();
        assert!((ratio - 0.5).abs() < 0.05, "goodput ratio {ratio}");
    }

    #[test]
    fn credit_loss_shrinks_the_queue() {
        let g = chain(10.0, 32);
        // Push hard so the queue bound is what matters.
        let t = TrafficProfile::fixed(Bandwidth::gbps(12.0), Bytes::new(1000));
        let horizon = Seconds::millis(10.0);
        let run_with = |plan: FaultPlan| {
            Simulation::builder(&g, &fast_hw(), &t)
                .duration(horizon)
                .warmup(Seconds::ZERO)
                .with_fault_plan(plan)
                .run()
                .unwrap()
        };
        let full = run_with(FaultPlan::new());
        let starved = run_with(FaultPlan::new().lose_credits("ip", 28, Seconds::ZERO, horizon));
        assert!(
            starved.node("ip").unwrap().max_queue < full.node("ip").unwrap().max_queue,
            "lost credits must cap the backlog: {} vs {}",
            starved.node("ip").unwrap().max_queue,
            full.node("ip").unwrap().max_queue
        );
        assert!(starved.dropped > full.dropped);
    }

    #[test]
    fn deadline_times_out_backlogged_packets() {
        // 1-wide queue at heavy overload: sojourns grow until the
        // deadline reaps them.
        let g = chain(2.0, 256);
        let t = TrafficProfile::fixed(Bandwidth::gbps(4.0), Bytes::new(1000));
        let plan = FaultPlan::new().with_deadline(Seconds::micros(30.0));
        let r = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .warmup(Seconds::ZERO)
            .with_fault_plan(plan)
            .run()
            .unwrap();
        assert!(r.timed_out > 0, "overload must breach a 30 µs deadline");
        assert!(r.timed_out <= r.dropped, "timeouts are a kind of drop");
        // A packet passes the deadline gate at dequeue and then holds
        // an engine for one (exponential) service draw, so completed
        // latency is bounded by deadline + the service tail — far
        // below the ~1 ms head-of-line delay of a full 256-deep queue.
        assert!(
            r.latency.max.as_micros() <= 150.0,
            "deadline must bound completed sojourns: {}",
            r.latency.max
        );
    }

    #[test]
    fn faulted_runs_are_deterministic_per_seed() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let run_seeded = |seed: u64| {
            let plan = FaultPlan::new()
                .outage("ip", Seconds::millis(1.0), Seconds::millis(2.0))
                .drop_packets("ip", 0.1, Seconds::millis(3.0), Seconds::millis(5.0))
                .corrupt_packets("ip", 0.1, Seconds::millis(5.0), Seconds::millis(7.0))
                .with_retry(RetryPolicy::new(3, Seconds::micros(50.0)));
            Simulation::builder(&g, &fast_hw(), &t)
                .seed(seed)
                .duration(Seconds::millis(8.0))
                .warmup(Seconds::ZERO)
                .with_fault_plan(plan)
                .run()
                .unwrap()
        };
        assert_eq!(run_seeded(7), run_seeded(7), "same seed, same bits");
        assert_ne!(run_seeded(7), run_seeded(8), "fault draws follow the seed");
    }

    #[test]
    fn fault_free_plan_preserves_the_rng_stream() {
        // Installing an *empty* plan (or one with a retry policy but
        // no windows) must not perturb the event sequence.
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let plain = Simulation::builder(&g, &fast_hw(), &t)
            .seed(3)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::ZERO)
            .run()
            .unwrap();
        let with_empty_plan = Simulation::builder(&g, &fast_hw(), &t)
            .seed(3)
            .duration(Seconds::millis(5.0))
            .warmup(Seconds::ZERO)
            .with_fault_plan(
                FaultPlan::new().with_retry(RetryPolicy::new(4, Seconds::micros(10.0))),
            )
            .run()
            .unwrap();
        assert_eq!(plain, with_empty_plan);
    }

    #[test]
    fn watchdog_aborts_with_a_structured_report() {
        let g = chain(10.0, 64);
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let err = Simulation::builder(&g, &fast_hw(), &t)
            .duration(Seconds::millis(10.0))
            .config(SimConfig {
                max_events: 50,
                duration: Seconds::millis(10.0),
                warmup: Seconds::ZERO,
                ..SimConfig::default()
            })
            .run()
            .unwrap_err();
        match err {
            LogNicError::WatchdogAbort {
                events, injected, ..
            } => {
                assert_eq!(events, 51, "aborts on the first event past the budget");
                assert!(injected > 0);
            }
            other => panic!("expected WatchdogAbort, got {other}"),
        }
    }

    #[test]
    fn build_rejects_malformed_inputs_with_typed_errors() {
        let g = chain(10.0, 64);
        let hw = fast_hw();
        let t = TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1000));
        let base = || Simulation::builder(&g, &hw, &t);

        let err = base()
            .inject_outage("ghost", Seconds::ZERO, Seconds::millis(1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, LogNicError::UnknownNode { .. }), "{err}");

        let err = base()
            .inject_outage("ip", Seconds::millis(2.0), Seconds::millis(1.0))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, LogNicError::InvalidFaultWindow { .. }),
            "{err}"
        );

        let err = base()
            .with_fault_plan(FaultPlan::new().drop_packets(
                "ip",
                1.5,
                Seconds::ZERO,
                Seconds::millis(1.0),
            ))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, LogNicError::InvalidFaultParameter { .. }),
            "{err}"
        );

        let err = base()
            .override_service(
                "ghost",
                Box::new(RateService::new(
                    Bandwidth::gbps(1.0),
                    ServiceDist::Exponential,
                )),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, LogNicError::UnknownNode { .. }), "{err}");

        let err = base()
            .config(SimConfig {
                warmup: Seconds::millis(10.0),
                duration: Seconds::millis(1.0),
                ..SimConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, LogNicError::InvalidConfig { .. }), "{err}");

        let err = base()
            .config(SimConfig {
                max_packets: 0,
                ..SimConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, LogNicError::InvalidConfig { .. }), "{err}");
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;

    use lognic_model::params::IpParams;
    use lognic_model::units::Bytes;

    fn pipeline() -> ExecutionGraph {
        ExecutionGraph::chain(
            "p",
            &[
                (
                    "parse",
                    IpParams::new(Bandwidth::gbps(12.0)).with_parallelism(2),
                ),
                (
                    "crypto",
                    IpParams::new(Bandwidth::gbps(8.0)).with_queue_capacity(24),
                ),
                ("dma", IpParams::new(Bandwidth::gbps(16.0))),
            ],
        )
        .unwrap()
    }

    fn hw() -> HardwareModel {
        HardwareModel::new(Bandwidth::gbps(100.0), Bandwidth::gbps(80.0))
    }

    fn run_with(engine: Engine, seed: u64, plan: Option<&FaultPlan>) -> SimReport {
        let g = pipeline();
        let hw = hw();
        let t = TrafficProfile::fixed(Bandwidth::gbps(6.0), Bytes::new(1024));
        let mut b = Simulation::builder(&g, &hw, &t)
            .seed(seed)
            .engine(engine)
            .duration(Seconds::millis(6.0))
            .warmup(Seconds::millis(1.0));
        if let Some(p) = plan {
            b = b.with_fault_plan(p.clone());
        }
        b.run().unwrap()
    }

    #[test]
    fn reference_heap_engine_is_bit_identical() {
        // Both engines pop events in exactly (time, seq) order, so
        // every field of the report — counters, percentiles, media
        // utilizations, even the processed-event total — must match
        // bit for bit across a seed sweep.
        for seed in [1, 7, 42, 1234, 99_999] {
            let wheel = run_with(Engine::Calendar, seed, None);
            let heap = run_with(Engine::ReferenceHeap, seed, None);
            assert!(wheel.completed > 0, "seed {seed}: silent run");
            assert_eq!(wheel, heap, "seed {seed}: engines diverged");
        }
    }

    #[test]
    fn engines_agree_under_faults() {
        // Faults exercise the retry/backoff, deadline-reap and
        // corruption paths — all RNG-coupled, so any scheduling
        // divergence would desynchronize the stream and show up here.
        let plan = FaultPlan::new()
            .outage("crypto", Seconds::millis(2.0), Seconds::millis(2.6))
            .drop_packets("parse", 0.05, Seconds::millis(1.5), Seconds::millis(4.0))
            .with_retry(RetryPolicy::new(2, Seconds::micros(40.0)))
            .with_deadline(Seconds::millis(2.0));
        for seed in [3, 17, 4242] {
            let wheel = run_with(Engine::Calendar, seed, Some(&plan));
            let heap = run_with(Engine::ReferenceHeap, seed, Some(&plan));
            assert_eq!(wheel, heap, "seed {seed}: engines diverged under faults");
            assert!(
                wheel.retries > 0 || wheel.dropped > 0,
                "seed {seed}: plan inert"
            );
        }
    }

    #[test]
    fn unknown_nodes_are_aggregated() {
        let g = pipeline();
        let t = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(512));
        // One dangling name keeps the precise single-node error.
        let err = Simulation::builder(&g, &hw(), &t)
            .override_queues("ghost", QueuePlan::single(8))
            .build()
            .unwrap_err();
        assert!(matches!(err, LogNicError::UnknownNode { .. }), "{err}");
        // Several dangling names across different reference kinds come
        // back as one aggregate, in declaration order.
        let err = Simulation::builder(&g, &hw(), &t)
            .override_service(
                "phantom",
                Box::new(RateService::new(
                    Bandwidth::gbps(1.0),
                    ServiceDist::Exponential,
                )),
            )
            .override_queues("ghost", QueuePlan::single(8))
            .inject_outage("wraith", Seconds::millis(1.0), Seconds::millis(2.0))
            .build()
            .unwrap_err();
        match err {
            LogNicError::UnknownNodes { references } => {
                let got: Vec<(&str, &str)> =
                    references.iter().map(|(c, n)| (*c, n.as_str())).collect();
                assert_eq!(
                    got,
                    vec![
                        ("service override", "phantom"),
                        ("queue plan", "ghost"),
                        ("outage", "wraith"),
                    ]
                );
            }
            other => panic!("expected aggregate error, got {other}"),
        }
    }

    #[test]
    fn compiled_fault_plan_runs_like_declarative() {
        let g = pipeline();
        let t = TrafficProfile::fixed(Bandwidth::gbps(6.0), Bytes::new(1024));
        let plan = FaultPlan::new()
            .degrade_rate("crypto", 0.4, Seconds::millis(2.0), Seconds::millis(4.0))
            .with_retry(RetryPolicy::new(1, Seconds::micros(25.0)));
        let compiled = CompiledFaultPlan::compile(&plan, &g).unwrap();
        for seed in [5, 55] {
            let declarative = Simulation::builder(&g, &hw(), &t)
                .seed(seed)
                .with_fault_plan(plan.clone())
                .run()
                .unwrap();
            let shared = Simulation::builder(&g, &hw(), &t)
                .seed(seed)
                .with_compiled_faults(&compiled)
                .run()
                .unwrap();
            assert_eq!(declarative, shared, "seed {seed}");
        }
    }
}
