//! Packets flowing through the simulated SmartNIC.

use crate::time::SimTime;
use lognic_model::units::Bytes;

/// One simulated packet (or request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Monotonically increasing injection id.
    pub id: u64,
    /// Wire size of the packet.
    pub size: Bytes,
    /// When the packet entered the ingress engine.
    pub injected_at: SimTime,
    /// Traffic-class tag: the index of the packet's size entry in the
    /// profile's `dist_size`. Device models use it to distinguish
    /// request kinds sharing a size (e.g. reads vs writes).
    pub class: u32,
    /// Set when a [`FaultKind::PacketCorruption`] window flipped the
    /// packet's payload. Corrupted packets still traverse (and load)
    /// the pipeline but are excluded from goodput at the egress.
    ///
    /// [`FaultKind::PacketCorruption`]: lognic_model::fault::FaultKind
    pub corrupted: bool,
    /// Retry attempts consumed so far under a
    /// [`RetryPolicy`](lognic_model::fault::RetryPolicy). Carried on
    /// the packet (instead of a `HashMap<id, u32>` side table) so the
    /// egress path never hashes.
    pub attempts: u32,
}

impl Packet {
    /// Creates a packet.
    pub fn new(id: u64, size: Bytes, injected_at: SimTime, class: u32) -> Self {
        Packet {
            id,
            size,
            injected_at,
            class,
            corrupted: false,
            attempts: 0,
        }
    }

    /// The packet's sojourn time as of `now`.
    pub fn latency_at(&self, now: SimTime) -> SimTime {
        now.since(self.injected_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_measures_since_injection() {
        let p = Packet::new(0, Bytes::new(64), SimTime::from_nanos(100.0), 0);
        assert_eq!(
            p.latency_at(SimTime::from_nanos(250.0)),
            SimTime::from_nanos(150.0)
        );
        // Clock can never run backwards past injection; saturates.
        assert_eq!(p.latency_at(SimTime::from_nanos(50.0)), SimTime::ZERO);
    }

    #[test]
    fn fields_are_preserved() {
        let p = Packet::new(7, Bytes::new(1500), SimTime::ZERO, 3);
        assert_eq!(p.id, 7);
        assert_eq!(p.size, Bytes::new(1500));
        assert_eq!(p.class, 3);
    }
}
