//! Shared communication media (interface, memory, dedicated links).
//!
//! A medium serializes transfers FIFO at its bandwidth: a transfer
//! starting while the medium is busy waits for the in-flight transfers
//! to drain. This first-order contention model matches the analytical
//! model's aggregate-bandwidth bounds while producing realistic
//! transfer-level interleaving.

use crate::time::SimTime;
use lognic_model::units::{Bandwidth, Bytes};

/// A bandwidth-serialized communication resource.
#[derive(Debug, Clone)]
pub struct Medium {
    name: String,
    bandwidth: Bandwidth,
    next_free: SimTime,
    busy: SimTime,
    transferred: u64,
}

impl Medium {
    /// Creates a medium with the given aggregate bandwidth.
    pub fn new(name: &str, bandwidth: Bandwidth) -> Self {
        Medium {
            name: name.to_owned(),
            bandwidth,
            next_free: SimTime::ZERO,
            busy: SimTime::ZERO,
            transferred: 0,
        }
    }

    /// The medium's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Reserves the medium for `bytes` starting no earlier than `now`;
    /// returns the completion time. Zero-byte transfers complete
    /// immediately and zero-bandwidth media block forever
    /// ([`SimTime::MAX`]).
    pub fn acquire(&mut self, now: SimTime, bytes: Bytes) -> SimTime {
        self.try_acquire(now, bytes, SimTime::MAX)
            .expect("unbounded acquire cannot fail")
    }

    /// Like [`Self::acquire`], but refuses the transfer (returning
    /// `None`) when the medium's reservation backlog already extends
    /// more than `max_backlog` past `now`. This models the finite
    /// buffering in front of a saturated interconnect: without it, an
    /// overdriven medium would accumulate an unbounded queue and
    /// starve later pipeline stages of their share.
    pub fn try_acquire(
        &mut self,
        now: SimTime,
        bytes: Bytes,
        max_backlog: SimTime,
    ) -> Option<SimTime> {
        if bytes.get() == 0 {
            return Some(now);
        }
        if self.bandwidth.is_zero() {
            return Some(SimTime::MAX);
        }
        if self.next_free.since(now) > max_backlog {
            return None;
        }
        let start = now.max(self.next_free);
        let duration = SimTime::from_secs(self.bandwidth.transfer_time(bytes).as_secs());
        let end = start + duration;
        self.next_free = end;
        self.busy += duration;
        self.transferred += bytes.get();
        Some(end)
    }

    /// Total bytes moved so far.
    pub fn transferred(&self) -> Bytes {
        Bytes::new(self.transferred)
    }

    /// Fraction of `elapsed` the medium spent transferring.
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_secs() / elapsed.as_secs()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_at_bandwidth() {
        let mut m = Medium::new("intf", Bandwidth::gbps(8.0));
        // 1000 B at 8 Gb/s = 1 µs.
        let end = m.acquire(SimTime::ZERO, Bytes::new(1000));
        assert_eq!(end, SimTime::from_micros(1.0));
        assert_eq!(m.transferred(), Bytes::new(1000));
        assert_eq!(m.name(), "intf");
    }

    #[test]
    fn back_to_back_transfers_serialize() {
        let mut m = Medium::new("intf", Bandwidth::gbps(8.0));
        let e1 = m.acquire(SimTime::ZERO, Bytes::new(1000));
        // Second transfer issued at t=0 must wait for the first.
        let e2 = m.acquire(SimTime::ZERO, Bytes::new(1000));
        assert_eq!(e1, SimTime::from_micros(1.0));
        assert_eq!(e2, SimTime::from_micros(2.0));
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut m = Medium::new("intf", Bandwidth::gbps(8.0));
        let _ = m.acquire(SimTime::ZERO, Bytes::new(1000));
        // Issued long after the medium went idle.
        let e2 = m.acquire(SimTime::from_micros(10.0), Bytes::new(1000));
        assert_eq!(e2, SimTime::from_micros(11.0));
        // Busy time is 2 µs over 11 µs elapsed.
        assert!((m.utilization(SimTime::from_micros(11.0)) - 2.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_complete_instantly() {
        let mut m = Medium::new("intf", Bandwidth::gbps(1.0));
        assert_eq!(
            m.acquire(SimTime::from_nanos(5.0), Bytes::new(0)),
            SimTime::from_nanos(5.0)
        );
        assert_eq!(m.transferred(), Bytes::new(0));
    }

    #[test]
    fn zero_bandwidth_blocks_forever() {
        let mut m = Medium::new("dead", Bandwidth::ZERO);
        assert_eq!(m.acquire(SimTime::ZERO, Bytes::new(1)), SimTime::MAX);
    }

    #[test]
    fn try_acquire_refuses_when_backlogged() {
        let mut m = Medium::new("intf", Bandwidth::gbps(8.0));
        // Fill 3 µs of backlog.
        for _ in 0..3 {
            let _ = m.acquire(SimTime::ZERO, Bytes::new(1000));
        }
        // A cap of 2 µs refuses; a cap of 5 µs admits.
        assert!(m
            .try_acquire(SimTime::ZERO, Bytes::new(1000), SimTime::from_micros(2.0))
            .is_none());
        let end = m.try_acquire(SimTime::ZERO, Bytes::new(1000), SimTime::from_micros(5.0));
        assert_eq!(end, Some(SimTime::from_micros(4.0)));
        // Refusal did not consume bandwidth.
        assert_eq!(m.transferred(), Bytes::new(4000));
    }

    #[test]
    fn utilization_capped_at_one() {
        let mut m = Medium::new("intf", Bandwidth::gbps(1.0));
        for _ in 0..10 {
            let _ = m.acquire(SimTime::ZERO, Bytes::new(1000));
        }
        assert_eq!(m.utilization(SimTime::from_micros(1.0)), 1.0);
        assert_eq!(m.utilization(SimTime::ZERO), 0.0);
    }
}
