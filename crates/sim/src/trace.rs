//! Zero-cost-when-disabled observability for simulation runs.
//!
//! The engine's hot loop reports every state transition — injections,
//! enqueues/dequeues, service starts, completions, deliveries, drops,
//! retries and fault windows — to a [`SimObserver`]. The observer is a
//! *monomorphized generic* of [`Simulation::run_with`], and every hook
//! site in the engine is guarded by the observer's associated
//! `const ENABLED`: with the default [`NoopObserver`] the guard is a
//! compile-time `false`, so the argument computation and the call are
//! eliminated entirely and `run()` compiles to the exact pre-trace hot
//! loop (the perf baseline's `--trace-overhead` mode measures this).
//!
//! Observers are passive: they receive interned node ids and
//! [`SimTime`] stamps but never touch the RNG or the event queue, so a
//! traced run's [`SimReport`] is byte-identical to an untraced run of
//! the same scenario and seed (the differential suite asserts this).
//!
//! Three sinks ship with the crate:
//!
//! * [`RingLog`] — a bounded ring buffer of fixed-size 32-byte binary
//!   records with a post-run decoder ([`RingLog::decode`]). Memory is
//!   fixed at construction; once full, the oldest records are
//!   overwritten and counted in [`RingLog::dropped`].
//! * [`TimeSeriesSampler`] — per-node time series (queue depth, busy
//!   engines, instantaneous utilization ρ(t), cumulative drop/retry
//!   counters) sampled every Δt, rendered to CSV or JSON by the
//!   resulting [`Timeline`].
//! * [`ChromeTrace`] — a Chrome `trace_event` JSON exporter (one track
//!   per node plus a packet track and per-node queue-depth counters)
//!   whose output opens directly in Perfetto / `chrome://tracing`.
//!
//! [`Simulation::run_with`]: crate::sim::Simulation::run_with
//! [`SimReport`]: crate::metrics::SimReport

use crate::time::SimTime;
use lognic_model::units::Seconds;

/// Immutable description of the run an observer is attached to,
/// delivered once by [`SimObserver::on_run_start`] before the first
/// event. Sinks size their per-node state from it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// RNG seed of the run.
    pub seed: u64,
    /// Injection horizon (the run then drains in-flight packets).
    pub duration: SimTime,
    /// Measurement cutoff.
    pub warmup: SimTime,
    /// Per-node metadata, indexed by interned node id — the same dense
    /// index every hook's `node` argument uses.
    pub nodes: Vec<NodeMeta>,
    /// Interned id of the ingress engine.
    pub ingress: u32,
    /// Interned id of the egress engine.
    pub egress: u32,
}

/// One node's static properties, as seen by trace sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMeta {
    /// Vertex name from the execution graph.
    pub name: String,
    /// Parallel engines (`D`); `0` for pure movers (ingress/egress).
    pub engines: u32,
    /// Bounded queue capacity (total across WRR queues); `0` for
    /// movers.
    pub queue_capacity: u32,
}

/// Why the engine discarded a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The node's bounded queue (or WRR queue) was full.
    QueueFull,
    /// An outage fault window refused the arrival.
    Outage,
    /// A probabilistic packet-drop fault window fired.
    FaultDrop,
    /// The packet's sojourn exceeded the plan-wide deadline.
    DeadlineExpired,
    /// A shared medium's reservation backlog overflowed (RX overflow).
    MediaBacklog,
}

impl DropReason {
    /// A short stable label (used by the Chrome exporter and CSV).
    pub fn label(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::Outage => "outage",
            DropReason::FaultDrop => "fault_drop",
            DropReason::DeadlineExpired => "deadline",
            DropReason::MediaBacklog => "media_backlog",
        }
    }

    /// Dense discriminant for binary encodings.
    pub fn code(self) -> u8 {
        match self {
            DropReason::QueueFull => 0,
            DropReason::Outage => 1,
            DropReason::FaultDrop => 2,
            DropReason::DeadlineExpired => 3,
            DropReason::MediaBacklog => 4,
        }
    }

    /// Inverse of [`DropReason::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => DropReason::QueueFull,
            1 => DropReason::Outage,
            2 => DropReason::FaultDrop,
            3 => DropReason::DeadlineExpired,
            4 => DropReason::MediaBacklog,
            _ => return None,
        })
    }
}

/// The effect of one scheduled fault window, as reported by
/// [`SimObserver::on_fault_window`] at run start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultWindowKind {
    /// The node refuses every arrival.
    Outage,
    /// The node serves at this fraction of its nominal rate.
    RateDegradation {
        /// Remaining service-rate fraction in `(0, 1)`.
        factor: f64,
    },
    /// Arrivals are refused with this probability.
    PacketDrop {
        /// Per-arrival drop probability.
        probability: f64,
    },
    /// Arrivals are corrupted with this probability.
    PacketCorruption {
        /// Per-arrival corruption probability.
        probability: f64,
    },
    /// Credits removed from the node's bounded queue.
    CreditLoss {
        /// Credits removed while the window is active.
        credits: u32,
    },
}

impl FaultWindowKind {
    /// A short stable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultWindowKind::Outage => "outage",
            FaultWindowKind::RateDegradation { .. } => "rate_degradation",
            FaultWindowKind::PacketDrop { .. } => "packet_drop",
            FaultWindowKind::PacketCorruption { .. } => "packet_corruption",
            FaultWindowKind::CreditLoss { .. } => "credit_loss",
        }
    }

    /// The window's scalar parameter (1.0 for outages).
    pub fn parameter(self) -> f64 {
        match self {
            FaultWindowKind::Outage => 1.0,
            FaultWindowKind::RateDegradation { factor } => factor,
            FaultWindowKind::PacketDrop { probability } => probability,
            FaultWindowKind::PacketCorruption { probability } => probability,
            FaultWindowKind::CreditLoss { credits } => credits as f64,
        }
    }

    /// Dense discriminant for binary encodings.
    pub fn code(self) -> u8 {
        match self {
            FaultWindowKind::Outage => 0,
            FaultWindowKind::RateDegradation { .. } => 1,
            FaultWindowKind::PacketDrop { .. } => 2,
            FaultWindowKind::PacketCorruption { .. } => 3,
            FaultWindowKind::CreditLoss { .. } => 4,
        }
    }
}

/// A passive observer of engine state transitions.
///
/// All hooks default to no-ops, so a sink overrides only what it
/// needs. The associated `ENABLED` constant is the zero-cost switch:
/// the engine guards every hook site (including the computation of
/// hook arguments) with `if O::ENABLED`, which the compiler resolves
/// per monomorphization — [`NoopObserver`] sets it to `false` and the
/// whole tracing surface vanishes from the generated code.
///
/// Observers must be passive: they see interned node ids and
/// timestamps but cannot influence the run, so the report of a traced
/// run is byte-identical to the untraced run.
#[allow(unused_variables)]
pub trait SimObserver {
    /// Compile-time switch; hook sites are elided when `false`.
    const ENABLED: bool = true;

    /// The run is about to start; `meta` describes its shape.
    fn on_run_start(&mut self, meta: &RunMeta) {}

    /// One scheduled fault window (reported per node at run start, in
    /// node order, before any packet event).
    fn on_fault_window(&mut self, node: u32, kind: FaultWindowKind, from: SimTime, until: SimTime) {
    }

    /// A packet entered the pipeline at the ingress engine.
    fn on_inject(&mut self, now: SimTime, pkt: u64, size: u64, class: u32) {}

    /// A packet joined `node`'s queue; `depth` is the waiting count
    /// after admission.
    fn on_enqueue(&mut self, now: SimTime, node: u32, pkt: u64, depth: u32) {}

    /// A packet left `node`'s queue for service; `depth` is the
    /// waiting count after removal.
    fn on_dequeue(&mut self, now: SimTime, node: u32, pkt: u64, depth: u32) {}

    /// An engine of `node` started serving the packet and stays
    /// occupied for `occupancy` (service plus overhead).
    fn on_service_start(&mut self, now: SimTime, node: u32, pkt: u64, occupancy: SimTime) {}

    /// `node` finished serving the packet.
    fn on_complete(&mut self, now: SimTime, node: u32, pkt: u64) {}

    /// The packet reached the egress; `latency` is its end-to-end
    /// sojourn.
    fn on_deliver(&mut self, now: SimTime, pkt: u64, latency: SimTime) {}

    /// The packet was discarded at `node`.
    fn on_drop(&mut self, now: SimTime, node: u32, pkt: u64, reason: DropReason) {}

    /// A refused packet was rescheduled; `attempt` is the retry count
    /// consumed so far and `resume_at` when it re-presents.
    fn on_retry(&mut self, now: SimTime, node: u32, pkt: u64, attempt: u32, resume_at: SimTime) {}

    /// The event queue drained; `last` is the final event's timestamp
    /// (at least the injection horizon).
    fn on_run_end(&mut self, last: SimTime) {}
}

/// The default observer: every hook is a no-op *and* `ENABLED` is
/// `false`, so traced and untraced code paths are literally the same
/// machine code. [`Simulation::run`] is `run_with(&mut NoopObserver)`.
///
/// [`Simulation::run`]: crate::sim::Simulation::run
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {
    const ENABLED: bool = false;
}

/// Fan-out: a pair of observers receives every event in order
/// (`self.0` first). Nest pairs to attach any number of sinks:
/// `(&mut ring, (&mut sampler, &mut chrome))`-style composition via
/// owned tuples.
impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn on_run_start(&mut self, meta: &RunMeta) {
        self.0.on_run_start(meta);
        self.1.on_run_start(meta);
    }

    fn on_fault_window(&mut self, node: u32, kind: FaultWindowKind, from: SimTime, until: SimTime) {
        self.0.on_fault_window(node, kind, from, until);
        self.1.on_fault_window(node, kind, from, until);
    }

    fn on_inject(&mut self, now: SimTime, pkt: u64, size: u64, class: u32) {
        self.0.on_inject(now, pkt, size, class);
        self.1.on_inject(now, pkt, size, class);
    }

    fn on_enqueue(&mut self, now: SimTime, node: u32, pkt: u64, depth: u32) {
        self.0.on_enqueue(now, node, pkt, depth);
        self.1.on_enqueue(now, node, pkt, depth);
    }

    fn on_dequeue(&mut self, now: SimTime, node: u32, pkt: u64, depth: u32) {
        self.0.on_dequeue(now, node, pkt, depth);
        self.1.on_dequeue(now, node, pkt, depth);
    }

    fn on_service_start(&mut self, now: SimTime, node: u32, pkt: u64, occupancy: SimTime) {
        self.0.on_service_start(now, node, pkt, occupancy);
        self.1.on_service_start(now, node, pkt, occupancy);
    }

    fn on_complete(&mut self, now: SimTime, node: u32, pkt: u64) {
        self.0.on_complete(now, node, pkt);
        self.1.on_complete(now, node, pkt);
    }

    fn on_deliver(&mut self, now: SimTime, pkt: u64, latency: SimTime) {
        self.0.on_deliver(now, pkt, latency);
        self.1.on_deliver(now, pkt, latency);
    }

    fn on_drop(&mut self, now: SimTime, node: u32, pkt: u64, reason: DropReason) {
        self.0.on_drop(now, node, pkt, reason);
        self.1.on_drop(now, node, pkt, reason);
    }

    fn on_retry(&mut self, now: SimTime, node: u32, pkt: u64, attempt: u32, resume_at: SimTime) {
        self.0.on_retry(now, node, pkt, attempt, resume_at);
        self.1.on_retry(now, node, pkt, attempt, resume_at);
    }

    fn on_run_end(&mut self, last: SimTime) {
        self.0.on_run_end(last);
        self.1.on_run_end(last);
    }
}

/// Forwarding: a mutable reference to an observer is itself an
/// observer, so sinks can be attached without giving up ownership.
impl<O: SimObserver> SimObserver for &mut O {
    const ENABLED: bool = O::ENABLED;

    fn on_run_start(&mut self, meta: &RunMeta) {
        (**self).on_run_start(meta);
    }

    fn on_fault_window(&mut self, node: u32, kind: FaultWindowKind, from: SimTime, until: SimTime) {
        (**self).on_fault_window(node, kind, from, until);
    }

    fn on_inject(&mut self, now: SimTime, pkt: u64, size: u64, class: u32) {
        (**self).on_inject(now, pkt, size, class);
    }

    fn on_enqueue(&mut self, now: SimTime, node: u32, pkt: u64, depth: u32) {
        (**self).on_enqueue(now, node, pkt, depth);
    }

    fn on_dequeue(&mut self, now: SimTime, node: u32, pkt: u64, depth: u32) {
        (**self).on_dequeue(now, node, pkt, depth);
    }

    fn on_service_start(&mut self, now: SimTime, node: u32, pkt: u64, occupancy: SimTime) {
        (**self).on_service_start(now, node, pkt, occupancy);
    }

    fn on_complete(&mut self, now: SimTime, node: u32, pkt: u64) {
        (**self).on_complete(now, node, pkt);
    }

    fn on_deliver(&mut self, now: SimTime, pkt: u64, latency: SimTime) {
        (**self).on_deliver(now, pkt, latency);
    }

    fn on_drop(&mut self, now: SimTime, node: u32, pkt: u64, reason: DropReason) {
        (**self).on_drop(now, node, pkt, reason);
    }

    fn on_retry(&mut self, now: SimTime, node: u32, pkt: u64, attempt: u32, resume_at: SimTime) {
        (**self).on_retry(now, node, pkt, attempt, resume_at);
    }

    fn on_run_end(&mut self, last: SimTime) {
        (**self).on_run_end(last);
    }
}

// ---------------------------------------------------------------------------
// Ring-buffered binary event log
// ---------------------------------------------------------------------------

/// Binary record kind codes (the `kind` byte of a [`TraceRecord`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// Packet injected; `aux` = wire size in bytes.
    Inject = 0,
    /// Packet enqueued; `aux` = queue depth after admission.
    Enqueue = 1,
    /// Packet dequeued; `aux` = queue depth after removal.
    Dequeue = 2,
    /// Service started; `aux` = occupancy in picoseconds.
    ServiceStart = 3,
    /// Node finished serving the packet; `aux` = 0.
    Complete = 4,
    /// Packet delivered at the egress; `aux` = latency in picoseconds.
    Deliver = 5,
    /// Packet dropped; `aux` = [`DropReason::code`].
    Drop = 6,
    /// Packet rescheduled; `aux` = resume time in picoseconds, `pkt`'s
    /// top 8 bits carry the attempt count.
    Retry = 7,
    /// Fault window opens; `pkt` = [`FaultWindowKind::code`], `aux` =
    /// the window parameter's IEEE-754 bits.
    FaultOpen = 8,
    /// Fault window closes; encoded like [`RecordKind::FaultOpen`].
    FaultClose = 9,
}

impl RecordKind {
    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => RecordKind::Inject,
            1 => RecordKind::Enqueue,
            2 => RecordKind::Dequeue,
            3 => RecordKind::ServiceStart,
            4 => RecordKind::Complete,
            5 => RecordKind::Deliver,
            6 => RecordKind::Drop,
            7 => RecordKind::Retry,
            8 => RecordKind::FaultOpen,
            9 => RecordKind::FaultClose,
            _ => return None,
        })
    }
}

/// One decoded ring-log record. Interpretation of `pkt`/`aux` depends
/// on [`RecordKind`] (documented on each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Event timestamp.
    pub time: SimTime,
    /// Record kind.
    pub kind: RecordKind,
    /// Interned node id (`u32::MAX` for node-less events —
    /// injections and deliveries).
    pub node: u32,
    /// Packet injection id (kind-specific for fault records).
    pub pkt: u64,
    /// Kind-specific payload.
    pub aux: u64,
}

/// Size of one encoded record: `time (8) + pkt (8) + aux (8) +
/// node (4) + kind (1) + pad (3)`.
const REC_SIZE: usize = 32;

/// Sentinel node id for events not tied to a node.
pub const NO_NODE: u32 = u32::MAX;

/// A bounded binary event log: the newest `capacity` events, encoded
/// as fixed 32-byte records in a preallocated ring.
///
/// The buffer is allocated once at construction, so attaching a ring
/// log preserves the engine's zero-allocation steady state; when the
/// ring wraps, the oldest records are overwritten ([`RingLog::dropped`]
/// counts them). Records are written in event order, so
/// [`RingLog::decode`] returns chronologically sorted events.
///
/// # Examples
///
/// ```
/// use lognic_sim::trace::{RecordKind, RingLog};
/// use lognic_sim::time::SimTime;
/// use lognic_sim::trace::SimObserver;
///
/// let mut log = RingLog::with_capacity(2);
/// log.on_inject(SimTime::from_nanos(1.0), 0, 1500, 0);
/// log.on_inject(SimTime::from_nanos(2.0), 1, 1500, 0);
/// log.on_inject(SimTime::from_nanos(3.0), 2, 1500, 0);
/// let recs = log.decode();
/// assert_eq!(recs.len(), 2, "bounded: oldest record was evicted");
/// assert_eq!(log.dropped(), 1);
/// assert_eq!(recs[0].pkt, 1);
/// assert_eq!(recs[1].kind, RecordKind::Inject);
/// ```
#[derive(Debug, Clone)]
pub struct RingLog {
    buf: Vec<u8>,
    capacity: usize,
    written: u64,
}

impl RingLog {
    /// A ring holding the newest `capacity` records (32 bytes each).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring log needs at least one record slot");
        RingLog {
            buf: vec![0u8; capacity * REC_SIZE],
            capacity,
            written: 0,
        }
    }

    #[inline]
    fn push(&mut self, time: SimTime, kind: RecordKind, node: u32, pkt: u64, aux: u64) {
        let slot = (self.written as usize % self.capacity) * REC_SIZE;
        let rec = &mut self.buf[slot..slot + REC_SIZE];
        rec[0..8].copy_from_slice(&time.as_picos().to_le_bytes());
        rec[8..16].copy_from_slice(&pkt.to_le_bytes());
        rec[16..24].copy_from_slice(&aux.to_le_bytes());
        rec[24..28].copy_from_slice(&node.to_le_bytes());
        rec[28] = kind as u8;
        rec[29..32].fill(0);
        self.written += 1;
    }

    /// Total records observed (including evicted ones).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Record slots in the ring.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted by wraparound.
    pub fn dropped(&self) -> u64 {
        self.written.saturating_sub(self.capacity as u64)
    }

    /// The raw ring bytes (encoding is little-endian and
    /// deterministic, so identical runs produce identical bytes).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Decodes the retained records, oldest first.
    pub fn decode(&self) -> Vec<TraceRecord> {
        let retained = self.written.min(self.capacity as u64) as usize;
        let start = if self.written as usize > self.capacity {
            self.written as usize % self.capacity
        } else {
            0
        };
        (0..retained)
            .filter_map(|i| {
                let slot = ((start + i) % self.capacity) * REC_SIZE;
                let rec = &self.buf[slot..slot + REC_SIZE];
                let word = |r: std::ops::Range<usize>| {
                    u64::from_le_bytes(rec[r].try_into().expect("8-byte slice"))
                };
                Some(TraceRecord {
                    time: SimTime::from_picos(word(0..8)),
                    pkt: word(8..16),
                    aux: word(16..24),
                    node: u32::from_le_bytes(rec[24..28].try_into().expect("4-byte slice")),
                    kind: RecordKind::from_code(rec[28])?,
                })
            })
            .collect()
    }
}

impl SimObserver for RingLog {
    fn on_fault_window(&mut self, node: u32, kind: FaultWindowKind, from: SimTime, until: SimTime) {
        let param = kind.parameter().to_bits();
        self.push(from, RecordKind::FaultOpen, node, kind.code() as u64, param);
        self.push(
            until,
            RecordKind::FaultClose,
            node,
            kind.code() as u64,
            param,
        );
    }

    fn on_inject(&mut self, now: SimTime, pkt: u64, size: u64, _class: u32) {
        self.push(now, RecordKind::Inject, NO_NODE, pkt, size);
    }

    fn on_enqueue(&mut self, now: SimTime, node: u32, pkt: u64, depth: u32) {
        self.push(now, RecordKind::Enqueue, node, pkt, depth as u64);
    }

    fn on_dequeue(&mut self, now: SimTime, node: u32, pkt: u64, depth: u32) {
        self.push(now, RecordKind::Dequeue, node, pkt, depth as u64);
    }

    fn on_service_start(&mut self, now: SimTime, node: u32, pkt: u64, occupancy: SimTime) {
        self.push(
            now,
            RecordKind::ServiceStart,
            node,
            pkt,
            occupancy.as_picos(),
        );
    }

    fn on_complete(&mut self, now: SimTime, node: u32, pkt: u64) {
        self.push(now, RecordKind::Complete, node, pkt, 0);
    }

    fn on_deliver(&mut self, now: SimTime, pkt: u64, latency: SimTime) {
        self.push(now, RecordKind::Deliver, NO_NODE, pkt, latency.as_picos());
    }

    fn on_drop(&mut self, now: SimTime, node: u32, pkt: u64, reason: DropReason) {
        self.push(now, RecordKind::Drop, node, pkt, reason.code() as u64);
    }

    fn on_retry(&mut self, now: SimTime, node: u32, pkt: u64, attempt: u32, resume_at: SimTime) {
        // The attempt count rides in the packet word's top byte — ids
        // are injection counters and stay far below 2^56.
        let pkt_attempt = pkt | ((attempt as u64) << 56);
        self.push(
            now,
            RecordKind::Retry,
            node,
            pkt_attempt,
            resume_at.as_picos(),
        );
    }
}

// ---------------------------------------------------------------------------
// Per-node time-series sampler
// ---------------------------------------------------------------------------

/// One sample of one node's state at a tick instant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sample {
    /// Waiting packets in the node's queue.
    pub depth: u32,
    /// Engines busy serving.
    pub busy: u32,
    /// Instantaneous utilization `busy / engines` (0 for movers).
    pub rho: f64,
    /// Cumulative drops at the node since the run started.
    pub drops: u64,
    /// Cumulative retries charged to the node since the run started.
    pub retries: u64,
}

/// A [`SimObserver`] that samples every node's state on a fixed Δt
/// grid.
///
/// State is piecewise constant between events, so sampling at event
/// boundaries is exact: whenever an event advances past one or more
/// tick instants, the sampler records the state *as of each tick*
/// (i.e. before applying events stamped exactly at the tick — the
/// "state at `t⁻`" convention, which makes the series independent of
/// intra-tick event ordering).
///
/// Memory grows with `nodes × ticks`; pick Δt accordingly. Convert the
/// collected series with [`TimeSeriesSampler::into_timeline`], or use
/// [`Simulation::timeline`] for the one-call form.
///
/// [`Simulation::timeline`]: crate::sim::Simulation::timeline
#[derive(Debug, Clone)]
pub struct TimeSeriesSampler {
    dt: SimTime,
    next_tick: SimTime,
    names: Vec<String>,
    engines: Vec<u32>,
    state: Vec<Sample>,
    ticks: Vec<SimTime>,
    /// `series[node][tick]`, parallel to `ticks`.
    series: Vec<Vec<Sample>>,
}

impl TimeSeriesSampler {
    /// A sampler on a `dt` grid (first sample at `dt`, not 0).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn new(dt: Seconds) -> Self {
        let dt = SimTime::from_secs(dt.as_secs());
        assert!(dt > SimTime::ZERO, "sampler needs a positive Δt");
        TimeSeriesSampler {
            dt,
            next_tick: dt,
            names: Vec::new(),
            engines: Vec::new(),
            state: Vec::new(),
            ticks: Vec::new(),
            series: Vec::new(),
        }
    }

    #[inline]
    fn flush(&mut self, now: SimTime) {
        while self.next_tick <= now {
            self.ticks.push(self.next_tick);
            for (node, s) in self.state.iter().enumerate() {
                self.series[node].push(*s);
            }
            self.next_tick += self.dt;
        }
    }

    /// Finishes the run and returns the collected timeline.
    pub fn into_timeline(self) -> Timeline {
        Timeline {
            dt: self.dt,
            names: self.names,
            engines: self.engines,
            ticks: self.ticks,
            series: self.series,
        }
    }
}

impl SimObserver for TimeSeriesSampler {
    fn on_run_start(&mut self, meta: &RunMeta) {
        self.names = meta.nodes.iter().map(|n| n.name.clone()).collect();
        self.engines = meta.nodes.iter().map(|n| n.engines).collect();
        self.state = vec![Sample::default(); meta.nodes.len()];
        self.series = vec![Vec::new(); meta.nodes.len()];
        self.ticks.clear();
        self.next_tick = self.dt;
    }

    fn on_enqueue(&mut self, now: SimTime, node: u32, _pkt: u64, depth: u32) {
        self.flush(now);
        self.state[node as usize].depth = depth;
    }

    fn on_dequeue(&mut self, now: SimTime, node: u32, _pkt: u64, depth: u32) {
        self.flush(now);
        self.state[node as usize].depth = depth;
    }

    fn on_service_start(&mut self, now: SimTime, node: u32, _pkt: u64, _occupancy: SimTime) {
        self.flush(now);
        let s = &mut self.state[node as usize];
        s.busy += 1;
        s.rho = s.busy as f64 / self.engines[node as usize].max(1) as f64;
    }

    fn on_complete(&mut self, now: SimTime, node: u32, _pkt: u64) {
        self.flush(now);
        let s = &mut self.state[node as usize];
        s.busy = s.busy.saturating_sub(1);
        s.rho = s.busy as f64 / self.engines[node as usize].max(1) as f64;
    }

    fn on_deliver(&mut self, now: SimTime, _pkt: u64, _latency: SimTime) {
        self.flush(now);
    }

    fn on_drop(&mut self, now: SimTime, node: u32, _pkt: u64, _reason: DropReason) {
        self.flush(now);
        self.state[node as usize].drops += 1;
    }

    fn on_retry(&mut self, now: SimTime, node: u32, _pkt: u64, _attempt: u32, _resume: SimTime) {
        self.flush(now);
        self.state[node as usize].retries += 1;
    }

    fn on_run_end(&mut self, last: SimTime) {
        self.flush(last);
    }
}

/// The per-node time series a [`TimeSeriesSampler`] collected:
/// `nodes × ticks` samples on a fixed Δt grid, renderable to CSV or
/// JSON for the EXPERIMENTS figures.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    dt: SimTime,
    names: Vec<String>,
    engines: Vec<u32>,
    ticks: Vec<SimTime>,
    series: Vec<Vec<Sample>>,
}

impl Timeline {
    /// The sampling interval.
    pub fn dt(&self) -> Seconds {
        self.dt.to_seconds()
    }

    /// Node names, indexed by interned node id.
    pub fn node_names(&self) -> &[String] {
        &self.names
    }

    /// The tick instants, in order.
    pub fn ticks(&self) -> &[SimTime] {
        &self.ticks
    }

    /// One node's samples (parallel to [`Timeline::ticks`]), by name.
    pub fn node(&self, name: &str) -> Option<&[Sample]> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(&self.series[idx])
    }

    /// Renders `time_s,node,depth,busy,rho,drops,retries` rows, one
    /// per `(tick, node)` pair, tick-major.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,node,depth,busy,rho,drops,retries\n");
        for (k, t) in self.ticks.iter().enumerate() {
            for (node, name) in self.names.iter().enumerate() {
                let s = self.series[node][k];
                out.push_str(&format!(
                    "{:.9},{},{},{},{:.6},{},{}\n",
                    t.as_secs(),
                    name,
                    s.depth,
                    s.busy,
                    s.rho,
                    s.drops,
                    s.retries
                ));
            }
        }
        out
    }

    /// Renders the series as one JSON object:
    /// `{"dt_s": .., "ticks_s": [..], "nodes": [{"name", "engines",
    /// "depth", "busy", "rho", "drops", "retries"}, ..]}` with one
    /// column array per metric (compact and plot-ready).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"dt_s\":{:.9},\"ticks_s\":[", self.dt.as_secs()));
        for (i, t) in self.ticks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{:.9}", t.as_secs()));
        }
        out.push_str("],\"nodes\":[");
        for (node, name) in self.names.iter().enumerate() {
            if node > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"engines\":{}",
                json_string(name),
                self.engines[node]
            ));
            let col = |f: &dyn Fn(&Sample) -> String| -> String {
                self.series[node]
                    .iter()
                    .map(f)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!(",\"depth\":[{}]", col(&|s| s.depth.to_string())));
            out.push_str(&format!(",\"busy\":[{}]", col(&|s| s.busy.to_string())));
            out.push_str(&format!(",\"rho\":[{}]", col(&|s| format!("{:.6}", s.rho))));
            out.push_str(&format!(",\"drops\":[{}]", col(&|s| s.drops.to_string())));
            out.push_str(&format!(
                ",\"retries\":[{}]}}",
                col(&|s| s.retries.to_string())
            ));
        }
        out.push_str("]}");
        out
    }
}

// ---------------------------------------------------------------------------
// Chrome trace_event exporter
// ---------------------------------------------------------------------------

/// Escapes a string for inclusion in JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats picoseconds as the Chrome trace format's microsecond
/// timestamps, exactly (six fractional digits = picosecond precision).
fn ts_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// A [`SimObserver`] exporting the run as Chrome `trace_event` JSON —
/// openable in [Perfetto](https://ui.perfetto.dev) or
/// `chrome://tracing`.
///
/// Track layout: `tid 0` is the packet track (injections and
/// deliveries as instants); each node gets its own named track
/// (`tid = node + 1`) carrying service spans, fault-window spans and
/// drop/retry instants; queue depths are emitted as counter tracks
/// (`queue@<node>`).
///
/// Memory is proportional to the number of exported events; cap it
/// with [`ChromeTrace::with_limit`] (further packet events are counted
/// in [`ChromeTrace::truncated`] and skipped — fault windows and
/// metadata are always kept).
#[derive(Debug, Clone)]
pub struct ChromeTrace {
    events: Vec<String>,
    names: Vec<String>,
    limit: usize,
    packet_events: usize,
    truncated: u64,
}

impl Default for ChromeTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTrace {
    /// An unbounded exporter.
    pub fn new() -> Self {
        ChromeTrace {
            events: Vec::new(),
            names: Vec::new(),
            limit: usize::MAX,
            packet_events: 0,
            truncated: 0,
        }
    }

    /// Caps the exported packet-event count; subsequent events are
    /// dropped (and counted) instead of growing the buffer.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Packet events dropped by the [`ChromeTrace::with_limit`] cap.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Exported events so far (including metadata records).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been exported yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    #[inline]
    fn emit(&mut self, event: String) {
        if self.packet_events >= self.limit {
            self.truncated += 1;
            return;
        }
        self.packet_events += 1;
        self.events.push(event);
    }

    fn node_name(&self, node: u32) -> &str {
        self.names
            .get(node as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Serializes the collected events as a Chrome JSON object
    /// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
    pub fn into_json(self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

impl SimObserver for ChromeTrace {
    fn on_run_start(&mut self, meta: &RunMeta) {
        self.names = meta.nodes.iter().map(|n| n.name.clone()).collect();
        self.events.push(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"lognic-sim\"}}"
                .to_owned(),
        );
        self.events.push(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{\"name\":\"packets\"}}"
                .to_owned(),
        );
        for (i, n) in meta.nodes.iter().enumerate() {
            self.events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                i + 1,
                json_string(&n.name)
            ));
        }
    }

    fn on_fault_window(&mut self, node: u32, kind: FaultWindowKind, from: SimTime, until: SimTime) {
        // Fault windows are structural (reported at run start); they
        // bypass the packet-event limit.
        self.events.push(format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"fault:{}\",\
             \"cat\":\"fault\",\"args\":{{\"parameter\":{:.6}}}}}",
            node + 1,
            ts_us(from.as_picos()),
            ts_us(until.since(from).as_picos()),
            kind.label(),
            kind.parameter()
        ));
    }

    fn on_inject(&mut self, now: SimTime, pkt: u64, size: u64, class: u32) {
        self.emit(format!(
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":{},\"name\":\"inject\",\"s\":\"t\",\
             \"args\":{{\"pkt\":{pkt},\"size\":{size},\"class\":{class}}}}}",
            ts_us(now.as_picos())
        ));
    }

    fn on_enqueue(&mut self, now: SimTime, node: u32, _pkt: u64, depth: u32) {
        self.emit(format!(
            "{{\"ph\":\"C\",\"pid\":1,\"ts\":{},\"name\":{},\"args\":{{\"depth\":{depth}}}}}",
            ts_us(now.as_picos()),
            json_string(&format!("queue@{}", self.node_name(node)))
        ));
    }

    fn on_dequeue(&mut self, now: SimTime, node: u32, _pkt: u64, depth: u32) {
        self.emit(format!(
            "{{\"ph\":\"C\",\"pid\":1,\"ts\":{},\"name\":{},\"args\":{{\"depth\":{depth}}}}}",
            ts_us(now.as_picos()),
            json_string(&format!("queue@{}", self.node_name(node)))
        ));
    }

    fn on_service_start(&mut self, now: SimTime, node: u32, pkt: u64, occupancy: SimTime) {
        self.emit(format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"service\",\
             \"cat\":\"service\",\"args\":{{\"pkt\":{pkt}}}}}",
            node + 1,
            ts_us(now.as_picos()),
            ts_us(occupancy.as_picos())
        ));
    }

    fn on_deliver(&mut self, now: SimTime, pkt: u64, latency: SimTime) {
        self.emit(format!(
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":{},\"name\":\"deliver\",\"s\":\"t\",\
             \"args\":{{\"pkt\":{pkt},\"latency_us\":{}}}}}",
            ts_us(now.as_picos()),
            ts_us(latency.as_picos())
        ));
    }

    fn on_drop(&mut self, now: SimTime, node: u32, pkt: u64, reason: DropReason) {
        self.emit(format!(
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"drop:{}\",\"s\":\"t\",\
             \"args\":{{\"pkt\":{pkt}}}}}",
            node + 1,
            ts_us(now.as_picos()),
            reason.label()
        ));
    }

    fn on_retry(&mut self, now: SimTime, node: u32, pkt: u64, attempt: u32, resume_at: SimTime) {
        self.emit(format!(
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"retry\",\"s\":\"t\",\
             \"args\":{{\"pkt\":{pkt},\"attempt\":{attempt},\"resume_us\":{}}}}}",
            node + 1,
            ts_us(now.as_picos()),
            ts_us(resume_at.as_picos())
        ));
    }
}

// ---------------------------------------------------------------------------
// Arrival recorder — the corpus capture sink
// ---------------------------------------------------------------------------

/// An observer that records every injection as a corpus
/// [`TraceEntry`], turning a live run into a replayable
/// [`PacketTrace`] file. This closes the round-trip loop: a synthetic
/// scenario's arrival stream is captured here, persisted via
/// [`PacketTrace::to_binary`] or [`PacketTrace::to_csv`], and
/// re-ingested as a regression input through
/// [`SimulationBuilder::with_trace`].
///
/// The simulator keys behaviour on traffic class, so the recorded
/// flow tag mirrors the class tag; external captures are free to carry
/// finer flow structure.
///
/// [`PacketTrace`]: crate::traffic::PacketTrace
/// [`TraceEntry`]: crate::traffic::TraceEntry
/// [`SimulationBuilder::with_trace`]: crate::sim::SimulationBuilder::with_trace
#[derive(Debug, Clone, Default)]
pub struct ArrivalRecorder {
    entries: Vec<crate::traffic::TraceEntry>,
}

impl ArrivalRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Injections recorded so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True before the first injection.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consumes the recorder into a validated [`PacketTrace`].
    ///
    /// The engine injects in time order with positive sizes, so
    /// recorded arrivals always validate; the `Result` only surfaces
    /// defects if the recorder was fed by hand.
    ///
    /// # Errors
    ///
    /// Returns [`LogNicError::InvalidTrace`] for hand-built entries
    /// that violate trace invariants.
    ///
    /// [`PacketTrace`]: crate::traffic::PacketTrace
    /// [`LogNicError::InvalidTrace`]: lognic_model::error::LogNicError::InvalidTrace
    pub fn into_trace(self) -> lognic_model::error::LogNicResult<crate::traffic::PacketTrace> {
        crate::traffic::PacketTrace::new(self.entries)
    }
}

impl SimObserver for ArrivalRecorder {
    fn on_inject(&mut self, now: SimTime, _pkt: u64, size: u64, class: u32) {
        self.entries.push(crate::traffic::TraceEntry::new(
            now,
            lognic_model::units::Bytes::new(size),
            class,
            class,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: f64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn ring_encodes_and_decodes_every_kind() {
        let mut log = RingLog::with_capacity(16);
        log.on_fault_window(
            2,
            FaultWindowKind::RateDegradation { factor: 0.25 },
            t(10.0),
            t(20.0),
        );
        log.on_inject(t(1.0), 7, 1500, 3);
        log.on_enqueue(t(2.0), 1, 7, 4);
        log.on_dequeue(t(3.0), 1, 7, 3);
        log.on_service_start(t(4.0), 1, 7, t(5.0));
        log.on_complete(t(9.0), 1, 7);
        log.on_deliver(t(10.0), 7, t(9.0));
        log.on_drop(t(11.0), 1, 8, DropReason::DeadlineExpired);
        log.on_retry(t(12.0), 1, 9, 2, t(15.0));
        let recs = log.decode();
        assert_eq!(recs.len(), 10, "fault window yields open+close");
        assert_eq!(recs[0].kind, RecordKind::FaultOpen);
        assert_eq!(recs[0].node, 2);
        assert_eq!(f64::from_bits(recs[0].aux), 0.25);
        assert_eq!(recs[1].kind, RecordKind::FaultClose);
        assert_eq!(recs[2].kind, RecordKind::Inject);
        assert_eq!(recs[2].node, NO_NODE);
        assert_eq!((recs[2].pkt, recs[2].aux), (7, 1500));
        assert_eq!(recs[3].aux, 4, "enqueue carries depth");
        assert_eq!(recs[5].aux, t(5.0).as_picos(), "occupancy in ps");
        assert_eq!(recs[7].aux, t(9.0).as_picos(), "latency in ps");
        assert_eq!(recs[8].aux, DropReason::DeadlineExpired.code() as u64);
        let retry = recs[9];
        assert_eq!(retry.pkt & 0x00ff_ffff_ffff_ffff, 9);
        assert_eq!(retry.pkt >> 56, 2, "attempt in the top byte");
        assert_eq!(retry.aux, t(15.0).as_picos());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let mut log = RingLog::with_capacity(4);
        for i in 0..10u64 {
            log.on_inject(t(i as f64), i, 64, 0);
        }
        assert_eq!(log.written(), 10);
        assert_eq!(log.dropped(), 6);
        assert_eq!(log.bytes().len(), 4 * REC_SIZE, "memory stays fixed");
        let ids: Vec<u64> = log.decode().iter().map(|r| r.pkt).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn sampler_records_state_on_the_tick_grid() {
        let mut s = TimeSeriesSampler::new(Seconds::new(1e-6));
        s.on_run_start(&RunMeta {
            seed: 0,
            duration: SimTime::from_micros(4.0),
            warmup: SimTime::ZERO,
            nodes: vec![
                NodeMeta {
                    name: "in".into(),
                    engines: 0,
                    queue_capacity: 0,
                },
                NodeMeta {
                    name: "ip".into(),
                    engines: 2,
                    queue_capacity: 8,
                },
            ],
            ingress: 0,
            egress: 1,
        });
        // Before the first tick: one busy engine, depth 3.
        s.on_service_start(SimTime::from_nanos(100.0), 1, 0, t(50.0));
        s.on_enqueue(SimTime::from_nanos(200.0), 1, 1, 3);
        // Crosses tick 1 µs and 2 µs: state as of those ticks is the
        // pre-event state above.
        s.on_drop(SimTime::from_micros(2.5), 1, 2, DropReason::QueueFull);
        s.on_run_end(SimTime::from_micros(4.0));
        let tl = s.into_timeline();
        assert_eq!(tl.ticks().len(), 4);
        let ip = tl.node("ip").expect("node exists");
        assert_eq!(ip[0].depth, 3);
        assert_eq!(ip[0].busy, 1);
        assert!((ip[0].rho - 0.5).abs() < 1e-12);
        assert_eq!(ip[1].drops, 0, "drop at 2.5 µs is after the 2 µs tick");
        assert_eq!(ip[2].drops, 1, "…and visible at the 3 µs tick");
        assert!(tl.node("ghost").is_none());
        // Renderings cover every (tick, node) pair.
        let csv = tl.to_csv();
        assert_eq!(csv.lines().count(), 1 + 4 * 2);
        assert!(csv.starts_with("time_s,node,depth,busy,rho,drops,retries"));
        let json = tl.to_json();
        assert!(json.contains("\"name\":\"ip\""));
        assert!(json.contains("\"depth\":[3,3,3,3]"));
    }

    #[test]
    fn chrome_trace_is_structured_and_bounded() {
        let mut c = ChromeTrace::new().with_limit(3);
        c.on_run_start(&RunMeta {
            seed: 0,
            duration: SimTime::from_micros(1.0),
            warmup: SimTime::ZERO,
            nodes: vec![NodeMeta {
                name: "crypto \"x\"".into(),
                engines: 1,
                queue_capacity: 4,
            }],
            ingress: 0,
            egress: 0,
        });
        let metadata = c.len();
        c.on_service_start(t(1.0), 0, 1, t(2.0));
        c.on_inject(t(1.0), 1, 64, 0);
        c.on_deliver(t(3.0), 1, t(2.0));
        c.on_drop(t(4.0), 0, 2, DropReason::Outage); // over the limit
        assert_eq!(c.len(), metadata + 3);
        assert_eq!(c.truncated(), 1);
        let json = c.into_json();
        assert!(json.contains("\\\"x\\\""), "names are escaped: {json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn timestamps_are_exact_microseconds() {
        assert_eq!(ts_us(0), "0.000000");
        assert_eq!(ts_us(1), "0.000001");
        assert_eq!(ts_us(1_500_000), "1.500000");
        assert_eq!(ts_us(123_456_789_012), "123456.789012");
    }

    #[test]
    fn pair_observer_fans_out_in_order() {
        let mut pair = (RingLog::with_capacity(4), RingLog::with_capacity(4));
        pair.on_inject(t(1.0), 1, 64, 0);
        pair.on_deliver(t(2.0), 1, t(1.0));
        assert_eq!(pair.0.decode(), pair.1.decode());
        const { assert!(<(RingLog, RingLog) as SimObserver>::ENABLED) };
        const { assert!(!NoopObserver::ENABLED) };
    }

    #[test]
    fn drop_reason_codes_round_trip() {
        for r in [
            DropReason::QueueFull,
            DropReason::Outage,
            DropReason::FaultDrop,
            DropReason::DeadlineExpired,
            DropReason::MediaBacklog,
        ] {
            assert_eq!(DropReason::from_code(r.code()), Some(r));
        }
        assert_eq!(DropReason::from_code(99), None);
    }
}
