//! A calendar-queue event scheduler: O(1) amortized insert and pop.
//!
//! The classic discrete-event scheduler is a binary heap — O(log n)
//! per operation with n in-flight events, and every sift moves whole
//! event payloads. A calendar queue (Brown, CACM '88) exploits the
//! structure of simulation time instead: events hash into an array of
//! *day* buckets by `time >> shift` (a power-of-two bucket width), and
//! the scheduler walks the calendar day by day, draining one day at a
//! time. Insert is an append plus a min-update; pop is a linear
//! min-scan over the current day's handful of events — with the bucket
//! width tuned to a few events per day, the scan touches one or two
//! cache lines and never pays a heap sift.
//!
//! ## Determinism
//!
//! Pops are globally ordered by the full `(time, seq)` key — exactly
//! the order a `BinaryHeap<Reverse<(time, seq)>>` produces — because:
//!
//! 1. every event of the active day is either moved into the active
//!    list when the day opens or pushed into it directly (new events
//!    are never scheduled in the past, so a same-day insert always
//!    lands in the active day *while it is active*), and
//! 2. every event still in the wheel belongs to a strictly later day,
//!    whose times are all strictly greater than any active-day time.
//!
//! The active list is popped by an explicit `(time, seq)` min-scan, so
//! ties at equal times break by insertion sequence — the property the
//! simulator's replay guarantees rely on. The differential property
//! test in `tests/engine_differential.rs` checks byte-identical
//! reports against the retained reference heap engine across
//! randomized scenarios.
//!
//! ## Overflow laps
//!
//! Days map onto buckets modulo the wheel size, so arbitrarily far
//! events need no separate overflow structure: a far-future event
//! simply shares a bucket with earlier laps and is skipped (cheaply,
//! via the per-bucket `next_day` cache) until its day comes around.
//! When a whole lap holds nothing, the scheduler jumps straight to the
//! earliest cached day instead of spinning through empty buckets.

/// One scheduled entry: the picosecond key, the tie-breaking sequence
/// number, and a caller payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry<P> {
    time: u64,
    seq: u64,
    payload: P,
}

impl<P> Entry<P> {
    /// The pop-ordering key.
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

/// A calendar-queue priority queue over `(time_ps, seq, payload)`
/// triples, popping in ascending `(time, seq)` order.
///
/// # Examples
///
/// ```
/// use lognic_sim::calendar::CalendarQueue;
///
/// let mut q = CalendarQueue::new(1_000);
/// q.push(500, 1, "b");
/// q.push(100, 2, "a");
/// q.push(500, 0, "first-at-500");
/// assert_eq!(q.pop(), Some((100, 2, "a")));
/// assert_eq!(q.pop(), Some((500, 0, "first-at-500")));
/// assert_eq!(q.pop(), Some((500, 1, "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct CalendarQueue<P> {
    /// Day buckets; an event with day `d = time >> shift` lives in
    /// bucket `d & mask` until its day opens.
    buckets: Vec<Vec<Entry<P>>>,
    /// Per-bucket minimum day among resident entries (`u64::MAX` when
    /// empty) — lets the day walk skip non-due buckets in O(1).
    next_day: Vec<u64>,
    mask: u64,
    /// log2 of the bucket width in picoseconds.
    shift: u32,
    /// The day currently being drained.
    day: u64,
    /// The active day's events, popped by `(time, seq)` min-scan.
    active: Vec<Entry<P>>,
    /// Entries resident in `buckets` (excluding `active`).
    wheel_len: usize,
    len: usize,
}

/// Initial bucket count (power of two); grows geometrically.
const INITIAL_BUCKETS: usize = 1 << 10;
/// Rebuild with twice the buckets when occupancy passes this factor.
const GROW_FACTOR: usize = 2;
/// Hard cap on the wheel size.
const MAX_BUCKETS: usize = 1 << 20;

impl<P: Copy + Eq> CalendarQueue<P> {
    /// Creates a queue tuned to an expected inter-event gap of
    /// `mean_gap_ps` picoseconds: the bucket width is the nearest
    /// power of two of four times the gap, so a handful of events
    /// share a day on average. A zero gap falls back to ~1 µs buckets
    /// (the scale of packet service times in this simulator); any
    /// estimate only affects speed, never ordering.
    pub fn new(mean_gap_ps: u64) -> Self {
        let target = mean_gap_ps.saturating_mul(4).max(1);
        // Round to the nearest power of two ≤ target, clamped to keep
        // day numbers meaningful across a u64 picosecond clock.
        let shift = (63 - target.leading_zeros()).clamp(4, 44);
        let shift = if mean_gap_ps == 0 { 20 } else { shift };
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            next_day: vec![u64::MAX; INITIAL_BUCKETS],
            mask: (INITIAL_BUCKETS - 1) as u64,
            shift,
            day: 0,
            active: Vec::new(),
            wheel_len: 0,
            len: 0,
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules an event. `seq` must be unique per queue (the
    /// simulator's monotonic event counter); ties at equal `(time,
    /// seq)` would otherwise pop in unspecified order.
    pub fn push(&mut self, time: u64, seq: u64, payload: P) {
        self.len += 1;
        let day = time >> self.shift;
        let entry = Entry { time, seq, payload };
        if day <= self.day {
            // Never scheduled in the past: a `day < self.day` event
            // would already have been due, and the simulator only
            // schedules at `now + delta`. Same-day events join the
            // active list directly.
            self.active.push(entry);
            return;
        }
        let b = (day & self.mask) as usize;
        self.buckets[b].push(entry);
        if day < self.next_day[b] {
            self.next_day[b] = day;
        }
        self.wheel_len += 1;
        if self.wheel_len > GROW_FACTOR * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.grow();
        }
    }

    /// Pops the earliest event by `(time, seq)`.
    pub fn pop(&mut self) -> Option<(u64, u64, P)> {
        loop {
            if !self.active.is_empty() {
                let mut best = 0;
                let mut best_key = self.active[0].key();
                for (i, e) in self.active.iter().enumerate().skip(1) {
                    let k = e.key();
                    if k < best_key {
                        best = i;
                        best_key = k;
                    }
                }
                let e = self.active.swap_remove(best);
                self.len -= 1;
                return Some((e.time, e.seq, e.payload));
            }
            if self.wheel_len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Moves `day` forward to the next day holding events and opens it
    /// (moves its events into the active heap). Walks day by day while
    /// events are near (the dense, common case); after one fruitless
    /// lap, jumps directly to the earliest cached day.
    fn advance(&mut self) {
        debug_assert!(self.wheel_len > 0);
        let lap = self.buckets.len() as u64;
        let mut d = self.day + 1;
        let end = self.day.saturating_add(lap);
        while d <= end {
            let b = (d & self.mask) as usize;
            if self.next_day[b] == d {
                self.open_day(d);
                return;
            }
            d += 1;
        }
        // Sparse tail: nothing due within one lap — jump to the
        // earliest day resident anywhere in the wheel.
        let jump = self
            .next_day
            .iter()
            .copied()
            .min()
            .expect("wheel has buckets");
        debug_assert!(jump != u64::MAX, "wheel_len > 0 implies a resident day");
        self.open_day(jump);
    }

    /// Drains the entries of day `d` from its bucket into the active
    /// list and recomputes the bucket's cached minimum day.
    fn open_day(&mut self, d: u64) {
        self.day = d;
        let b = (d & self.mask) as usize;
        let bucket = &mut self.buckets[b];
        let mut remaining_min = u64::MAX;
        let mut i = 0;
        while i < bucket.len() {
            let entry_day = bucket[i].time >> self.shift;
            if entry_day == d {
                let entry = bucket.swap_remove(i);
                self.active.push(entry);
                self.wheel_len -= 1;
            } else {
                remaining_min = remaining_min.min(entry_day);
                i += 1;
            }
        }
        self.next_day[b] = remaining_min;
    }

    /// Doubles the bucket count, re-homing every resident entry.
    fn grow(&mut self) {
        let new_n = (self.buckets.len() * 2).min(MAX_BUCKETS);
        let old = std::mem::replace(&mut self.buckets, (0..new_n).map(|_| Vec::new()).collect());
        self.next_day = vec![u64::MAX; new_n];
        self.mask = (new_n - 1) as u64;
        self.wheel_len = 0;
        for mut bucket in old {
            for entry in bucket.drain(..) {
                let day = entry.time >> self.shift;
                let b = (day & self.mask) as usize;
                self.buckets[b].push(entry);
                if day < self.next_day[b] {
                    self.next_day[b] = day;
                }
                self.wheel_len += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new(10);
        q.push(30, 0, ());
        q.push(10, 1, ());
        q.push(30, 2, ());
        q.push(10, 3, ());
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, s, _)| (t, s))
            .collect();
        assert_eq!(order, vec![(10, 1), (10, 3), (30, 0), (30, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = CalendarQueue::new(100);
        q.push(100, 0, 'a');
        assert_eq!(q.pop(), Some((100, 0, 'a')));
        // Push relative to the already-advanced day.
        q.push(100, 1, 'b');
        q.push(150, 2, 'c');
        assert_eq!(q.pop(), Some((100, 1, 'b')));
        q.push(120, 3, 'd');
        assert_eq!(q.pop(), Some((120, 3, 'd')));
        assert_eq!(q.pop(), Some((150, 2, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_events_survive_laps() {
        let mut q = CalendarQueue::new(1);
        // With tiny buckets, 1e9 ps is millions of laps ahead.
        q.push(1_000_000_000, 0, "far");
        q.push(5, 1, "near");
        assert_eq!(q.pop(), Some((5, 1, "near")));
        assert_eq!(q.pop(), Some((1_000_000_000, 0, "far")));
    }

    #[test]
    fn growth_keeps_every_event() {
        let mut q = CalendarQueue::new(8);
        let n = 10_000u64;
        for i in 0..n {
            // Scatter across a wide span to force bucket sharing and
            // at least one grow().
            q.push((i * 7919) % 1_000_000, i, i);
        }
        assert_eq!(q.len(), n as usize);
        let mut last = (0u64, 0u64);
        let mut count = 0;
        while let Some((t, s, _)) = q.pop() {
            assert!((t, s) > last || count == 0, "order violated at {t}/{s}");
            last = (t, s);
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn matches_binary_heap_reference() {
        // Randomized differential check against the reference ordering.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..20 {
            let mut q = CalendarQueue::new(1 + (trial * 37) as u64);
            let mut reference = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut popped = Vec::new();
            let mut expected = Vec::new();
            for _ in 0..500 {
                if rng() % 3 == 0 {
                    let a = q.pop();
                    let b = reference.pop().map(|Reverse((t, s))| (t, s, ()));
                    now = a.map(|(t, _, _)| t).unwrap_or(now);
                    popped.push(a);
                    expected.push(b);
                } else {
                    let t = now + rng() % 10_000;
                    seq += 1;
                    q.push(t, seq, ());
                    reference.push(Reverse((t, seq)));
                }
            }
            while let Some((t, s, p)) = q.pop() {
                popped.push(Some((t, s, p)));
                expected.push(reference.pop().map(|Reverse((t, s))| (t, s, ())));
            }
            assert_eq!(popped, expected, "trial {trial}");
            assert!(reference.is_empty());
        }
    }

    #[test]
    fn zero_gap_estimate_is_usable() {
        let mut q = CalendarQueue::new(0);
        q.push(0, 0, ());
        q.push(u64::MAX >> 1, 1, ());
        assert_eq!(q.pop(), Some((0, 0, ())));
        assert_eq!(q.pop(), Some((u64::MAX >> 1, 1, ())));
    }
}
