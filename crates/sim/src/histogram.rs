//! Streaming latency statistics: Welford moments plus a fixed-bucket
//! log-scale histogram.
//!
//! The original engine recorded every completed packet's latency in an
//! unbounded `Vec<SimTime>` and sorted it at report time — O(n log n)
//! and a reallocation-heavy append stream. The [`LatencyRecorder`]
//! replaces both: mean/stddev stream through Welford's algorithm and
//! percentiles come from an HDR-style histogram with `2^7 = 128`
//! sub-buckets per power of two (≤ 0.8 % relative bucket width).
//!
//! Each bucket additionally tracks the **min and max** value it has
//! absorbed, and percentile lookup interpolates linearly between them
//! by rank. Two consequences matter for the test suite:
//!
//! * a bucket holding one distinct value reports it *exactly* — so a
//!   deterministic paced run (every latency identical) yields
//!   `p50 == max` to the bit, and
//! * well-separated samples (≥ one bucket width apart) land in
//!   distinct buckets and are likewise exact.
//!
//! Rank semantics match the retired sort-based path:
//! `rank = round((count − 1) · q)`.

use crate::time::SimTime;
use lognic_model::units::Seconds;

/// Sub-bucket resolution: 2^7 buckets per power of two.
const SUB_BITS: u32 = 7;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Bucket count covering the full u64 picosecond range:
/// values < 128 get unit buckets, then (64 − 7) half-decades of 128.
const BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB_BUCKETS as usize) + SUB_BUCKETS as usize;

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    count: u64,
    min: u64,
    max: u64,
}

/// Streaming recorder for packet latencies (picosecond resolution).
///
/// # Examples
///
/// ```
/// use lognic_sim::histogram::LatencyRecorder;
/// use lognic_sim::time::SimTime;
///
/// let mut rec = LatencyRecorder::new();
/// for _ in 0..100 {
///     rec.record(SimTime::from_micros(5.0));
/// }
/// // All-equal samples are exact: p50 == max.
/// assert_eq!(rec.quantile(0.5), rec.max().to_seconds());
/// assert_eq!(rec.count(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    buckets: Vec<Bucket>,
    count: u64,
    max: u64,
    // Welford accumulators over seconds.
    mean: f64,
    m2: f64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// An empty recorder. Allocates its (fixed-size) bucket table up
    /// front — the last allocation it ever performs.
    pub fn new() -> Self {
        LatencyRecorder {
            buckets: vec![Bucket::default(); BUCKETS],
            count: 0,
            max: 0,
            mean: 0.0,
            m2: 0.0,
        }
    }

    #[inline]
    fn index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        let e = 63 - v.leading_zeros();
        let shifted = (v >> (e - SUB_BITS)) - SUB_BUCKETS;
        ((e - SUB_BITS + 1) as u64 * SUB_BUCKETS + shifted) as usize
    }

    /// Records one latency sample. O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, latency: SimTime) {
        let v = latency.as_picos();
        let b = &mut self.buckets[Self::index(v)];
        if b.count == 0 {
            b.min = v;
            b.max = v;
        } else {
            b.min = b.min.min(v);
            b.max = b.max.max(v);
        }
        b.count += 1;
        self.count += 1;
        self.max = self.max.max(v);
        // Welford update over seconds.
        let x = latency.as_secs();
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded latency.
    pub fn max(&self) -> SimTime {
        SimTime::from_picos(self.max)
    }

    /// Streaming arithmetic mean.
    pub fn mean(&self) -> Seconds {
        Seconds::new(if self.count == 0 { 0.0 } else { self.mean })
    }

    /// Streaming (population) standard deviation.
    pub fn stddev(&self) -> Seconds {
        if self.count < 2 {
            return Seconds::ZERO;
        }
        Seconds::new((self.m2 / self.count as f64).sqrt())
    }

    /// The `q`-quantile with the same rank convention as a sorted
    /// vector: `rank = round((count − 1) · q)`. Values inside a
    /// multi-value bucket are linearly interpolated between the
    /// bucket's observed min and max; a single-value bucket is exact.
    pub fn quantile(&self, q: f64) -> Seconds {
        if self.count == 0 {
            return Seconds::ZERO;
        }
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut cum = 0u64;
        for b in &self.buckets {
            if b.count == 0 {
                continue;
            }
            if cum + b.count > rank {
                let pos = rank - cum;
                let v = if b.count == 1 || b.min == b.max {
                    b.min as f64
                } else {
                    b.min as f64 + (b.max - b.min) as f64 * (pos as f64 / (b.count - 1) as f64)
                };
                return SimTime::from_picos(v.round() as u64).to_seconds();
            }
            cum += b.count;
        }
        self.max().to_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 3, v + v / 2, (v - 1).max(1)] {
                let idx = LatencyRecorder::index(probe);
                assert!(idx < BUCKETS, "index {idx} out of range for {probe}");
            }
            let idx = LatencyRecorder::index(v);
            assert!(idx >= last, "index must not decrease: {v}");
            last = idx;
        }
        assert!(LatencyRecorder::index(u64::MAX) < BUCKETS);
        assert_eq!(LatencyRecorder::index(0), 0);
        assert_eq!(LatencyRecorder::index(127), 127);
    }

    #[test]
    fn all_equal_samples_are_exact() {
        let mut rec = LatencyRecorder::new();
        for _ in 0..1000 {
            rec.record(SimTime::from_micros(42.0));
        }
        let p50 = rec.quantile(0.5);
        let max = rec.max().to_seconds();
        assert_eq!(p50, max, "deterministic runs need exact percentiles");
        assert!((rec.mean().as_micros() - 42.0).abs() < 1e-9);
        assert!(rec.stddev().as_secs() < 1e-12);
    }

    #[test]
    fn well_separated_samples_are_exact() {
        // 1..=100 µs, 1 µs apart — far wider than the 0.8 % bucket
        // width at this scale, so every sample owns its bucket.
        let mut rec = LatencyRecorder::new();
        for i in 1..=100 {
            rec.record(SimTime::from_micros(i as f64));
        }
        // rank = round((count − 1)·q): p50 → round(49.5) = index 50,
        // i.e. the 51 µs sample — the sort-based path's convention.
        assert!((rec.quantile(0.50).as_micros() - 51.0).abs() < 1e-9);
        assert!((rec.quantile(0.90).as_micros() - 90.0).abs() < 1e-9);
        assert!((rec.quantile(0.99).as_micros() - 99.0).abs() < 1e-9);
        assert!((rec.mean().as_micros() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn dense_samples_stay_within_bucket_error() {
        // 10k samples uniform in [1ms, 1.001ms): all within one power
        // of two, heavily shared buckets.
        let mut rec = LatencyRecorder::new();
        let mut sorted = Vec::new();
        let mut seed = 1u64;
        for _ in 0..10_000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ps = 1_000_000_000 + (seed >> 40) % 1_000_000;
            sorted.push(ps);
            rec.record(SimTime::from_picos(ps));
        }
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
            let exact = sorted[rank] as f64;
            let approx = rec.quantile(q).as_secs() * 1e12;
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.01, "q={q}: {approx} vs {exact} (rel {rel})");
        }
    }

    #[test]
    fn empty_recorder_reports_zero() {
        let rec = LatencyRecorder::new();
        assert_eq!(rec.count(), 0);
        assert_eq!(rec.quantile(0.5), Seconds::ZERO);
        assert_eq!(rec.mean(), Seconds::ZERO);
        assert_eq!(rec.stddev(), Seconds::ZERO);
        assert_eq!(rec.max(), SimTime::ZERO);
    }
}
