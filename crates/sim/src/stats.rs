//! Streaming statistics for replicated simulation runs.
//!
//! A single seeded run is a point estimate; validation against the
//! analytical model needs the *distribution* across seeds. This module
//! provides the two pieces the replication engine aggregates with: a
//! numerically stable [`Welford`] accumulator (mean and sample
//! variance in one pass, no catastrophic cancellation) and a
//! Student-t based 95 % confidence interval for the mean
//! ([`MetricSummary::from_accumulator`]).

/// Welford's online algorithm: streaming mean and sample variance.
///
/// # Examples
///
/// ```
/// use lognic_sim::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The sample variance (`n − 1` denominator; zero below two
    /// observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The standard error of the mean (zero below two observations).
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }
}

/// Two-sided 97.5 % Student-t quantile (the multiplier of a 95 %
/// confidence interval) for the given degrees of freedom.
///
/// Exact table values through 30 degrees of freedom, then the
/// conventional 40/60/120 steps, then the normal limit 1.96. Returns
/// infinity for zero degrees of freedom: one observation carries no
/// interval.
pub fn t_quantile_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// The replicated summary of one scalar metric: mean, spread and a
/// 95 % confidence interval for the mean across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Number of replicas aggregated.
    pub n: u64,
    /// Mean across replicas.
    pub mean: f64,
    /// Sample standard deviation across replicas.
    pub stddev: f64,
    /// Lower edge of the 95 % confidence interval for the mean.
    pub ci_lo: f64,
    /// Upper edge of the 95 % confidence interval for the mean.
    pub ci_hi: f64,
}

impl MetricSummary {
    /// Summarizes a finished accumulator.
    pub fn from_accumulator(w: &Welford) -> Self {
        let half = if w.count() < 2 {
            f64::INFINITY
        } else {
            t_quantile_975(w.count() - 1) * w.std_error()
        };
        MetricSummary {
            n: w.count(),
            mean: w.mean(),
            stddev: w.stddev(),
            ci_lo: w.mean() - half,
            ci_hi: w.mean() + half,
        }
    }

    /// Summarizes a slice of observations.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut w = Welford::new();
        for &x in samples {
            w.push(x);
        }
        MetricSummary::from_accumulator(&w)
    }

    /// Half-width of the confidence interval.
    pub fn half_width(&self) -> f64 {
        (self.ci_hi - self.ci_lo) / 2.0
    }

    /// True when `x` lies inside the 95 % confidence interval.
    pub fn contains(&self, x: f64) -> bool {
        self.ci_lo <= x && x <= self.ci_hi
    }

    /// The interval's half-width relative to its mean (infinite when
    /// the mean is zero and the interval is not a point).
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            if self.half_width() == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.half_width() / self.mean.abs()
        }
    }
}

impl std::fmt::Display for MetricSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Significant digits, not fixed decimals: latencies live at
        // 1e-6 and would render as "0.000003 ± 0.000000" otherwise.
        write!(
            f,
            "{:.6e} ± {:.2e} (95% CI [{:.6e}, {:.6e}], n={})",
            self.mean,
            self.half_width(),
            self.ci_lo,
            self.ci_hi,
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.5);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.731).sin() * 10.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn t_table_spot_checks() {
        assert!((t_quantile_975(1) - 12.706).abs() < 1e-9);
        assert!((t_quantile_975(9) - 2.262).abs() < 1e-9);
        assert!((t_quantile_975(30) - 2.042).abs() < 1e-9);
        assert!((t_quantile_975(35) - 2.021).abs() < 1e-9);
        assert!((t_quantile_975(1000) - 1.960).abs() < 1e-9);
        assert!(t_quantile_975(0).is_infinite());
    }

    #[test]
    fn t_table_is_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_quantile_975(df);
            assert!(t <= prev, "df {df}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn summary_covers_known_interval() {
        // n=4, mean 10, sd 2 → half-width 3.182 * 2 / 2 = 3.182.
        let s = MetricSummary::from_samples(&[8.0, 8.0, 12.0, 12.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 10.0).abs() < 1e-12);
        assert!((s.stddev - (16.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let half = t_quantile_975(3) * s.stddev / 2.0;
        assert!((s.half_width() - half).abs() < 1e-9);
        assert!(s.contains(10.0));
        assert!(s.contains(s.ci_lo) && s.contains(s.ci_hi));
        assert!(!s.contains(s.ci_hi + 1e-6));
    }

    #[test]
    fn single_sample_interval_is_infinite() {
        let s = MetricSummary::from_samples(&[5.0]);
        assert!(s.ci_lo.is_infinite() && s.ci_lo < 0.0);
        assert!(s.ci_hi.is_infinite() && s.ci_hi > 0.0);
        assert!(s.contains(1e300), "one sample constrains nothing");
    }

    #[test]
    fn relative_half_width_cases() {
        let s = MetricSummary::from_samples(&[10.0, 10.0, 10.0]);
        assert_eq!(s.relative_half_width(), 0.0);
        let z = MetricSummary::from_samples(&[0.0, 0.0]);
        assert_eq!(z.relative_half_width(), 0.0);
        let mixed = MetricSummary::from_samples(&[-1.0, 1.0]);
        assert!(mixed.relative_half_width().is_infinite());
    }

    #[test]
    fn display_is_informative() {
        let s = MetricSummary::from_samples(&[1.0, 2.0, 3.0]);
        let text = format!("{s}");
        assert!(text.contains("95% CI") && text.contains("n=3"), "{text}");
    }
}
