//! A Nelder–Mead downhill-simplex minimizer.
//!
//! The paper's optimizer uses SciPy's SLSQP with penalty handling and
//! names Nelder–Mead as the local-search alternative (§3.8). All of
//! the paper's design-space problems are low-dimensional (≤ 8
//! variables), for which Nelder–Mead with bound clamping and penalty
//! constraints is robust and dependency-free.

/// Options controlling the simplex search.
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Convergence tolerance on the simplex's objective spread.
    pub tolerance: f64,
    /// Initial simplex step per dimension (relative to the bound
    /// range).
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 2000,
            tolerance: 1e-10,
            initial_step: 0.15,
        }
    }
}

/// The result of a minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The best point found.
    pub x: Vec<f64>,
    /// The objective value at `x`.
    pub value: f64,
    /// Objective evaluations consumed.
    pub evals: usize,
}

fn clamp(x: &mut [f64], bounds: &[(f64, f64)]) {
    for (v, (lo, hi)) in x.iter_mut().zip(bounds) {
        *v = v.clamp(*lo, *hi);
    }
}

/// Minimizes `f` over the box `bounds`, starting from `start`.
///
/// Points are clamped into the box before evaluation, so `f` is never
/// called outside it. Returns the best point found; for non-convex
/// objectives this is a local minimum (restart from other points to
/// explore).
///
/// # Panics
///
/// Panics if `start` and `bounds` have different or zero lengths, or
/// if any bound is inverted.
pub fn minimize<F>(
    mut f: F,
    start: &[f64],
    bounds: &[(f64, f64)],
    options: NelderMeadOptions,
) -> Solution
where
    F: FnMut(&[f64]) -> f64,
{
    let n = start.len();
    assert!(n > 0, "need at least one dimension");
    assert_eq!(n, bounds.len(), "bounds must match dimensionality");
    for (lo, hi) in bounds {
        assert!(lo <= hi, "inverted bound [{lo}, {hi}]");
    }

    let mut evals = 0usize;
    let mut eval = |x: &mut Vec<f64>, evals: &mut usize| -> f64 {
        clamp(x, bounds);
        *evals += 1;
        f(x)
    };

    // Initial simplex: start plus one perturbed vertex per dimension.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let mut x0 = start.to_vec();
    let v0 = eval(&mut x0, &mut evals);
    simplex.push((x0, v0));
    for i in 0..n {
        let mut x = start.to_vec();
        let span = (bounds[i].1 - bounds[i].0).max(1e-12);
        x[i] += options.initial_step * span;
        let v = eval(&mut x, &mut evals);
        simplex.push((x, v));
    }

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    while evals < options.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective values are ordered"));
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() < options.tolerance {
            // A flat simplex is converged only if it is also small;
            // vertices symmetric around the minimum have equal values
            // at any distance. Shrink instead of stopping.
            let diameter: f64 = simplex
                .iter()
                .flat_map(|(x, _)| {
                    let best = &simplex[0].0;
                    x.iter()
                        .zip(best)
                        .map(|(a, b)| (a - b).abs())
                        .collect::<Vec<_>>()
                })
                .fold(0.0, f64::max);
            if diameter < 1e-7 {
                break;
            }
            let best = simplex[0].0.clone();
            for vert in simplex.iter_mut().skip(1) {
                let mut x: Vec<f64> = best
                    .iter()
                    .zip(&vert.0)
                    .map(|(b, v)| b + sigma * (v - b))
                    .collect();
                let fv = eval(&mut x, &mut evals);
                *vert = (x, fv);
            }
            continue;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, v) in centroid.iter_mut().zip(x) {
                *c += v / n as f64;
            }
        }
        let worst = simplex[n].clone();

        let mut reflected: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = eval(&mut reflected, &mut evals);

        if fr < simplex[0].1 {
            // Expansion.
            let mut expanded: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + gamma * (c - w))
                .collect();
            let fe = eval(&mut expanded, &mut evals);
            simplex[n] = if fe < fr {
                (expanded, fe)
            } else {
                (reflected, fr)
            };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflected, fr);
        } else {
            // Contraction.
            let mut contracted: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = eval(&mut contracted, &mut evals);
            if fc < worst.1 {
                simplex[n] = (contracted, fc);
            } else {
                // Shrink toward the best vertex.
                let best = simplex[0].0.clone();
                for vert in simplex.iter_mut().skip(1) {
                    let mut x: Vec<f64> = best
                        .iter()
                        .zip(&vert.0)
                        .map(|(b, v)| b + sigma * (v - b))
                        .collect();
                    let fv = eval(&mut x, &mut evals);
                    *vert = (x, fv);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective values are ordered"));
    let (x, value) = simplex.swap_remove(0);
    Solution { x, value, evals }
}

/// Multi-start Nelder–Mead: runs [`minimize`] from a deterministic
/// lattice of starting points across the box and keeps the best
/// result. Cheap insurance against local minima on the non-convex
/// design spaces the optimizer explores (placement × parallelism
/// landscapes).
///
/// `starts_per_dim` points are placed per dimension (capped so the
/// total start count stays below ~64).
///
/// # Panics
///
/// Panics on empty or inverted bounds (see [`minimize`]).
pub fn minimize_multistart<F>(
    mut f: F,
    bounds: &[(f64, f64)],
    starts_per_dim: usize,
    options: NelderMeadOptions,
) -> Solution
where
    F: FnMut(&[f64]) -> f64,
{
    let n = bounds.len();
    assert!(n > 0, "need at least one dimension");
    let per_dim = starts_per_dim
        .max(1)
        .min((64f64.powf(1.0 / n as f64)).floor() as usize)
        .max(1);
    let total = per_dim.pow(n as u32);
    let mut best: Option<Solution> = None;
    for idx in 0..total {
        let mut start = Vec::with_capacity(n);
        let mut rem = idx;
        for (lo, hi) in bounds {
            let slot = rem % per_dim;
            rem /= per_dim;
            let frac = (slot as f64 + 0.5) / per_dim as f64;
            start.push(lo + frac * (hi - lo));
        }
        let sol = minimize(&mut f, &start, bounds, options);
        if best.as_ref().is_none_or(|b| sol.value < b.value) {
            best = Some(sol);
        }
    }
    best.expect("at least one start")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let sol = minimize(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            &[(-10.0, 10.0), (-10.0, 10.0)],
            NelderMeadOptions::default(),
        );
        assert!((sol.x[0] - 3.0).abs() < 1e-4, "{:?}", sol.x);
        assert!((sol.x[1] + 1.0).abs() < 1e-4, "{:?}", sol.x);
        assert!(sol.value < 1e-7);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let sol = minimize(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            &[(-5.0, 5.0), (-5.0, 5.0)],
            NelderMeadOptions {
                max_evals: 5000,
                ..NelderMeadOptions::default()
            },
        );
        assert!((sol.x[0] - 1.0).abs() < 1e-3, "{:?}", sol.x);
        assert!((sol.x[1] - 1.0).abs() < 1e-3, "{:?}", sol.x);
    }

    #[test]
    fn respects_bounds() {
        // Unconstrained optimum at x = −5, box at [0, 10].
        let sol = minimize(
            |x| (x[0] + 5.0).powi(2),
            &[5.0],
            &[(0.0, 10.0)],
            NelderMeadOptions::default(),
        );
        assert!(sol.x[0] >= 0.0);
        assert!(sol.x[0] < 1e-3, "{:?}", sol.x);
    }

    #[test]
    fn one_dimensional_works() {
        // In one dimension the simplex degenerates to two points and
        // converges only linearly; golden-section is the precise 1-D
        // tool. Nelder-Mead should still land close.
        let sol = minimize(
            |x| (x[0] - 0.25).powi(2),
            &[0.9],
            &[(0.0, 1.0)],
            NelderMeadOptions::default(),
        );
        assert!((sol.x[0] - 0.25).abs() < 5e-3, "{:?}", sol.x);
    }

    #[test]
    fn eval_budget_is_respected() {
        let mut count = 0usize;
        let sol = minimize(
            |x| {
                count += 1;
                x[0] * x[0]
            },
            &[4.0],
            &[(-5.0, 5.0)],
            NelderMeadOptions {
                max_evals: 20,
                ..NelderMeadOptions::default()
            },
        );
        assert!(
            count <= 25,
            "small overshoot from the final iteration only: {count}"
        );
        assert_eq!(sol.evals, count);
    }

    #[test]
    #[should_panic(expected = "bounds must match")]
    fn mismatched_bounds_panic() {
        let _ = minimize(
            |x| x[0],
            &[0.0, 1.0],
            &[(0.0, 1.0)],
            NelderMeadOptions::default(),
        );
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        // A double well: local minimum near x = −2 (value 1), global
        // near x = 3 (value 0). Single-start from the left basin gets
        // trapped; multistart finds the global one.
        let well = |x: &[f64]| {
            let a = (x[0] + 2.0).powi(2) + 1.0;
            let b = (x[0] - 3.0).powi(2);
            a.min(b)
        };
        let single = minimize(well, &[-4.0], &[(-5.0, 5.0)], NelderMeadOptions::default());
        assert!(
            (single.x[0] + 2.0).abs() < 0.1,
            "trapped at the local well: {:?}",
            single.x
        );
        let multi = minimize_multistart(well, &[(-5.0, 5.0)], 8, NelderMeadOptions::default());
        assert!((multi.x[0] - 3.0).abs() < 0.05, "{:?}", multi.x);
        assert!(multi.value < 1e-4);
    }

    #[test]
    fn multistart_caps_total_starts_in_high_dimensions() {
        // 4 dimensions at 8 starts/dim would be 4096 starts; the cap
        // keeps it tractable, and the bowl is still solved.
        let mut evals = 0usize;
        let sol = minimize_multistart(
            |x| {
                evals += 1;
                x.iter().map(|v| v * v).sum()
            },
            &[(-1.0, 1.0); 4],
            8,
            NelderMeadOptions {
                max_evals: 300,
                ..NelderMeadOptions::default()
            },
        );
        assert!(sol.value < 1e-4, "{sol:?}");
        assert!(evals < 30_000, "evals = {evals}");
    }
}
