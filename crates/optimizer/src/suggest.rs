//! Domain-specific optimizer entry points for the paper's case
//! studies: each wraps a workload's scenario builder with the generic
//! search primitives and returns the configuration LogNIC suggests.

use crate::search::{argmax_over, golden_section, min_satisfying};
use lognic_model::units::{Bandwidth, Bytes, Seconds};
use lognic_workloads::microservices::{optimal_allocation, App, TOTAL_CORES};
use lognic_workloads::nf_placement::{self, Placement};
use lognic_workloads::panic_scenarios;

/// Case study #3: the NIC-core allocation for an E3 app (Figs. 11/12).
pub fn suggest_core_allocation(app: App) -> Vec<u32> {
    let costs: Vec<Seconds> = app.stages().into_iter().map(|(_, c)| c).collect();
    optimal_allocation(&costs, TOTAL_CORES)
}

/// Case study #3 extension: the NIC/host split for an E3 app — the
/// orchestrator's migration question, answered by the model instead of
/// E3's queue-length heuristic.
pub fn suggest_nic_host_split(app: App) -> Vec<bool> {
    lognic_workloads::microservices::optimal_split(app)
}

/// Case study #4: the NF placement for a packet size (Figs. 13/14).
pub fn suggest_placement(size: Bytes) -> Placement {
    nf_placement::optimal_for(size)
}

/// Case study #5, scenario 1: the minimal credit provision that keeps
/// the Model-1 chain's throughput within 0.5 % of the 8-credit default
/// (Fig. 15).
pub fn suggest_credits(sizes: &[u64], rate: Bandwidth) -> u32 {
    let reference = panic_scenarios::pipelined_chain(8, sizes, rate)
        .estimator()
        .throughput()
        .expect("valid scenario")
        .attainable();
    min_satisfying(1, 8, |credits| {
        panic_scenarios::pipelined_chain(credits, sizes, rate)
            .estimator()
            .throughput()
            .expect("valid scenario")
            .attainable()
            .as_bps()
            >= reference.as_bps() * 0.995
    })
}

/// Case study #5, scenario 2: the A2 traffic share minimizing the
/// model's mean latency (Figs. 16/17). A continuous search over the
/// `[0, 0.8]` split.
pub fn suggest_steering_split(size: Bytes, rate: Bandwidth) -> f64 {
    golden_section(
        |x| {
            panic_scenarios::steering(x, size, rate)
                .estimator()
                .latency()
                .expect("valid scenario")
                .mean()
                .as_secs()
        },
        0.0,
        0.8,
        1e-4,
    )
}

/// Case study #5, scenario 3: the minimal IP4 parallel degree
/// preserving throughput (Figs. 18/19).
pub fn suggest_ip4_degree(ip3_share: f64, size: Bytes, rate: Bandwidth) -> u32 {
    let reference = panic_scenarios::hybrid(8, ip3_share, size, rate)
        .estimator()
        .throughput()
        .expect("valid scenario")
        .attainable();
    min_satisfying(1, 8, |degree| {
        panic_scenarios::hybrid(degree, ip3_share, size, rate)
            .estimator()
            .throughput()
            .expect("valid scenario")
            .attainable()
            .as_bps()
            >= reference.as_bps() * 0.995
    })
}

/// Case study #1 helper: the NIC-core parallelism that saturates the
/// inline path of a LiquidIO accelerator (Fig. 9's knee, found on the
/// model rather than read off the device profile).
pub fn suggest_inline_cores(accel: lognic_devices::liquidio::Accelerator, size: Bytes) -> u32 {
    use lognic_devices::liquidio::LiquidIo;
    use lognic_workloads::inline_accel::inline;
    let plateau = inline(accel, LiquidIo::CORES, size, LiquidIo::line_rate())
        .estimator()
        .throughput()
        .expect("valid scenario")
        .attainable();
    min_satisfying(1, LiquidIo::CORES, |cores| {
        inline(accel, cores, size, LiquidIo::line_rate())
            .estimator()
            .throughput()
            .expect("valid scenario")
            .attainable()
            .as_bps()
            >= plateau.as_bps() * (1.0 - 1e-9)
    })
}

/// A generic helper: the placement (from an explicit candidate list)
/// with the highest model capacity at a packet size.
pub fn best_placement_of(candidates: &[Placement], size: Bytes) -> Option<Placement> {
    argmax_over(candidates.iter().copied(), |p| {
        nf_placement::capacity(p, size).as_bps()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_devices::liquidio::{Accelerator, LiquidIo};
    use lognic_workloads::microservices::pipeline_capacity;

    #[test]
    fn core_allocation_sums_and_beats_equal() {
        for app in App::ALL {
            let alloc = suggest_core_allocation(app);
            assert_eq!(alloc.iter().sum::<u32>(), TOTAL_CORES);
            let costs: Vec<Seconds> = app.stages().into_iter().map(|(_, c)| c).collect();
            let cap = pipeline_capacity(&costs, &alloc);
            assert!(cap > 0.0);
        }
    }

    #[test]
    fn nic_host_split_suggestion_is_valid() {
        for app in App::ALL {
            let split = suggest_nic_host_split(app);
            assert_eq!(split.len(), app.stages().len());
        }
    }

    #[test]
    fn placement_suggestions_flip_with_packet_size() {
        assert_eq!(suggest_placement(Bytes::new(64)), Placement::arm_only());
        assert_ne!(suggest_placement(Bytes::new(1500)), Placement::arm_only());
    }

    #[test]
    fn credit_suggestions_match_paper() {
        let rate = Bandwidth::gbps(100.0);
        let got: Vec<u32> = panic_scenarios::CREDIT_PROFILES
            .iter()
            .map(|sizes| suggest_credits(sizes, rate))
            .collect();
        assert_eq!(got, vec![5, 4, 4, 4]);
    }

    #[test]
    fn steering_split_balances_capacity() {
        let x = suggest_steering_split(Bytes::new(512), Bandwidth::gbps(80.0));
        // Proportional split of the 80 % across the 7:3 capacities.
        assert!((x - 0.56).abs() < 0.03, "x = {x}");
    }

    #[test]
    fn ip4_degree_suggestions_match_paper() {
        let rate = Bandwidth::gbps(80.0);
        assert_eq!(suggest_ip4_degree(0.5, Bytes::new(1024), rate), 6);
        assert_eq!(suggest_ip4_degree(0.8, Bytes::new(1024), rate), 4);
    }

    #[test]
    fn inline_cores_match_device_anchor() {
        let mtu = Bytes::new(1500);
        for accel in [Accelerator::Md5, Accelerator::Kasumi, Accelerator::Hfa] {
            assert_eq!(
                suggest_inline_cores(accel, mtu),
                LiquidIo::cores_to_saturate(accel, mtu),
                "{}",
                accel.name()
            );
        }
    }

    #[test]
    fn best_placement_of_candidates() {
        let c = [Placement::arm_only(), Placement::accel_only()];
        assert_eq!(
            best_placement_of(&c, Bytes::new(64)),
            Some(Placement::arm_only())
        );
        assert_eq!(
            best_placement_of(&c, Bytes::new(1500)),
            Some(Placement::accel_only())
        );
        assert_eq!(best_placement_of(&[], Bytes::new(64)), None);
    }
}
