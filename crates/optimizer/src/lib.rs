//! # lognic-optimizer
//!
//! The optimizer mode of LogNIC (§3.8, Fig. 4b): given a scenario
//! whose configurable parameters (Table 2) are open — parallelism
//! degrees, traffic splits, queue credits, placements — search for the
//! configuration satisfying the stipulated performance goals.
//!
//! * [`problem`] — the generic constrained-optimization facade:
//!   objective + box bounds + weighted constraints, solved by
//!   penalized Nelder–Mead (the paper uses SciPy's SLSQP; all its
//!   studies are low-dimensional, where the simplex method with
//!   penalties is equally effective and dependency-free).
//! * [`nelder_mead`], [`search`] — the underlying primitives
//!   (simplex descent, golden-section, discrete arg-min/arg-max,
//!   minimal-satisfying scans).
//! * [`suggest`] — per-case-study entry points reproducing the
//!   paper's suggestions: core allocations (§4.4), NF placements
//!   (§4.5), credits, steering splits and parallel degrees (§4.6).

#![warn(missing_docs)]

pub mod nelder_mead;
pub mod problem;
pub mod search;
pub mod suggest;

pub use nelder_mead::{minimize, minimize_multistart, NelderMeadOptions, Solution};
pub use problem::{Goal, Outcome, Problem};

/// The workspace-wide blessed surface (`lognic_model::prelude`) plus
/// this crate's optimization entry points.
pub mod prelude {
    pub use lognic_model::prelude::*;

    pub use crate::nelder_mead::{minimize, minimize_multistart, NelderMeadOptions, Solution};
    pub use crate::problem::{Goal, Outcome, Problem};
}
