//! The interactive optimizer of Fig. 4b: an objective, box bounds and
//! weighted constraints, solved by penalized Nelder–Mead.
//!
//! The paper's workflow: define the objective (maximize
//! `P_attainable`, minimize `T_attainable`, …) and the system
//! constraints (bus speeds, parallelism limits, latency bounds),
//! solve, and — if no feasible solution emerges — relax goals or
//! constraints and retry. The relax-and-retry loop belongs to the
//! caller; [`Problem::solve`] reports which constraints ended up
//! violated so the caller can decide what to relax.

use crate::nelder_mead::{minimize, NelderMeadOptions, Solution};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Goal {
    /// Smaller objective values are better (e.g. latency).
    Minimize,
    /// Larger objective values are better (e.g. throughput).
    Maximize,
}

/// A boxed constraint function `g(x) ≤ 0`.
type ConstraintFn<'a> = Box<dyn Fn(&[f64]) -> f64 + 'a>;

/// One inequality constraint `g(x) ≤ 0`, with a weight expressing the
/// designer's priority among alternatives (§3.8).
pub struct Constraint<'a> {
    name: String,
    g: ConstraintFn<'a>,
    weight: f64,
}

impl std::fmt::Debug for Constraint<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Constraint")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .finish()
    }
}

/// The outcome of solving a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The best point found and its (unpenalized) objective value.
    pub solution: Solution,
    /// True when every constraint holds at the solution (within
    /// 1e-6).
    pub feasible: bool,
    /// Names of constraints violated at the solution.
    pub violated: Vec<String>,
}

/// A constrained optimization problem over continuous parameters.
///
/// # Examples
///
/// Maximize `x·y` on the unit box subject to `x + y ≤ 1`:
///
/// ```
/// use lognic_optimizer::problem::{Goal, Problem};
///
/// let outcome = Problem::new(Goal::Maximize, |x| x[0] * x[1])
///     .bound(0.0, 1.0)
///     .bound(0.0, 1.0)
///     .constraint("budget", 1.0, |x| x[0] + x[1] - 1.0)
///     .solve(&[0.1, 0.1]);
/// assert!(outcome.feasible);
/// assert!((outcome.solution.x[0] - 0.5).abs() < 1e-3);
/// ```
pub struct Problem<'a, F> {
    goal: Goal,
    objective: F,
    bounds: Vec<(f64, f64)>,
    constraints: Vec<Constraint<'a>>,
    penalty: f64,
    options: NelderMeadOptions,
}

impl<F> std::fmt::Debug for Problem<'_, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Problem")
            .field("goal", &self.goal)
            .field("bounds", &self.bounds)
            .field("constraints", &self.constraints)
            .field("penalty", &self.penalty)
            .finish()
    }
}

impl<'a, F> Problem<'a, F>
where
    F: FnMut(&[f64]) -> f64,
{
    /// Creates a problem with the given goal and objective.
    pub fn new(goal: Goal, objective: F) -> Self {
        Problem {
            goal,
            objective,
            bounds: Vec::new(),
            constraints: Vec::new(),
            penalty: 1e6,
            options: NelderMeadOptions::default(),
        }
    }

    /// Appends a box bound for the next parameter dimension.
    pub fn bound(mut self, lo: f64, hi: f64) -> Self {
        self.bounds.push((lo, hi));
        self
    }

    /// Adds a constraint `g(x) ≤ 0` with a priority weight.
    pub fn constraint<G>(mut self, name: &str, weight: f64, g: G) -> Self
    where
        G: Fn(&[f64]) -> f64 + 'a,
    {
        self.constraints.push(Constraint {
            name: name.to_owned(),
            g: Box::new(g),
            weight,
        });
        self
    }

    /// Overrides the penalty multiplier for constraint violations.
    pub fn penalty_weight(mut self, penalty: f64) -> Self {
        self.penalty = penalty;
        self
    }

    /// Overrides the inner solver options.
    pub fn options(mut self, options: NelderMeadOptions) -> Self {
        self.options = options;
        self
    }

    /// Solves from a starting point.
    ///
    /// # Panics
    ///
    /// Panics if `start.len()` disagrees with the declared bounds.
    pub fn solve(mut self, start: &[f64]) -> Outcome {
        assert_eq!(
            start.len(),
            self.bounds.len(),
            "start must match declared bounds"
        );
        let sign = match self.goal {
            Goal::Minimize => 1.0,
            Goal::Maximize => -1.0,
        };
        let penalty = self.penalty;
        let constraints = &self.constraints;
        let objective = &mut self.objective;
        let penalized = |x: &[f64]| -> f64 {
            let base = sign * objective(x);
            let viol: f64 = constraints
                .iter()
                .map(|c| {
                    let v = (c.g)(x).max(0.0);
                    c.weight * v * v
                })
                .sum();
            base + penalty * viol
        };
        let mut solution = minimize(penalized, start, &self.bounds, self.options);
        // Report the raw objective value, not the penalized one.
        solution.value = (self.objective)(&solution.x);
        let violated: Vec<String> = self
            .constraints
            .iter()
            .filter(|c| (c.g)(&solution.x) > 1e-6)
            .map(|c| c.name.clone())
            .collect();
        Outcome {
            feasible: violated.is_empty(),
            violated,
            solution,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_maximization() {
        let outcome = Problem::new(Goal::Maximize, |x: &[f64]| -(x[0] - 2.0).powi(2) + 5.0)
            .bound(-10.0, 10.0)
            .solve(&[0.0]);
        assert!(outcome.feasible);
        assert!((outcome.solution.x[0] - 2.0).abs() < 1e-4);
        assert!((outcome.solution.value - 5.0).abs() < 1e-6);
    }

    #[test]
    fn constraint_binds_at_boundary() {
        // max x on [0, 10] s.t. x ≤ 3.
        let outcome = Problem::new(Goal::Maximize, |x: &[f64]| x[0])
            .bound(0.0, 10.0)
            .constraint("cap", 1.0, |x| x[0] - 3.0)
            .solve(&[1.0]);
        assert!(outcome.feasible, "violated: {:?}", outcome.violated);
        assert!(
            (outcome.solution.x[0] - 3.0).abs() < 1e-2,
            "{:?}",
            outcome.solution.x
        );
    }

    #[test]
    fn infeasible_problem_reports_violations() {
        // x ≤ −1 cannot hold on [0, 1].
        let outcome = Problem::new(Goal::Minimize, |x: &[f64]| x[0])
            .bound(0.0, 1.0)
            .constraint("impossible", 1.0, |x| x[0] + 1.0)
            .solve(&[0.5]);
        assert!(!outcome.feasible);
        assert_eq!(outcome.violated, vec!["impossible".to_owned()]);
    }

    #[test]
    fn reported_value_is_unpenalized() {
        let outcome = Problem::new(Goal::Minimize, |x: &[f64]| x[0] * x[0])
            .bound(-1.0, 1.0)
            .constraint("off", 1.0, |x| 0.5 - x[0]) // x ≥ 0.5
            .solve(&[0.0]);
        // Objective value at the solution is x², not x² + penalty.
        let x = outcome.solution.x[0];
        assert!((outcome.solution.value - x * x).abs() < 1e-12);
        assert!(outcome.feasible);
        assert!((x - 0.5).abs() < 1e-2);
    }

    #[test]
    fn weighted_constraints_prioritize() {
        // Two incompatible soft goals: x ≤ 0.2 (weight 100) and
        // x ≥ 0.8 (weight 1). The heavier one wins.
        let outcome = Problem::new(Goal::Minimize, |_: &[f64]| 0.0)
            .bound(0.0, 1.0)
            .penalty_weight(1.0)
            .constraint("low", 100.0, |x| x[0] - 0.2)
            .constraint("high", 1.0, |x| 0.8 - x[0])
            .solve(&[0.5]);
        assert!(outcome.solution.x[0] < 0.3, "{:?}", outcome.solution.x);
    }
}
