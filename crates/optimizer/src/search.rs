//! One-dimensional and discrete search primitives.

/// Golden-section minimization of a unimodal function on `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi` or either bound is not finite.
pub fn golden_section<F>(mut f: F, lo: f64, hi: f64, tolerance: f64) -> f64
where
    F: FnMut(f64) -> f64,
{
    assert!(
        lo.is_finite() && hi.is_finite() && lo <= hi,
        "invalid interval [{lo}, {hi}]"
    );
    let inv_phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    while (b - a).abs() > tolerance {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    (a + b) / 2.0
}

/// The argument in `candidates` minimizing `f` (first winner on ties).
///
/// Returns `None` for an empty candidate list.
pub fn argmin_over<T: Copy, F>(candidates: impl IntoIterator<Item = T>, mut f: F) -> Option<T>
where
    F: FnMut(T) -> f64,
{
    let mut best: Option<(T, f64)> = None;
    for c in candidates {
        let v = f(c);
        if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
            best = Some((c, v));
        }
    }
    best.map(|(c, _)| c)
}

/// The argument in `candidates` maximizing `f` (first winner on ties).
///
/// Returns `None` for an empty candidate list.
pub fn argmax_over<T: Copy, F>(candidates: impl IntoIterator<Item = T>, mut f: F) -> Option<T>
where
    F: FnMut(T) -> f64,
{
    argmin_over(candidates, |c| -f(c))
}

/// The smallest integer in `lo..=hi` satisfying a monotone predicate,
/// found by linear scan (`hi` when none satisfies it). Used for
/// minimal-resource questions: credits, parallel degrees.
pub fn min_satisfying<F>(lo: u32, hi: u32, mut predicate: F) -> u32
where
    F: FnMut(u32) -> bool,
{
    for v in lo..hi {
        if predicate(v) {
            return v;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_minimum() {
        let x = golden_section(|x| (x - 0.56).powi(2), 0.0, 0.8, 1e-9);
        assert!((x - 0.56).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn golden_handles_boundary_minimum() {
        let x = golden_section(|x| x, 2.0, 5.0, 1e-9);
        assert!((x - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn golden_rejects_inverted_interval() {
        let _ = golden_section(|x| x, 5.0, 2.0, 1e-9);
    }

    #[test]
    fn argmin_and_argmax() {
        assert_eq!(argmin_over(1..=10, |x| ((x as f64) - 7.2).abs()), Some(7));
        assert_eq!(
            argmax_over(1..=10, |x| -((x as f64) - 3.0).powi(2)),
            Some(3)
        );
        assert_eq!(argmin_over(std::iter::empty::<u32>(), |_| 0.0), None);
    }

    #[test]
    fn argmin_first_wins_ties() {
        assert_eq!(argmin_over([3u32, 1, 2, 1], |_| 1.0), Some(3));
    }

    #[test]
    fn min_satisfying_scans() {
        assert_eq!(min_satisfying(1, 8, |v| v * v >= 10), 4);
        assert_eq!(min_satisfying(1, 8, |_| false), 8);
        assert_eq!(min_satisfying(1, 8, |_| true), 1);
    }
}
