//! Plain-text figure tables: the same rows/series the paper plots.

use std::fmt;

/// How long to run the backing simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Short runs for smoke tests and CI.
    Quick,
    /// The full measurement runs used in EXPERIMENTS.md.
    #[default]
    Full,
}

impl Fidelity {
    /// Scales a full-fidelity duration (milliseconds) down for quick
    /// runs.
    pub fn millis(self, full_ms: f64) -> f64 {
        match self {
            Fidelity::Quick => (full_ms / 8.0).max(5.0),
            Fidelity::Full => full_ms,
        }
    }
}

/// One regenerated figure: a header, data rows and free-form notes
/// (the paper-anchor comparison lives in the notes).
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTable {
    /// Figure identifier (`"fig5"`, …).
    pub id: &'static str,
    /// Human title echoing the paper's caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows, one cell per column.
    pub rows: Vec<Vec<String>>,
    /// Summary notes: anchors, suggestions, error statistics.
    pub notes: Vec<String>,
}

impl FigureTable {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: &str, columns: &[&str]) -> Self {
        FigureTable {
            id,
            title: title.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {} — {}", self.id, self.title)?;
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(c.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut header = String::new();
        for (c, w) in self.columns.iter().zip(&widths) {
            header.push_str(&format!("{c:>w$}  "));
        }
        writeln!(f, "{}", header.trim_end())?;
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                line.push_str(&format!("{cell:>w$}  "));
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        for n in &self.notes {
            writeln!(f, "## {n}")?;
        }
        Ok(())
    }
}

/// `|a − b| / b` as a percentage string.
pub fn pct_err(predicted: f64, measured: f64) -> String {
    if measured == 0.0 {
        return "n/a".to_owned();
    }
    format!("{:.2}%", 100.0 * (predicted - measured).abs() / measured)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = FigureTable::new("figX", "demo", &["a", "value"]);
        t.row(["1", "10.5"]);
        t.row(["22", "3"]);
        t.note("anchor ok");
        let s = t.to_string();
        assert!(s.contains("# figX — demo"));
        assert!(s.contains("## anchor ok"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_checked() {
        let mut t = FigureTable::new("figX", "demo", &["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn pct_err_formats() {
        assert_eq!(pct_err(11.0, 10.0), "10.00%");
        assert_eq!(pct_err(1.0, 0.0), "n/a");
    }

    #[test]
    fn fidelity_scaling() {
        assert_eq!(Fidelity::Full.millis(100.0), 100.0);
        assert_eq!(Fidelity::Quick.millis(100.0), 12.5);
        assert_eq!(Fidelity::Quick.millis(10.0), 5.0, "floor at 5 ms");
    }
}
