//! Figures 13 and 14: network-function placement on the BlueField-2.

use crate::sim_cfg;
use crate::table::{Fidelity, FigureTable};
use lognic_model::units::{Bandwidth, Bytes};
use lognic_workloads::nf_placement::{capacity, optimal_for, scenario, Placement};

const SIZES: [u64; 6] = [64, 128, 256, 512, 1024, 1500];

fn strategies(size: Bytes) -> [(&'static str, Placement); 3] {
    [
        ("ARM-only", Placement::arm_only()),
        ("Accelerator-only", Placement::accel_only()),
        ("LogNIC-opt", optimal_for(size)),
    ]
}

/// Fig. 13: throughput vs packet size for the three placements.
pub fn fig13(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig13",
        "Throughput varied with the packet size among three placements",
        &["pktsize", "strategy", "model Gbps", "sim Gbps"],
    );
    let mut gain_arm = Vec::new();
    let mut gain_acc = Vec::new();
    for size in SIZES {
        let size = Bytes::new(size);
        let mut caps = Vec::new();
        for (label, placement) in strategies(size) {
            let cap = capacity(placement, size);
            let s = scenario(placement, size, Bandwidth::gbps(100.0));
            let sim = s.simulate(sim_cfg(f, 30.0, 43));
            caps.push(cap.as_bps());
            t.row([
                size.to_string(),
                label.to_owned(),
                format!("{:.2}", cap.as_gbps()),
                format!("{:.2}", sim.throughput.as_gbps()),
            ]);
        }
        gain_arm.push(caps[2] / caps[0] - 1.0);
        gain_acc.push(caps[2] / caps[1] - 1.0);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    t.note(format!(
        "LogNIC-opt throughput gain: {:.1}% vs ARM-only, {:.1}% vs Accelerator-only (paper: 81.9% / 21.7%)",
        mean(&gain_arm),
        mean(&gain_acc)
    ));
    t
}

/// Fig. 14: average latency vs packet size for the three placements,
/// measured at 60 % of each size's best capacity (a common offered
/// rate below every strategy's saturation would starve the comparison
/// at 64 B).
pub fn fig14(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig14",
        "Latency comparison varying the packet size from 64B to 1500B",
        &["pktsize", "strategy", "model us", "sim us"],
    );
    let mut save_arm = Vec::new();
    let mut save_acc = Vec::new();
    for size in SIZES {
        let size = Bytes::new(size);
        let best = capacity(optimal_for(size), size);
        let rate = best * 0.6;
        let mut lats = Vec::new();
        for (label, placement) in strategies(size) {
            let s = scenario(placement, size, rate);
            let model = s.estimator().latency().expect("valid").mean();
            let sim = s.simulate(sim_cfg(f, 30.0, 47));
            lats.push(sim.latency.mean.as_secs());
            t.row([
                size.to_string(),
                label.to_owned(),
                format!("{:.2}", model.as_micros()),
                format!("{:.2}", sim.latency.mean.as_micros()),
            ]);
        }
        save_arm.push(1.0 - lats[2] / lats[0]);
        save_acc.push(1.0 - lats[2] / lats[1]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    t.note(format!(
        "LogNIC-opt latency saving: {:.1}% vs ARM-only, {:.1}% vs Accelerator-only (paper: 37.9% / 27.3%)",
        mean(&save_arm),
        mean(&save_acc)
    ));
    t
}
