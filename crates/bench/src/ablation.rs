//! Ablations of the reproduction's two modeling refinements:
//!
//! 1. **M/M/c/N vs the paper's Eq. 12 (M/M/1/N)** for multi-engine
//!    IPs: the single-server closed form charges queueing delay that
//!    `D` concurrent engines never exhibit.
//! 2. **Mixture queueing (Pollaczek–Khinchine correction) vs naive
//!    per-class weighting** for mixed packet sizes: a queued request
//!    waits behind the mixture, not behind its own class.
//!
//! Each ablation prints predicted-vs-simulated latency with and
//! without the refinement, quantifying why it was adopted.

use crate::sim_cfg;
use crate::table::{pct_err, Fidelity, FigureTable};
use lognic_model::graph::ExecutionGraph;
use lognic_model::latency::estimate_latency;
use lognic_model::params::{HardwareModel, IpParams, PacketSizeDist, TrafficProfile};
use lognic_model::queueing::Mm1n;
use lognic_model::units::{Bandwidth, Bytes};
use lognic_sim::sim::Simulation;

fn fast_hw() -> HardwareModel {
    HardwareModel::new(Bandwidth::gbps(100_000.0), Bandwidth::gbps(100_000.0))
}

/// Ablation 1: single-server Eq. 12 vs M/M/c/N on a 64-engine IP
/// (the SSD case) across loads.
pub fn queueing_ablation(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "ablation-queueing",
        "Eq.12 (M/M/1/N) vs M/M/c/N latency prediction for a 64-engine IP",
        &[
            "load", "sim us", "mmcn us", "mm1n us", "mmcn err", "mm1n err",
        ],
    );
    let engines = 64u32;
    let capacity = 256u32;
    let peak = Bandwidth::gbps(21.0);
    let g = ExecutionGraph::chain(
        "ssd-like",
        &[(
            "ip",
            IpParams::new(peak)
                .with_parallelism(engines)
                .with_queue_capacity(capacity),
        )],
    )
    .expect("valid chain");
    let size = Bytes::kib(4);
    // Per-request service on one engine: D · g / P.
    let service = engines as f64 * size.bits() as f64 / peak.as_bps();
    for load in [0.3, 0.5, 0.7, 0.85, 0.95] {
        let traffic = TrafficProfile::fixed(peak.scaled(load), size);
        // The model (with the refinement).
        let mmcn = estimate_latency(&g, &fast_hw(), &traffic)
            .expect("valid scenario")
            .mean()
            .as_secs();
        // The paper's literal Eq. 12: single virtual server.
        let single = Mm1n::new(load, capacity).expect("finite load");
        let mm1n = service + single.queueing_factor() * service;
        // Ground truth.
        let sim = Simulation::builder(&g, &fast_hw(), &traffic)
            .config(sim_cfg(f, 300.0, 77))
            .run()
            .expect("valid scenario")
            .latency
            .mean
            .as_secs();
        t.row([
            format!("{load:.2}"),
            format!("{:.1}", sim * 1e6),
            format!("{:.1}", mmcn * 1e6),
            format!("{:.1}", mm1n * 1e6),
            pct_err(mmcn, sim),
            pct_err(mm1n, sim),
        ]);
    }
    t.note(
        "Eq.12 treats the 64-channel device as one server and charges \
         ~rho/(1-rho) services of queueing at moderate load; the M/M/c/N \
         refinement (which reduces to Eq.12 at D=1) tracks the simulated \
         device within a few percent"
            .to_owned(),
    );
    t
}

/// Ablation 2: mixture queueing vs naive per-class weighting on a
/// 64 B / 1500 B mix.
pub fn mixture_ablation(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "ablation-mixture",
        "Mixture (PK-corrected) vs naive per-class queueing for mixed sizes",
        &[
            "load",
            "sim us",
            "mixture us",
            "naive us",
            "mixture err",
            "naive err",
        ],
    );
    let peak = Bandwidth::gbps(10.0);
    let g = ExecutionGraph::chain(
        "mix",
        &[("ip", IpParams::new(peak).with_queue_capacity(128))],
    )
    .expect("valid chain");
    let dist =
        PacketSizeDist::mix([(Bytes::new(64), 0.5), (Bytes::new(1500), 0.5)]).expect("valid");
    for load in [0.3, 0.5, 0.7, 0.85] {
        let traffic = TrafficProfile::new(peak.scaled(load), dist.clone());
        let mixture = estimate_latency(&g, &fast_hw(), &traffic)
            .expect("valid scenario")
            .mean()
            .as_secs();
        // Naive: weighted average of independent fixed-size estimates.
        let naive: f64 = dist
            .entries()
            .iter()
            .map(|(size, w)| {
                let fixed = TrafficProfile::fixed(peak.scaled(load), *size);
                w * estimate_latency(&g, &fast_hw(), &fixed)
                    .expect("valid scenario")
                    .mean()
                    .as_secs()
            })
            .sum();
        let sim = Simulation::builder(&g, &fast_hw(), &traffic)
            .config(sim_cfg(f, 100.0, 79))
            .run()
            .expect("valid scenario")
            .latency
            .mean
            .as_secs();
        t.row([
            format!("{load:.2}"),
            format!("{:.2}", sim * 1e6),
            format!("{:.2}", mixture * 1e6),
            format!("{:.2}", naive * 1e6),
            pct_err(mixture, sim),
            pct_err(naive, sim),
        ]);
    }
    t.note(
        "small packets queue behind large ones: the naive per-class average \
         misses the hyperexponential service variability (kappa = E[S^2]/2E[S]^2) \
         and underpredicts increasingly with load"
            .to_owned(),
    );
    t
}

/// Ablation 3: prior models (Table 1 / §2.4) vs LogNIC on the inline
/// MD5 case study across packet sizes. LogCA sees one serialized
/// offload kernel; the classic Roofline sees one compute/memory pair;
/// neither sees the multi-kernel pipeline, the engine parallelism or
/// the traffic profile.
pub fn baseline_comparison(f: Fidelity) -> FigureTable {
    use lognic_devices::liquidio::{Accelerator, LiquidIo};
    use lognic_model::baselines::{LogCa, Roofline};
    use lognic_workloads::inline_accel::inline;

    let mut t = FigureTable::new(
        "baseline-models",
        "LogNIC vs LogCA vs Roofline throughput prediction (inline MD5)",
        &[
            "pktsize",
            "sim Gbps",
            "lognic Gbps",
            "logca Gbps",
            "roofline Gbps",
        ],
    );
    let accel = Accelerator::Md5;
    let spec = LiquidIo::accelerator(accel);
    // LogCA parameters characterized the way its methodology says: the
    // submission overhead is o+L, the host runs MD5 at ~2 Gb/s per
    // core, the engine accelerates ~9x at MTU.
    let logca = LogCa::new(
        lognic_model::units::Seconds::micros(1.0),
        lognic_model::units::Seconds::micros(2.35),
        lognic_model::units::Seconds::nanos(4.0),
        9.0,
    );
    // Roofline of the MD5 engine against the CMI.
    let roofline = Roofline::new(
        spec.peak_ops.as_per_sec(),
        lognic_devices::liquidio::Fabric::CoherentMemory.bandwidth(),
    );
    // Six NIC cores: the submission path (a kernel neither baseline
    // can see) binds at large packets.
    let cores = 6;
    for size in [64u64, 256, 512, 1024, 1500] {
        let size_b = lognic_model::units::Bytes::new(size);
        let s = inline(accel, cores, size_b, LiquidIo::line_rate());
        let lognic_pred = s
            .estimator()
            .throughput()
            .expect("valid")
            .attainable()
            .as_gbps();
        let sim = s.simulate(crate::sim_cfg(f, 40.0, 83)).throughput.as_gbps();
        let logca_pred = logca.throughput(size_b).as_gbps();
        // Roofline: ops at intensity = 1 op per packet-bits.
        let roof_ops = roofline.attainable_ops(1.0 / size_b.bits() as f64);
        let roof_pred = roof_ops * size_b.bits() as f64 / 1e9;
        t.row([
            size_b.to_string(),
            format!("{sim:.2}"),
            format!("{lognic_pred:.2}"),
            format!("{logca_pred:.2}"),
            format!("{roof_pred:.2}"),
        ]);
    }
    t.note(
        "LogCA serializes one offload kernel (no engine parallelism, no pipeline overlap) and collapses at small packets; the classic Roofline sees only the engine/fabric pair, missing the NIC-core submission stage that binds this 6-core configuration - only the multi-kernel, traffic-aware LogNIC graph tracks the measurement everywhere (the paper's 2.4 argument, quantified)"
            .to_owned(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queueing_ablation_shows_mmcn_wins() {
        let t = queueing_ablation(Fidelity::Quick);
        assert_eq!(t.rows.len(), 5);
        // At moderate load, mm1n error far exceeds mmcn error: compare
        // the 0.50 row's error columns.
        let row = &t.rows[1];
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        assert!(
            parse(&row[4]) < parse(&row[5]),
            "mmcn {} should beat mm1n {}",
            row[4],
            row[5]
        );
    }

    #[test]
    fn baseline_comparison_shows_lognic_tracks_sim() {
        let t = baseline_comparison(Fidelity::Quick);
        assert_eq!(t.rows.len(), 5);
        // At 64 B LogNIC tracks the sim; LogCA is far off.
        let small = &t.rows[0];
        let sim: f64 = small[1].parse().unwrap();
        let lognic: f64 = small[2].parse().unwrap();
        let logca: f64 = small[3].parse().unwrap();
        assert!(
            (lognic - sim).abs() / sim < 0.10,
            "lognic {lognic} vs sim {sim}"
        );
        assert!(
            (logca - sim).abs() / sim > 0.5,
            "LogCA should miss badly at 64 B: {logca} vs {sim}"
        );
        // At MTU the cores bind: the engine-only Roofline overshoots.
        let mtu = &t.rows[4];
        let sim: f64 = mtu[1].parse().unwrap();
        let lognic: f64 = mtu[2].parse().unwrap();
        let roofline: f64 = mtu[4].parse().unwrap();
        assert!(
            (lognic - sim).abs() / sim < 0.10,
            "lognic {lognic} vs sim {sim}"
        );
        assert!(
            roofline > sim * 1.2,
            "Roofline should overshoot the core-bound regime: {roofline} vs {sim}"
        );
    }

    #[test]
    fn mixture_ablation_shows_pk_wins_at_load() {
        let t = mixture_ablation(Fidelity::Quick);
        let row = t.rows.last().unwrap(); // load 0.85
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        assert!(
            parse(&row[4]) < parse(&row[5]),
            "mixture {} should beat naive {}",
            row[4],
            row[5]
        );
    }
}
