//! Figures 6 and 7: the NVMe-oF target on the Stingray.

use crate::sim_cfg;
use crate::table::{pct_err, Fidelity, FigureTable};
use lognic_devices::stingray::{fit_service, IoPattern, SsdProfile};
use lognic_workloads::nvmeof::{
    characterize_ssd, nvmeof_with_ssd_params, rate_for_iops, simulate_with_ssd,
};

/// Fig. 6: latency vs throughput for three I/O profiles, model
/// (curve-fitted SSD parameters, the paper's §4.3 methodology) vs
/// simulation.
pub fn fig06(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig6",
        "Latency varied with the throughput under three I/O profiles",
        &["profile", "tput GB/s", "sim us", "model us", "model err"],
    );
    let patterns: [(&str, IoPattern); 3] = [
        ("4KB-RRD", IoPattern::RandRead4k),
        ("128KB-RRD", IoPattern::RandRead128k),
        ("4KB-SWR", IoPattern::SeqWrite4k),
    ];
    for (label, pattern) in patterns {
        // Characterize the opaque SSD and curve-fit model parameters.
        let obs = characterize_ssd(pattern, &[0.3, 0.6, 0.8, 0.9, 0.96], 23);
        let profile = SsdProfile::for_pattern(pattern);
        let fit = fit_service(&obs, profile.queue_depth);
        let ssd_params = fit.ip_params(pattern.granularity(), profile.queue_depth);
        let mut errs = Vec::new();
        for frac in [0.2, 0.4, 0.6, 0.75, 0.85, 0.92] {
            let rate = rate_for_iops(pattern, profile.peak_iops() * frac);
            let scenario = nvmeof_with_ssd_params(pattern, rate, ssd_params);
            let model = scenario.estimator().latency().expect("valid").mean();
            let sim = simulate_with_ssd(&scenario, pattern, false, sim_cfg(f, 400.0, 29));
            let gbs = sim.throughput.as_bps() / 8e9;
            errs.push(
                (model.as_secs() - sim.latency.mean.as_secs()).abs() / sim.latency.mean.as_secs(),
            );
            t.row([
                label.to_owned(),
                format!("{gbs:.3}"),
                format!("{:.1}", sim.latency.mean.as_micros()),
                format!("{:.1}", model.as_micros()),
                pct_err(model.as_secs(), sim.latency.mean.as_secs()),
            ]);
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        t.note(format!(
            "{label}: fitted service {:.1} us x {} channels; mean latency error {:.2}% (paper: 0.89/0.24/2.75%)",
            fit.service.as_micros(),
            fit.parallelism,
            mean_err * 100.0
        ));
    }
    t
}

/// Fig. 7: 4 KB random-I/O bandwidth vs read ratio on a fragmented
/// drive. The simulator's garbage collection lets bursts of writes run
/// fast (pre-erased blocks), which the analytical model cannot see —
/// the model underpredicts, as in the paper.
pub fn fig07(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig7",
        "4KB random IO performance varied with the read ratio",
        &["read%", "sim MB/s", "model MB/s", "model err"],
    );
    let mut gaps = Vec::new();
    for pct in (0..=100).step_by(10) {
        let ratio = pct as f64 / 100.0;
        let pattern = IoPattern::MixedRand4k { read_ratio: ratio };
        // Overdrive: measure the saturated mixed bandwidth.
        let rate = rate_for_iops(pattern, 520_000.0);
        let scenario =
            nvmeof_with_ssd_params(pattern, rate, SsdProfile::for_pattern(pattern).ip_params());
        let model = scenario.estimate().expect("valid").delivered;
        let sim = simulate_with_ssd(&scenario, pattern, true, sim_cfg(f, 400.0, 31));
        let to_mbs = |bps: f64| bps / 8e6;
        if pct < 100 {
            gaps.push((sim.throughput.as_bps() - model.as_bps()) / sim.throughput.as_bps());
        }
        t.row([
            format!("{pct}"),
            format!("{:.0}", to_mbs(sim.throughput.as_bps())),
            format!("{:.0}", to_mbs(model.as_bps())),
            pct_err(model.as_bps(), sim.throughput.as_bps()),
        ]);
    }
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    t.note(format!(
        "model sits {:.1}% below the characterized bandwidth on write-bearing mixes (paper: 14.6%); GC is invisible to the model",
        mean_gap * 100.0
    ));
    t
}
