//! Figures 5, 9 and 10: inline acceleration on the LiquidIO-II.

use crate::sim_cfg;
use crate::table::{pct_err, Fidelity, FigureTable};
use lognic_devices::liquidio::LiquidIo;
use lognic_model::units::Bytes;
use lognic_workloads::inline_accel::{
    granularity, inline, roofline_ops, FIG10_ACCELS, FIG5_ACCELS, FIG9_ACCELS, GRANULARITIES,
    PACKET_SIZES,
};

/// Fig. 5: accelerator throughput (MOPS) vs data-access granularity.
pub fn fig05(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig5",
        "Accelerator throughput varied with its data access granularity",
        &[
            "granularity",
            "engine",
            "model MOPS",
            "sim MOPS",
            "model err",
        ],
    );
    let mut worst: f64 = 0.0;
    for accel in FIG5_ACCELS {
        for g in GRANULARITIES {
            let g = Bytes::new(g);
            let s = granularity(accel, g);
            let model_ops = s
                .estimator()
                .throughput()
                .expect("valid")
                .attainable()
                .as_bps()
                / g.bits() as f64;
            let sim = s.simulate(sim_cfg(f, 60.0, 11));
            let sim_ops = sim.throughput.as_bps() / g.bits() as f64;
            worst = worst.max((model_ops - sim_ops).abs() / sim_ops.max(1.0));
            t.row([
                g.to_string(),
                accel.name().to_owned(),
                format!("{:.3}", model_ops / 1e6),
                format!("{:.3}", sim_ops / 1e6),
                pct_err(model_ops, sim_ops),
            ]);
        }
    }
    let frac_at_16k = |a| {
        let r = roofline_ops(a, Bytes::kib(16)) / LiquidIo::accelerator(a).peak_ops.as_per_sec();
        format!("{:.1}%", 100.0 * r)
    };
    t.note(format!(
        "paper anchor: fraction of peak at 16KB = CRC {} / 3DES {} / MD5 {} / HFA {} (paper: 13.6/17.3/21.2/25.8%)",
        frac_at_16k(lognic_devices::liquidio::Accelerator::Crc),
        frac_at_16k(lognic_devices::liquidio::Accelerator::Des3),
        frac_at_16k(lognic_devices::liquidio::Accelerator::Md5),
        frac_at_16k(lognic_devices::liquidio::Accelerator::Hfa),
    ));
    t.note(format!(
        "worst model-vs-sim error across the sweep: {:.2}%",
        worst * 100.0
    ));
    t
}

/// Fig. 9: throughput vs IP1 (NIC core) parallelism at line rate.
pub fn fig09(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig9",
        "Throughput varied with the IP1 parallelism under line rate (MTU)",
        &["cores", "engine", "model MOPS", "sim MOPS", "model err"],
    );
    let mtu = Bytes::new(1500);
    for accel in FIG9_ACCELS {
        for cores in 1..=LiquidIo::CORES {
            let s = inline(accel, cores, mtu, LiquidIo::line_rate());
            let model = s.estimator().throughput().expect("valid").attainable();
            let sim = s.simulate(sim_cfg(f, 40.0, 13 + cores as u64));
            let to_mops = |bps: f64| bps / (mtu.bits() as f64) / 1e6;
            t.row([
                cores.to_string(),
                accel.name().to_owned(),
                format!("{:.3}", to_mops(model.as_bps())),
                format!("{:.3}", to_mops(sim.throughput.as_bps())),
                pct_err(model.as_bps(), sim.throughput.as_bps()),
            ]);
        }
    }
    t.note(format!(
        "saturation cores: MD5 {} / KASUMI {} / HFA {} (paper: 9/8/11)",
        LiquidIo::cores_to_saturate(lognic_devices::liquidio::Accelerator::Md5, mtu),
        LiquidIo::cores_to_saturate(lognic_devices::liquidio::Accelerator::Kasumi, mtu),
        LiquidIo::cores_to_saturate(lognic_devices::liquidio::Accelerator::Hfa, mtu),
    ));
    t
}

/// Fig. 10: achieved bandwidth vs packet size at line rate.
pub fn fig10(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig10",
        "Achieved bandwidth varied with the packet size under line rate",
        &[
            "pktsize",
            "engine",
            "model Gbps",
            "sim Gbps",
            "min-formula Gbps",
        ],
    );
    for accel in FIG10_ACCELS {
        for size in PACKET_SIZES {
            let size = Bytes::new(size);
            let s = inline(accel, LiquidIo::CORES, size, LiquidIo::line_rate());
            let model = s.estimator().throughput().expect("valid").attainable();
            let sim = s.simulate(sim_cfg(f, 40.0, 17));
            let formula = LiquidIo::accelerator(accel)
                .compute_rate(size)
                .min(LiquidIo::line_rate());
            t.row([
                size.to_string(),
                accel.name().to_owned(),
                format!("{:.2}", model.as_gbps()),
                format!("{:.2}", sim.throughput.as_gbps()),
                format!("{:.2}", formula.as_gbps()),
            ]);
        }
    }
    t.note("achieved bandwidth ≈ MIN(P_IP2 × pktsize, 25 Gbps), as in the paper".to_owned());
    t
}
