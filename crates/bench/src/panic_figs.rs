//! Figures 15–19: PANIC hardware design-space exploration.

use crate::sim_cfg;
use crate::table::{Fidelity, FigureTable};
use lognic_model::units::{Bandwidth, Bytes};
use lognic_optimizer::suggest::{suggest_credits, suggest_ip4_degree, suggest_steering_split};
use lognic_workloads::panic_scenarios::{
    hybrid, lognic_steering_split, pipelined_chain, steering, CREDIT_PROFILES, HYBRID_SPLITS,
    STATIC_SPLITS,
};

/// Fig. 15: delivered bandwidth vs provisioned credits for four mixed
/// traffic profiles.
pub fn fig15(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig15",
        "Measured bandwidth varied with the number of provisioned credits",
        &["credits", "profile", "sim Gbps", "model Gbps"],
    );
    let rate = Bandwidth::gbps(100.0);
    for (i, sizes) in CREDIT_PROFILES.iter().enumerate() {
        for credits in 1..=8u32 {
            let s = pipelined_chain(credits, sizes, rate);
            let model = s.estimate().expect("valid").delivered;
            let sim = s.simulate(sim_cfg(f, 8.0, 53 + credits as u64));
            t.row([
                credits.to_string(),
                format!("TP{}", i + 1),
                format!("{:.2}", sim.throughput.as_gbps()),
                format!("{:.2}", model.as_gbps()),
            ]);
        }
    }
    let suggestions: Vec<String> = CREDIT_PROFILES
        .iter()
        .map(|sizes| suggest_credits(sizes, rate).to_string())
        .collect();
    t.note(format!(
        "LogNIC credit suggestions per profile: {} (paper: 5/4/4/4)",
        suggestions.join("/")
    ));
    t
}

const STEERING_SIZES: [(u64, &str); 3] = [(64, "TP1(64B)"), (512, "TP2(512B)"), (1500, "TP3(MTU)")];

fn steering_schemes(size: Bytes, rate: Bandwidth) -> Vec<(String, f64)> {
    let mut v: Vec<(String, f64)> = STATIC_SPLITS
        .iter()
        .map(|x| {
            (
                format!("{}/{}", (x * 100.0) as u32, ((0.8 - x) * 100.0) as u32),
                *x,
            )
        })
        .collect();
    let suggested = suggest_steering_split(size, rate);
    v.push(("LogNIC".to_owned(), suggested));
    v
}

/// Fig. 16: latency of the static partitions vs the LogNIC split.
pub fn fig16(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig16",
        "Latency comparison among static and LogNIC suggested partitions",
        &["profile", "partition", "sim us", "model us"],
    );
    let rate = Bandwidth::gbps(80.0);
    for (size, label) in STEERING_SIZES {
        let size = Bytes::new(size);
        for (name, x) in steering_schemes(size, rate) {
            let s = steering(x, size, rate);
            let model = s.estimator().latency().expect("valid").mean();
            let sim = s.simulate(sim_cfg(f, 8.0, 59));
            t.row([
                label.to_owned(),
                name,
                format!("{:.2}", sim.latency.mean.as_micros()),
                format!("{:.2}", model.as_micros()),
            ]);
        }
    }
    t.note(format!(
        "LogNIC split steers {:.0}%/{:.0}% across A2/A3, proportional to the 7:3 capacities",
        lognic_steering_split() * 100.0,
        (0.8 - lognic_steering_split()) * 100.0
    ));
    t
}

/// Fig. 17: throughput of the static partitions vs the LogNIC split.
pub fn fig17(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig17",
        "Throughput comparison among four static traffic partitions",
        &["profile", "partition", "sim Gbps", "model Gbps"],
    );
    let rate = Bandwidth::gbps(80.0);
    for (size, label) in STEERING_SIZES {
        let size = Bytes::new(size);
        let mut tputs = Vec::new();
        for (name, x) in steering_schemes(size, rate) {
            let s = steering(x, size, rate);
            let model = s.estimate().expect("valid").delivered;
            let sim = s.simulate(sim_cfg(f, 8.0, 61));
            tputs.push(sim.throughput.as_bps());
            t.row([
                label.to_owned(),
                name,
                format!("{:.2}", sim.throughput.as_gbps()),
                format!("{:.2}", model.as_gbps()),
            ]);
        }
        let ours = tputs[4];
        let gains: Vec<String> = tputs[..4]
            .iter()
            .map(|s| format!("{:+.1}%", (ours / s - 1.0) * 100.0))
            .collect();
        t.note(format!("{label}: LogNIC vs statics {}", gains.join(" / ")));
    }
    t
}

/// Fig. 18: latency vs the IP4 parallel degree for two traffic
/// profiles.
pub fn fig18(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig18",
        "Latency varying the parallel degree for two traffic profiles",
        &["degree", "profile", "sim us", "model us"],
    );
    let rate = Bandwidth::gbps(80.0);
    let size = Bytes::new(1024);
    for (i, share) in HYBRID_SPLITS.iter().enumerate() {
        for degree in 1..=8u32 {
            let s = hybrid(degree, *share, size, rate);
            let model = s.estimator().latency().expect("valid").mean();
            let sim = s.simulate(sim_cfg(f, 8.0, 67 + degree as u64));
            t.row([
                degree.to_string(),
                format!("TP{}", i + 1),
                format!("{:.2}", sim.latency.mean.as_micros()),
                format!("{:.2}", model.as_micros()),
            ]);
        }
    }
    t.note(format!(
        "LogNIC degree suggestions: TP1 {} / TP2 {} (paper: 6 / 4)",
        suggest_ip4_degree(HYBRID_SPLITS[0], size, rate),
        suggest_ip4_degree(HYBRID_SPLITS[1], size, rate)
    ));
    t
}

/// Fig. 19: throughput vs the IP4 parallel degree.
pub fn fig19(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig19",
        "Throughput varying the parallel degree for two traffic profiles",
        &["degree", "profile", "sim Gbps", "model Gbps"],
    );
    let rate = Bandwidth::gbps(80.0);
    let size = Bytes::new(1024);
    for (i, share) in HYBRID_SPLITS.iter().enumerate() {
        for degree in 1..=8u32 {
            let s = hybrid(degree, *share, size, rate);
            let model = s.estimate().expect("valid").delivered;
            let sim = s.simulate(sim_cfg(f, 8.0, 71 + degree as u64));
            t.row([
                degree.to_string(),
                format!("TP{}", i + 1),
                format!("{:.2}", sim.throughput.as_gbps()),
                format!("{:.2}", model.as_gbps()),
            ]);
        }
    }
    t.note("throughput saturates at the suggested degree; more engines buy nothing".to_owned());
    t
}
