//! The tracked simulator-performance baseline.
//!
//! Runs three representative workloads (microservices, NVMe-oF,
//! accelerator-brownout chaos) under **both** scheduler engines — the
//! calendar queue and the retained binary-heap reference — and records
//! events/sec, wall time and steady-state allocations-per-event into
//! `BENCH_sim.json`. CI replays the same measurements and fails when
//! events/sec regresses by more than 25 % against the committed
//! baseline (`--check`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p lognic-bench --bin perf_baseline            # write BENCH_sim.json
//! cargo run --release -p lognic-bench --bin perf_baseline -- --check # compare, no write
//! cargo run --release -p lognic-bench --bin perf_baseline -- --out /tmp/b.json
//! cargo run --release -p lognic-bench --bin perf_baseline -- --trace-overhead
//! ```
//!
//! `--trace-overhead` gates the observability layer's zero-cost
//! claim: it A/B-measures the default `run()` path against an
//! explicit `run_with(&mut NoopObserver)` on the chaos workload and
//! fails if the no-op-observer path is more than 5 % slower. An
//! attached `RingLog` sink is measured too, informationally.
//!
//! Allocations are counted by a wrapping `#[global_allocator]`; the
//! per-event figure is a *delta between two run lengths* of the same
//! scenario, so one-time costs (graph build, wheel/bucket tables,
//! report assembly) cancel and the number isolates the steady-state
//! hot loop. The zero-alloc acceptance test lives in
//! `tests/zero_alloc.rs`; this binary records the same metric for
//! trend tracking.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use lognic_model::units::{Bandwidth, Seconds};
use lognic_sim::calendar::CalendarQueue;
use lognic_sim::prelude::*;
use lognic_sim::sim::Engine;
use lognic_workloads::chaos::accelerator_brownout;
use lognic_workloads::microservices::{scenario, AllocationScheme, App};
use lognic_workloads::nvmeof::nvmeof;
use lognic_workloads::scenario::Scenario;

/// A pass-through allocator that counts every allocation. Wrapping the
/// system allocator costs two relaxed atomic increments per call —
/// negligible next to the allocation itself, and exactly zero in an
/// allocation-free hot loop.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One workload under one engine.
struct Case {
    name: &'static str,
    engine: Engine,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    allocs_per_event: f64,
}

struct Workload {
    name: &'static str,
    scenario: Scenario,
    plan: Option<FaultPlan>,
    millis: f64,
}

fn workloads() -> Vec<Workload> {
    let chaos = accelerator_brownout(
        Bandwidth::gbps(8.0),
        Seconds::millis(4.0),
        Seconds::millis(2.0),
        Seconds::millis(3.0),
    );
    vec![
        Workload {
            name: "microservices",
            scenario: scenario(App::NfvFin, AllocationScheme::RoundRobin, 2.0e6),
            plan: None,
            millis: 60.0,
        },
        Workload {
            name: "nvmeof",
            scenario: nvmeof(
                lognic_devices::stingray::IoPattern::RandRead4k,
                Bandwidth::gbps(5.0),
            ),
            plan: None,
            millis: 60.0,
        },
        Workload {
            name: "chaos",
            scenario: chaos.scenario,
            plan: Some(chaos.plan),
            millis: 40.0,
        },
    ]
}

fn cfg(engine: Engine, millis: f64) -> SimConfig {
    SimConfig {
        seed: 42,
        duration: Seconds::millis(millis),
        warmup: Seconds::millis(millis * 0.2),
        engine,
        ..SimConfig::default()
    }
}

fn run_once(w: &Workload, engine: Engine, millis: f64) -> (SimReport, f64) {
    let mut b = Simulation::builder(&w.scenario.graph, &w.scenario.hardware, &w.scenario.traffic)
        .config(cfg(engine, millis));
    if let Some(plan) = &w.plan {
        b = b.with_fault_plan(plan.clone());
    }
    let sim = b.build().expect("workload scenarios are valid");
    let start = Instant::now();
    let report = sim.run().expect("bench runs stay under the watchdog");
    (report, start.elapsed().as_secs_f64())
}

fn measure(w: &Workload, engine: Engine) -> Case {
    // Steady-state allocations: delta between a full and a half run of
    // the same scenario — build/report transients cancel.
    let (half, _) = run_once(w, engine, w.millis * 0.5);
    let a0 = allocs_now();
    let (full_for_allocs, _) = run_once(w, engine, w.millis);
    let a1 = allocs_now();
    let half_allocs_start = allocs_now();
    let (_, _) = run_once(w, engine, w.millis * 0.5);
    let half_allocs = allocs_now() - half_allocs_start;
    let delta_allocs = (a1 - a0).saturating_sub(half_allocs);
    let delta_events = full_for_allocs.events.saturating_sub(half.events).max(1);
    let allocs_per_event = delta_allocs as f64 / delta_events as f64;

    // Wall time: best of three full runs (min filters scheduler noise).
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..3 {
        let (report, secs) = run_once(w, engine, w.millis);
        if secs < best {
            best = secs;
        }
        events = report.events;
    }
    Case {
        name: w.name,
        engine,
        events,
        wall_secs: best,
        events_per_sec: events as f64 / best,
        allocs_per_event,
    }
}

/// Hold-model pending set: large enough that a binary heap pays ~20
/// cache-missing sift levels per operation while the calendar stays
/// O(1) (a few touches regardless of size).
const HOLD_PENDING: u64 = 2_000_000;
/// Steady-state operations per timed pass.
const HOLD_OPS: u64 = 2_000_000;
/// Mean reschedule offset; with `HOLD_PENDING` events in flight the
/// mean pop-to-pop gap is `HOLD_MEAN_INC_PS / HOLD_PENDING` = 10 ps,
/// which the wheel sizes into ~3 events per day.
const HOLD_MEAN_INC_PS: u64 = 20_000_000;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Classic hold-model scheduler stress (Brown, CACM '88): keep
/// `HOLD_PENDING` events pending; every operation pops the minimum and
/// schedules a replacement a uniform random offset into the future.
/// Whole-simulation runs spend most of each event outside the queue,
/// so engine differences only surface here, where the scheduler *is*
/// the workload. Both engines consume the identical offset stream and
/// pop in the identical `(time, seq)` order, so the comparison is
/// work-for-work. Returns `(events, wall_secs, allocs_per_event)`.
fn hold_run(engine: Engine) -> (u64, f64, f64) {
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    let mut inc = move || 1 + rng.next() % (2 * HOLD_MEAN_INC_PS);
    let mut seq = 0u64;
    let mut acc = 0u64;
    let (secs, allocs) = match engine {
        Engine::Calendar => {
            let mut q = CalendarQueue::new((HOLD_MEAN_INC_PS / HOLD_PENDING).max(1));
            for i in 0..HOLD_PENDING {
                seq += 1;
                q.push(inc(), seq, i as u32);
            }
            let a0 = allocs_now();
            let start = Instant::now();
            for _ in 0..HOLD_OPS {
                let (t, _, p) = q.pop().expect("hold set never drains");
                acc = acc.wrapping_add(p as u64);
                seq += 1;
                q.push(t + inc(), seq, p);
            }
            (start.elapsed().as_secs_f64(), allocs_now() - a0)
        }
        Engine::ReferenceHeap => {
            let mut q: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
            for i in 0..HOLD_PENDING {
                seq += 1;
                q.push(Reverse((inc(), seq, i as u32)));
            }
            let a0 = allocs_now();
            let start = Instant::now();
            for _ in 0..HOLD_OPS {
                let Reverse((t, _, p)) = q.pop().expect("hold set never drains");
                acc = acc.wrapping_add(p as u64);
                seq += 1;
                q.push(Reverse((t + inc(), seq, p)));
            }
            (start.elapsed().as_secs_f64(), allocs_now() - a0)
        }
    };
    std::hint::black_box(acc);
    (HOLD_OPS, secs, allocs as f64 / HOLD_OPS as f64)
}

fn measure_hold(engine: Engine) -> Case {
    let mut best = f64::INFINITY;
    let mut allocs_per_event = 0.0;
    let mut events = 0;
    for _ in 0..3 {
        let (ev, secs, allocs) = hold_run(engine);
        if secs < best {
            best = secs;
            allocs_per_event = allocs;
        }
        events = ev;
    }
    Case {
        name: "sched_hold_2m",
        engine,
        events,
        wall_secs: best,
        events_per_sec: events as f64 / best,
        allocs_per_event,
    }
}

/// One timed run with an explicit observer through the generic
/// `run_with` path; returns `(events, wall_secs)`.
fn run_once_observed<O: SimObserver>(
    w: &Workload,
    engine: Engine,
    millis: f64,
    obs: &mut O,
) -> (u64, f64) {
    let mut b = Simulation::builder(&w.scenario.graph, &w.scenario.hardware, &w.scenario.traffic)
        .config(cfg(engine, millis));
    if let Some(plan) = &w.plan {
        b = b.with_fault_plan(plan.clone());
    }
    let sim = b.build().expect("workload scenarios are valid");
    let start = Instant::now();
    let report = sim
        .run_with(obs)
        .expect("bench runs stay under the watchdog");
    (report.events, start.elapsed().as_secs_f64())
}

/// The `--trace-overhead` gate: the no-op-observer path must run
/// within 5 % of the default path. Both compile to the same
/// monomorphization today; this trips if `run()` ever stops being a
/// thin `run_with(&mut NoopObserver)` wrapper or unconditional work
/// leaks into a hook site. Interleaved best-of-`ROUNDS` so scheduler
/// drift hits both arms equally.
fn trace_overhead() -> ! {
    const ROUNDS: usize = 5;
    let w = workloads()
        .into_iter()
        .find(|w| w.name == "chaos")
        .expect("chaos workload present");
    let millis = w.millis;

    let mut best_plain = f64::INFINITY;
    let mut best_noop = f64::INFINITY;
    let mut best_ring = f64::INFINITY;
    let mut events = 0u64;
    let mut ring_records = 0u64;
    for _ in 0..ROUNDS {
        let (report, secs) = run_once(&w, Engine::Calendar, millis);
        best_plain = best_plain.min(secs);
        events = report.events;

        let mut noop = NoopObserver;
        let (_, secs) = run_once_observed(&w, Engine::Calendar, millis, &mut noop);
        best_noop = best_noop.min(secs);

        let mut ring = RingLog::with_capacity(1 << 18);
        let (_, secs) = run_once_observed(&w, Engine::Calendar, millis, &mut ring);
        best_ring = best_ring.min(secs);
        ring_records = ring.written();
    }

    let plain_eps = events as f64 / best_plain;
    let noop_eps = events as f64 / best_noop;
    let ring_eps = events as f64 / best_ring;
    println!(
        "trace-overhead chaos/calendar  plain {:>12.0} ev/s  noop-observer {:>12.0} ev/s  ({:+.2}%)",
        plain_eps,
        noop_eps,
        (noop_eps / plain_eps - 1.0) * 100.0,
    );
    println!(
        "trace-overhead chaos/calendar  ring-sink {:>12.0} ev/s  ({:+.2}%, {} records, informational)",
        ring_eps,
        (ring_eps / plain_eps - 1.0) * 100.0,
        ring_records,
    );
    if noop_eps < plain_eps * 0.95 {
        eprintln!("trace-overhead: no-op observer costs more than 5% — the zero-cost gate failed");
        std::process::exit(1);
    }
    println!("trace-overhead: no-op observer within 5% of the untraced path");
    std::process::exit(0);
}

fn engine_key(e: Engine) -> &'static str {
    match e {
        Engine::Calendar => "calendar",
        Engine::ReferenceHeap => "reference_heap",
    }
}

fn render_json(cases: &[Case]) -> String {
    let mut out = String::from("{\n  \"schema\": \"lognic-perf-baseline/v1\",\n  \"results\": [\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"engine\": \"{}\", \"events\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.0}, \"allocs_per_event\": {:.6}}}{}\n",
            c.name,
            engine_key(c.engine),
            c.events,
            c.wall_secs,
            c.events_per_sec,
            c.allocs_per_event,
            if i + 1 < cases.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"speedup\": {\n");
    let names: Vec<&str> = {
        let mut v: Vec<&str> = cases.iter().map(|c| c.name).collect();
        v.dedup();
        v
    };
    for (i, name) in names.iter().enumerate() {
        let wheel = cases
            .iter()
            .find(|c| c.name == *name && c.engine == Engine::Calendar)
            .expect("calendar case present");
        let heap = cases
            .iter()
            .find(|c| c.name == *name && c.engine == Engine::ReferenceHeap)
            .expect("heap case present");
        out.push_str(&format!(
            "    \"{}\": {:.3}{}\n",
            name,
            wheel.events_per_sec / heap.events_per_sec,
            if i + 1 < names.len() { "," } else { "" },
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Extracts `(name, engine, events_per_sec)` triples from a baseline
/// file — each result record sits on its own line, so a line scanner
/// is enough (no JSON dependency in a hermetic workspace).
fn parse_baseline(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if !line.contains("\"events_per_sec\"") {
            continue;
        }
        let field = |key: &str| -> Option<String> {
            let at = line.find(key)? + key.len();
            let rest = &line[at..];
            let rest = rest.trim_start_matches([':', ' ', '"']);
            let end = rest.find(['"', ',', '}'])?;
            Some(rest[..end].trim().to_owned())
        };
        if let (Some(name), Some(engine), Some(eps)) = (
            field("\"name\""),
            field("\"engine\""),
            field("\"events_per_sec\""),
        ) {
            if let Ok(v) = eps.parse::<f64>() {
                out.push((name, engine, v));
            }
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--trace-overhead") {
        trace_overhead();
    }
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_sim.json");

    let mut cases = Vec::new();
    for w in workloads() {
        for engine in [Engine::Calendar, Engine::ReferenceHeap] {
            let c = measure(&w, engine);
            println!(
                "{:<16} {:<15} {:>10} events  {:>8.1} ms  {:>12.0} ev/s  {:.4} allocs/ev",
                c.name,
                engine_key(c.engine),
                c.events,
                c.wall_secs * 1e3,
                c.events_per_sec,
                c.allocs_per_event,
            );
            cases.push(c);
        }
    }
    for engine in [Engine::Calendar, Engine::ReferenceHeap] {
        let c = measure_hold(engine);
        println!(
            "{:<16} {:<15} {:>10} events  {:>8.1} ms  {:>12.0} ev/s  {:.4} allocs/ev",
            c.name,
            engine_key(c.engine),
            c.events,
            c.wall_secs * 1e3,
            c.events_per_sec,
            c.allocs_per_event,
        );
        cases.push(c);
    }

    if check {
        let baseline = match std::fs::read_to_string("BENCH_sim.json") {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf-smoke: cannot read BENCH_sim.json: {e}");
                std::process::exit(2);
            }
        };
        let old = parse_baseline(&baseline);
        let mut failed = false;
        for c in &cases {
            let Some((_, _, old_eps)) = old
                .iter()
                .find(|(n, e, _)| n == c.name && e == engine_key(c.engine))
            else {
                eprintln!(
                    "perf-smoke: no baseline entry for {}/{}",
                    c.name,
                    engine_key(c.engine)
                );
                continue;
            };
            let floor = old_eps * 0.75;
            let status = if c.events_per_sec < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "check {:<16} {:<15} baseline {:>12.0} ev/s  now {:>12.0} ev/s  {}",
                c.name,
                engine_key(c.engine),
                old_eps,
                c.events_per_sec,
                status,
            );
        }
        if failed {
            eprintln!("perf-smoke: events/sec regressed by more than 25%");
            std::process::exit(1);
        }
        println!("perf-smoke: within 25% of the committed baseline");
        return;
    }

    let json = render_json(&cases);
    std::fs::write(out_path, &json).expect("write baseline file");
    println!("wrote {out_path}");
}
