//! `fuzz_smoke`: the standing differential fuzz harness as a CI job.
//!
//! Generates seeded random scenarios (`lognic_workloads::corpus::gen`)
//! and drives each through the full correctness pipeline — static
//! analyzer, both scheduler engines, and the analytical model against
//! a replicated simulation:
//!
//! * analyzer-clean scenarios must simulate **without watchdog
//!   aborts** on both the calendar and reference-heap engines;
//! * the two engines must produce **byte-identical** reports;
//! * the model's delivered throughput must land inside the
//!   simulation's replicated 95 % confidence interval (±3 % slack).
//!
//! Everything is deterministic and offline: a fixed default seed, no
//! wall-clock, no network. On failure the shrunk minimal
//! counterexample is written as a JSON artifact (replayable by hand
//! from its spec) and the process exits 1.
//!
//! ```text
//! fuzz_smoke [--cases N] [--seed S] [--artifact FILE]
//! ```

use std::process::ExitCode;

use lognic_testkit::fuzz::Fuzz;
use lognic_workloads::corpus::gen::{differential_check, ScenarioSpec};

struct Options {
    cases: u32,
    seed: u64,
    artifact: String,
}

fn usage() -> ! {
    eprintln!("usage: fuzz_smoke [--cases N] [--seed S] [--artifact FILE]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        cases: 32,
        // Fixed default so CI runs are reproducible run-to-run; any
        // historical failure replays with --seed + the logged case.
        seed: 0x10_621C_F022,
        artifact: "fuzz-failure.json".to_owned(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("fuzz_smoke: {} needs a value", args[i]);
                usage()
            })
        };
        match args[i].as_str() {
            "--cases" => opts.cases = value(i).parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value(i).parse().unwrap_or_else(|_| usage()),
            "--artifact" => opts.artifact = value(i).to_owned(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fuzz_smoke: unknown flag {other}");
                usage()
            }
        }
        i += 2;
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let report = Fuzz::new("differential_scenario_fuzz")
        .cases(opts.cases)
        .seed(opts.seed)
        .run(
            ScenarioSpec::arbitrary,
            ScenarioSpec::shrink,
            differential_check,
        );

    match &report.counterexample {
        None => {
            if report.checked < opts.cases {
                // The attempt cap hit before the budget was met — the
                // generator's clean rate collapsed, which is itself a
                // regression worth failing on.
                eprintln!(
                    "fuzz_smoke: only {} of {} analyzer-clean scenarios after {} attempts \
                     ({} skipped) — generator domain regressed",
                    report.checked, opts.cases, report.attempts, report.skipped
                );
                return ExitCode::FAILURE;
            }
            println!(
                "fuzz_smoke: {} scenarios checked ({} skipped as analyzer-flagged, \
                 {} attempts, seed {:#x}) — engines byte-identical, model inside \
                 replicated 95% CIs",
                report.checked, report.skipped, report.attempts, opts.seed
            );
            ExitCode::SUCCESS
        }
        Some(cx) => {
            let artifact = format!(
                "{{\"harness\":\"differential_scenario_fuzz\",\"base_seed\":{},\
                 \"case\":{},\"case_seed\":{},\"shrink_steps\":{},\
                 \"original_message\":{:?},\"message\":{:?},\"minimal_spec\":{}}}\n",
                opts.seed,
                cx.case,
                cx.seed,
                cx.shrink_steps,
                cx.original_message,
                cx.message,
                cx.minimal.to_json()
            );
            if let Err(e) = std::fs::write(&opts.artifact, &artifact) {
                eprintln!("fuzz_smoke: cannot write {}: {e}", opts.artifact);
            } else {
                eprintln!("fuzz_smoke: wrote failing scenario to {}", opts.artifact);
            }
            eprintln!(
                "fuzz_smoke: FAILED on case #{} (seed {}): {}\n\
                 after {} shrink step(s): {}\n\
                 minimal spec: {}",
                cx.case,
                cx.seed,
                cx.original_message,
                cx.shrink_steps,
                cx.message,
                cx.minimal.to_json()
            );
            ExitCode::FAILURE
        }
    }
}
