//! `lognic-lint`: static analysis of LogNIC scenarios from the
//! command line.
//!
//! Runs the analyzer's pass registry over a fixture set — the `clean`
//! set (every workload family at half its saturating rate, the shape
//! scenarios should ship in) or the `broken` set (the curated
//! misconfiguration corpus from `lognic_workloads::broken`) — plus the
//! calibrated device profiles, and renders the findings in the human
//! span style or as JSON lines for CI artifacts.
//!
//! ```text
//! lognic-lint                          # clean + device profiles, human output
//! lognic-lint --set broken             # the misconfiguration corpus
//! lognic-lint --deny warnings --json   # CI gate: nonzero exit on any warning
//! lognic-lint --deny L0202 --allow starved-node
//! lognic-lint --list                   # registered passes and codes
//! ```
//!
//! Exit status: 0 when no diagnostic is at deny level, 1 when at least
//! one is, 2 on a usage error.

use std::process::ExitCode;

use lognic_devices::validate::all_profile_diagnostics;
use lognic_model::analyze::{pass_names, AnalysisConfig, Code, Diagnostic, Severity};
use lognic_workloads::broken::{all_broken, BrokenCase};
use lognic_workloads::scenario::Scenario;

struct Options {
    set: FixtureSet,
    json: bool,
    color: bool,
    list: bool,
    config: AnalysisConfig,
    deny_warnings: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum FixtureSet {
    Clean,
    Broken,
    All,
}

fn usage() -> String {
    "usage: lognic-lint [--set clean|broken|all] [--json] [--no-color] [--list]\n\
     \x20                  [--deny warnings|<code>|<slug>]... [--warn <code>]... [--allow <code>]...\n\
     \n\
     Analyzes the fixture scenarios and the calibrated device profiles.\n\
     Exits 1 when any diagnostic lands at deny level, 2 on usage errors."
        .to_owned()
}

fn parse_code(spec: &str) -> Result<Code, String> {
    Code::parse(spec).ok_or_else(|| format!("unknown diagnostic code or slug `{spec}`"))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        set: FixtureSet::Clean,
        json: false,
        color: true,
        list: false,
        config: AnalysisConfig::default(),
        deny_warnings: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--set" => {
                let v = it.next().ok_or("--set requires a value")?;
                opts.set = match v.as_str() {
                    "clean" => FixtureSet::Clean,
                    "broken" => FixtureSet::Broken,
                    "all" => FixtureSet::All,
                    other => return Err(format!("unknown fixture set `{other}`")),
                };
            }
            "--json" => opts.json = true,
            "--no-color" => opts.color = false,
            "--list" => opts.list = true,
            "--deny" => {
                let v = it.next().ok_or("--deny requires a value")?;
                if v == "warnings" {
                    opts.deny_warnings = true;
                    opts.config = opts.config.clone().deny_warnings(true);
                } else {
                    opts.config = opts
                        .config
                        .clone()
                        .set_severity(parse_code(v)?, Severity::Deny);
                }
            }
            "--warn" => {
                let v = it.next().ok_or("--warn requires a value")?;
                opts.config = opts
                    .config
                    .clone()
                    .set_severity(parse_code(v)?, Severity::Warn);
            }
            "--allow" => {
                let v = it.next().ok_or("--allow requires a value")?;
                opts.config = opts
                    .config
                    .clone()
                    .set_severity(parse_code(v)?, Severity::Allow);
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

/// Derates a scenario to half its saturating rate: the posture clean
/// scenarios ship in (ρ = 0.5 on the binding bound).
fn derated(scenario: Scenario) -> Scenario {
    let sat = scenario
        .estimate()
        .ok()
        .and_then(|est| est.throughput.saturation_bound().map(|b| b.limit));
    match sat {
        Some(limit) => {
            let mut s = scenario.at_rate(limit * 0.5);
            s.name = scenario.name;
            s
        }
        None => scenario,
    }
}

/// The clean fixture set: every workload in the shared scenario
/// registry, each derated to half its saturating rate (fault plans
/// ride along so the L06xx hygiene passes see them). New registry
/// entries appear here automatically — and must therefore ship
/// warning-free at the derated rate to survive the CI `--deny
/// warnings` gate.
fn clean_cases() -> Vec<BrokenCase> {
    lognic_workloads::registry::ALL
        .iter()
        .map(|entry| {
            let (scenario, plan) = entry.build();
            BrokenCase {
                scenario: derated(scenario),
                plan,
                expect: &[],
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list {
        println!("passes:");
        for name in pass_names() {
            println!("  {name}");
        }
        println!("codes:");
        for code in Code::ALL {
            println!(
                "  {} {:28} default {}",
                code.as_str(),
                code.slug(),
                code.default_severity()
            );
        }
        return ExitCode::SUCCESS;
    }

    let mut cases = Vec::new();
    if matches!(opts.set, FixtureSet::Clean | FixtureSet::All) {
        cases.extend(clean_cases());
    }
    if matches!(opts.set, FixtureSet::Broken | FixtureSet::All) {
        cases.extend(all_broken());
    }

    let mut denied = 0usize;
    let mut warned = 0usize;
    let mut shown = 0usize;

    let mut emit = |scope: &str, diags: Vec<Diagnostic>| {
        for d in diags {
            match d.severity {
                Severity::Deny => denied += 1,
                Severity::Warn => warned += 1,
                Severity::Allow => continue,
            }
            shown += 1;
            if opts.json {
                // One JSON object per line, tagged with its scope.
                let line = d.render_json();
                let tagged = format!(
                    "{{\"scenario\":\"{scope}\",{}",
                    line.strip_prefix('{').unwrap_or(&line)
                );
                println!("{tagged}");
            } else {
                println!(
                    "{}\n  --- in scenario `{scope}`\n",
                    d.render_human(opts.color)
                );
            }
        }
    };

    for case in &cases {
        let report = case.analyze(&opts.config);
        emit(&case.scenario.name, report.diagnostics().to_vec());
    }

    // Device calibrations ride along in every set: a broken profile
    // should never survive CI regardless of which fixtures ran.
    let mut profile_diags = all_profile_diagnostics();
    if opts.deny_warnings {
        for d in &mut profile_diags {
            if d.severity == Severity::Warn {
                d.severity = Severity::Deny;
            }
        }
    }
    emit("device-profiles", profile_diags);

    if !opts.json {
        eprintln!(
            "lognic-lint: {} scenario(s) analyzed, {shown} finding(s) shown \
             ({denied} denied, {warned} warned)",
            cases.len() + 1
        );
    }
    if denied > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
