//! `lognic-serve`: the standalone service binary.
//!
//! Reads one JSON request per line on stdin, writes one JSON
//! response per line on stdout, and never exits on a bad request —
//! only on end-of-input (exit 0) or a usage error (exit 2). The
//! `lognic serve` subcommand is the same loop behind the main CLI.

use std::io::{BufReader, BufWriter, Write};

use lognic_service::{serve, ServeOptions, Service};

fn main() {
    let options = match ServeOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut service = Service::new(options.config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = BufWriter::new(stdout.lock());
    match serve(&mut service, &mut input, &mut output) {
        Ok(summary) => {
            let _ = output.flush();
            eprintln!(
                "lognic-serve: {} responses ({} shed, {} failed, {} isolated panics)",
                summary.responses,
                service.stats().shed,
                service.stats().failed,
                service.stats().isolated_panics
            );
        }
        Err(e) => {
            eprintln!("lognic-serve: I/O error: {e}");
            std::process::exit(1);
        }
    }
}
