//! Export a simulator run as an inspectable trace.
//!
//! Runs a workload under the observability layer and writes one of:
//!
//! * `chrome` — Chrome `trace_event` JSON, openable in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`: service
//!   occupancy spans per node, queue-depth counter tracks, drop/retry
//!   instants and fault-window spans.
//! * `csv` / `json` — the per-node time series (queue depth, ρ(t),
//!   drop and retry counters) sampled on a fixed Δt grid.
//! * `ring` — a human-readable dump of the bounded binary event ring
//!   (most recent events, oldest first).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p lognic-bench --bin trace_dump -- --out brownout.json
//! cargo run --release -p lognic-bench --bin trace_dump -- --workload nvmeof --format csv
//! trace_dump [--workload <registry name>] [--format chrome|csv|json|ring]
//!            [--seed N] [--millis M] [--dt-us D] [--limit N] [--ring-kib N] [--out FILE]
//! ```
//!
//! Workload names resolve through `lognic_workloads::registry`, so
//! every registered scenario (the paper case studies and the protocol
//! corpus alike) is exportable; `--workload help` lists them.
//!
//! The default workload is the accelerator-brownout chaos scenario —
//! the most interesting trace: outage and brownout fault windows,
//! retry storms and queue build-up are all visible on one screen.

use lognic_model::units::Seconds;
use lognic_sim::prelude::*;
use lognic_sim::trace::NO_NODE;
use lognic_workloads::registry;
use lognic_workloads::scenario::Scenario;

/// Default Chrome-trace packet-event budget: plenty for a brownout
/// run while keeping exported files comfortably under Perfetto's
/// in-browser limits.
const DEFAULT_LIMIT: usize = 500_000;

struct Options {
    workload: String,
    format: String,
    seed: u64,
    millis: f64,
    dt_us: f64,
    limit: usize,
    ring_kib: usize,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace_dump [--workload {}] \
         [--format chrome|csv|json|ring] [--seed N] [--millis M] \
         [--dt-us D] [--limit N] [--ring-kib N] [--out FILE]",
        registry::names().join("|")
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        workload: "chaos".to_owned(),
        format: "chrome".to_owned(),
        seed: 42,
        millis: 12.0,
        dt_us: 50.0,
        limit: DEFAULT_LIMIT,
        ring_kib: 256,
        out: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("trace_dump: {} needs a value", args[i]);
                usage()
            })
        };
        match args[i].as_str() {
            "--workload" => opts.workload = value(i).to_owned(),
            "--format" => opts.format = value(i).to_owned(),
            "--seed" => opts.seed = value(i).parse().unwrap_or_else(|_| usage()),
            "--millis" => opts.millis = value(i).parse().unwrap_or_else(|_| usage()),
            "--dt-us" => opts.dt_us = value(i).parse().unwrap_or_else(|_| usage()),
            "--limit" => opts.limit = value(i).parse().unwrap_or_else(|_| usage()),
            "--ring-kib" => opts.ring_kib = value(i).parse().unwrap_or_else(|_| usage()),
            "--out" => opts.out = Some(value(i).to_owned()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("trace_dump: unknown flag {other}");
                usage()
            }
        }
        i += 2;
    }
    opts
}

/// Resolves the named workload into `(scenario, fault plan)` via the
/// shared scenario registry — new corpus entries are exportable here
/// without touching this binary.
fn workload(name: &str) -> (Scenario, Option<FaultPlan>) {
    match registry::find(name) {
        Some(entry) => entry.build(),
        None => {
            eprintln!("trace_dump: unknown workload {name}");
            usage()
        }
    }
}

fn builder<'a>(
    scenario: &'a Scenario,
    plan: &Option<FaultPlan>,
    opts: &Options,
) -> SimulationBuilder<'a> {
    let mut b = Simulation::builder(&scenario.graph, &scenario.hardware, &scenario.traffic)
        .seed(opts.seed)
        .duration(Seconds::millis(opts.millis))
        .warmup(Seconds::millis(opts.millis * 0.1));
    if let Some(plan) = plan {
        b = b.with_fault_plan(plan.clone());
    }
    b
}

fn emit(out: &Option<String>, text: &str) {
    match out {
        Some(path) => {
            std::fs::write(path, text).unwrap_or_else(|e| {
                eprintln!("trace_dump: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path} ({} bytes)", text.len());
        }
        None => print!("{text}"),
    }
}

fn main() {
    let opts = parse_args();
    let (scenario, plan) = workload(&opts.workload);

    let (report, text) = match opts.format.as_str() {
        "chrome" => {
            let mut trace = ChromeTrace::new().with_limit(opts.limit);
            let report = builder(&scenario, &plan, &opts)
                .run_with(&mut trace)
                .expect("trace workloads are valid");
            if trace.truncated() > 0 {
                eprintln!(
                    "trace_dump: kept {} events, truncated {} past --limit {}",
                    trace.len(),
                    trace.truncated(),
                    opts.limit,
                );
            }
            (report, trace.into_json())
        }
        "csv" | "json" => {
            let (report, timeline) = builder(&scenario, &plan, &opts)
                .timeline(Seconds::micros(opts.dt_us))
                .expect("trace workloads are valid");
            let text = if opts.format == "csv" {
                timeline.to_csv()
            } else {
                timeline.to_json()
            };
            (report, text)
        }
        "ring" => {
            // Capacity is in 32-byte records; --ring-kib sizes the buffer.
            let mut ring = RingLog::with_capacity(opts.ring_kib * 1024 / 32);
            let report = builder(&scenario, &plan, &opts)
                .run_with(&mut ring)
                .expect("trace workloads are valid");
            let mut text = String::new();
            for rec in ring.decode() {
                text.push_str(&format!(
                    "{:>14} ps  {:<12} node={:<4} pkt={:<10} aux={}\n",
                    rec.time.as_picos(),
                    format!("{:?}", rec.kind),
                    if rec.node == NO_NODE {
                        "-".to_owned()
                    } else {
                        rec.node.to_string()
                    },
                    rec.pkt,
                    rec.aux,
                ));
            }
            if ring.dropped() > 0 {
                eprintln!(
                    "trace_dump: ring retained {} of {} records (oldest overwritten)",
                    ring.decode().len(),
                    ring.written(),
                );
            }
            (report, text)
        }
        other => {
            eprintln!("trace_dump: unknown format {other}");
            usage()
        }
    };

    emit(&opts.out, &text);
    eprintln!(
        "run: {} events, {:.3} Gbps delivered, {} drops, {} retries",
        report.events,
        report.throughput.as_gbps(),
        report.dropped,
        report.retries,
    );
}
