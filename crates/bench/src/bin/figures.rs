//! Regenerates the paper's evaluation figures as plain-text tables.
//!
//! Usage:
//!
//! ```text
//! figures [--quick] all
//! figures [--quick] fig5 fig9 fig15
//! figures list
//! ```

use lognic_bench::{ablation_ids, all_figure_ids, generate, Fidelity};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fidelity = if let Some(pos) = args.iter().position(|a| a == "--quick") {
        args.remove(pos);
        Fidelity::Quick
    } else {
        Fidelity::Full
    };

    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: figures [--quick] (all | ablations | list | <fig-id>...)");
        eprintln!("figures: {}", all_figure_ids().join(" "));
        eprintln!("ablations: {}", ablation_ids().join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args[0] == "list" {
        for id in all_figure_ids().into_iter().chain(ablation_ids()) {
            println!("{id}");
        }
        return;
    }

    let ids: Vec<&str> = if args[0] == "all" {
        all_figure_ids()
    } else if args[0] == "ablations" {
        ablation_ids()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut failed = false;
    for id in ids {
        let start = std::time::Instant::now();
        match generate(id, fidelity) {
            Some(table) => {
                println!("{table}");
                eprintln!("[{} done in {:.1}s]", id, start.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown figure `{id}` (try `figures list`)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
