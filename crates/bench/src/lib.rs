//! # lognic-bench
//!
//! The benchmark harness that regenerates **every evaluation figure**
//! of the paper (Figs. 5–19): for each figure, the workload's scenario
//! is run through both the analytical model and the discrete-event
//! simulator, and the same rows/series the paper plots are printed,
//! together with the paper's anchor values for comparison.
//!
//! Run `cargo run -p lognic-bench --release --bin figures -- all` for
//! the full set, or pass figure ids (`fig5 fig9 …`). The Criterion
//! benches (`cargo bench`) measure the cost of the model evaluations
//! and simulator runs behind each figure.

#![warn(missing_docs)]

pub mod ablation;
pub mod e3_figs;
pub mod inline_figs;
pub mod nf_figs;
pub mod nvmeof_figs;
pub mod panic_figs;
pub mod table;

pub use table::{Fidelity, FigureTable};

use lognic_model::units::Seconds;
use lognic_sim::sim::SimConfig;

/// The simulation configuration used by the figure harness: a seeded
/// run of `full_ms` milliseconds (scaled by fidelity) with 20 % warmup.
pub fn sim_cfg(fidelity: Fidelity, full_ms: f64, seed: u64) -> SimConfig {
    let ms = fidelity.millis(full_ms);
    SimConfig {
        seed,
        duration: Seconds::millis(ms),
        warmup: Seconds::millis(ms * 0.2),
        ..SimConfig::default()
    }
}

/// Generates one figure by id (`"fig5"` … `"fig19"`).
///
/// Returns `None` for unknown ids.
pub fn generate(id: &str, fidelity: Fidelity) -> Option<FigureTable> {
    Some(match id {
        "fig5" => inline_figs::fig05(fidelity),
        "fig6" => nvmeof_figs::fig06(fidelity),
        "fig7" => nvmeof_figs::fig07(fidelity),
        "fig9" => inline_figs::fig09(fidelity),
        "fig10" => inline_figs::fig10(fidelity),
        "fig11" => e3_figs::fig11(fidelity),
        "fig12" => e3_figs::fig12(fidelity),
        "fig13" => nf_figs::fig13(fidelity),
        "fig14" => nf_figs::fig14(fidelity),
        "fig15" => panic_figs::fig15(fidelity),
        "fig16" => panic_figs::fig16(fidelity),
        "fig17" => panic_figs::fig17(fidelity),
        "fig18" => panic_figs::fig18(fidelity),
        "fig19" => panic_figs::fig19(fidelity),
        "ablation-queueing" => ablation::queueing_ablation(fidelity),
        "ablation-mixture" => ablation::mixture_ablation(fidelity),
        "baseline-models" => ablation::baseline_comparison(fidelity),
        _ => return None,
    })
}

/// All figure ids in paper order.
pub fn all_figure_ids() -> Vec<&'static str> {
    vec![
        "fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig17", "fig18", "fig19",
    ]
}

/// The reproduction's own ablation studies (DESIGN.md §5b).
pub fn ablation_ids() -> Vec<&'static str> {
    vec!["ablation-queueing", "ablation-mixture", "baseline-models"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_is_none() {
        assert!(generate("fig99", Fidelity::Quick).is_none());
        assert!(generate("", Fidelity::Quick).is_none());
    }

    #[test]
    fn cheap_figures_generate_rows() {
        // Quick-fidelity smoke for one representative (cheap) figure;
        // the full set is exercised by the binary and integration
        // tests in release mode.
        let id = "fig10";
        let t = generate(id, Fidelity::Quick).expect("known figure");
        assert!(!t.rows.is_empty(), "{id} produced no rows");
        assert!(!t.columns.is_empty());
    }

    #[test]
    fn all_ids_are_unique_and_complete() {
        let ids = all_figure_ids();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        assert_eq!(ids.len(), 14);
    }
}
