//! Figures 11 and 12: E3 microservice core allocation.

use crate::sim_cfg;
use crate::table::{Fidelity, FigureTable};
use lognic_workloads::microservices::{capacity, scenario, AllocationScheme, App};

/// At 85 % of the LogNIC-opt capacity — the paper's "80% traffic
/// load" point, where the weaker allocations saturate.
fn offered(app: App) -> f64 {
    0.85 * capacity(app, AllocationScheme::LogNicOpt)
}

/// Fig. 11: throughput of the three allocation schemes across five
/// applications.
pub fn fig11(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig11",
        "Throughput comparison among three allocation schemes (85% load)",
        &["app", "scheme", "sim Mrps", "model Mrps"],
    );
    let mut gains_rr = Vec::new();
    let mut gains_eq = Vec::new();
    for app in App::ALL {
        let rps = offered(app);
        let mut per_scheme = Vec::new();
        for scheme in AllocationScheme::ALL {
            let s = scenario(app, scheme, rps);
            let sim = s.simulate(sim_cfg(f, 80.0, 37));
            let model = s.estimate().expect("valid").delivered;
            let req_bits = 512.0 * 8.0;
            per_scheme.push(sim.throughput.as_bps() / req_bits);
            t.row([
                app.name().to_owned(),
                scheme.name().to_owned(),
                format!("{:.3}", sim.throughput.as_bps() / req_bits / 1e6),
                format!("{:.3}", model.as_bps() / req_bits / 1e6),
            ]);
        }
        gains_rr.push(per_scheme[2] / per_scheme[0] - 1.0);
        gains_eq.push(per_scheme[2] / per_scheme[1] - 1.0);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    t.note(format!(
        "LogNIC-opt throughput gain: {:.1}% vs round-robin, {:.1}% vs equal-partition (paper: 34.8% / 36.4%)",
        mean(&gains_rr),
        mean(&gains_eq)
    ));
    t
}

/// Fig. 12: average latency of the three allocation schemes.
pub fn fig12(f: Fidelity) -> FigureTable {
    let mut t = FigureTable::new(
        "fig12",
        "Average latency comparison among three allocation schemes (85% load)",
        &["app", "scheme", "sim us", "model us"],
    );
    let mut savings_rr = Vec::new();
    let mut savings_eq = Vec::new();
    for app in App::ALL {
        let rps = offered(app);
        let mut per_scheme = Vec::new();
        for scheme in AllocationScheme::ALL {
            let s = scenario(app, scheme, rps);
            let sim = s.simulate(sim_cfg(f, 80.0, 41));
            let model = s.estimator().latency().expect("valid").mean();
            per_scheme.push(sim.latency.mean.as_secs());
            t.row([
                app.name().to_owned(),
                scheme.name().to_owned(),
                format!("{:.2}", sim.latency.mean.as_micros()),
                format!("{:.2}", model.as_micros()),
            ]);
        }
        savings_rr.push(1.0 - per_scheme[2] / per_scheme[0]);
        savings_eq.push(1.0 - per_scheme[2] / per_scheme[1]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    t.note(format!(
        "LogNIC-opt latency saving: {:.1}% vs round-robin, {:.1}% vs equal-partition (paper: 22.4% / 22.8%)",
        mean(&savings_rr),
        mean(&savings_eq)
    ));
    t
}
