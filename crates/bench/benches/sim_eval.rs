//! Benchmarks (on the in-repo `lognic-testkit` harness) of the discrete-event simulator: events per
//! second of wall time on representative workloads.

use lognic_testkit::Bench;
use std::hint::black_box;

use lognic_devices::liquidio::{Accelerator, LiquidIo};
use lognic_model::units::{Bandwidth, Bytes, Seconds};
use lognic_sim::sim::SimConfig;
use lognic_workloads::{inline_accel, microservices, panic_scenarios};

fn short_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        duration: Seconds::millis(2.0),
        warmup: Seconds::micros(400.0),
        ..SimConfig::default()
    }
}

fn sim_inline_chain(c: &mut Bench) {
    let s = inline_accel::inline(Accelerator::Md5, 9, Bytes::new(1500), LiquidIo::line_rate());
    c.bench_function("sim_inline_md5_2ms", |b| {
        b.iter(|| black_box(s.simulate(short_cfg(3))))
    });
}

fn sim_microservice_pipeline(c: &mut Bench) {
    let s = microservices::scenario(
        microservices::App::NfvDin,
        microservices::AllocationScheme::LogNicOpt,
        0.8 * microservices::capacity(
            microservices::App::NfvDin,
            microservices::AllocationScheme::LogNicOpt,
        ),
    );
    c.bench_function("sim_e3_pipeline_2ms", |b| {
        b.iter(|| black_box(s.simulate(short_cfg(5))))
    });
}

fn sim_panic_hybrid(c: &mut Bench) {
    let s = panic_scenarios::hybrid(6, 0.5, Bytes::new(1024), Bandwidth::gbps(80.0));
    c.bench_function("sim_panic_hybrid_2ms", |b| {
        b.iter(|| black_box(s.simulate(short_cfg(7))))
    });
}

fn main() {
    let mut c = Bench::new().sample_size(10);
    sim_inline_chain(&mut c);
    sim_microservice_pipeline(&mut c);
    sim_panic_hybrid(&mut c);
}
