//! Benchmarks (on the in-repo `lognic-testkit` harness) of the queueing kernels (Eq. 9–12 and the
//! M/M/c/N generalization) — the model's inner loop.

use lognic_testkit::Bench;
use std::hint::black_box;

use lognic_model::queueing::{Mm1n, MmcN};
use lognic_model::units::Seconds;

fn mm1n_kernel(c: &mut Bench) {
    c.bench_function("mm1n_queueing_factor", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..100 {
                let rho = i as f64 * 0.02;
                acc += Mm1n::new(rho, 64).unwrap().queueing_factor();
            }
            black_box(acc)
        })
    });
}

fn mmcn_kernel(c: &mut Bench) {
    c.bench_function("mmcn_queueing_delay_c64_n256", |b| {
        let s = Seconds::micros(100.0);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..20 {
                let rho = i as f64 * 0.05;
                acc += MmcN::new(rho, 64, 256).unwrap().queueing_delay(s).as_secs();
            }
            black_box(acc)
        })
    });
}

fn main() {
    let mut c = Bench::new();
    mm1n_kernel(&mut c);
    mmcn_kernel(&mut c);
}
