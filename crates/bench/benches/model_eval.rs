//! Benchmarks (on the in-repo `lognic-testkit` harness) of the analytical model behind each figure:
//! how fast one design-space point evaluates (the quantity that
//! matters when the optimizer sweeps thousands of configurations).

use lognic_testkit::Bench;
use std::hint::black_box;

use lognic_devices::liquidio::{Accelerator, LiquidIo};
use lognic_model::units::{Bandwidth, Bytes};
use lognic_optimizer::suggest;
use lognic_workloads::{inline_accel, microservices, nf_placement, nvmeof, panic_scenarios};

fn fig05_granularity(c: &mut Bench) {
    c.bench_function("fig05_granularity_model", |b| {
        b.iter(|| {
            for g in inline_accel::GRANULARITIES {
                let s = inline_accel::granularity(Accelerator::Md5, Bytes::new(g));
                black_box(s.estimator().throughput().unwrap().attainable());
            }
        })
    });
}

fn fig09_parallelism(c: &mut Bench) {
    c.bench_function("fig09_parallelism_model", |b| {
        b.iter(|| {
            for cores in 1..=LiquidIo::CORES {
                let s = inline_accel::inline(
                    Accelerator::Md5,
                    cores,
                    Bytes::new(1500),
                    LiquidIo::line_rate(),
                );
                black_box(s.estimator().throughput().unwrap().attainable());
            }
        })
    });
}

fn fig10_pktsize(c: &mut Bench) {
    c.bench_function("fig10_pktsize_model", |b| {
        b.iter(|| {
            for size in inline_accel::PACKET_SIZES {
                let s = inline_accel::inline(
                    Accelerator::Aes,
                    LiquidIo::CORES,
                    Bytes::new(size),
                    LiquidIo::line_rate(),
                );
                black_box(s.estimator().throughput().unwrap().attainable());
            }
        })
    });
}

fn fig06_nvmeof_latency(c: &mut Bench) {
    use lognic_devices::stingray::IoPattern;
    c.bench_function("fig06_nvmeof_latency_model", |b| {
        b.iter(|| {
            let s = nvmeof::nvmeof(
                IoPattern::RandRead4k,
                nvmeof::rate_for_iops(IoPattern::RandRead4k, 400_000.0),
            );
            black_box(s.estimator().latency().unwrap().mean());
        })
    });
}

fn fig07_mixed_rw(c: &mut Bench) {
    use lognic_devices::stingray::IoPattern;
    c.bench_function("fig07_mixed_rw_model", |b| {
        b.iter(|| {
            for pct in (0..=100).step_by(20) {
                let p = IoPattern::MixedRand4k {
                    read_ratio: pct as f64 / 100.0,
                };
                let s = nvmeof::nvmeof(p, nvmeof::rate_for_iops(p, 500_000.0));
                black_box(s.estimate().unwrap().delivered);
            }
        })
    });
}

fn fig11_12_allocation(c: &mut Bench) {
    c.bench_function("fig11_e3_throughput_model", |b| {
        b.iter(|| {
            for app in microservices::App::ALL {
                for scheme in microservices::AllocationScheme::ALL {
                    black_box(microservices::capacity(app, scheme));
                }
            }
        })
    });
    c.bench_function("fig12_e3_latency_model", |b| {
        b.iter(|| {
            let s = microservices::scenario(
                microservices::App::NfvDin,
                microservices::AllocationScheme::LogNicOpt,
                1e6,
            );
            black_box(s.estimator().latency().unwrap().mean());
        })
    });
}

fn fig13_14_placement(c: &mut Bench) {
    c.bench_function("fig13_placement_tput_model", |b| {
        b.iter(|| {
            black_box(nf_placement::optimal_for(Bytes::new(512)));
        })
    });
    c.bench_function("fig14_placement_lat_model", |b| {
        b.iter(|| {
            let s = nf_placement::scenario(
                nf_placement::Placement::accel_only(),
                Bytes::new(1500),
                Bandwidth::gbps(60.0),
            );
            black_box(s.estimator().latency().unwrap().mean());
        })
    });
}

fn fig15_credits(c: &mut Bench) {
    c.bench_function("fig15_credits_suggest", |b| {
        b.iter(|| {
            black_box(suggest::suggest_credits(
                panic_scenarios::CREDIT_PROFILES[0],
                Bandwidth::gbps(100.0),
            ));
        })
    });
}

fn fig16_17_steering(c: &mut Bench) {
    c.bench_function("fig16_steering_lat_model", |b| {
        b.iter(|| {
            for x in panic_scenarios::STATIC_SPLITS {
                let s = panic_scenarios::steering(x, Bytes::new(512), Bandwidth::gbps(80.0));
                black_box(s.estimator().latency().unwrap().mean());
            }
        })
    });
    c.bench_function("fig17_steering_suggest", |b| {
        b.iter(|| {
            black_box(suggest::suggest_steering_split(
                Bytes::new(512),
                Bandwidth::gbps(80.0),
            ));
        })
    });
}

fn fig18_19_parallelism(c: &mut Bench) {
    c.bench_function("fig18_parallel_lat_model", |b| {
        b.iter(|| {
            for d in 1..=8 {
                let s = panic_scenarios::hybrid(d, 0.5, Bytes::new(1024), Bandwidth::gbps(80.0));
                black_box(s.estimator().latency().unwrap().mean());
            }
        })
    });
    c.bench_function("fig19_parallel_tput_suggest", |b| {
        b.iter(|| {
            black_box(suggest::suggest_ip4_degree(
                0.5,
                Bytes::new(1024),
                Bandwidth::gbps(80.0),
            ));
        })
    });
}

fn main() {
    let mut c = Bench::new().sample_size(20);
    fig05_granularity(&mut c);
    fig09_parallelism(&mut c);
    fig10_pktsize(&mut c);
    fig06_nvmeof_latency(&mut c);
    fig07_mixed_rw(&mut c);
    fig11_12_allocation(&mut c);
    fig13_14_placement(&mut c);
    fig15_credits(&mut c);
    fig16_17_steering(&mut c);
    fig18_19_parallelism(&mut c);
}
