//! Broadcom Stingray PS1100R JBOF profile with its NVMe SSD
//! (case study #2, §4.3).
//!
//! The SmartNIC runs the NVMe-over-RDMA target: RDMA stack processing
//! and NVMe command fabrication on the ARM cores, I/O against an NVMe
//! SSD. The SSD is an *opaque* IP: its internals (command queues,
//! write cache, garbage collection) are hidden, so the paper
//! characterizes latency/throughput while increasing I/O depth and
//! curve-fits M/M/1/N parameters — [`fit_service`] reproduces exactly
//! that technique. The simulation-side [`SsdService`] additionally
//! models garbage collection, which the analytical model cannot
//! capture (the source of the paper's 14.6 % misprediction in mixed
//! read/write traffic, Fig. 7).

use crate::cost::CostModel;
use lognic_model::params::{HardwareModel, IpParams};
use lognic_model::queueing::MmcN;
use lognic_model::units::{Bandwidth, Bytes, Seconds};
use lognic_sim::packet::Packet;
use lognic_sim::rng::SimRng;
use lognic_sim::service::{ServiceDist, ServiceModel};
use lognic_sim::time::SimTime;

/// The Stingray PS1100R device profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stingray;

impl Stingray {
    /// The Ethernet line rate (100 GbE NetXtreme).
    pub fn line_rate() -> Bandwidth {
        Bandwidth::gbps(100.0)
    }

    /// Number of ARM A72 cores.
    pub const CORES: u32 = 8;

    /// Core clock in GHz.
    pub const CORE_CLOCK_GHZ: f64 = 3.0;

    /// Hardware model: PCIe/SoC interconnect as the interface, the
    /// DDR4-2400 channel as the memory subsystem (~19.2 GB/s).
    pub fn hardware() -> HardwareModel {
        HardwareModel::new(Bandwidth::gbps(128.0), Bandwidth::gbytes_per_sec(19.2))
    }

    /// Per-core cost of the NVMe-oF target software path for one I/O:
    /// RDMA receive, NVMe command fabrication, submission/completion
    /// coordination, response assembly.
    pub fn nvmeof_core_cost() -> CostModel {
        CostModel::new(Seconds::micros(3.2), Seconds::nanos(0.02))
    }
}

/// The SSD I/O patterns of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IoPattern {
    /// 4 KB random reads (Fig. 6, "4KB-RRD").
    RandRead4k,
    /// 128 KB random reads (Fig. 6, "128KB-RRD").
    RandRead128k,
    /// 4 KB sequential writes (Fig. 6, "4KB-SWR").
    SeqWrite4k,
    /// 4 KB random mixed read/write on a fragmented (preconditioned)
    /// drive (Fig. 7). `read_ratio` ∈ [0, 1].
    MixedRand4k {
        /// Fraction of I/Os that are reads.
        read_ratio: f64,
    },
}

impl IoPattern {
    /// The I/O granularity of the pattern.
    pub fn granularity(self) -> Bytes {
        match self {
            IoPattern::RandRead128k => Bytes::kib(128),
            _ => Bytes::kib(4),
        }
    }
}

/// Characterized (ground-truth) parameters of the simulated SSD for
/// one access pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdProfile {
    /// Mean per-request service time of a read on one internal channel.
    pub read_service: Seconds,
    /// Mean per-request service time of a write on one channel.
    pub write_service: Seconds,
    /// Internal channel parallelism.
    pub channels: u32,
    /// Command-queue capacity (requests in flight + queued).
    pub queue_depth: u32,
    /// Fraction of I/Os that are reads.
    pub read_ratio: f64,
    /// The I/O granularity.
    pub granularity: Bytes,
}

impl SsdProfile {
    /// The characterized profile for a pattern.
    ///
    /// Capacity anchors (plausible data-center NVMe, fragmented for
    /// the mixed pattern): 4 KB random read ≈ 640 K IOPS (2.6 GB/s),
    /// 128 KB random read ≈ 25 K IOPS (3.3 GB/s), 4 KB sequential
    /// write ≈ 267 K IOPS (1.1 GB/s); fragmented mixed 4 KB reads
    /// ≈ 400 K IOPS (1.6 GB/s) with writes slowed by garbage
    /// collection.
    pub fn for_pattern(pattern: IoPattern) -> SsdProfile {
        match pattern {
            IoPattern::RandRead4k => SsdProfile {
                read_service: Seconds::micros(100.0),
                write_service: Seconds::micros(100.0),
                channels: 64,
                queue_depth: 256,
                read_ratio: 1.0,
                granularity: Bytes::kib(4),
            },
            IoPattern::RandRead128k => SsdProfile {
                read_service: Seconds::micros(320.0),
                write_service: Seconds::micros(320.0),
                channels: 8,
                queue_depth: 64,
                read_ratio: 1.0,
                granularity: Bytes::kib(128),
            },
            IoPattern::SeqWrite4k => SsdProfile {
                read_service: Seconds::micros(60.0),
                write_service: Seconds::micros(60.0),
                channels: 16,
                queue_depth: 256,
                read_ratio: 0.0,
                granularity: Bytes::kib(4),
            },
            IoPattern::MixedRand4k { read_ratio } => SsdProfile {
                read_service: Seconds::micros(160.0),
                write_service: Seconds::micros(250.0),
                channels: 64,
                queue_depth: 256,
                read_ratio: read_ratio.clamp(0.0, 1.0),
                granularity: Bytes::kib(4),
            },
        }
    }

    /// The mean service time across the read/write mix.
    pub fn mean_service(&self) -> Seconds {
        Seconds::new(
            self.read_service.as_secs() * self.read_ratio
                + self.write_service.as_secs() * (1.0 - self.read_ratio),
        )
    }

    /// The aggregate IOPS capacity: `channels / mean_service`.
    pub fn peak_iops(&self) -> f64 {
        self.channels as f64 / self.mean_service().as_secs()
    }

    /// The aggregate data rate at the pattern's granularity.
    pub fn peak_bandwidth(&self) -> Bandwidth {
        Bandwidth::bps(self.peak_iops() * self.granularity.bits() as f64)
    }

    /// Model-side `IpParams` for the SSD vertex.
    pub fn ip_params(&self) -> IpParams {
        IpParams::new(self.peak_bandwidth())
            .with_parallelism(self.channels)
            .with_queue_capacity(self.queue_depth)
    }

    /// Simulation-side service model; `gc` enables the
    /// garbage-collection behaviour for write traffic.
    pub fn service_model(&self, dist: ServiceDist, gc: bool) -> SsdService {
        SsdService {
            read: SimTime::from_secs(self.read_service.as_secs()),
            write: SimTime::from_secs(self.write_service.as_secs()),
            dist,
            gc: gc.then(GcState::new),
        }
    }
}

/// Garbage-collection state: a token bucket of pre-erased blocks.
/// While tokens remain, writes run at their fast (cache/erased-block)
/// speed; once exhausted, writes pay the full read-modify-erase cost.
/// Tokens regenerate at a background-GC rate, so read-heavy phases let
/// the drive recover — behaviour the analytical model cannot see.
#[derive(Debug, Clone, Copy)]
struct GcState {
    tokens: f64,
    capacity: f64,
    refill_per_sec: f64,
    fast_factor: f64,
    last: SimTime,
}

impl GcState {
    fn new() -> GcState {
        GcState {
            tokens: 4096.0,
            capacity: 4096.0,
            refill_per_sec: 70_000.0,
            fast_factor: 0.35,
            last: SimTime::ZERO,
        }
    }

    /// Refills by elapsed time, consumes one token if available;
    /// returns the write-speed factor (fast when a token was spent).
    fn write_factor(&mut self, now: SimTime) -> f64 {
        let elapsed = now.since(self.last).as_secs();
        self.last = self.last.max(now);
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.fast_factor
        } else {
            1.0
        }
    }
}

/// The simulated SSD: class 0 packets are reads, class 1 writes.
#[derive(Debug, Clone, Copy)]
pub struct SsdService {
    read: SimTime,
    write: SimTime,
    dist: ServiceDist,
    gc: Option<GcState>,
}

impl ServiceModel for SsdService {
    fn service_time(
        &mut self,
        now: SimTime,
        packet: &Packet,
        _work: Bytes,
        rng: &mut SimRng,
    ) -> SimTime {
        let mean = if packet.class == 0 {
            self.read
        } else {
            let factor = self.gc.as_mut().map_or(1.0, |g| g.write_factor(now));
            SimTime::from_secs(self.write.as_secs() * factor)
        };
        match self.dist {
            ServiceDist::Deterministic => mean,
            ServiceDist::Exponential => rng.exponential(mean),
        }
    }
}

/// Parameters recovered by curve fitting (the paper's §4.3 remedy for
/// opaque IPs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdFit {
    /// Fitted per-request service time.
    pub service: Seconds,
    /// Fitted internal parallelism.
    pub parallelism: u32,
    /// Residual sum of squared latency errors (seconds²).
    pub error: f64,
}

impl SsdFit {
    /// Model-side `IpParams` from the fit at granularity `g` with the
    /// given queue capacity.
    pub fn ip_params(&self, granularity: Bytes, queue_depth: u32) -> IpParams {
        let iops = self.parallelism as f64 / self.service.as_secs();
        IpParams::new(Bandwidth::bps(iops * granularity.bits() as f64))
            .with_parallelism(self.parallelism)
            .with_queue_capacity(queue_depth)
    }
}

/// Curve-fits `(offered IOPS, mean latency)` observations to an
/// M/M/c/N service model: grid-search over per-request service time
/// and channel parallelism, minimizing squared latency error with the
/// same queueing formula the model uses (Eq. 12 generalized to `c`
/// engines). Observations should include near-saturation points —
/// at light load the latency curve is flat and the parallelism is
/// unidentifiable.
///
/// `queue_depth` is the device's command-queue capacity (known from
/// the NVMe configuration).
///
/// # Panics
///
/// Panics if `observations` is empty.
pub fn fit_service(observations: &[(f64, Seconds)], queue_depth: u32) -> SsdFit {
    assert!(!observations.is_empty(), "need at least one observation");
    // QD1-style latency bounds the service time from above; search a
    // log grid below it.
    let max_latency = observations
        .iter()
        .map(|(_, l)| l.as_secs())
        .fold(f64::MIN, f64::max);
    let min_latency = observations
        .iter()
        .map(|(_, l)| l.as_secs())
        .fold(f64::MAX, f64::min);
    let mut best = SsdFit {
        service: Seconds::new(min_latency),
        parallelism: 1,
        error: f64::INFINITY,
    };
    let mut d = 1u32;
    while d <= 512 {
        // Service candidates spanning [min_latency/2, max_latency].
        for step in 0..60 {
            let frac = step as f64 / 59.0;
            let service = min_latency / 2.0 * (2.0 * max_latency / min_latency).powf(frac);
            let mut error = 0.0;
            for (iops, observed) in observations {
                let rho = iops * service / d as f64;
                let predicted = match MmcN::new(rho, d, queue_depth) {
                    Ok(q) => service + q.queueing_delay(Seconds::new(service)).as_secs(),
                    Err(_) => f64::INFINITY,
                };
                let e = predicted - observed.as_secs();
                error += e * e;
            }
            // Require a clear improvement before accepting a more
            // parallel explanation: at light load many (service, D)
            // pairs predict the same flat latency, and the smallest
            // consistent parallelism is the physical one.
            if error < best.error * 0.98 {
                best = SsdFit {
                    service: Seconds::new(service),
                    parallelism: d,
                    error,
                };
            }
        }
        d *= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_capacity_anchors() {
        let rrd4k = SsdProfile::for_pattern(IoPattern::RandRead4k);
        assert!((rrd4k.peak_iops() - 640_000.0).abs() < 1.0);
        // 640 K × 4 KiB ≈ 2.62 GB/s.
        assert!((rrd4k.peak_bandwidth().as_bps() / 8.0 / 1e9 - 2.62).abs() < 0.01);

        let rrd128k = SsdProfile::for_pattern(IoPattern::RandRead128k);
        assert!((rrd128k.peak_iops() - 25_000.0).abs() < 1.0);

        let swr = SsdProfile::for_pattern(IoPattern::SeqWrite4k);
        assert!((swr.peak_iops() - 266_666.7).abs() < 1.0);
    }

    #[test]
    fn mixed_profile_interpolates_service() {
        let p = SsdProfile::for_pattern(IoPattern::MixedRand4k { read_ratio: 0.5 });
        assert!((p.mean_service().as_micros() - 205.0).abs() < 1e-9);
        let reads = SsdProfile::for_pattern(IoPattern::MixedRand4k { read_ratio: 1.0 });
        assert!(reads.peak_bandwidth() > p.peak_bandwidth());
    }

    #[test]
    fn mixed_ratio_clamped() {
        let p = SsdProfile::for_pattern(IoPattern::MixedRand4k { read_ratio: 1.5 });
        assert_eq!(p.read_ratio, 1.0);
    }

    #[test]
    fn ip_params_reflect_profile() {
        let p = SsdProfile::for_pattern(IoPattern::RandRead4k);
        let ip = p.ip_params();
        assert_eq!(ip.parallelism(), 64);
        assert_eq!(ip.queue_capacity(), 256);
        assert_eq!(ip.peak(), p.peak_bandwidth());
    }

    #[test]
    fn granularities() {
        assert_eq!(IoPattern::RandRead4k.granularity(), Bytes::kib(4));
        assert_eq!(IoPattern::RandRead128k.granularity(), Bytes::kib(128));
        assert_eq!(
            IoPattern::MixedRand4k { read_ratio: 0.5 }.granularity(),
            Bytes::kib(4)
        );
    }

    #[test]
    fn ssd_service_distinguishes_classes() {
        let p = SsdProfile::for_pattern(IoPattern::MixedRand4k { read_ratio: 0.5 });
        let mut svc = p.service_model(ServiceDist::Deterministic, false);
        let mut rng = SimRng::seed_from(1);
        let read = Packet::new(0, Bytes::kib(4), SimTime::ZERO, 0);
        let write = Packet::new(1, Bytes::kib(4), SimTime::ZERO, 1);
        let tr = svc.service_time(SimTime::ZERO, &read, Bytes::kib(4), &mut rng);
        let tw = svc.service_time(SimTime::ZERO, &write, Bytes::kib(4), &mut rng);
        assert_eq!(tr, SimTime::from_micros(160.0));
        assert_eq!(tw, SimTime::from_micros(250.0));
    }

    #[test]
    fn gc_tokens_make_early_writes_fast_then_slow() {
        let p = SsdProfile::for_pattern(IoPattern::MixedRand4k { read_ratio: 0.0 });
        let mut svc = p.service_model(ServiceDist::Deterministic, true);
        let mut rng = SimRng::seed_from(1);
        let write = Packet::new(0, Bytes::kib(4), SimTime::ZERO, 1);
        // First writes ride the pre-erased pool: fast.
        let early = svc.service_time(SimTime::ZERO, &write, Bytes::kib(4), &mut rng);
        assert!(early < SimTime::from_micros(100.0), "early = {early}");
        // Exhaust the bucket (all at t = 0, so no refill).
        for _ in 0..5000 {
            let _ = svc.service_time(SimTime::ZERO, &write, Bytes::kib(4), &mut rng);
        }
        let late = svc.service_time(SimTime::ZERO, &write, Bytes::kib(4), &mut rng);
        assert_eq!(late, SimTime::from_micros(250.0), "GC-bound write");
    }

    #[test]
    fn gc_tokens_regenerate_over_time() {
        let p = SsdProfile::for_pattern(IoPattern::MixedRand4k { read_ratio: 0.0 });
        let mut svc = p.service_model(ServiceDist::Deterministic, true);
        let mut rng = SimRng::seed_from(1);
        let write = Packet::new(0, Bytes::kib(4), SimTime::ZERO, 1);
        for _ in 0..5000 {
            let _ = svc.service_time(SimTime::ZERO, &write, Bytes::kib(4), &mut rng);
        }
        // After a long idle gap the background GC has refilled tokens.
        let after_idle = svc.service_time(SimTime::from_secs(1.0), &write, Bytes::kib(4), &mut rng);
        assert!(after_idle < SimTime::from_micros(100.0));
    }

    #[test]
    fn fit_recovers_known_service_parameters() {
        // Generate observations from the model itself: service 100 µs,
        // 64 channels, queue 256.
        let service = 100e-6;
        let d = 64.0;
        let observations: Vec<(f64, Seconds)> = (1..=9)
            .map(|i| {
                let iops = i as f64 * 68_000.0; // up to 612 K, close to the 640 K peak
                let rho = iops * service / d;
                let q = MmcN::new(rho, 64, 256).unwrap();
                let lat = service + q.queueing_delay(Seconds::new(service)).as_secs();
                (iops, Seconds::new(lat))
            })
            .collect();
        let fit = fit_service(&observations, 256);
        assert_eq!(fit.parallelism, 64);
        assert!((fit.service.as_micros() - 100.0).abs() < 5.0, "{:?}", fit);
        // Round-trip into IpParams.
        let ip = fit.ip_params(Bytes::kib(4), 256);
        let iops = ip.peak().as_bps() / Bytes::kib(4).bits() as f64;
        assert!((iops - 640_000.0).abs() / 640_000.0 < 0.06);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn fit_rejects_empty() {
        let _ = fit_service(&[], 16);
    }

    #[test]
    fn stingray_constants() {
        assert_eq!(Stingray::line_rate(), Bandwidth::gbps(100.0));
        assert_eq!(Stingray::CORES, 8);
        let hw = Stingray::hardware();
        assert!(hw.memory_bandwidth() > Bandwidth::gbps(100.0));
        let cost = Stingray::nvmeof_core_cost();
        assert!(cost.time(Bytes::kib(4)).as_micros() > 3.0);
    }
}
