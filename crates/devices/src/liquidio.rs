//! Marvell LiquidIO-II CN2360 profile (Fig. 8 of the paper).
//!
//! A 25 GbE on-path Multicore-SoC SmartNIC: 16 cnMIPS cores at
//! 1.5 GHz, 4 GB DRAM, on-chip cryptographic units (CRC, MD5, 3DES,
//! AES, SMS4, KASUMI, SHA-1) reached over the coherent memory
//! interconnect (CMI), and off-chip application-specific engines (ZIP,
//! HFA) reached over the I/O interconnect.
//!
//! Calibration anchors (paper §4.2):
//! * CMI bandwidth 50 Gb/s, I/O interconnect 40 Gb/s.
//! * At 16 KB access granularity CRC/3DES/MD5/HFA reach
//!   13.6/17.3/21.2/25.8 % of their peaks (Fig. 5) — pinning the peak
//!   op rates at 2.80/2.21/1.80/1.18 MOPS.
//! * At 25 Gb/s MTU line rate, MD5/KASUMI/HFA saturate with 9/8/11
//!   NIC cores (Fig. 9) — pinning the per-core path costs.

use crate::cost::CostModel;
use lognic_model::params::HardwareModel;
use lognic_model::roofline::IpRoofline;
use lognic_model::units::{Bandwidth, Bytes, OpsRate, Seconds};

/// The accelerator engines of the LiquidIO-II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Accelerator {
    /// CRC32 checksum unit.
    Crc,
    /// Triple-DES crypto unit.
    Des3,
    /// MD5 digest unit.
    Md5,
    /// AES crypto unit.
    Aes,
    /// SHA-1 digest unit.
    Sha1,
    /// SMS4 (SM4) crypto unit.
    Sms4,
    /// KASUMI crypto unit.
    Kasumi,
    /// Hyper Finite Automata (regex) engine — off-chip.
    Hfa,
    /// (De)compression engine — off-chip.
    Zip,
}

impl Accelerator {
    /// Every accelerator on the card.
    pub const ALL: [Accelerator; 9] = [
        Accelerator::Crc,
        Accelerator::Des3,
        Accelerator::Md5,
        Accelerator::Aes,
        Accelerator::Sha1,
        Accelerator::Sms4,
        Accelerator::Kasumi,
        Accelerator::Hfa,
        Accelerator::Zip,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Accelerator::Crc => "CRC",
            Accelerator::Des3 => "3DES",
            Accelerator::Md5 => "MD5",
            Accelerator::Aes => "AES",
            Accelerator::Sha1 => "SHA-1",
            Accelerator::Sms4 => "SMS4",
            Accelerator::Kasumi => "KASUMI",
            Accelerator::Hfa => "HFA",
            Accelerator::Zip => "ZIP",
        }
    }
}

/// Which fabric feeds an accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fabric {
    /// The coherent memory interconnect (on-chip crypto units).
    CoherentMemory,
    /// The I/O interconnect (off-chip HFA/ZIP engines).
    Io,
}

impl Fabric {
    /// The fabric's aggregate bandwidth.
    pub fn bandwidth(self) -> Bandwidth {
        match self {
            Fabric::CoherentMemory => Bandwidth::gbps(50.0),
            Fabric::Io => Bandwidth::gbps(40.0),
        }
    }

    /// The fabric's name for rooflines and reports.
    pub fn name(self) -> &'static str {
        match self {
            Fabric::CoherentMemory => "cmi",
            Fabric::Io => "io-interconnect",
        }
    }
}

/// Characterized parameters of one accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorSpec {
    /// Which engine this describes.
    pub kind: Accelerator,
    /// Peak operation rate (one op consumes one data buffer).
    pub peak_ops: OpsRate,
    /// The fabric between NIC cores and the engine.
    pub fabric: Fabric,
    /// Fixed NIC-core overhead to submit to (and collect completion
    /// from) this engine — the computation-transfer overhead `O_IP1`.
    pub submit_cost: Seconds,
}

impl AcceleratorSpec {
    /// The engine's extended roofline: peak ops with the fabric as the
    /// bandwidth ceiling (Fig. 5).
    pub fn roofline(&self) -> IpRoofline {
        IpRoofline::new(self.peak_ops).with_ceiling(self.fabric.name(), self.fabric.bandwidth())
    }

    /// The engine's compute capacity expressed as a data rate when
    /// each operation consumes `granularity` bytes (`P_IP2` at this
    /// access size).
    pub fn compute_rate(&self, granularity: Bytes) -> Bandwidth {
        self.peak_ops.data_rate(granularity)
    }
}

/// The LiquidIO-II CN2360 device profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiquidIo;

impl LiquidIo {
    /// The Ethernet line rate (25 GbE).
    pub fn line_rate() -> Bandwidth {
        Bandwidth::gbps(25.0)
    }

    /// Number of cnMIPS cores.
    pub const CORES: u32 = 16;

    /// Core clock in GHz.
    pub const CORE_CLOCK_GHZ: f64 = 1.5;

    /// The hardware model: the CMI as the shared interface, DRAM as
    /// the memory subsystem.
    pub fn hardware() -> HardwareModel {
        HardwareModel::new(Fabric::CoherentMemory.bandwidth(), Bandwidth::gbps(102.0))
    }

    /// Base per-core packet-processing cost (L3/L4 handling of the UDP
    /// echo server, no accelerator involved).
    pub fn base_packet_cost() -> CostModel {
        CostModel::new(Seconds::micros(1.2), Seconds::nanos(0.1))
    }

    /// Per-core cost of the full inline-acceleration path for one
    /// accelerator: base processing plus its submission/completion
    /// overhead. This is the `t_proc` whose calibrated MTU values are
    /// 4.7 µs (MD5), 3.8 µs (KASUMI) and 9.0 µs (HFA), chosen so the
    /// Fig. 9 saturation points land at 9/8/11 cores.
    pub fn core_path_cost(accel: Accelerator) -> CostModel {
        Self::base_packet_cost().plus_fixed(Self::accelerator(accel).submit_cost)
    }

    /// The characterized accelerator specs.
    pub fn accelerator(kind: Accelerator) -> AcceleratorSpec {
        let (peak_mops, fabric, submit_us) = match kind {
            Accelerator::Crc => (2.80, Fabric::CoherentMemory, 0.80),
            Accelerator::Des3 => (2.21, Fabric::CoherentMemory, 2.65),
            Accelerator::Md5 => (1.80, Fabric::CoherentMemory, 3.35),
            Accelerator::Aes => (2.40, Fabric::CoherentMemory, 2.45),
            Accelerator::Sha1 => (1.60, Fabric::CoherentMemory, 2.35),
            Accelerator::Sms4 => (1.40, Fabric::CoherentMemory, 2.55),
            Accelerator::Kasumi => (2.00, Fabric::CoherentMemory, 2.45),
            Accelerator::Hfa => (1.18, Fabric::Io, 7.65),
            Accelerator::Zip => (0.90, Fabric::Io, 4.20),
        };
        AcceleratorSpec {
            kind,
            peak_ops: OpsRate::mops(peak_mops),
            fabric,
            submit_cost: Seconds::micros(submit_us),
        }
    }

    /// NIC cores required to reach the inline path's saturation
    /// plateau for `accel` at packet size `size` (the Fig. 9
    /// saturation point). The plateau is the smaller of the line rate
    /// and the accelerator's own compute rate at this size.
    pub fn cores_to_saturate(accel: Accelerator, size: Bytes) -> u32 {
        let spec = Self::accelerator(accel);
        let plateau = spec.compute_rate(size).min(Self::line_rate());
        let pps = plateau.as_bps() / size.bits() as f64;
        let t = Self::core_path_cost(accel).time(size).as_secs();
        (pps * t).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig9_core_saturation_anchors() {
        let mtu = Bytes::new(1500);
        assert_eq!(LiquidIo::cores_to_saturate(Accelerator::Md5, mtu), 9);
        assert_eq!(LiquidIo::cores_to_saturate(Accelerator::Kasumi, mtu), 8);
        assert_eq!(LiquidIo::cores_to_saturate(Accelerator::Hfa, mtu), 11);
    }

    #[test]
    fn paper_fig5_granularity_anchors() {
        // Fraction of peak at 16 KB access granularity.
        let at16k = |a: Accelerator| {
            let spec = LiquidIo::accelerator(a);
            let r = spec.roofline();
            r.attainable_ops(Bytes::kib(16)).as_per_sec() / spec.peak_ops.as_per_sec()
        };
        assert!((at16k(Accelerator::Crc) - 0.136).abs() < 0.004);
        assert!((at16k(Accelerator::Des3) - 0.173).abs() < 0.004);
        assert!((at16k(Accelerator::Md5) - 0.212).abs() < 0.004);
        assert!((at16k(Accelerator::Hfa) - 0.258).abs() < 0.004);
    }

    #[test]
    fn crypto_units_use_cmi_and_regex_uses_io() {
        assert_eq!(
            LiquidIo::accelerator(Accelerator::Aes).fabric,
            Fabric::CoherentMemory
        );
        assert_eq!(LiquidIo::accelerator(Accelerator::Hfa).fabric, Fabric::Io);
        assert_eq!(LiquidIo::accelerator(Accelerator::Zip).fabric, Fabric::Io);
        assert_eq!(Fabric::CoherentMemory.bandwidth(), Bandwidth::gbps(50.0));
        assert_eq!(Fabric::Io.bandwidth(), Bandwidth::gbps(40.0));
    }

    #[test]
    fn fig10_ordering_of_engine_rates() {
        // At 64 B the achieved bandwidth ordering follows peak op
        // rates: CRC > AES > KASUMI > MD5 > SHA-1 > SMS4 > HFA.
        let rate = |a| {
            LiquidIo::accelerator(a)
                .compute_rate(Bytes::new(64))
                .as_gbps()
        };
        assert!(rate(Accelerator::Crc) > rate(Accelerator::Aes));
        assert!(rate(Accelerator::Aes) > rate(Accelerator::Md5));
        assert!(rate(Accelerator::Md5) > rate(Accelerator::Sha1));
        assert!(rate(Accelerator::Sha1) > rate(Accelerator::Sms4));
        assert!(rate(Accelerator::Sms4) > rate(Accelerator::Hfa));
    }

    #[test]
    fn mtu_rates_reach_or_exceed_line_rate_for_fast_engines() {
        // CRC and AES are line-rate bound at MTU; HFA is compute bound.
        let mtu = Bytes::new(1500);
        let line = LiquidIo::line_rate();
        assert!(LiquidIo::accelerator(Accelerator::Crc).compute_rate(mtu) > line);
        assert!(LiquidIo::accelerator(Accelerator::Aes).compute_rate(mtu) > line);
        assert!(LiquidIo::accelerator(Accelerator::Hfa).compute_rate(mtu) < line);
    }

    #[test]
    fn all_lists_every_engine_once() {
        assert_eq!(Accelerator::ALL.len(), 9);
        let names: std::collections::HashSet<_> =
            Accelerator::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn hardware_model_uses_cmi_as_interface() {
        let hw = LiquidIo::hardware();
        assert_eq!(hw.interface_bandwidth(), Bandwidth::gbps(50.0));
        assert!(hw.memory_bandwidth() > hw.interface_bandwidth());
    }

    #[test]
    fn submit_cost_orders_core_requirements() {
        // The HFA's heavy submission path needs the most cores.
        let mtu = Bytes::new(1500);
        let hfa = LiquidIo::cores_to_saturate(Accelerator::Hfa, mtu);
        for a in Accelerator::ALL {
            assert!(hfa >= LiquidIo::cores_to_saturate(a, mtu), "{}", a.name());
        }
        assert!(
            hfa <= LiquidIo::CORES,
            "saturation must be reachable on the card"
        );
    }
}
