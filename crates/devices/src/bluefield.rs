//! NVIDIA BlueField-2 DPU profile (case study #4, §4.5).
//!
//! An off-path 100 GbE Multicore-SoC SmartNIC: 8 ARM A72 cores at
//! 2.5 GHz, 16 GB DRAM, and hardware-accelerated Crypto, RegEx,
//! Hashing and Connection-Tracking modules. The network-middlebox
//! workload chains five network functions —
//! FW → LB → DPI → NAT → PE — each implementable on the ARM cores or
//! (except DPI) on an accelerator module, with a per-packet offload
//! overhead paid on the cores and extra off-chip data movement.

use crate::cost::CostModel;
use lognic_model::params::HardwareModel;
use lognic_model::units::{Bandwidth, Bytes, Seconds};

/// The five network functions of the middlebox chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkFunction {
    /// Firewall gateway (rule matching, connection state).
    Firewall,
    /// L4 load balancer (consistent hashing).
    LoadBalancer,
    /// Deep packet inspection — ARM only.
    Dpi,
    /// Network address translation.
    Nat,
    /// Packet encryption.
    Encryption,
}

impl NetworkFunction {
    /// The chain in execution order.
    pub const CHAIN: [NetworkFunction; 5] = [
        NetworkFunction::Firewall,
        NetworkFunction::LoadBalancer,
        NetworkFunction::Dpi,
        NetworkFunction::Nat,
        NetworkFunction::Encryption,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            NetworkFunction::Firewall => "FW",
            NetworkFunction::LoadBalancer => "LB",
            NetworkFunction::Dpi => "DPI",
            NetworkFunction::Nat => "NAT",
            NetworkFunction::Encryption => "PE",
        }
    }
}

/// The hardware modules of the BlueField-2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelModule {
    /// AES/IPsec crypto block.
    Crypto,
    /// Regular-expression engine.
    RegEx,
    /// Hashing block.
    Hashing,
    /// Connection-tracking block.
    ConnTrack,
}

/// The accelerated implementation option of one NF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelOption {
    /// Which module implements the NF.
    pub module: AccelModule,
    /// Per-engine execution cost on the module.
    pub engine_cost: CostModel,
    /// Parallel engines in the module.
    pub engines: u32,
    /// Per-packet overhead paid on the ARM cores to submit to the
    /// module and collect the result (`O_i`), plus triggering the
    /// off-chip data movement.
    pub offload_overhead: Seconds,
}

/// The characterized implementations of one NF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NfSpec {
    /// Which NF this describes.
    pub nf: NetworkFunction,
    /// Cost on one ARM core.
    pub arm_cost: CostModel,
    /// The accelerated option, when the silicon has one.
    pub accel: Option<AccelOption>,
}

/// The BlueField-2 device profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlueField2;

impl BlueField2 {
    /// The Ethernet line rate (100 GbE).
    pub fn line_rate() -> Bandwidth {
        Bandwidth::gbps(100.0)
    }

    /// Number of ARM A72 cores.
    pub const CORES: u32 = 8;

    /// Core clock in GHz.
    pub const CORE_CLOCK_GHZ: f64 = 2.5;

    /// Hardware model: the SoC crossbar as the interface, dual-channel
    /// DDR4 as the memory subsystem.
    pub fn hardware() -> HardwareModel {
        HardwareModel::new(Bandwidth::gbps(240.0), Bandwidth::gbytes_per_sec(25.6))
    }

    /// The characterized spec of one network function.
    ///
    /// ARM costs are per-core; accelerator options trade a per-packet
    /// submission overhead (bad for 64 B packets) for a much lower
    /// per-byte cost (good for MTU packets) — the tension the
    /// placement optimizer exploits (Figs. 13–14).
    pub fn nf(nf: NetworkFunction) -> NfSpec {
        match nf {
            NetworkFunction::Firewall => NfSpec {
                nf,
                arm_cost: CostModel::new(Seconds::micros(0.14), Seconds::nanos(0.025)),
                accel: Some(AccelOption {
                    module: AccelModule::ConnTrack,
                    engine_cost: CostModel::per_request(Seconds::micros(0.04)),
                    engines: 2,
                    offload_overhead: Seconds::micros(0.25),
                }),
            },
            NetworkFunction::LoadBalancer => NfSpec {
                nf,
                arm_cost: CostModel::new(Seconds::micros(0.10), Seconds::nanos(0.0125)),
                accel: Some(AccelOption {
                    module: AccelModule::Hashing,
                    engine_cost: CostModel::per_request(Seconds::micros(0.03)),
                    engines: 2,
                    offload_overhead: Seconds::micros(0.20),
                }),
            },
            NetworkFunction::Dpi => NfSpec {
                nf,
                arm_cost: CostModel::new(Seconds::micros(0.20), Seconds::nanos(0.25)),
                accel: None,
            },
            NetworkFunction::Nat => NfSpec {
                nf,
                arm_cost: CostModel::new(Seconds::micros(0.125), Seconds::nanos(0.02)),
                accel: Some(AccelOption {
                    module: AccelModule::ConnTrack,
                    engine_cost: CostModel::per_request(Seconds::micros(0.04)),
                    engines: 2,
                    offload_overhead: Seconds::micros(0.25),
                }),
            },
            NetworkFunction::Encryption => NfSpec {
                nf,
                arm_cost: CostModel::new(Seconds::micros(0.15), Seconds::nanos(1.20)),
                accel: Some(AccelOption {
                    module: AccelModule::Crypto,
                    engine_cost: CostModel::new(Seconds::micros(0.05), Seconds::nanos(0.02)),
                    engines: 4,
                    offload_overhead: Seconds::micros(0.30),
                }),
            },
        }
    }

    /// Total per-packet ARM time for the whole chain when every NF
    /// runs on the cores.
    pub fn arm_only_packet_cost(size: Bytes) -> Seconds {
        NetworkFunction::CHAIN
            .iter()
            .map(|nf| Self::nf(*nf).arm_cost.time(size))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_five_nfs_in_order() {
        assert_eq!(NetworkFunction::CHAIN.len(), 5);
        assert_eq!(NetworkFunction::CHAIN[0].name(), "FW");
        assert_eq!(NetworkFunction::CHAIN[4].name(), "PE");
    }

    #[test]
    fn dpi_has_no_accelerator() {
        assert!(BlueField2::nf(NetworkFunction::Dpi).accel.is_none());
        for nf in NetworkFunction::CHAIN {
            if nf != NetworkFunction::Dpi {
                assert!(
                    BlueField2::nf(nf).accel.is_some(),
                    "{} should offload",
                    nf.name()
                );
            }
        }
    }

    #[test]
    fn offload_tradeoff_small_vs_large_packets() {
        // At 64 B the ARM implementation of PE beats paying the
        // offload overhead; at MTU the accelerator wins.
        let pe = BlueField2::nf(NetworkFunction::Encryption);
        let accel = pe.accel.unwrap();
        let small_arm = pe.arm_cost.time(Bytes::new(64));
        let small_offload = accel.offload_overhead; // ARM-side cost alone
        assert!(small_arm < small_offload + accel.engine_cost.time(Bytes::new(64)));
        let large_arm = pe.arm_cost.time(Bytes::new(1500));
        let large_offload = accel.offload_overhead;
        assert!(
            large_offload < large_arm,
            "offload overhead must beat per-byte ARM crypto"
        );
    }

    #[test]
    fn arm_only_chain_cost_grows_with_size() {
        let small = BlueField2::arm_only_packet_cost(Bytes::new(64));
        let large = BlueField2::arm_only_packet_cost(Bytes::new(1500));
        assert!(large > small);
        // Anchors from the calibration: ~0.81 µs at 64 B, ~3.0 µs at MTU.
        assert!((small.as_micros() - 0.81).abs() < 0.05, "{small}");
        assert!((large.as_micros() - 3.0).abs() < 0.2, "{large}");
    }

    #[test]
    fn arm_only_throughput_order_of_magnitude() {
        // 8 cores at MTU: ~32 Gb/s; at 64 B: ~5 Gb/s.
        let mtu = Bytes::new(1500);
        let per_core = BlueField2::arm_only_packet_cost(mtu).as_secs();
        let tput = 8.0 * mtu.bits() as f64 / per_core / 1e9;
        assert!(tput > 25.0 && tput < 45.0, "tput = {tput}");
    }

    #[test]
    fn hardware_and_constants() {
        assert_eq!(BlueField2::line_rate(), Bandwidth::gbps(100.0));
        assert_eq!(BlueField2::CORES, 8);
        assert!(BlueField2::hardware().interface_bandwidth() > BlueField2::line_rate());
    }

    #[test]
    fn accel_modules_assigned_plausibly() {
        assert_eq!(
            BlueField2::nf(NetworkFunction::Encryption)
                .accel
                .unwrap()
                .module,
            AccelModule::Crypto
        );
        assert_eq!(
            BlueField2::nf(NetworkFunction::LoadBalancer)
                .accel
                .unwrap()
                .module,
            AccelModule::Hashing
        );
        assert_eq!(
            BlueField2::nf(NetworkFunction::Firewall)
                .accel
                .unwrap()
                .module,
            AccelModule::ConnTrack
        );
    }
}
