//! A programmable RMT switch profile — the paper's §5.3 future work
//! ("we believe the LogNIC model can support programmable switches by
//! designing a new set of system interfaces"), implemented.
//!
//! The switch is a Tofino-class reconfigurable match-action pipeline:
//! a deep, fixed-latency stage pipeline that processes one packet per
//! clock per pipe, on-chip SRAM for match tables and registers, and a
//! recirculation port for programs needing more passes. In LogNIC
//! terms the pipeline is an IP with very high parallelism (the pipe
//! depth) and a fixed per-packet service time; recirculation reuses
//! [`lognic_model::transform::unroll_recirculation`].

use crate::cost::CostModel;
use lognic_model::params::{HardwareModel, IpParams};
use lognic_model::units::{Bandwidth, Bytes, Seconds};

/// A Tofino-class RMT switch profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RmtSwitch;

impl RmtSwitch {
    /// Match-action stages per pipe.
    pub const PIPELINE_STAGES: u32 = 12;

    /// Per-pipe line rate (one 400 GbE-class pipe).
    pub fn pipe_rate() -> Bandwidth {
        Bandwidth::gbps(400.0)
    }

    /// The fixed pipeline traversal latency: every packet spends the
    /// same time in the match-action stages regardless of size.
    pub fn pipeline_latency() -> Seconds {
        Seconds::nanos(400.0)
    }

    /// Hardware model: the on-chip crossbar and SRAM are sized far
    /// beyond a single pipe's needs.
    pub fn hardware() -> HardwareModel {
        HardwareModel::new(Bandwidth::gbps(6400.0), Bandwidth::gbps(6400.0))
    }

    /// The pipeline as a cost model: fixed traversal time per packet.
    pub fn pipeline_cost() -> CostModel {
        CostModel::per_request(Self::pipeline_latency())
    }

    /// `IpParams` of one pipe at packet size `size`: the pipeline
    /// holds one packet per stage, so its parallelism is the stage
    /// depth and its packet rate is one per clock — expressed here as
    /// the rate that saturates the pipe at 64 B.
    pub fn pipe_params(size: Bytes) -> IpParams {
        // A pipe forwards min-size packets at line rate: its packet
        // rate capacity is pipe_rate / 64 B, independent of size.
        let pps = Self::pipe_rate().as_bps() / (64.0 * 8.0);
        IpParams::new(Bandwidth::bps(pps * size.bits() as f64))
            .with_parallelism(Self::PIPELINE_STAGES)
            .with_queue_capacity(128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_forwards_min_size_packets_at_line_rate() {
        let p = RmtSwitch::pipe_params(Bytes::new(64));
        assert!((p.peak().as_gbps() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn packet_rate_is_size_independent() {
        let small = RmtSwitch::pipe_params(Bytes::new(64));
        let large = RmtSwitch::pipe_params(Bytes::new(1500));
        let pps_small = small.peak().as_bps() / (64.0 * 8.0);
        let pps_large = large.peak().as_bps() / (1500.0 * 8.0);
        assert!((pps_small - pps_large).abs() / pps_small < 1e-12);
    }

    #[test]
    fn pipeline_latency_is_fixed() {
        let c = RmtSwitch::pipeline_cost();
        assert_eq!(c.time(Bytes::new(64)), c.time(Bytes::new(1500)));
        assert_eq!(c.time(Bytes::new(64)), Seconds::nanos(400.0));
    }
}
