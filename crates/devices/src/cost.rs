//! Per-stage cost models: how long one request takes on one engine.
//!
//! The paper characterizes kernels offline and feeds the model
//! size-dependent parameters (`P_vi`, `O_i` vary with packet size,
//! §3.7 extension #2). A [`CostModel`] captures the usual affine shape
//! — a fixed per-request cost plus a per-byte cost — and converts it
//! into the model's bandwidth-typed `P_vi` at any packet size.

use lognic_model::units::{Bandwidth, Bytes, Seconds};

/// An affine per-request execution cost: `t(size) = per_request +
/// per_byte · size`.
///
/// # Examples
///
/// ```
/// use lognic_devices::cost::CostModel;
/// use lognic_model::units::{Bytes, Seconds};
///
/// // 2 µs fixed cost plus 1 ns per byte.
/// let m = CostModel::new(Seconds::micros(2.0), Seconds::nanos(1.0));
/// assert!((m.time(Bytes::new(1000)).as_micros() - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    per_request: Seconds,
    per_byte: Seconds,
}

impl CostModel {
    /// Creates a cost model from its fixed and per-byte components.
    pub fn new(per_request: Seconds, per_byte: Seconds) -> Self {
        CostModel {
            per_request,
            per_byte,
        }
    }

    /// A purely per-request cost (size-independent kernels).
    pub fn per_request(cost: Seconds) -> Self {
        CostModel {
            per_request: cost,
            per_byte: Seconds::ZERO,
        }
    }

    /// The fixed component.
    pub fn fixed(&self) -> Seconds {
        self.per_request
    }

    /// The per-byte component.
    pub fn per_byte(&self) -> Seconds {
        self.per_byte
    }

    /// Execution time of one request of `size` bytes on one engine.
    pub fn time(&self, size: Bytes) -> Seconds {
        self.per_request + self.per_byte.scaled(size.as_f64())
    }

    /// The data rate one engine sustains at this size:
    /// `size / t(size)`.
    pub fn engine_rate(&self, size: Bytes) -> Bandwidth {
        let t = self.time(size);
        if t.is_zero() || t.is_infinite() {
            return Bandwidth::ZERO;
        }
        Bandwidth::bps(size.bits() as f64 / t.as_secs())
    }

    /// The aggregate `P_vi` of `parallelism` engines at this size.
    pub fn peak(&self, size: Bytes, parallelism: u32) -> Bandwidth {
        self.engine_rate(size) * parallelism as f64
    }

    /// The request rate one engine sustains at this size (requests per
    /// second).
    pub fn engine_request_rate(&self, size: Bytes) -> f64 {
        let t = self.time(size);
        if t.is_zero() {
            return f64::INFINITY;
        }
        1.0 / t.as_secs()
    }

    /// Returns a copy with extra fixed cost added (e.g. an accelerator
    /// submission overhead on top of base packet processing).
    pub fn plus_fixed(&self, extra: Seconds) -> CostModel {
        CostModel {
            per_request: self.per_request + extra,
            per_byte: self.per_byte,
        }
    }

    /// Returns a copy with every component scaled (e.g. a slower
    /// clock).
    pub fn scaled(&self, factor: f64) -> CostModel {
        CostModel {
            per_request: self.per_request.scaled(factor),
            per_byte: self.per_byte.scaled(factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_time() {
        let m = CostModel::new(Seconds::micros(1.0), Seconds::nanos(2.0));
        assert!((m.time(Bytes::new(500)).as_micros() - 2.0).abs() < 1e-9);
        assert_eq!(m.fixed(), Seconds::micros(1.0));
        assert_eq!(m.per_byte(), Seconds::nanos(2.0));
    }

    #[test]
    fn per_request_only() {
        let m = CostModel::per_request(Seconds::micros(4.0));
        assert_eq!(m.time(Bytes::new(64)), m.time(Bytes::new(1500)));
    }

    #[test]
    fn engine_rate_grows_with_size_for_fixed_costs() {
        // Fixed-cost kernels favour big packets.
        let m = CostModel::per_request(Seconds::micros(1.0));
        assert!(m.engine_rate(Bytes::new(1500)) > m.engine_rate(Bytes::new(64)));
        // 1500 B / 1 µs = 12 Gbps.
        assert!((m.engine_rate(Bytes::new(1500)).as_gbps() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn peak_scales_with_parallelism() {
        let m = CostModel::per_request(Seconds::micros(1.0));
        let p1 = m.peak(Bytes::new(1500), 1);
        let p8 = m.peak(Bytes::new(1500), 8);
        assert!((p8.as_gbps() / p1.as_gbps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn request_rate_is_inverse_time() {
        let m = CostModel::per_request(Seconds::micros(4.0));
        assert!((m.engine_request_rate(Bytes::new(1500)) - 250_000.0).abs() < 1e-6);
    }

    #[test]
    fn plus_fixed_and_scaled() {
        let m = CostModel::new(Seconds::micros(1.0), Seconds::nanos(1.0));
        let m2 = m.plus_fixed(Seconds::micros(2.0));
        assert_eq!(m2.fixed(), Seconds::micros(3.0));
        assert_eq!(m2.per_byte(), m.per_byte());
        let m3 = m.scaled(2.0);
        assert_eq!(m3.fixed(), Seconds::micros(2.0));
        assert_eq!(m3.per_byte(), Seconds::nanos(2.0));
    }

    #[test]
    fn zero_cost_rate_is_zero_guard() {
        let m = CostModel::per_request(Seconds::ZERO);
        assert_eq!(m.engine_rate(Bytes::new(100)), Bandwidth::ZERO);
        assert_eq!(m.engine_request_rate(Bytes::new(100)), f64::INFINITY);
    }

    mod properties {
        use super::*;
        use lognic_testkit::{ensure, Property};

        #[test]
        fn time_is_monotone_in_size() {
            Property::new("cost_time_is_monotone_in_size").check(|g| {
                let m = CostModel::new(
                    Seconds::micros(g.f64(0.01..100.0)),
                    Seconds::nanos(g.f64(0.0..10.0)),
                );
                let (a, b) = (g.u64(1..100_000), g.u64(1..100_000));
                let (lo, hi) = (a.min(b), a.max(b));
                ensure!(
                    m.time(Bytes::new(hi)).as_secs() >= m.time(Bytes::new(lo)).as_secs(),
                    "time({hi}) < time({lo})"
                );
                Ok(())
            });
        }

        #[test]
        fn engine_rate_bounded_by_byte_cost() {
            Property::new("cost_engine_rate_bounded_by_byte_cost").check(|g| {
                // Rate can never exceed the pure per-byte ceiling
                // 8 bits / per_byte.
                let per_byte_ns = g.f64(0.1..10.0);
                let m = CostModel::new(
                    Seconds::micros(g.f64(0.01..100.0)),
                    Seconds::nanos(per_byte_ns),
                );
                let size = g.u64(64..10_000);
                let ceiling = 8.0 / (per_byte_ns * 1e-9);
                ensure!(
                    m.engine_rate(Bytes::new(size)).as_bps() <= ceiling + 1e-3,
                    "rate above the per-byte ceiling at {size} B"
                );
                Ok(())
            });
        }

        #[test]
        fn peak_linear_in_parallelism() {
            Property::new("cost_peak_linear_in_parallelism").check(|g| {
                let m = CostModel::per_request(Seconds::micros(g.f64(0.01..10.0)));
                let size = g.u64(64..10_000);
                let d = g.u32(1..64);
                let one = m.peak(Bytes::new(size), 1).as_bps();
                let many = m.peak(Bytes::new(size), d).as_bps();
                ensure!(
                    (many - one * d as f64).abs() <= one * d as f64 * 1e-12,
                    "peak({d}) = {many}, expected {}",
                    one * d as f64
                );
                Ok(())
            });
        }
    }
}
