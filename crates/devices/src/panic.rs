//! The PANIC academic prototype profile (case study #5, §4.6).
//!
//! PANIC (OSDI '20) is a multi-tenant programmable NIC with four
//! architectural components: an RMT pipeline producing per-packet
//! offload descriptors, a switching fabric, a central credit-based
//! scheduler, and a pool of compute units. LogNIC models the credit
//! count of a compute unit as its queue capacity, the switching fabric
//! as the shared interface, and the scheduler as a lightweight IP.
//!
//! The paper's three design-exploration scenarios build on the
//! "Pipelined / Parallelized / Hybrid Chain" models of the original
//! PANIC paper; the graph builders live in
//! `lognic_workloads::panic_scenarios`, while this module holds the
//! component characterization.

use crate::cost::CostModel;
use lognic_model::params::{HardwareModel, IpParams};
use lognic_model::units::{Bandwidth, Bytes, Seconds};

/// The PANIC prototype profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Panic;

impl Panic {
    /// The prototype's line rate (100 GbE).
    pub fn line_rate() -> Bandwidth {
        Bandwidth::gbps(100.0)
    }

    /// Hardware model: the switching fabric as the interface (it
    /// carries every hop between units), on-chip buffers as memory.
    pub fn hardware() -> HardwareModel {
        HardwareModel::new(Bandwidth::gbps(400.0), Bandwidth::gbps(400.0))
    }

    /// Per-packet cost of the RMT parse/descriptor stage. The pipeline
    /// is deep, so it processes many packets concurrently.
    pub fn rmt_cost() -> CostModel {
        CostModel::per_request(Seconds::nanos(45.0))
    }

    /// RMT pipeline depth (concurrent packets in flight).
    pub const RMT_DEPTH: u32 = 16;

    /// `IpParams` of the RMT pipeline at packet size `size`.
    pub fn rmt_params(size: Bytes) -> IpParams {
        IpParams::new(Self::rmt_cost().peak(size, Self::RMT_DEPTH))
            .with_parallelism(Self::RMT_DEPTH)
            .with_queue_capacity(64)
    }

    /// Per-packet cost of the central scheduler's steering decision.
    pub fn scheduler_cost() -> CostModel {
        CostModel::per_request(Seconds::nanos(30.0))
    }

    /// Scheduler decision parallelism.
    pub const SCHEDULER_LANES: u32 = 8;

    /// `IpParams` of the central scheduler at packet size `size`.
    pub fn scheduler_params(size: Bytes) -> IpParams {
        IpParams::new(Self::scheduler_cost().peak(size, Self::SCHEDULER_LANES))
            .with_parallelism(Self::SCHEDULER_LANES)
            .with_queue_capacity(128)
    }

    /// A compute unit: `per_engine` data rate × `engines` parallel
    /// engines, with `credits` of buffering (the scheduler only
    /// forwards a packet to a unit holding a free credit, so the
    /// credit count is the unit's queue capacity).
    pub fn compute_unit(per_engine: Bandwidth, engines: u32, credits: u32) -> IpParams {
        IpParams::new(per_engine * engines as f64)
            .with_parallelism(engines)
            .with_queue_capacity(credits)
    }

    /// The default credit provision of the original PANIC paper.
    pub const DEFAULT_CREDITS: u32 = 8;

    /// The three accelerators of the steering scenario with computing
    /// throughput ratio 4:7:3 (Fig. 16/17), sized against the 100 Gb/s
    /// line rate.
    pub fn steering_units(credits: u32) -> [IpParams; 3] {
        [
            Self::compute_unit(Bandwidth::gbps(30.0), 1, credits),
            Self::compute_unit(Bandwidth::gbps(52.5), 1, credits),
            Self::compute_unit(Bandwidth::gbps(22.5), 1, credits),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmt_sustains_line_rate_at_64b() {
        // 64 B at 100 Gb/s = 195 Mpps; the 16-deep pipeline at 45 ns
        // per packet does 355 Mpps.
        let p = Panic::rmt_params(Bytes::new(64));
        let rate_pps = p.peak().as_bps() / (64.0 * 8.0);
        assert!(rate_pps > 195e6, "rate = {rate_pps}");
    }

    #[test]
    fn scheduler_sustains_line_rate_at_64b() {
        let p = Panic::scheduler_params(Bytes::new(64));
        let rate_pps = p.peak().as_bps() / (64.0 * 8.0);
        assert!(
            rate_pps > 130e6,
            "well above typical offered loads: {rate_pps}"
        );
    }

    #[test]
    fn compute_unit_params() {
        let u = Panic::compute_unit(Bandwidth::gbps(10.0), 4, 6);
        assert_eq!(u.peak(), Bandwidth::gbps(40.0));
        assert_eq!(u.parallelism(), 4);
        assert_eq!(u.queue_capacity(), 6);
    }

    #[test]
    fn steering_units_keep_paper_ratio() {
        let [a1, a2, a3] = Panic::steering_units(Panic::DEFAULT_CREDITS);
        let r21 = a2.peak().as_bps() / a1.peak().as_bps();
        let r31 = a3.peak().as_bps() / a1.peak().as_bps();
        assert!((r21 - 7.0 / 4.0).abs() < 1e-9);
        assert!((r31 - 3.0 / 4.0).abs() < 1e-9);
        assert_eq!(a1.queue_capacity(), 8);
    }

    #[test]
    fn fabric_exceeds_line_rate() {
        assert!(Panic::hardware().interface_bandwidth() > Panic::line_rate());
    }
}
