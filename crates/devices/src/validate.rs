//! Profile validation: every calibrated device profile, checked
//! through the model's typed validators.
//!
//! Device numbers are hand-calibrated against the paper's anchors; a
//! typo'd bandwidth (zero, negative via a bad formula, a unit slip)
//! would otherwise surface only as a confusing downstream estimate.
//! [`validate_all_profiles`] runs each device's [`HardwareModel`]
//! through [`HardwareModel::validate`] and reports the offender by
//! name, so a broken calibration fails fast with a typed
//! [`LogNicError::InvalidProfile`].
//!
//! [`LogNicError::InvalidProfile`]: lognic_model::error::LogNicError

use lognic_model::error::{LogNicError, LogNicResult};
use lognic_model::params::HardwareModel;

use crate::bluefield::BlueField2;
use crate::liquidio::LiquidIo;
use crate::panic::Panic;
use crate::rmt_switch::RmtSwitch;
use crate::stingray::Stingray;

/// Every calibrated device profile, by name.
pub fn all_profiles() -> Vec<(&'static str, HardwareModel)> {
    vec![
        ("liquidio-ii", LiquidIo::hardware()),
        ("stingray", Stingray::hardware()),
        ("bluefield-2", BlueField2::hardware()),
        ("panic", Panic::hardware()),
        ("rmt-switch", RmtSwitch::hardware()),
    ]
}

/// Validates one named hardware profile, attributing any failure to
/// the device.
///
/// # Errors
///
/// Returns [`lognic_model::error::LogNicError::InvalidProfile`] with
/// the device name folded into the reason when the profile is
/// degenerate.
pub fn validate_profile(name: &str, hw: &HardwareModel) -> LogNicResult<()> {
    hw.validate().map_err(|e| match e {
        LogNicError::InvalidProfile { component, reason } => LogNicError::InvalidProfile {
            component,
            reason: format!("device `{name}`: {reason}"),
        },
        other => other,
    })
}

/// Validates every calibrated device profile.
///
/// # Errors
///
/// Propagates the first invalid profile, attributed to its device.
pub fn validate_all_profiles() -> LogNicResult<()> {
    for (name, hw) in all_profiles() {
        validate_profile(name, &hw)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::units::Bandwidth;

    #[test]
    fn all_calibrated_profiles_are_valid() {
        validate_all_profiles().expect("calibrated profiles must validate");
        assert_eq!(all_profiles().len(), 5);
    }

    #[test]
    fn degenerate_profile_is_attributed_to_the_device() {
        let broken = HardwareModel::new(Bandwidth::ZERO, Bandwidth::gbps(10.0));
        let err = validate_profile("broken-nic", &broken).unwrap_err();
        match err {
            LogNicError::InvalidProfile { reason, .. } => {
                assert!(reason.contains("broken-nic"), "{reason}");
            }
            other => panic!("expected InvalidProfile, got {other}"),
        }
    }
}
