//! Profile validation: every calibrated device profile, checked
//! through the model's typed validators and the static analyzer's
//! diagnostic framework.
//!
//! Device numbers are hand-calibrated against the paper's anchors; a
//! typo'd bandwidth (zero, negative via a bad formula, a unit slip)
//! would otherwise surface only as a confusing downstream estimate.
//! [`validate_all_profiles`] runs each device's [`HardwareModel`]
//! through [`HardwareModel::validate`] and reports **every** offender
//! at once — one broken calibration no longer hides the next — both as
//! an aggregated typed error and as [`Diagnostic`]s
//! ([`profile_diagnostics`]) that render alongside the analyzer's
//! findings.
//!
//! [`LogNicError::InvalidProfile`]: lognic_model::error::LogNicError

use lognic_model::analyze::{Code, Diagnostic, Span};
use lognic_model::error::{LogNicError, LogNicResult};
use lognic_model::params::HardwareModel;

use crate::bluefield::BlueField2;
use crate::liquidio::LiquidIo;
use crate::panic::Panic;
use crate::rmt_switch::RmtSwitch;
use crate::stingray::Stingray;

/// Every calibrated device profile, by name.
pub fn all_profiles() -> Vec<(&'static str, HardwareModel)> {
    vec![
        ("liquidio-ii", LiquidIo::hardware()),
        ("stingray", Stingray::hardware()),
        ("bluefield-2", BlueField2::hardware()),
        ("panic", Panic::hardware()),
        ("rmt-switch", RmtSwitch::hardware()),
    ]
}

/// Validates one named hardware profile, attributing any failure to
/// the device.
///
/// # Errors
///
/// Returns [`lognic_model::error::LogNicError::InvalidProfile`] with
/// the device name folded into the reason when the profile is
/// degenerate.
pub fn validate_profile(name: &str, hw: &HardwareModel) -> LogNicResult<()> {
    hw.validate().map_err(|e| match e {
        LogNicError::InvalidProfile { component, reason } => LogNicError::InvalidProfile {
            component,
            reason: format!("device `{name}`: {reason}"),
        },
        other => other,
    })
}

/// The diagnostics a named hardware profile raises: one `L0401
/// degenerate-medium` finding per zero-bandwidth medium, attributed to
/// the device. An empty vector means the profile is sound.
pub fn profile_diagnostics(name: &str, hw: &HardwareModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (medium, bw) in [
        ("interface", hw.interface_bandwidth()),
        ("memory", hw.memory_bandwidth()),
    ] {
        if bw.is_zero() {
            out.push(
                Diagnostic::new(
                    Code::DegenerateMedium,
                    Span::Hardware { medium },
                    format!("device `{name}`: the shared {medium} has zero bandwidth"),
                )
                .with_help("re-derive the calibration; a zero medium starves every path"),
            );
        }
    }
    out
}

/// The diagnostics across every calibrated device profile (empty when
/// all calibrations are sound).
pub fn all_profile_diagnostics() -> Vec<Diagnostic> {
    all_profiles()
        .iter()
        .flat_map(|(name, hw)| profile_diagnostics(name, hw))
        .collect()
}

/// Validates every calibrated device profile, collecting **all**
/// findings instead of stopping at the first.
///
/// # Errors
///
/// One invalid profile returns its attributed
/// [`LogNicError::InvalidProfile`]; several are aggregated into a
/// single [`LogNicError::InvalidProfile`] whose reason lists every
/// offender, so a broken calibration sweep surfaces the full damage in
/// one round trip.
pub fn validate_all_profiles() -> LogNicResult<()> {
    let mut failures: Vec<LogNicError> = Vec::new();
    for (name, hw) in all_profiles() {
        if let Err(e) = validate_profile(name, &hw) {
            failures.push(e);
        }
    }
    match failures.len() {
        0 => Ok(()),
        1 => Err(failures.remove(0)),
        n => {
            let reasons: Vec<String> = failures
                .iter()
                .map(|e| match e {
                    LogNicError::InvalidProfile { reason, .. } => reason.clone(),
                    other => other.to_string(),
                })
                .collect();
            Err(LogNicError::InvalidProfile {
                component: "device profiles".to_owned(),
                reason: format!("{n} invalid profiles: {}", reasons.join("; ")),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::units::Bandwidth;

    #[test]
    fn all_calibrated_profiles_are_valid() {
        validate_all_profiles().expect("calibrated profiles must validate");
        assert_eq!(all_profiles().len(), 5);
        assert!(all_profile_diagnostics().is_empty());
    }

    #[test]
    fn degenerate_profile_is_attributed_to_the_device() {
        let broken = HardwareModel::new(Bandwidth::ZERO, Bandwidth::gbps(10.0));
        let err = validate_profile("broken-nic", &broken).unwrap_err();
        match err {
            LogNicError::InvalidProfile { reason, .. } => {
                assert!(reason.contains("broken-nic"), "{reason}");
            }
            other => panic!("expected InvalidProfile, got {other}"),
        }
    }

    #[test]
    fn profile_diagnostics_collect_every_degenerate_medium() {
        let broken = HardwareModel::new(Bandwidth::ZERO, Bandwidth::ZERO);
        let diags = profile_diagnostics("dead-nic", &broken);
        assert_eq!(diags.len(), 2, "both media reported, not just the first");
        for d in &diags {
            assert_eq!(d.code, Code::DegenerateMedium);
            assert!(d.is_denied());
            assert!(d.message.contains("dead-nic"));
        }
        let rendered: Vec<String> = diags.iter().map(|d| d.render_json()).collect();
        assert!(rendered[0].contains("interface"));
        assert!(rendered[1].contains("memory"));
    }
}
