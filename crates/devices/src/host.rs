//! The host server behind the SmartNIC (the testbed's Xeon machines,
//! §4.1).
//!
//! E3 (the case-study-3 platform) migrates microservices between the
//! NIC and the host when the NIC overloads; modeling the host lets the
//! optimizer answer the *split* question — which chain stages belong
//! on which side of the PCIe bus — rather than just the NIC-core
//! allocation.

use crate::cost::CostModel;
use lognic_model::units::{Bandwidth, Seconds};

/// The host-server profile (dual-socket Xeon, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostXeon;

impl HostXeon {
    /// Cores available to offload-adjacent work (one socket's worth).
    pub const CORES: u32 = 16;

    /// Core clock in GHz.
    pub const CORE_CLOCK_GHZ: f64 = 2.6;

    /// Per-core speedup over a 1.5 GHz cnMIPS NIC core on
    /// microservice-style code (wider issue, bigger caches).
    pub const SPEEDUP_OVER_NIC_CORE: f64 = 3.0;

    /// Effective PCIe 3.0 x16 data bandwidth.
    pub fn pcie_bandwidth() -> Bandwidth {
        Bandwidth::gbytes_per_sec(12.8)
    }

    /// One-way latency cost of crossing PCIe with a request descriptor
    /// (doorbell + DMA setup), charged as the crossing stage's `O_i`.
    pub fn pcie_crossing_overhead() -> Seconds {
        Seconds::micros(0.9)
    }

    /// Converts a NIC-core stage cost into its host equivalent.
    pub fn host_cost(nic_cost: CostModel) -> CostModel {
        nic_cost.scaled(1.0 / Self::SPEEDUP_OVER_NIC_CORE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::units::Bytes;

    #[test]
    fn host_cores_are_faster() {
        let nic = CostModel::per_request(Seconds::micros(3.0));
        let host = HostXeon::host_cost(nic);
        assert!((host.time(Bytes::new(512)).as_micros() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pcie_profile_sane() {
        assert!(HostXeon::pcie_bandwidth() > Bandwidth::gbps(100.0));
        assert!(HostXeon::pcie_crossing_overhead().as_micros() < 2.0);
        assert_eq!(HostXeon::CORES, 16);
    }
}
