//! # lognic-devices
//!
//! Calibrated device profiles for the SmartNICs the LogNIC paper
//! evaluates on:
//!
//! * [`liquidio`] — Marvell LiquidIO-II CN2360 (25 GbE, 16 cnMIPS
//!   cores, on-/off-chip accelerators) — case studies #1 and #3.
//! * [`stingray`] — Broadcom Stingray PS1100R JBOF with its NVMe SSD
//!   (including a garbage-collecting simulation model and the paper's
//!   curve-fitting characterization) — case study #2.
//! * [`bluefield`] — NVIDIA BlueField-2 DPU (100 GbE, 8×A72, NF
//!   accelerators) — case study #4.
//! * [`panic`](mod@panic) — the PANIC academic prototype (RMT pipeline, switching
//!   fabric, credit scheduler, compute units) — case study #5.
//!
//! Absolute numbers are calibrated against every anchor the paper
//! publishes (§4 and DESIGN.md); where the paper gives no number, a
//! plausible value with the right order of magnitude is chosen. The
//! goal is *shape fidelity*: who wins, by what factor, and where
//! saturation knees fall.

#![warn(missing_docs)]

pub mod bluefield;
pub mod cost;
pub mod host;
pub mod liquidio;
pub mod panic;
pub mod rmt_switch;
pub mod stingray;
pub mod validate;

pub use cost::CostModel;

/// The workspace-wide blessed surface (model + simulator preludes)
/// plus this crate's device entry points.
pub mod prelude {
    pub use lognic_sim::prelude::*;

    pub use crate::cost::CostModel;
}
