//! `lognic-service`: the hardened capacity-planning service behind
//! `lognic serve`.
//!
//! A JSON-lines request/response loop over arbitrary `BufRead`/
//! `Write` streams (stdin/stdout in the binaries), evaluating
//! estimate, degraded-estimate, analysis, sweep and simulation
//! queries against the named workload registry — wrapped in a
//! robustness envelope:
//!
//! * **admission control** — every evaluating request passes the
//!   static analyzer; `Deny`-level findings refuse it with the full
//!   `L0xxx` diagnostics attached;
//! * **deadlines and budgets** — a declared `deadline_ms` is checked
//!   at admission against the deterministic cost model and converted
//!   into a simulation event budget, so nothing outlives its
//!   deadline or stalls (the watchdog answers instead);
//! * **overload protection** — a logical in-flight gauge sheds past
//!   its high-water mark with a deterministic `retry_after_ms` hint;
//! * **fault isolation** — a panic inside evaluation is contained to
//!   its request and answered as a typed `internal` error;
//! * **observability** — `health` and `stats` request kinds report
//!   counters and latency quantiles.
//!
//! Responses are byte-deterministic for identical request streams
//! (see the module docs in [`service`]), which is what the golden
//! transcript tests pin.

pub mod error;
pub mod json;
pub mod request;
pub mod service;
pub mod shed;
pub mod stats;

pub use error::ServiceError;
pub use json::Json;
pub use request::{Request, RequestKind};
pub use service::{serve, ServeConfig, ServeSummary, Service};
pub use shed::LoadGauge;
pub use stats::ServiceStats;

/// Command-line options shared by the `lognic serve` subcommand and
/// the standalone `lognic-serve` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// The resulting service configuration.
    pub config: ServeConfig,
}

impl ServeOptions {
    /// Parses `serve` flags. Unknown flags are an error (a typo'd
    /// `--determinstic` silently running in wall-clock mode would
    /// corrupt a golden transcript).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending flag.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<ServeOptions, String> {
        let mut config = ServeConfig::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--deterministic" => config.deterministic = true,
                "--allow-debug-panic" => config.allow_debug_panic = true,
                "--threads" => config.threads = Self::num(&mut it, "--threads")? as usize,
                "--high-water" => config.high_water = Self::num(&mut it, "--high-water")?,
                "--drain" => config.drain_per_request = Self::num(&mut it, "--drain")?,
                "--max-line-bytes" => {
                    config.max_line_bytes = Self::num(&mut it, "--max-line-bytes")? as usize;
                }
                "--help" | "-h" => return Err(Self::usage().to_owned()),
                other => return Err(format!("unknown flag `{other}`\n{}", Self::usage())),
            }
        }
        Ok(ServeOptions { config })
    }

    fn num(it: &mut dyn Iterator<Item = String>, flag: &str) -> Result<u64, String> {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        value
            .parse::<u64>()
            .map_err(|_| format!("{flag} needs an unsigned integer, got `{value}`"))
    }

    /// The usage text both binaries print.
    pub fn usage() -> &'static str {
        "usage: lognic serve [--deterministic] [--threads N] [--high-water N] \
         [--drain N] [--max-line-bytes N] [--allow-debug-panic]\n\
         Reads one JSON request per line on stdin, writes one JSON response \
         per line on stdout."
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ServeOptions, String> {
        ServeOptions::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_and_flags_round_trip() {
        let o = parse(&[]).unwrap();
        assert!(!o.config.deterministic);
        assert_eq!(o.config.high_water, 64);
        let o = parse(&["--deterministic", "--threads", "4", "--high-water", "8"]).unwrap();
        assert!(o.config.deterministic);
        assert_eq!(o.config.threads, 4);
        assert_eq!(o.config.high_water, 8);
    }

    #[test]
    fn unknown_and_malformed_flags_are_refused() {
        assert!(parse(&["--determinstic"]).is_err(), "typos must not pass");
        assert!(parse(&["--threads"]).is_err(), "missing value");
        assert!(parse(&["--threads", "many"]).is_err(), "non-numeric value");
    }
}
