//! Request decoding and validation.
//!
//! A request is one JSON object per line. Decoding is strict: every
//! field is typed, unknown fields are rejected (a misspelled
//! `rate_gpbs` should fail loudly, not silently evaluate the default
//! rate), and every numeric parameter is domain-checked before any
//! model math runs. The decoded [`Request`] also carries the
//! deterministic *cost* the admission layer charges it with — the
//! quantity both the deadline check and the load gauge operate on.

use lognic_model::fault::{FaultPlan, RetryPolicy};
use lognic_model::units::Seconds;

use crate::error::ServiceError;
use crate::json::Json;

/// What a request asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// One analytical evaluation (`Estimator::request().evaluate()`).
    Estimate,
    /// Availability-adjusted evaluation under a fault plan.
    EstimateDegraded,
    /// Static analysis only: every diagnostic, nothing evaluated.
    Analyze,
    /// A rate sweep producing the latency-throughput curve.
    Sweep,
    /// A replicated discrete-event simulation under the watchdog.
    Simulate,
    /// Liveness probe.
    Health,
    /// Service counters and latency quantiles.
    Stats,
    /// Deliberate panic behind [`crate::ServeConfig::allow_debug_panic`],
    /// for exercising the request-isolation boundary.
    DebugPanic,
}

impl RequestKind {
    fn parse(s: &str) -> Option<RequestKind> {
        Some(match s {
            "estimate" => RequestKind::Estimate,
            "estimate_degraded" => RequestKind::EstimateDegraded,
            "analyze" => RequestKind::Analyze,
            "sweep" => RequestKind::Sweep,
            "simulate" => RequestKind::Simulate,
            "health" => RequestKind::Health,
            "stats" => RequestKind::Stats,
            "debug_panic" => RequestKind::DebugPanic,
            _ => return None,
        })
    }

    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Estimate => "estimate",
            RequestKind::EstimateDegraded => "estimate_degraded",
            RequestKind::Analyze => "analyze",
            RequestKind::Sweep => "sweep",
            RequestKind::Simulate => "simulate",
            RequestKind::Health => "health",
            RequestKind::Stats => "stats",
            RequestKind::DebugPanic => "debug_panic",
        }
    }

    /// True for kinds that resolve a graph and run the analyzer gate.
    pub fn evaluates(self) -> bool {
        matches!(
            self,
            RequestKind::Estimate
                | RequestKind::EstimateDegraded
                | RequestKind::Analyze
                | RequestKind::Sweep
                | RequestKind::Simulate
        )
    }
}

/// One inline fault window of an `estimate_degraded` request.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Target node name.
    pub node: String,
    /// What the fault does.
    pub effect: FaultEffect,
    /// Window start, milliseconds.
    pub from_ms: f64,
    /// Window end, milliseconds.
    pub until_ms: f64,
}

/// The effect of an inline fault window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEffect {
    /// Full outage.
    Outage,
    /// Serve at this fraction of nominal rate.
    Degrade(f64),
    /// Drop each packet with this probability.
    Drop(f64),
}

/// A fully decoded, domain-validated request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed back verbatim in the response, when present.
    pub id: Option<Json>,
    /// The request kind.
    pub kind: RequestKind,
    /// The registered graph the request targets.
    pub graph: Option<String>,
    /// Offered-rate override, Gb/s.
    pub rate_gbps: Option<f64>,
    /// Deterministic admission deadline, logical milliseconds.
    pub deadline_ms: Option<f64>,
    /// Strict analyzer posture: deny warnings too.
    pub deny_warnings: bool,
    /// Fault horizon for `estimate_degraded`, milliseconds.
    pub horizon_ms: f64,
    /// Inline fault windows (empty = use the workload's bundled plan).
    pub faults: Vec<FaultSpec>,
    /// Retry policy `(budget, base_backoff_us)` for inline faults.
    pub retry: Option<(u32, f64)>,
    /// Sweep fractions of the offered rate.
    pub fractions: Vec<f64>,
    /// Replication width for `simulate`.
    pub seeds: u32,
    /// Simulated horizon for `simulate`, milliseconds.
    pub duration_ms: f64,
    /// Explicit event budget for `simulate` (0 = config default).
    pub max_events: u64,
}

/// Every field the wire format accepts, for the strict-unknown-field
/// check and the error message that lists them.
const KNOWN_FIELDS: &[&str] = &[
    "id",
    "kind",
    "graph",
    "rate_gbps",
    "deadline_ms",
    "deny_warnings",
    "horizon_ms",
    "faults",
    "retry",
    "fractions",
    "seeds",
    "duration_ms",
    "max_events",
];

fn finite_positive(v: &Json, field: &str) -> Result<f64, ServiceError> {
    let n = v.as_f64().ok_or_else(|| ServiceError::InvalidParameter {
        parameter: field.to_owned(),
        reason: "must be a number".into(),
    })?;
    if !n.is_finite() || n <= 0.0 {
        return Err(ServiceError::InvalidParameter {
            parameter: field.to_owned(),
            reason: format!("{n} is not finite and positive"),
        });
    }
    Ok(n)
}

fn probability(v: &Json, field: &str) -> Result<f64, ServiceError> {
    let n = v.as_f64().ok_or_else(|| ServiceError::InvalidParameter {
        parameter: field.to_owned(),
        reason: "must be a number".into(),
    })?;
    if !n.is_finite() || !(0.0..=1.0).contains(&n) {
        return Err(ServiceError::InvalidParameter {
            parameter: field.to_owned(),
            reason: format!("{n} is not in [0, 1]"),
        });
    }
    Ok(n)
}

/// Extracts the `id` field from a request line if one is decodable,
/// so even a structurally invalid request can be answered with its
/// id attached.
pub fn salvage_id(doc: &Json) -> Option<Json> {
    doc.get("id").cloned()
}

impl Request {
    /// Decodes and validates a parsed JSON document.
    pub fn decode(doc: &Json) -> Result<Request, ServiceError> {
        let Json::Obj(fields) = doc else {
            return Err(ServiceError::InvalidRequest {
                reason: "request must be a JSON object".into(),
            });
        };
        for (key, _) in fields {
            if !KNOWN_FIELDS.contains(&key.as_str()) {
                return Err(ServiceError::InvalidRequest {
                    reason: format!("unknown field `{key}` (known: {})", KNOWN_FIELDS.join(", ")),
                });
            }
        }
        let kind_str = doc
            .get("kind")
            .ok_or_else(|| ServiceError::InvalidRequest {
                reason: "missing `kind`".into(),
            })?
            .as_str()
            .ok_or_else(|| ServiceError::InvalidRequest {
                reason: "`kind` must be a string".into(),
            })?;
        let kind = RequestKind::parse(kind_str).ok_or_else(|| ServiceError::UnknownKind {
            kind: kind_str.to_owned(),
        })?;

        let graph = match doc.get("graph") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| ServiceError::InvalidRequest {
                        reason: "`graph` must be a string".into(),
                    })?
                    .to_owned(),
            ),
        };
        if kind.evaluates() && graph.is_none() {
            return Err(ServiceError::InvalidRequest {
                reason: format!("`{}` requires a `graph`", kind.as_str()),
            });
        }

        let rate_gbps = doc
            .get("rate_gbps")
            .map(|v| finite_positive(v, "rate_gbps"))
            .transpose()?;

        let deadline_ms = match doc.get("deadline_ms") {
            None => None,
            Some(v) => {
                let n = v.as_f64().ok_or_else(|| ServiceError::InvalidParameter {
                    parameter: "deadline_ms".into(),
                    reason: "must be a number".into(),
                })?;
                if !n.is_finite() || n < 0.0 {
                    return Err(ServiceError::InvalidParameter {
                        parameter: "deadline_ms".into(),
                        reason: format!("{n} is not finite and non-negative"),
                    });
                }
                Some(n)
            }
        };

        let deny_warnings = match doc.get("deny_warnings") {
            None => false,
            Some(v) => v.as_bool().ok_or_else(|| ServiceError::InvalidRequest {
                reason: "`deny_warnings` must be a bool".into(),
            })?,
        };

        let horizon_ms = doc
            .get("horizon_ms")
            .map(|v| finite_positive(v, "horizon_ms"))
            .transpose()?
            .unwrap_or(10.0);

        let faults = match doc.get("faults") {
            None => Vec::new(),
            Some(v) => {
                let items = v.as_arr().ok_or_else(|| ServiceError::InvalidRequest {
                    reason: "`faults` must be an array".into(),
                })?;
                items
                    .iter()
                    .map(|f| FaultSpec::decode(f, horizon_ms))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };

        let retry = match doc.get("retry") {
            None => None,
            Some(v) => {
                let budget = v
                    .get("budget")
                    .ok_or_else(|| ServiceError::InvalidRequest {
                        reason: "`retry` needs a `budget`".into(),
                    })
                    .and_then(|b| finite_positive(b, "retry.budget"))?;
                if budget > u32::MAX as f64 || budget.fract() != 0.0 {
                    return Err(ServiceError::InvalidParameter {
                        parameter: "retry.budget".into(),
                        reason: "must be a whole number of retries".into(),
                    });
                }
                let backoff_us = v
                    .get("backoff_us")
                    .map(|b| finite_positive(b, "retry.backoff_us"))
                    .transpose()?
                    .unwrap_or(10.0);
                Some((budget as u32, backoff_us))
            }
        };

        let fractions = match doc.get("fractions") {
            None => Vec::new(),
            Some(v) => {
                let items = v.as_arr().ok_or_else(|| ServiceError::InvalidRequest {
                    reason: "`fractions` must be an array".into(),
                })?;
                items
                    .iter()
                    .map(|f| {
                        let n = finite_positive(f, "fractions")?;
                        if n > 16.0 {
                            return Err(ServiceError::InvalidParameter {
                                parameter: "fractions".into(),
                                reason: format!("{n}× the reference rate is past any bound"),
                            });
                        }
                        Ok(n)
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        if kind == RequestKind::Sweep && fractions.is_empty() {
            return Err(ServiceError::InvalidRequest {
                reason: "`sweep` requires a non-empty `fractions` array".into(),
            });
        }

        let seeds = match doc.get("seeds") {
            None => 3,
            Some(v) => {
                let n = finite_positive(v, "seeds")?;
                if n.fract() != 0.0 || n > u32::MAX as f64 {
                    return Err(ServiceError::InvalidParameter {
                        parameter: "seeds".into(),
                        reason: "must be a whole number".into(),
                    });
                }
                n as u32
            }
        };

        let duration_ms = doc
            .get("duration_ms")
            .map(|v| finite_positive(v, "duration_ms"))
            .transpose()?
            .unwrap_or(2.0);

        let max_events = match doc.get("max_events") {
            None => 0,
            Some(v) => {
                let n = finite_positive(v, "max_events")?;
                if n.fract() != 0.0 || n > u64::MAX as f64 {
                    return Err(ServiceError::InvalidParameter {
                        parameter: "max_events".into(),
                        reason: "must be a whole number".into(),
                    });
                }
                n as u64
            }
        };

        Ok(Request {
            id: salvage_id(doc),
            kind,
            graph,
            rate_gbps,
            deadline_ms,
            deny_warnings,
            horizon_ms,
            faults,
            retry,
            fractions,
            seeds,
            duration_ms,
            max_events,
        })
    }

    /// The deterministic demand the admission layer charges this
    /// request with, in logical milliseconds of service. A pure
    /// function of the request — never of the wall clock — so
    /// deadline refusals and load shedding are reproducible
    /// byte-for-byte across runs and thread counts.
    pub fn cost(&self) -> u64 {
        match self.kind {
            RequestKind::Health | RequestKind::Stats => 0,
            RequestKind::Estimate | RequestKind::Analyze | RequestKind::DebugPanic => 1,
            RequestKind::EstimateDegraded => 2,
            RequestKind::Sweep => self.fractions.len() as u64,
            RequestKind::Simulate => {
                (self.seeds as u64).saturating_mul(self.duration_ms.ceil() as u64)
            }
        }
    }

    /// Builds the [`FaultPlan`] for an `estimate_degraded` request
    /// from its inline windows, or `None` when the request declares
    /// none (the workload's bundled plan applies instead).
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if self.faults.is_empty() {
            return None;
        }
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            let from = Seconds::millis(f.from_ms);
            let until = Seconds::millis(f.until_ms);
            plan = match f.effect {
                FaultEffect::Outage => plan.outage(&f.node, from, until),
                FaultEffect::Degrade(factor) => plan.degrade_rate(&f.node, factor, from, until),
                FaultEffect::Drop(p) => plan.drop_packets(&f.node, p, from, until),
            };
        }
        if let Some((budget, backoff_us)) = self.retry {
            plan = plan.with_retry(RetryPolicy::new(budget, Seconds::micros(backoff_us)));
        }
        Some(plan)
    }
}

impl FaultSpec {
    fn decode(v: &Json, default_until_ms: f64) -> Result<FaultSpec, ServiceError> {
        let node = v
            .get("node")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::InvalidRequest {
                reason: "each fault needs a string `node`".into(),
            })?
            .to_owned();
        let kind =
            v.get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| ServiceError::InvalidRequest {
                    reason: "each fault needs a string `kind`".into(),
                })?;
        let effect = match kind {
            "outage" => FaultEffect::Outage,
            "degrade" => FaultEffect::Degrade(finite_positive(
                v.get("factor")
                    .ok_or_else(|| ServiceError::InvalidRequest {
                        reason: "`degrade` fault needs a `factor`".into(),
                    })?,
                "faults.factor",
            )?),
            "drop" => FaultEffect::Drop(probability(
                v.get("probability")
                    .ok_or_else(|| ServiceError::InvalidRequest {
                        reason: "`drop` fault needs a `probability`".into(),
                    })?,
                "faults.probability",
            )?),
            other => {
                return Err(ServiceError::InvalidRequest {
                    reason: format!("unknown fault kind `{other}` (outage, degrade, drop)"),
                })
            }
        };
        let from_ms = match v.get("from_ms") {
            None => 0.0,
            Some(n) => {
                let n = n.as_f64().ok_or_else(|| ServiceError::InvalidParameter {
                    parameter: "faults.from_ms".into(),
                    reason: "must be a number".into(),
                })?;
                if !n.is_finite() || n < 0.0 {
                    return Err(ServiceError::InvalidParameter {
                        parameter: "faults.from_ms".into(),
                        reason: format!("{n} is not finite and non-negative"),
                    });
                }
                n
            }
        };
        let until_ms = v
            .get("until_ms")
            .map(|n| finite_positive(n, "faults.until_ms"))
            .transpose()?
            .unwrap_or(default_until_ms);
        Ok(FaultSpec {
            node,
            effect,
            from_ms,
            until_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn decode(src: &str) -> Result<Request, ServiceError> {
        Request::decode(&parse(src).expect("test inputs are valid JSON"))
    }

    #[test]
    fn decodes_a_full_estimate_request() {
        let r = decode(
            r#"{"id":"q1","kind":"estimate","graph":"nvmeof","rate_gbps":5.0,"deadline_ms":10,"deny_warnings":true}"#,
        )
        .unwrap();
        assert_eq!(r.kind, RequestKind::Estimate);
        assert_eq!(r.graph.as_deref(), Some("nvmeof"));
        assert_eq!(r.rate_gbps, Some(5.0));
        assert_eq!(r.deadline_ms, Some(10.0));
        assert!(r.deny_warnings);
        assert_eq!(r.cost(), 1);
    }

    #[test]
    fn rejects_unknown_fields_and_kinds() {
        let err = decode(r#"{"kind":"estimate","graph":"x","rate_gpbs":5}"#).unwrap_err();
        assert_eq!(err.code(), "invalid_request");
        assert!(err.to_string().contains("rate_gpbs"), "{err}");
        let err = decode(r#"{"kind":"estimat","graph":"x"}"#).unwrap_err();
        assert_eq!(err.code(), "unknown_kind");
    }

    #[test]
    fn rejects_hostile_numerics() {
        for src in [
            r#"{"kind":"estimate","graph":"x","rate_gbps":-5}"#,
            r#"{"kind":"estimate","graph":"x","rate_gbps":0}"#,
            r#"{"kind":"estimate","graph":"x","rate_gbps":"fast"}"#,
            r#"{"kind":"simulate","graph":"x","seeds":2.5}"#,
            r#"{"kind":"sweep","graph":"x","fractions":[0.5,-1]}"#,
            r#"{"kind":"estimate","graph":"x","deadline_ms":-1}"#,
        ] {
            let err = decode(src).unwrap_err();
            assert_eq!(err.code(), "invalid_parameter", "{src}");
        }
    }

    #[test]
    fn sweep_and_simulate_costs_scale_with_demand() {
        let sweep = decode(r#"{"kind":"sweep","graph":"x","fractions":[0.2,0.4,0.6]}"#).unwrap();
        assert_eq!(sweep.cost(), 3);
        let sim = decode(r#"{"kind":"simulate","graph":"x","seeds":4,"duration_ms":3}"#).unwrap();
        assert_eq!(sim.cost(), 12);
        let probe = decode(r#"{"kind":"health"}"#).unwrap();
        assert_eq!(probe.cost(), 0);
    }

    #[test]
    fn inline_faults_become_a_plan() {
        let r = decode(
            r#"{"kind":"estimate_degraded","graph":"x","horizon_ms":8,"faults":[{"node":"ip","kind":"drop","probability":0.2},{"node":"ip","kind":"outage","from_ms":1,"until_ms":2}],"retry":{"budget":3,"backoff_us":5}}"#,
        )
        .unwrap();
        let plan = r.fault_plan().expect("two windows declared");
        assert_eq!(plan.retry().map(|rp| rp.budget()), Some(3));
        assert_eq!(r.cost(), 2);
    }

    #[test]
    fn missing_graph_on_evaluating_kinds_is_typed() {
        let err = decode(r#"{"kind":"analyze"}"#).unwrap_err();
        assert_eq!(err.code(), "invalid_request");
        assert!(
            decode(r#"{"kind":"stats"}"#).is_ok(),
            "stats needs no graph"
        );
    }
}
