//! A minimal, hardened JSON reader/writer.
//!
//! The serve loop parses thousands of untrusted request lines, so the
//! parser is written for containment rather than speed: strict
//! grammar (no trailing garbage, no `NaN`/`Infinity` tokens, no
//! unescaped control characters), a recursion-depth cap so a
//! `[[[[…]]]]` bomb cannot blow the stack, and typed [`JsonError`]s
//! carrying the byte offset of the defect. The writer side is the
//! same hand-rolled escaping discipline the analyzer's JSON-lines
//! renderer uses — no external dependencies anywhere.

use core::fmt;

/// Maximum nesting depth a request document may use. Requests are
/// flat objects with one level of arrays; 32 is generous.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
///
/// Numbers are kept as `f64` (the grammar's only numeric type);
/// objects preserve key order so re-rendering is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks a key up in an object (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON. Whole numbers print
    /// without a fractional part so an echoed request id `7` comes
    /// back as `7`, not `7.0`.
    pub fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s);
        f.write_str(&s)
    }
}

/// Renders a finite `f64` deterministically: integral values within
/// the exactly-representable range print as integers.
pub fn render_number(n: f64, out: &mut String) {
    use core::fmt::Write as _;
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use core::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parse defect: what went wrong and where.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the defect in the input.
    pub offset: usize,
    /// Human-readable description.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON document; trailing non-whitespace is an
/// error (a request line must be one object, not two).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the 32-level limit"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept a following low
                            // surrogate, reject lone halves.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a &str so
                    // boundaries are already valid.
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest).expect("input is valid UTF-8");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = core::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        let n: f64 = text.parse().map_err(|_| self.err("malformed number"))?;
        // `1e999` parses to infinity; a request must not smuggle a
        // non-finite value past the grammar.
        if !n.is_finite() {
            return Err(self.err("number does not fit a finite f64"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_request_shape() {
        let src = r#"{"id":7,"kind":"estimate","graph":"nvmeof","rate_gbps":5.5,"tags":["a","b"],"opts":{"deny_warnings":true,"x":null}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(7.0));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("estimate"));
        assert_eq!(
            v.get("opts")
                .unwrap()
                .get("deny_warnings")
                .and_then(Json::as_bool),
            Some(true)
        );
        let mut out = String::new();
        v.render(&mut out);
        assert_eq!(out, src, "compact render is the identity on compact input");
    }

    #[test]
    fn rejects_malformed_documents_with_offsets() {
        for src in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1}garbage",
            "nul",
            "{'a':1}",
            "{\"a\":01x}",
            "{\"a\":NaN}",
            "{\"a\":Infinity}",
            "{\"a\":1e999}",
            "{\"a\":\"\\q\"}",
            "{\"a\":\"\\ud800\"}",
            "{\"a\":1,\"a\":2}",
        ] {
            let err = parse(src).unwrap_err();
            assert!(err.offset <= src.len(), "{src:?}: {err}");
        }
    }

    #[test]
    fn depth_bomb_is_contained() {
        let bomb = "[".repeat(10_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.reason.contains("nesting"), "{err}");
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let v = parse(r#""tab\t quote\" slash\\ pair\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\t quote\" slash\\ pair😀"));
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn number_rendering_is_integer_aware() {
        let mut out = String::new();
        render_number(7.0, &mut out);
        out.push(' ');
        render_number(2.5, &mut out);
        out.push(' ');
        render_number(-3.0, &mut out);
        assert_eq!(out, "7 2.5 -3");
    }
}
