//! Deterministic overload protection.
//!
//! The gauge models in-flight work as *logical occupancy*: every
//! admitted request adds its [`cost`](crate::request::Request::cost)
//! and every arrival drains a fixed amount (work completing between
//! requests). Because both sides are pure functions of the request
//! stream — never of wall-clock time or thread scheduling — the exact
//! same requests shed at the exact same positions on every run, which
//! is what makes shed responses golden-testable.

use crate::error::ServiceError;

/// The logical in-flight gauge behind load shedding.
#[derive(Debug, Clone)]
pub struct LoadGauge {
    occupancy: u64,
    high_water: u64,
    drain_per_request: u64,
    shed: u64,
}

impl LoadGauge {
    /// A gauge that sheds when admitting a request would push logical
    /// occupancy past `high_water`, draining `drain_per_request`
    /// units of completed work at every arrival.
    pub fn new(high_water: u64, drain_per_request: u64) -> Self {
        LoadGauge {
            occupancy: 0,
            high_water,
            drain_per_request,
            shed: 0,
        }
    }

    /// Current logical occupancy.
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// Requests shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Drains completed work and then either admits `cost` units or
    /// sheds the request with a deterministic retry hint.
    ///
    /// The hint is the logical time until enough occupancy has
    /// drained for this cost to fit: `ceil(overshoot /
    /// drain_per_request)` arrivals' worth of drain, floored at one
    /// millisecond so a hint is never zero.
    pub fn admit(&mut self, cost: u64) -> Result<(), ServiceError> {
        self.occupancy = self.occupancy.saturating_sub(self.drain_per_request);
        let after = self.occupancy.saturating_add(cost);
        if after > self.high_water {
            self.shed += 1;
            let overshoot = after - self.high_water;
            let drain = self.drain_per_request.max(1);
            return Err(ServiceError::Overloaded {
                retry_after_ms: overshoot.div_ceil(drain).max(1),
                occupancy: self.occupancy,
                high_water: self.high_water,
            });
        }
        self.occupancy = after;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_high_water_then_sheds_with_a_hint() {
        let mut g = LoadGauge::new(10, 0);
        assert!(g.admit(4).is_ok());
        assert!(g.admit(4).is_ok());
        assert_eq!(g.occupancy(), 8);
        let err = g.admit(4).unwrap_err();
        let ServiceError::Overloaded {
            retry_after_ms,
            occupancy,
            high_water,
        } = err
        else {
            panic!("expected Overloaded, got {err:?}");
        };
        assert_eq!(occupancy, 8);
        assert_eq!(high_water, 10);
        assert_eq!(retry_after_ms, 2, "overshoot of 2 units, drain floor 1");
        assert_eq!(g.shed_count(), 1);
        // A shed request must not consume capacity.
        assert_eq!(g.occupancy(), 8);
    }

    #[test]
    fn drain_recovers_capacity_between_requests() {
        let mut g = LoadGauge::new(8, 4);
        assert!(g.admit(8).is_ok());
        // Drain of 4 makes room for another 4 even at the mark.
        assert!(g.admit(4).is_ok());
        assert_eq!(g.occupancy(), 8);
        assert!(g.admit(8).is_err());
        // Two more arrivals drain 8 units; the same request then fits.
        assert!(g.admit(0).is_ok());
        assert!(g.admit(8).is_ok());
    }

    #[test]
    fn zero_cost_probes_always_pass() {
        let mut g = LoadGauge::new(4, 0);
        assert!(g.admit(4).is_ok());
        for _ in 0..100 {
            assert!(g.admit(0).is_ok(), "health probes never shed");
        }
    }

    #[test]
    fn identical_streams_shed_at_identical_positions() {
        let costs = [3u64, 5, 2, 7, 1, 6, 4, 4, 9, 2];
        let run = || {
            let mut g = LoadGauge::new(12, 2);
            costs
                .iter()
                .map(|&c| g.admit(c).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "gauge is a pure function of the stream");
    }
}
