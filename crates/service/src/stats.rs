//! Service counters and latency quantiles.
//!
//! Two clocks exist: the wall clock (what an operator wants from a
//! live `stats` probe) and the logical clock (the deterministic cost
//! model's view, what the golden transcripts need). The recorder
//! tracks both; [`ServeConfig::deterministic`] selects which one a
//! `stats` response reports.
//!
//! [`ServeConfig::deterministic`]: crate::service::ServeConfig::deterministic

use lognic_sim::histogram::LatencyRecorder;
use lognic_sim::time::SimTime;

/// Rolling counters for one service process.
#[derive(Debug)]
pub struct ServiceStats {
    /// Request lines received (including malformed ones).
    pub received: u64,
    /// Requests answered `ok:true`.
    pub served: u64,
    /// Requests shed by the load gauge.
    pub shed: u64,
    /// Requests refused with any other typed error.
    pub failed: u64,
    /// Panics contained by the request-isolation boundary.
    pub isolated_panics: u64,
    /// Logical milliseconds of admitted work (the deterministic
    /// clock).
    pub logical_ms: u64,
    latency: LatencyRecorder,
}

impl ServiceStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        ServiceStats {
            received: 0,
            served: 0,
            shed: 0,
            failed: 0,
            isolated_panics: 0,
            logical_ms: 0,
            latency: LatencyRecorder::new(),
        }
    }

    /// Records one completed request's latency sample, in
    /// milliseconds (logical in deterministic mode, wall otherwise).
    pub fn record_latency_ms(&mut self, ms: f64) {
        self.latency.record(SimTime::from_secs(ms.max(0.0) / 1e3));
    }

    /// Mean recorded latency, milliseconds.
    pub fn latency_mean_ms(&self) -> f64 {
        self.latency.mean().as_secs() * 1e3
    }

    /// A latency quantile, milliseconds.
    pub fn latency_quantile_ms(&self, q: f64) -> f64 {
        self.latency.quantile(q).as_secs() * 1e3
    }

    /// Latency samples recorded so far.
    pub fn latency_count(&self) -> u64 {
        self.latency.count()
    }
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_track_recorded_samples() {
        let mut s = ServiceStats::new();
        for ms in [1.0, 2.0, 3.0, 4.0, 100.0] {
            s.record_latency_ms(ms);
        }
        assert_eq!(s.latency_count(), 5);
        assert!(s.latency_mean_ms() > 10.0);
        assert!(s.latency_quantile_ms(0.5) < s.latency_quantile_ms(0.99));
    }

    #[test]
    fn negative_samples_are_clamped_not_panicking() {
        let mut s = ServiceStats::new();
        s.record_latency_ms(-5.0);
        assert_eq!(s.latency_count(), 1);
        assert_eq!(s.latency_mean_ms(), 0.0);
    }
}
