//! The hardened request loop: admission control, deadlines, load
//! shedding, fault isolation, and the JSON-lines protocol itself.
//!
//! # Determinism
//!
//! Every response is a pure function of the request stream. The three
//! places a naive service would consult the wall clock — deadline
//! enforcement, overload detection, and latency statistics — all run
//! on the deterministic cost model instead (see
//! [`Request::cost`]): deadlines are checked at admission against
//! predicted logical demand, the [`LoadGauge`] tracks logical
//! occupancy, and under [`ServeConfig::deterministic`] the `stats`
//! clock is the logical clock. Requests are processed strictly in
//! arrival order; `threads` only parallelizes *inside* a replicated
//! simulation, whose aggregation is already seed-ordered. The result:
//! byte-identical transcripts across runs and across thread counts,
//! which is what the golden tests pin.

use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};

use lognic_model::analyze::{AnalysisConfig, Analyzer, Severity};
use lognic_model::error::LogNicError;
use lognic_model::estimate::Estimate;
use lognic_model::fault::FaultPlan;
use lognic_model::sweep::{knee_of, rate_sweep};
use lognic_model::units::{Bandwidth, Seconds};
use lognic_sim::replicate::Replication;
use lognic_sim::sim::SimConfig;
use lognic_sim::stats::MetricSummary;
use lognic_workloads::registry;
use lognic_workloads::scenario::Scenario;

use crate::error::{render_error_response, ServiceError};
use crate::json::{escape, parse, render_number};
use crate::request::{Request, RequestKind};
use crate::shed::LoadGauge;
use crate::stats::ServiceStats;

/// Tunables for one service process.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Logical-occupancy mark past which requests are shed.
    pub high_water: u64,
    /// Logical work drained at every arrival (completed service).
    pub drain_per_request: u64,
    /// Longest accepted request line, bytes; longer lines are
    /// answered with a `parse_error` and skipped without buffering.
    pub max_line_bytes: usize,
    /// Most points one sweep may request.
    pub max_sweep_points: usize,
    /// Most replicas one simulate may request.
    pub max_seeds: u32,
    /// Longest simulated horizon one simulate may request, ms.
    pub max_sim_ms: f64,
    /// Hard per-request event budget for the simulation watchdog.
    pub max_events_per_request: u64,
    /// Deadline-to-event-budget conversion: a request with a
    /// `deadline_ms` gets its event budget capped at `deadline_ms ×`
    /// this, so a pathological simulation trips the watchdog
    /// deterministically instead of outliving its deadline.
    pub events_per_deadline_ms: u64,
    /// Worker threads inside replicated simulations (0 = available
    /// parallelism). Has no effect on responses.
    pub threads: usize,
    /// Report logical time instead of wall time in `health`/`stats`
    /// responses, making transcripts byte-reproducible.
    pub deterministic: bool,
    /// Enable the `debug_panic` request kind (isolation-boundary
    /// testing only).
    pub allow_debug_panic: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            high_water: 64,
            drain_per_request: 4,
            max_line_bytes: 64 * 1024,
            max_sweep_points: 64,
            max_seeds: 16,
            max_sim_ms: 200.0,
            max_events_per_request: 5_000_000,
            events_per_deadline_ms: 50_000,
            threads: 1,
            deterministic: false,
            allow_debug_panic: false,
        }
    }
}

/// One registered, pre-built graph the service can evaluate.
struct GraphEntry {
    name: String,
    scenario: Scenario,
    plan: Option<FaultPlan>,
}

/// The capacity-planning service: a registry of named graphs plus
/// the robustness envelope around their evaluation.
pub struct Service {
    config: ServeConfig,
    graphs: Vec<GraphEntry>,
    gauge: LoadGauge,
    stats: ServiceStats,
    started: std::time::Instant,
}

impl Service {
    /// A service over the full workload registry
    /// ([`lognic_workloads::registry::ALL`]).
    pub fn new(config: ServeConfig) -> Self {
        let graphs = registry::ALL
            .iter()
            .map(|e| {
                let (scenario, plan) = e.build();
                GraphEntry {
                    name: e.name.to_owned(),
                    scenario,
                    plan,
                }
            })
            .collect();
        Service::with_graphs(config, graphs)
    }

    /// A service over an explicit `(name, scenario, plan)` catalog.
    pub fn with_scenarios(
        config: ServeConfig,
        catalog: Vec<(String, Scenario, Option<FaultPlan>)>,
    ) -> Self {
        let graphs = catalog
            .into_iter()
            .map(|(name, scenario, plan)| GraphEntry {
                name,
                scenario,
                plan,
            })
            .collect();
        Service::with_graphs(config, graphs)
    }

    fn with_graphs(config: ServeConfig, graphs: Vec<GraphEntry>) -> Self {
        let gauge = LoadGauge::new(config.high_water, config.drain_per_request);
        Service {
            config,
            graphs,
            gauge,
            stats: ServiceStats::new(),
            started: std::time::Instant::now(),
        }
    }

    /// The service's counters so far.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Registered graph names, in catalog order.
    pub fn graph_names(&self) -> Vec<&str> {
        self.graphs.iter().map(|g| g.name.as_str()).collect()
    }

    /// Answers one request line with exactly one response line
    /// (without the trailing newline). Never panics: anything that
    /// escapes evaluation is contained and answered as an
    /// `internal` error.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.stats.received += 1;
        let wall = std::time::Instant::now();
        let doc = match parse(line) {
            Ok(doc) => doc,
            Err(e) => {
                self.stats.failed += 1;
                return render_error_response(
                    None,
                    &ServiceError::Parse {
                        reason: e.to_string(),
                    },
                );
            }
        };
        let req = match Request::decode(&doc) {
            Ok(req) => req,
            Err(e) => {
                self.stats.failed += 1;
                return render_error_response(crate::request::salvage_id(&doc).as_ref(), &e);
            }
        };
        let id = req.id.clone();
        let cost = req.cost();
        let response = match self.dispatch(req) {
            Ok(body) => {
                self.stats.served += 1;
                self.stats.logical_ms += cost;
                let mut out = String::with_capacity(body.len() + 32);
                out.push('{');
                if let Some(id) = &id {
                    out.push_str("\"id\":");
                    id.render(&mut out);
                    out.push(',');
                }
                out.push_str("\"ok\":true,");
                out.push_str(&body);
                out.push('}');
                out
            }
            Err(e) => {
                if e.is_shed() {
                    self.stats.shed += 1;
                } else {
                    self.stats.failed += 1;
                }
                render_error_response(id.as_ref(), &e)
            }
        };
        let sample_ms = if self.config.deterministic {
            cost as f64
        } else {
            wall.elapsed().as_secs_f64() * 1e3
        };
        self.stats.record_latency_ms(sample_ms);
        response
    }

    /// Admission control plus evaluation for one decoded request.
    fn dispatch(&mut self, req: Request) -> Result<String, ServiceError> {
        self.enforce_limits(&req)?;
        let cost = req.cost();
        if let Some(deadline_ms) = req.deadline_ms {
            let predicted_ms = cost as f64;
            if deadline_ms < predicted_ms {
                return Err(ServiceError::DeadlineExceeded {
                    deadline_ms,
                    predicted_ms,
                });
            }
        }
        self.gauge.admit(cost)?;
        match req.kind {
            RequestKind::Health => return Ok(self.render_health()),
            RequestKind::Stats => return Ok(self.render_stats()),
            RequestKind::DebugPanic if !self.config.allow_debug_panic => {
                return Err(ServiceError::InvalidRequest {
                    reason: "debug_panic is disabled (start with --allow-debug-panic)".into(),
                });
            }
            _ => {}
        }
        // Everything past this point runs behind the isolation
        // boundary: a panic in model or simulator code is contained
        // and answered, and the loop keeps serving.
        let outcome = catch_unwind(AssertUnwindSafe(|| self.evaluate(&req)));
        match outcome {
            Ok(result) => result,
            Err(payload) => {
                self.stats.isolated_panics += 1;
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                Err(ServiceError::Internal { message })
            }
        }
    }

    /// Static resource caps, checked before any capacity is charged.
    fn enforce_limits(&self, req: &Request) -> Result<(), ServiceError> {
        if req.fractions.len() > self.config.max_sweep_points {
            return Err(ServiceError::OversizedSweep {
                points: req.fractions.len(),
                limit: self.config.max_sweep_points,
            });
        }
        if req.kind == RequestKind::Simulate {
            if req.seeds > self.config.max_seeds {
                return Err(ServiceError::InvalidParameter {
                    parameter: "seeds".into(),
                    reason: format!(
                        "{} exceeds the {}-replica limit",
                        req.seeds, self.config.max_seeds
                    ),
                });
            }
            if req.duration_ms > self.config.max_sim_ms {
                return Err(ServiceError::InvalidParameter {
                    parameter: "duration_ms".into(),
                    reason: format!(
                        "{} exceeds the {}ms horizon limit",
                        req.duration_ms, self.config.max_sim_ms
                    ),
                });
            }
        }
        Ok(())
    }

    /// Evaluates an admitted request. Runs inside the isolation
    /// boundary.
    fn evaluate(&self, req: &Request) -> Result<String, ServiceError> {
        if req.kind == RequestKind::DebugPanic {
            panic!("debug_panic requested");
        }
        let graph = req.graph.as_deref().unwrap_or_default();
        let entry = self
            .graphs
            .iter()
            .find(|g| g.name == graph)
            .ok_or_else(|| ServiceError::UnknownGraph {
                graph: graph.to_owned(),
            })?;
        let scenario = match req.rate_gbps {
            Some(r) => entry.scenario.at_rate(Bandwidth::gbps(r)),
            None => entry.scenario.clone(),
        };
        let analysis_config = AnalysisConfig::new().deny_warnings(req.deny_warnings);
        let report = Analyzer::new(&scenario.graph)
            .with_hardware(&scenario.hardware)
            .with_traffic(&scenario.traffic)
            .run(&analysis_config);
        if req.kind == RequestKind::Analyze {
            return Ok(render_analysis(&report));
        }
        // The admission gate proper: any Deny-level finding refuses
        // the request before model math or simulation runs.
        if report.is_rejected() {
            return Err(ServiceError::Evaluation(LogNicError::AnalysisRejected {
                diagnostics: report.diagnostics().to_vec(),
            }));
        }
        match req.kind {
            RequestKind::Estimate => {
                let est = scenario.estimator().request().evaluate()?;
                Ok(render_estimate("estimate", &entry.name, &est))
            }
            RequestKind::EstimateDegraded => {
                let inline = req.fault_plan();
                let plan = inline.as_ref().or(entry.plan.as_ref()).ok_or_else(|| {
                    ServiceError::InvalidRequest {
                        reason: format!(
                            "`{}` declares no `faults` and ships no bundled fault plan",
                            entry.name
                        ),
                    }
                })?;
                let est = scenario
                    .estimator()
                    .request()
                    .with_faults(plan, Seconds::millis(req.horizon_ms))
                    .evaluate()?;
                Ok(render_estimate("estimate_degraded", &entry.name, &est))
            }
            RequestKind::Sweep => {
                let reference = scenario.traffic.ingress_bandwidth();
                let points = rate_sweep(
                    &scenario.graph,
                    &scenario.hardware,
                    &scenario.traffic,
                    reference,
                    &req.fractions,
                )?;
                let knee = knee_of(&points, 0.01);
                let mut out = String::with_capacity(64 + points.len() * 96);
                push_kind(&mut out, "sweep", &entry.name);
                out.push_str(",\"points\":[");
                for (i, p) in points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"offered_gbps\":");
                    render_number(p.offered.as_gbps(), &mut out);
                    out.push_str(",\"delivered_gbps\":");
                    render_number(p.delivered.as_gbps(), &mut out);
                    out.push_str(",\"latency_us\":");
                    render_number(p.latency.as_secs() * 1e6, &mut out);
                    out.push_str(",\"peak_utilization\":");
                    render_number(p.peak_utilization, &mut out);
                    out.push('}');
                }
                out.push_str("],\"knee_index\":");
                match knee {
                    Some(i) => render_number(i as f64, &mut out),
                    None => out.push_str("null"),
                }
                Ok(out)
            }
            RequestKind::Simulate => self.evaluate_simulate(req, entry, &scenario),
            RequestKind::Analyze
            | RequestKind::Health
            | RequestKind::Stats
            | RequestKind::DebugPanic => {
                unreachable!("handled before evaluation")
            }
        }
    }

    fn evaluate_simulate(
        &self,
        req: &Request,
        entry: &GraphEntry,
        scenario: &Scenario,
    ) -> Result<String, ServiceError> {
        let duration = Seconds::millis(req.duration_ms);
        let mut budget = self.config.max_events_per_request;
        if req.max_events > 0 {
            budget = budget.min(req.max_events);
        }
        if let Some(deadline_ms) = req.deadline_ms {
            let from_deadline = (deadline_ms.ceil() as u64)
                .saturating_mul(self.config.events_per_deadline_ms)
                .max(1);
            budget = budget.min(from_deadline);
        }
        let config = SimConfig {
            duration,
            warmup: duration.scaled(0.2),
            max_events: budget,
            ..SimConfig::default()
        };
        let replication = Replication::new(req.seeds).threads(self.config.threads);
        let inline = req.fault_plan();
        let plan = inline.as_ref().or(entry.plan.as_ref());
        let report = match plan {
            Some(p) => replication.run_sim_faulted(
                &scenario.graph,
                &scenario.hardware,
                &scenario.traffic,
                config,
                p,
            )?,
            None => replication.run_sim(
                &scenario.graph,
                &scenario.hardware,
                &scenario.traffic,
                config,
            )?,
        };
        let mut out = String::with_capacity(256);
        push_kind(&mut out, "simulate", &entry.name);
        use core::fmt::Write as _;
        let _ = write!(out, ",\"seeds\":{}", report.seeds.len());
        out.push_str(",\"latency_s\":");
        render_summary(&report.latency_mean, &mut out);
        out.push_str(",\"throughput_gbps\":");
        render_summary(&report.throughput_gbps, &mut out);
        out.push_str(",\"loss_rate\":");
        render_summary(&report.loss_rate, &mut out);
        Ok(out)
    }

    fn render_health(&self) -> String {
        let mut out = String::with_capacity(96);
        use core::fmt::Write as _;
        let _ = write!(
            out,
            "\"kind\":\"health\",\"status\":\"ok\",\"graphs\":{},\"uptime_ms\":",
            self.graphs.len()
        );
        render_number(self.uptime_ms(), &mut out);
        out
    }

    /// Counters *before* this stats request itself is accounted.
    fn render_stats(&self) -> String {
        let s = &self.stats;
        let mut out = String::with_capacity(256);
        use core::fmt::Write as _;
        let _ = write!(
            out,
            "\"kind\":\"stats\",\"received\":{},\"served\":{},\"shed\":{},\"failed\":{},\
             \"isolated_panics\":{},\"occupancy\":{},\"uptime_ms\":",
            s.received,
            s.served,
            s.shed,
            s.failed,
            s.isolated_panics,
            self.gauge.occupancy()
        );
        render_number(self.uptime_ms(), &mut out);
        out.push_str(",\"latency_mean_ms\":");
        render_number(s.latency_mean_ms(), &mut out);
        out.push_str(",\"latency_p50_ms\":");
        render_number(s.latency_quantile_ms(0.5), &mut out);
        out.push_str(",\"latency_p99_ms\":");
        render_number(s.latency_quantile_ms(0.99), &mut out);
        out
    }

    fn uptime_ms(&self) -> f64 {
        if self.config.deterministic {
            self.stats.logical_ms as f64
        } else {
            self.started.elapsed().as_secs_f64() * 1e3
        }
    }
}

fn push_kind(out: &mut String, kind: &str, graph: &str) {
    use core::fmt::Write as _;
    let _ = write!(out, "\"kind\":\"{kind}\",\"graph\":\"{}\"", escape(graph));
}

fn render_summary(m: &MetricSummary, out: &mut String) {
    out.push_str("{\"mean\":");
    render_number(m.mean, out);
    out.push_str(",\"ci_lo\":");
    render_number(m.ci_lo, out);
    out.push_str(",\"ci_hi\":");
    render_number(m.ci_hi, out);
    out.push('}');
}

fn render_estimate(kind: &str, graph: &str, est: &Estimate) -> String {
    let mut out = String::with_capacity(256);
    push_kind(&mut out, kind, graph);
    out.push_str(",\"attainable_gbps\":");
    render_number(est.throughput.attainable().as_gbps(), &mut out);
    out.push_str(",\"delivered_gbps\":");
    render_number(est.delivered.as_gbps(), &mut out);
    out.push_str(",\"latency_us\":");
    render_number(est.latency.mean().as_secs() * 1e6, &mut out);
    use core::fmt::Write as _;
    let _ = write!(
        out,
        ",\"saturated\":{},\"bottleneck\":\"{}\"",
        est.throughput.is_saturated(),
        escape(&est.throughput.bottleneck().component.to_string())
    );
    if let Some(d) = &est.degraded {
        out.push_str(",\"availability\":");
        render_number(d.availability, &mut out);
        out.push_str(",\"retry_inflation\":");
        render_number(d.retry_inflation, &mut out);
        out.push_str(",\"residual_loss\":");
        render_number(d.residual_loss, &mut out);
        out.push_str(",\"goodput_gbps\":");
        render_number(d.goodput.as_gbps(), &mut out);
    }
    out
}

fn render_analysis(report: &lognic_model::analyze::AnalysisReport) -> String {
    let mut out = String::with_capacity(128);
    use core::fmt::Write as _;
    let _ = write!(
        out,
        "\"kind\":\"analyze\",\"rejected\":{}",
        report.is_rejected()
    );
    out.push_str(",\"diagnostics\":[");
    let mut first = true;
    for d in report.diagnostics() {
        if d.severity < Severity::Warn {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&d.render_json());
    }
    out.push(']');
    out
}

/// Outcome of one pass over an input stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines answered.
    pub responses: u64,
}

/// Runs the JSON-lines loop: one response line per request line,
/// flushing after every response so a piped driver can interleave.
///
/// Lines longer than [`ServeConfig::max_line_bytes`] are answered
/// with a `parse_error` and skipped without ever being buffered in
/// full; invalid UTF-8 likewise gets a typed response. Blank lines
/// are ignored. The loop only ends at end-of-input.
///
/// # Errors
///
/// Propagates I/O errors on the underlying streams; protocol-level
/// problems never abort the loop.
pub fn serve<R: BufRead, W: Write>(
    service: &mut Service,
    input: &mut R,
    output: &mut W,
) -> std::io::Result<ServeSummary> {
    let mut responses = 0u64;
    let max = service.config.max_line_bytes;
    let mut line: Vec<u8> = Vec::with_capacity(256);
    loop {
        line.clear();
        let mut oversized = false;
        // Bounded line reader: consume up to (and including) the next
        // newline, retaining at most `max` bytes.
        let saw_line = loop {
            let buf = input.fill_buf()?;
            if buf.is_empty() {
                break !line.is_empty() || oversized;
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !oversized {
                        if line.len() + pos > max {
                            oversized = true;
                        } else {
                            line.extend_from_slice(&buf[..pos]);
                        }
                    }
                    input.consume(pos + 1);
                    break true;
                }
                None => {
                    let len = buf.len();
                    if !oversized {
                        if line.len() + len > max {
                            oversized = true;
                        } else {
                            line.extend_from_slice(buf);
                        }
                    }
                    input.consume(len);
                }
            }
        };
        if !saw_line {
            break;
        }
        let response = if oversized {
            service.stats.received += 1;
            service.stats.failed += 1;
            render_error_response(
                None,
                &ServiceError::Parse {
                    reason: format!("request line exceeds {max} bytes"),
                },
            )
        } else {
            match std::str::from_utf8(&line) {
                Ok(text) if text.trim().is_empty() => continue,
                Ok(text) => service.handle_line(text),
                Err(_) => {
                    service.stats.received += 1;
                    service.stats.failed += 1;
                    render_error_response(
                        None,
                        &ServiceError::Parse {
                            reason: "request line is not valid UTF-8".into(),
                        },
                    )
                }
            }
        };
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        responses += 1;
    }
    Ok(ServeSummary { responses })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_service() -> Service {
        Service::new(ServeConfig {
            deterministic: true,
            allow_debug_panic: true,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn estimate_round_trip_is_valid_json() {
        let mut s = det_service();
        let out = s.handle_line(r#"{"id":1,"kind":"estimate","graph":"nvmeof","rate_gbps":4.0}"#);
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(out.contains("\"delivered_gbps\":"), "{out}");
        parse(&out).expect("valid JSON");
        assert_eq!(s.stats().served, 1);
    }

    #[test]
    fn unknown_graph_and_kind_are_typed() {
        let mut s = det_service();
        let out = s.handle_line(r#"{"kind":"estimate","graph":"no-such"}"#);
        assert!(out.contains("\"code\":\"unknown_graph\""), "{out}");
        let out = s.handle_line(r#"{"kind":"frobnicate"}"#);
        assert!(out.contains("\"code\":\"unknown_kind\""), "{out}");
        assert_eq!(s.stats().failed, 2);
    }

    #[test]
    fn deadline_shorter_than_predicted_cost_is_refused_at_admission() {
        let mut s = det_service();
        let out = s.handle_line(
            r#"{"kind":"simulate","graph":"nvmeof","seeds":4,"duration_ms":10,"deadline_ms":5}"#,
        );
        assert!(out.contains("\"code\":\"deadline_exceeded\""), "{out}");
        assert!(out.contains("\"predicted_ms\":40"), "{out}");
        // health with deadline 0 still passes: zero predicted cost.
        let out = s.handle_line(r#"{"kind":"health","deadline_ms":0}"#);
        assert!(out.contains("\"ok\":true"), "{out}");
    }

    #[test]
    fn sustained_load_sheds_with_retry_hints_and_recovers() {
        let mut s = Service::new(ServeConfig {
            deterministic: true,
            high_water: 8,
            drain_per_request: 1,
            ..ServeConfig::default()
        });
        let mut shed = 0;
        for i in 0..10 {
            let out = s.handle_line(
                r#"{"kind":"sweep","graph":"nvmeof","fractions":[0.2,0.4,0.6,0.8,1.0]}"#,
            );
            if out.contains("\"code\":\"overloaded\"") {
                assert!(out.contains("\"retry_after_ms\":"), "{out}");
                shed += 1;
            } else {
                assert!(out.contains("\"ok\":true"), "request {i}: {out}");
            }
        }
        assert!(
            shed > 0,
            "sustained 5-point sweeps must trip an 8-unit gauge"
        );
        assert_eq!(s.stats().shed, shed);
        // Zero-cost probes are never shed even at the mark.
        let out = s.handle_line(r#"{"kind":"health"}"#);
        assert!(out.contains("\"ok\":true"), "{out}");
    }

    #[test]
    fn panics_are_contained_and_the_loop_keeps_serving() {
        let mut s = det_service();
        let out = s.handle_line(r#"{"id":"p","kind":"debug_panic"}"#);
        assert!(out.contains("\"code\":\"internal\""), "{out}");
        assert!(out.contains("\"id\":\"p\""), "{out}");
        assert_eq!(s.stats().isolated_panics, 1);
        let out = s.handle_line(r#"{"kind":"health"}"#);
        assert!(out.contains("\"ok\":true"), "still serving: {out}");
    }

    #[test]
    fn debug_panic_is_disabled_by_default() {
        let mut s = Service::new(ServeConfig {
            deterministic: true,
            ..ServeConfig::default()
        });
        let out = s.handle_line(r#"{"kind":"debug_panic"}"#);
        assert!(out.contains("\"code\":\"invalid_request\""), "{out}");
        assert_eq!(s.stats().isolated_panics, 0);
    }

    #[test]
    fn serve_loop_answers_every_line_and_survives_garbage() {
        let mut s = det_service();
        let input = b"{\"kind\":\"health\"}\nnot json at all\n\n{\"kind\":\"stats\"}\n\xff\xfe\n";
        let mut out = Vec::new();
        let summary = serve(&mut s, &mut &input[..], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(summary.responses, 4, "blank line ignored: {text}");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains("parse_error"), "{text}");
        assert!(lines[3].contains("not valid UTF-8"), "{text}");
        for l in &lines {
            parse(l).expect("every response line is valid JSON");
        }
    }

    #[test]
    fn oversized_lines_are_refused_without_buffering() {
        let mut s = Service::new(ServeConfig {
            deterministic: true,
            max_line_bytes: 128,
            ..ServeConfig::default()
        });
        let mut input = Vec::new();
        input.extend_from_slice(&vec![b'x'; 1 << 20]);
        input.extend_from_slice(b"\n{\"kind\":\"health\"}\n");
        let mut out = Vec::new();
        let summary = serve(&mut s, &mut &input[..], &mut out).unwrap();
        assert_eq!(summary.responses, 2);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("exceeds 128 bytes"), "{text}");
        assert!(text.contains("\"status\":\"ok\""), "{text}");
    }

    #[test]
    fn deterministic_transcripts_are_byte_identical_across_runs_and_threads() {
        let requests = [
            r#"{"id":1,"kind":"estimate","graph":"nvmeof"}"#,
            r#"{"id":2,"kind":"simulate","graph":"switch-kv","seeds":3,"duration_ms":2}"#,
            r#"{"id":3,"kind":"stats"}"#,
            r#"{"id":4,"kind":"analyze","graph":"chaos"}"#,
        ];
        let run = |threads: usize| {
            let mut s = Service::new(ServeConfig {
                deterministic: true,
                threads,
                ..ServeConfig::default()
            });
            requests
                .iter()
                .map(|r| s.handle_line(r))
                .collect::<Vec<_>>()
        };
        let one = run(1);
        assert_eq!(one, run(1), "same thread count, same bytes");
        assert_eq!(one, run(4), "thread count must not leak into responses");
    }

    #[test]
    fn watchdog_abort_surfaces_as_structured_response() {
        let mut s = det_service();
        let out = s.handle_line(
            r#"{"id":"w","kind":"simulate","graph":"nvmeof","seeds":2,"duration_ms":20,"max_events":500}"#,
        );
        assert!(
            out.contains("\"code\":\"watchdog_abort\"") || out.contains("\"events\":"),
            "a 500-event budget cannot finish 20ms: {out}"
        );
        parse(&out).expect("valid JSON");
        let out = s.handle_line(r#"{"kind":"health"}"#);
        assert!(out.contains("\"ok\":true"), "still serving: {out}");
    }
}
