//! The service's typed error surface.
//!
//! Every request line gets exactly one response; when anything goes
//! wrong the response is an `ok:false` envelope carrying a
//! [`ServiceError`] rendered as a stable machine code plus a
//! human-readable message. Model/simulation failures ride along as
//! the workspace's [`LogNicError`] so a watchdog abort or a rejected
//! analysis keeps its structured details end to end.

use core::fmt;

use lognic_model::error::LogNicError;

use crate::json::{escape, render_number, Json};

/// Everything the serve loop can refuse a request with.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The line is not a well-formed JSON document.
    Parse {
        /// What the JSON parser objected to.
        reason: String,
    },
    /// The document is valid JSON but not a valid request (wrong
    /// shape, missing/unknown fields, wrong field types).
    InvalidRequest {
        /// Explanation of the violation.
        reason: String,
    },
    /// The `kind` field names no supported request kind.
    UnknownKind {
        /// The offending kind.
        kind: String,
    },
    /// The `graph` field names no registered graph.
    UnknownGraph {
        /// The dangling name.
        graph: String,
    },
    /// A numeric parameter is outside its valid domain.
    InvalidParameter {
        /// Which field was rejected.
        parameter: String,
        /// Human-readable constraint.
        reason: String,
    },
    /// A sweep asked for more points than the configured cap.
    OversizedSweep {
        /// Requested point count.
        points: usize,
        /// The configured maximum.
        limit: usize,
    },
    /// The deterministic cost model predicts the request cannot
    /// complete inside its declared deadline, so it is refused at
    /// admission instead of evaluated and discarded late.
    DeadlineExceeded {
        /// The request's deadline, in milliseconds.
        deadline_ms: f64,
        /// The cost model's predicted demand, in logical
        /// milliseconds.
        predicted_ms: f64,
    },
    /// The in-flight gauge is above its high-water mark: the request
    /// is shed, not queued.
    Overloaded {
        /// Deterministic hint: resubmit after this many milliseconds.
        retry_after_ms: u64,
        /// Logical occupancy when the request arrived.
        occupancy: u64,
        /// The configured high-water mark.
        high_water: u64,
    },
    /// The evaluation failed inside the model/simulator with a typed
    /// workspace error (analysis rejection, watchdog abort, partial
    /// replication failure, …).
    Evaluation(LogNicError),
    /// A panic escaped the evaluation and was contained by the
    /// request isolation boundary.
    Internal {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl ServiceError {
    /// The stable machine-readable code for this error.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Parse { .. } => "parse_error",
            ServiceError::InvalidRequest { .. } => "invalid_request",
            ServiceError::UnknownKind { .. } => "unknown_kind",
            ServiceError::UnknownGraph { .. } => "unknown_graph",
            ServiceError::InvalidParameter { .. } => "invalid_parameter",
            ServiceError::OversizedSweep { .. } => "oversized_sweep",
            ServiceError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::Evaluation(e) => match e {
                LogNicError::AnalysisRejected { .. } => "analysis_rejected",
                LogNicError::WatchdogAbort { .. } => "watchdog_abort",
                LogNicError::ReplicationPartial { .. } => "replication_partial",
                _ => "evaluation_error",
            },
            ServiceError::Internal { .. } => "internal",
        }
    }

    /// True when the error means "try again later" rather than "this
    /// request is wrong".
    pub fn is_shed(&self) -> bool {
        matches!(self, ServiceError::Overloaded { .. })
    }

    /// Renders the error as the `"error":{…}` JSON object body,
    /// including code-specific structured detail fields.
    pub fn render(&self, out: &mut String) {
        use core::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"message\":\"{}\"",
            self.code(),
            escape(&self.to_string())
        );
        match self {
            ServiceError::Overloaded {
                retry_after_ms,
                occupancy,
                high_water,
            } => {
                let _ = write!(
                    out,
                    ",\"retry_after_ms\":{retry_after_ms},\"occupancy\":{occupancy},\"high_water\":{high_water}"
                );
            }
            ServiceError::DeadlineExceeded {
                deadline_ms,
                predicted_ms,
            } => {
                out.push_str(",\"deadline_ms\":");
                render_number(*deadline_ms, out);
                out.push_str(",\"predicted_ms\":");
                render_number(*predicted_ms, out);
            }
            ServiceError::OversizedSweep { points, limit } => {
                let _ = write!(out, ",\"points\":{points},\"limit\":{limit}");
            }
            ServiceError::Evaluation(LogNicError::AnalysisRejected { diagnostics }) => {
                out.push_str(",\"diagnostics\":[");
                for (i, d) in diagnostics.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&d.render_json());
                }
                out.push(']');
            }
            ServiceError::Evaluation(LogNicError::WatchdogAbort {
                events,
                sim_time,
                injected,
                in_flight,
            }) => {
                let _ = write!(out, ",\"events\":{events},\"sim_time_s\":");
                render_number(*sim_time, out);
                let _ = write!(out, ",\"injected\":{injected},\"in_flight\":{in_flight}");
            }
            ServiceError::Evaluation(LogNicError::ReplicationPartial { completed, failed }) => {
                out.push_str(",\"completed_seeds\":[");
                for (i, s) in completed.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{s}");
                }
                out.push_str("],\"failed_seeds\":[");
                for (i, (seed, err)) in failed.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"seed\":{seed},\"error\":\"{}\"}}",
                        escape(&err.to_string())
                    );
                }
                out.push(']');
            }
            _ => {}
        }
        out.push('}');
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Parse { reason } => write!(f, "malformed request line: {reason}"),
            ServiceError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            ServiceError::UnknownKind { kind } => {
                write!(f, "unknown request kind `{kind}`")
            }
            ServiceError::UnknownGraph { graph } => {
                write!(
                    f,
                    "unknown graph `{graph}` (use a `health` request to count registered graphs)"
                )
            }
            ServiceError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid `{parameter}`: {reason}")
            }
            ServiceError::OversizedSweep { points, limit } => write!(
                f,
                "sweep of {points} points exceeds the {limit}-point limit"
            ),
            ServiceError::DeadlineExceeded {
                deadline_ms,
                predicted_ms,
            } => write!(
                f,
                "deadline of {deadline_ms}ms cannot be met: predicted demand {predicted_ms}ms"
            ),
            ServiceError::Overloaded { retry_after_ms, .. } => {
                write!(f, "service overloaded; retry after {retry_after_ms}ms")
            }
            ServiceError::Evaluation(e) => e.fmt(f),
            ServiceError::Internal { message } => {
                write!(f, "internal error (request isolated): {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Evaluation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LogNicError> for ServiceError {
    fn from(e: LogNicError) -> Self {
        ServiceError::Evaluation(e)
    }
}

impl From<lognic_model::error::ModelError> for ServiceError {
    fn from(e: lognic_model::error::ModelError) -> Self {
        ServiceError::Evaluation(LogNicError::Model(e))
    }
}

/// Renders a full error response envelope:
/// `{"id":…,"ok":false,"error":{…}}`.
pub fn render_error_response(id: Option<&Json>, err: &ServiceError) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        id.render(&mut out);
        out.push(',');
    }
    out.push_str("\"ok\":false,\"error\":");
    err.render(&mut out);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errs = [
            ServiceError::Parse { reason: "x".into() },
            ServiceError::InvalidRequest { reason: "x".into() },
            ServiceError::UnknownKind { kind: "x".into() },
            ServiceError::UnknownGraph { graph: "x".into() },
            ServiceError::InvalidParameter {
                parameter: "rate_gbps".into(),
                reason: "x".into(),
            },
            ServiceError::OversizedSweep {
                points: 9,
                limit: 4,
            },
            ServiceError::DeadlineExceeded {
                deadline_ms: 0.0,
                predicted_ms: 1.0,
            },
            ServiceError::Overloaded {
                retry_after_ms: 5,
                occupancy: 9,
                high_water: 8,
            },
            ServiceError::Internal {
                message: "x".into(),
            },
        ];
        let mut codes: Vec<&str> = errs.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len(), "one code per error class");
    }

    #[test]
    fn watchdog_details_survive_rendering() {
        let err = ServiceError::Evaluation(LogNicError::WatchdogAbort {
            events: 101,
            sim_time: 0.25,
            injected: 40,
            in_flight: 3,
        });
        let out = render_error_response(Some(&Json::Num(4.0)), &err);
        assert!(out.starts_with("{\"id\":4,\"ok\":false"), "{out}");
        assert!(out.contains("\"code\":\"watchdog_abort\""), "{out}");
        assert!(out.contains("\"events\":101"), "{out}");
        assert!(out.contains("\"in_flight\":3"), "{out}");
        crate::json::parse(&out).expect("error envelope is valid JSON");
    }

    #[test]
    fn shed_response_carries_the_retry_hint() {
        let err = ServiceError::Overloaded {
            retry_after_ms: 12,
            occupancy: 70,
            high_water: 64,
        };
        assert!(err.is_shed());
        let out = render_error_response(None, &err);
        assert!(out.contains("\"retry_after_ms\":12"), "{out}");
        crate::json::parse(&out).expect("valid JSON");
    }
}
