//! Chaos scenario: inline acceleration under an accelerator brownout.
//!
//! The robustness counterpart of the §4.2 case study: the same
//! LiquidIO-II bump-in-the-wire pipeline, but mid-run the accelerator
//! suffers a *brownout* — a short full outage (firmware reset)
//! followed by a window of degraded service (thermal throttling) —
//! while NIC cores retry refused packets with exponential backoff.
//! Used by the chaos-sweep experiment (EXPERIMENTS.md) to chart fault
//! duty cycle against tail latency and by CI's `chaos-smoke` job.

use crate::inline_accel;
use crate::scenario::Scenario;
use lognic_devices::liquidio::Accelerator;
use lognic_model::error::LogNicResult;
use lognic_model::fault::{FaultPlan, RetryPolicy};
use lognic_model::units::{Bandwidth, Bytes, Seconds};
use lognic_sim::metrics::SimReport;
use lognic_sim::sim::{SimConfig, Simulation};
use lognic_sim::trace::{NoopObserver, SimObserver};

/// A workload plus the fault plan scheduled against it.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// The healthy workload description.
    pub scenario: Scenario,
    /// The faults injected into the simulation (and fed to the
    /// model's availability-adjusted estimate).
    pub plan: FaultPlan,
}

impl ChaosScenario {
    /// Runs the simulator with the fault plan installed.
    ///
    /// # Errors
    ///
    /// Propagates plan-validation and watchdog errors.
    pub fn simulate(&self, config: SimConfig) -> LogNicResult<SimReport> {
        self.simulate_with(config, &mut NoopObserver)
    }

    /// Runs the simulator with the fault plan installed and a trace
    /// observer attached — the entry point `trace_dump` uses to export
    /// Perfetto-openable brownout timelines.
    ///
    /// # Errors
    ///
    /// Propagates plan-validation and watchdog errors.
    pub fn simulate_with<O: SimObserver>(
        &self,
        config: SimConfig,
        observer: &mut O,
    ) -> LogNicResult<SimReport> {
        Simulation::builder(
            &self.scenario.graph,
            &self.scenario.hardware,
            &self.scenario.traffic,
        )
        .config(config)
        .with_fault_plan(self.plan.clone())
        .run_with(observer)
    }
}

/// The accelerator-brownout chaos scenario.
///
/// The MD5 inline-acceleration pipeline offered `rate` of 1500 B
/// packets; at `at` the accelerator goes dark for `outage`, then
/// serves at 30 % rate for `brownout` while it cools. NIC cores
/// retry refused packets up to 6 times with 50 µs base backoff.
pub fn accelerator_brownout(
    rate: Bandwidth,
    at: Seconds,
    outage: Seconds,
    brownout: Seconds,
) -> ChaosScenario {
    let scenario = inline_accel::inline(Accelerator::Md5, 8, Bytes::new(1500), rate);
    let dark_until = Seconds::new(at.as_secs() + outage.as_secs());
    let dim_until = Seconds::new(dark_until.as_secs() + brownout.as_secs());
    // Zero-length phases are simply absent from the plan (an empty
    // window would be rejected as invalid).
    let mut plan = FaultPlan::new().with_retry(RetryPolicy::new(6, Seconds::micros(50.0)));
    if outage.as_secs() > 0.0 {
        plan = plan.outage("accelerator", at, dark_until);
    }
    if brownout.as_secs() > 0.0 {
        plan = plan.degrade_rate("accelerator", 0.3, dark_until, dim_until);
    }
    ChaosScenario { scenario, plan }
}

/// One point of the chaos sweep: outage duty cycle and the measured
/// p99 latency / loss under it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPoint {
    /// Fraction of the horizon the accelerator was fully dark.
    pub duty_cycle: f64,
    /// Measured 99th-percentile latency.
    pub p99: Seconds,
    /// Measured packet-loss fraction (after retries).
    pub loss_rate: f64,
    /// Retry attempts consumed.
    pub retries: u64,
}

/// Sweeps outage duty cycle against tail latency: for each fraction
/// in `duty_cycles`, schedules one outage of that share of the
/// horizon (centred after warmup) and measures the run.
///
/// # Errors
///
/// Propagates the first failing run's error.
pub fn duty_cycle_sweep(
    rate: Bandwidth,
    duty_cycles: &[f64],
    config: SimConfig,
) -> LogNicResult<Vec<ChaosPoint>> {
    let mut out = Vec::with_capacity(duty_cycles.len());
    for &duty in duty_cycles {
        let horizon = config.duration.as_secs();
        let outage = Seconds::new(horizon * duty);
        let start = Seconds::new(config.warmup.as_secs());
        let chaos = accelerator_brownout(rate, start, outage, Seconds::ZERO);
        let report = chaos.simulate(config)?;
        out.push(ChaosPoint {
            duty_cycle: duty,
            p99: report.latency.p99,
            loss_rate: report.loss_rate(),
            retries: report.retries,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            duration: Seconds::millis(20.0),
            warmup: Seconds::millis(2.0),
            ..SimConfig::default()
        }
    }

    #[test]
    fn brownout_run_is_deterministic_per_seed() {
        let chaos = accelerator_brownout(
            Bandwidth::gbps(8.0),
            Seconds::millis(4.0),
            Seconds::millis(1.0),
            Seconds::millis(2.0),
        );
        let a = chaos.simulate(cfg()).unwrap();
        let b = chaos.simulate(cfg()).unwrap();
        assert_eq!(a, b, "same seed, same bits");
        assert!(a.retries > 0, "the outage must trigger retries");
        assert_eq!(a.injected, a.completed + a.dropped, "conservation");
    }

    #[test]
    fn deeper_brownouts_hurt_more() {
        let shallow = accelerator_brownout(
            Bandwidth::gbps(8.0),
            Seconds::millis(4.0),
            Seconds::millis(0.5),
            Seconds::millis(1.0),
        )
        .simulate(cfg())
        .unwrap();
        let deep = accelerator_brownout(
            Bandwidth::gbps(8.0),
            Seconds::millis(4.0),
            Seconds::millis(4.0),
            Seconds::millis(8.0),
        )
        .simulate(cfg())
        .unwrap();
        assert!(
            deep.loss_rate() >= shallow.loss_rate(),
            "deep {} vs shallow {}",
            deep.loss_rate(),
            shallow.loss_rate()
        );
    }

    #[test]
    fn duty_cycle_sweep_is_monotone_in_loss() {
        let points = duty_cycle_sweep(Bandwidth::gbps(8.0), &[0.0, 0.2, 0.5], cfg()).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].loss_rate, 0.0, "no fault, no loss");
        assert!(
            points[2].loss_rate > points[1].loss_rate,
            "longer outages lose more: {points:?}"
        );
    }
}
