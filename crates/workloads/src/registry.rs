//! The single scenario registry: every named workload the tooling
//! exposes, in one place.
//!
//! `trace_dump --workload <name>` and the `lognic-lint` clean fixture
//! set used to hardcode their own scenario lists, which silently
//! drifted apart as workloads were added. Both now resolve through
//! this registry, so a new corpus entry automatically appears in the
//! trace exporter, the lint clean set, the README corpus table and
//! the corpus round-trip tests.
//!
//! Each entry carries a one-line provenance string (where the shape
//! comes from — paper section or protocol family) that doubles as the
//! README table's description column.

use crate::chaos::accelerator_brownout;
use crate::corpus;
use crate::microservices::{self, AllocationScheme, App};
use crate::nf_placement::{self, Placement};
use crate::scenario::Scenario;
use crate::{compression, nvmeof, panic_scenarios, switch_kv};
use lognic_devices::stingray::IoPattern;
use lognic_model::fault::FaultPlan;
use lognic_model::units::{Bandwidth, Bytes, Seconds};

/// One registered workload: a named constructor plus provenance.
#[derive(Debug, Clone, Copy)]
pub struct RegistryEntry {
    /// The stable lookup name (`trace_dump --workload <name>`).
    pub name: &'static str,
    /// One-line provenance: which paper section or protocol family
    /// the scenario reproduces.
    pub provenance: &'static str,
    build: fn() -> (Scenario, Option<FaultPlan>),
}

impl RegistryEntry {
    /// Builds the scenario and its fault plan (if the workload ships
    /// with one).
    pub fn build(&self) -> (Scenario, Option<FaultPlan>) {
        (self.build)()
    }

    /// Builds just the scenario.
    pub fn scenario(&self) -> Scenario {
        self.build().0
    }
}

fn chaos_entry() -> (Scenario, Option<FaultPlan>) {
    // The exact trace_dump default: outage + brownout inside a 12 ms
    // horizon. Changing these arguments changes the perf-smoke trace
    // artifact, so they are pinned here rather than at the call site.
    let chaos = accelerator_brownout(
        Bandwidth::gbps(8.0),
        Seconds::millis(4.0),
        Seconds::millis(2.0),
        Seconds::millis(3.0),
    );
    (chaos.scenario, Some(chaos.plan))
}

fn microservices_entry() -> (Scenario, Option<FaultPlan>) {
    (
        microservices::scenario(App::NfvFin, AllocationScheme::RoundRobin, 2.0e6),
        None,
    )
}

fn nvmeof_entry() -> (Scenario, Option<FaultPlan>) {
    (
        nvmeof::nvmeof(IoPattern::RandRead4k, Bandwidth::gbps(5.0)),
        None,
    )
}

fn switch_kv_entry() -> (Scenario, Option<FaultPlan>) {
    (switch_kv::netcache(0.8, Bandwidth::gbps(1.0)), None)
}

fn compression_entry() -> (Scenario, Option<FaultPlan>) {
    (
        compression::compress(0.5, 8, Bytes::new(4096), Bandwidth::gbps(1.0)),
        None,
    )
}

fn nf_placement_entry() -> (Scenario, Option<FaultPlan>) {
    (
        nf_placement::scenario(
            Placement::arm_only(),
            Bytes::new(1024),
            Bandwidth::gbps(1.0),
        ),
        None,
    )
}

fn panic_entry() -> (Scenario, Option<FaultPlan>) {
    (
        panic_scenarios::pipelined_chain(64, &[1500], Bandwidth::gbps(1.0)),
        None,
    )
}

fn tls_entry() -> (Scenario, Option<FaultPlan>) {
    (corpus::tls_handshake(Bandwidth::gbps(4.0)), None)
}

fn dns_kv_entry() -> (Scenario, Option<FaultPlan>) {
    (corpus::dns_kv(Bandwidth::gbps(4.0)), None)
}

fn storage_rpc_entry() -> (Scenario, Option<FaultPlan>) {
    (corpus::storage_rpc(Bandwidth::gbps(6.0)), None)
}

fn http2_mux_entry() -> (Scenario, Option<FaultPlan>) {
    (corpus::http2_mux(Bandwidth::gbps(6.0)), None)
}

/// Every registered workload, in display order: the paper's case
/// studies first, then the protocol corpus.
pub const ALL: &[RegistryEntry] = &[
    RegistryEntry {
        name: "chaos",
        provenance: "§4.2 inline-accel pipeline under an accelerator brownout with retry/backoff",
        build: chaos_entry,
    },
    RegistryEntry {
        name: "microservices",
        provenance: "§4.4 E3 NFV-FIN microservice chain, round-robin core allocation",
        build: microservices_entry,
    },
    RegistryEntry {
        name: "nvmeof",
        provenance: "§4.3 Stingray NVMe-oF target, random 4 KiB reads",
        build: nvmeof_entry,
    },
    RegistryEntry {
        name: "switch-kv",
        provenance: "§5.3 NetCache-style in-network KV cache on an RMT switch (80% hit rate)",
        build: switch_kv_entry,
    },
    RegistryEntry {
        name: "compression",
        provenance: "§4.2 LiquidIO-II inline ZIP offload, 2:1 ratio on 4 KiB blocks",
        build: compression_entry,
    },
    RegistryEntry {
        name: "nf-placement",
        provenance: "§4.5 BlueField-2 NF chain, ARM-only placement",
        build: nf_placement_entry,
    },
    RegistryEntry {
        name: "panic-chain",
        provenance: "§4.6 PANIC pipelined accelerator chain, 64 B offload units",
        build: panic_entry,
    },
    RegistryEntry {
        name: "tls-handshake",
        provenance: "protocol corpus: TLS 1.3 handshake records through inline asymmetric crypto",
        build: tls_entry,
    },
    RegistryEntry {
        name: "dns-kv",
        provenance: "protocol corpus: DNS/KV request-response (NetCache/λ-NIC small-packet shape)",
        build: dns_kv_entry,
    },
    RegistryEntry {
        name: "storage-rpc",
        provenance:
            "protocol corpus: NVMe/SMB storage RPC with 4 KiB blocks over a dedicated DMA fabric",
        build: storage_rpc_entry,
    },
    RegistryEntry {
        name: "http2-mux",
        provenance:
            "protocol corpus: HTTP/2 multiplexed streams, control/data frame mixture over fan-out",
        build: http2_mux_entry,
    },
];

/// Looks a workload up by its registry name.
pub fn find(name: &str) -> Option<&'static RegistryEntry> {
    ALL.iter().find(|e| e.name == name)
}

/// The registered names, in display order.
pub fn names() -> Vec<&'static str> {
    ALL.iter().map(|e| e.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_builds_and_names_are_unique() {
        let mut seen = Vec::new();
        for entry in ALL {
            assert!(!seen.contains(&entry.name), "duplicate {}", entry.name);
            seen.push(entry.name);
            let (scenario, _plan) = entry.build();
            assert!(
                !scenario.name.is_empty(),
                "{}: scenario has no name",
                entry.name
            );
            assert!(!entry.provenance.is_empty());
            // Every registered scenario must estimate (the lint set
            // derates via the estimator).
            entry
                .scenario()
                .estimate()
                .unwrap_or_else(|e| panic!("{}: does not estimate: {e}", entry.name));
        }
    }

    #[test]
    fn find_resolves_registered_names() {
        assert!(find("chaos").is_some());
        assert!(find("tls-handshake").is_some());
        assert!(find("http2-mux").is_some());
        assert!(find("no-such-workload").is_none());
        assert_eq!(names().len(), ALL.len());
    }

    #[test]
    fn chaos_entry_carries_the_trace_dump_default_plan() {
        let (scenario, plan) = find("chaos").expect("registered").build();
        assert!(plan.is_some(), "chaos must ship its fault plan");
        assert_eq!(scenario.traffic.ingress_bandwidth(), Bandwidth::gbps(8.0));
    }
}
