//! Future-work extension (§5.3): applying LogNIC to a programmable
//! RMT switch, on a NetCache-style in-network key-value cache.
//!
//! The switch's match-action pipeline answers hot-key reads directly
//! (a *hit*); misses continue to a backend storage server and return.
//! The execution graph fans out at the cache-lookup vertex by the hit
//! ratio: the hit path turns around inside the switch at line rate,
//! the miss path pays the backend's service time and the extra hops.
//! This is exactly the load-absorption argument of the in-network
//! caching papers, produced by the same model that handles SmartNICs.

use crate::scenario::Scenario;
use lognic_devices::rmt_switch::RmtSwitch;
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{EdgeParams, IpParams, TrafficProfile};
use lognic_model::units::{Bandwidth, Bytes, Seconds};

/// Query packet size (key + small value).
pub const QUERY_SIZE: Bytes = Bytes::new(128);

/// The backend storage server's aggregate service capacity for cache
/// misses.
pub fn backend_capacity() -> Bandwidth {
    Bandwidth::gbps(12.0)
}

/// Backend per-request service time contribution (storage lookup).
pub fn backend_service() -> Seconds {
    Seconds::micros(8.0)
}

/// Builds the in-network KV cache scenario at the given cache hit
/// ratio.
///
/// # Panics
///
/// Panics if `hit_ratio` is outside `[0, 1)`.
pub fn netcache(hit_ratio: f64, rate: Bandwidth) -> Scenario {
    assert!(
        (0.0..1.0).contains(&hit_ratio),
        "hit ratio must lie in [0, 1)"
    );
    let miss = 1.0 - hit_ratio;

    let mut b = ExecutionGraph::builder("netcache");
    let ing = b.ingress("rx");
    let pipe = b.ip("rmt-pipeline", RmtSwitch::pipe_params(QUERY_SIZE));
    // Backend capacity expressed per-request: 8 µs lookups across 16
    // service threads, capped by its NIC.
    let backend_rate = backend_capacity().min(Bandwidth::bps(
        16.0 * QUERY_SIZE.bits() as f64 / backend_service().as_secs(),
    ));
    let backend = b.ip(
        "backend-server",
        IpParams::new(backend_rate)
            .with_parallelism(16)
            .with_queue_capacity(256),
    );
    // The response pass back through the pipeline (hits turn around
    // here directly; misses recirculate through it on the way back).
    let pipe_out = b.ip("rmt-egress-pass", RmtSwitch::pipe_params(QUERY_SIZE));
    let eg = b.egress("tx");

    b.edge(ing, pipe, EdgeParams::full().with_interface_fraction(0.1));
    // Hit path: straight to the egress pass.
    b.edge(
        pipe,
        pipe_out,
        EdgeParams::new(hit_ratio)
            .expect("valid ratio")
            .with_interface_fraction(0.1 * hit_ratio),
    );
    // Miss path: out to the backend and back.
    b.edge(
        pipe,
        backend,
        EdgeParams::new(miss)
            .expect("valid ratio")
            .with_interface_fraction(0.0)
            .with_dedicated_bandwidth(Bandwidth::gbps(100.0)),
    );
    b.edge(
        backend,
        pipe_out,
        EdgeParams::new(miss)
            .expect("valid ratio")
            .with_interface_fraction(0.0)
            .with_dedicated_bandwidth(Bandwidth::gbps(100.0)),
    );
    b.edge(
        pipe_out,
        eg,
        EdgeParams::full().with_interface_fraction(0.1),
    );
    let graph = b.build().expect("netcache graph is valid by construction");

    Scenario::new(
        &format!("netcache-hit{:.0}", hit_ratio * 100.0),
        graph,
        RmtSwitch::hardware(),
        TrafficProfile::fixed(rate, QUERY_SIZE),
    )
}

/// The model's sustainable query rate at a hit ratio (per second).
pub fn capacity_qps(hit_ratio: f64) -> f64 {
    let s = netcache(hit_ratio, RmtSwitch::pipe_rate());
    let est = s.estimator().throughput().expect("valid scenario");
    let bound = match est.saturation_bound() {
        Some(b) => b.limit.min(RmtSwitch::pipe_rate()),
        None => RmtSwitch::pipe_rate(),
    };
    bound.as_bps() / QUERY_SIZE.bits() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_sim::sim::SimConfig;

    #[test]
    fn capacity_scales_inversely_with_miss_ratio() {
        // Backend binds: capacity ∝ 1/(1−h).
        let c50 = capacity_qps(0.5);
        let c90 = capacity_qps(0.9);
        assert!(
            (c90 / c50 - 5.0).abs() < 0.05,
            "90% hits should serve 5x the queries of 50%: {c90} vs {c50}"
        );
    }

    #[test]
    fn backend_binds_at_low_hit_ratio() {
        let s = netcache(0.2, Bandwidth::gbps(200.0));
        let est = s.estimator().throughput().unwrap();
        let b = est.bottleneck();
        assert!(
            format!("{}", b.component).contains("backend"),
            "bottleneck = {}",
            b.component
        );
    }

    #[test]
    fn hits_turn_around_faster_than_misses() {
        let low = netcache(0.1, Bandwidth::gbps(5.0));
        let high = netcache(0.9, Bandwidth::gbps(5.0));
        let l_low = low.estimator().latency().unwrap().mean();
        let l_high = high.estimator().latency().unwrap().mean();
        assert!(
            l_high.as_secs() < l_low.as_secs() / 2.0,
            "90% hits: {l_high}, 10% hits: {l_low}"
        );
    }

    #[test]
    fn model_tracks_simulation_at_moderate_load() {
        let hit = 0.8;
        let rate = Bandwidth::bps(0.6 * capacity_qps(hit) * QUERY_SIZE.bits() as f64);
        let s = netcache(hit, rate);
        let cfg = SimConfig {
            duration: Seconds::millis(20.0),
            warmup: Seconds::millis(4.0),
            ..SimConfig::default()
        };
        let c = s.compare(cfg).unwrap();
        assert!(
            c.throughput_error() < 0.05,
            "tput err {}",
            c.throughput_error()
        );
        assert!(c.latency_error() < 0.15, "lat err {}", c.latency_error());
    }

    #[test]
    #[should_panic(expected = "[0, 1)")]
    fn rejects_unit_hit_ratio() {
        let _ = netcache(1.0, Bandwidth::gbps(1.0));
    }
}
