//! Case study #3: E3 microservice chains on the LiquidIO-II
//! (§4.4, Figs. 11 and 12).
//!
//! E3 runs each microservice as a multi-threaded process on the
//! SmartNIC; an incoming request triggers its service chain. The
//! baseline E3 scheduler forwards requests to cores round-robin and
//! exploits only inter-request parallelism; the paper's LogNIC
//! optimizer instead assigns NIC cores to chain stages
//! (intra-request, pipeline parallelism) in proportion to each stage's
//! actual working set.
//!
//! Three allocation schemes are modeled:
//!
//! * **Round-robin** — run-to-completion of the whole chain on
//!   whichever core the round-robin counter picks, paying a locality
//!   penalty for dragging every service's state through every core.
//! * **Equal partition** — a pipeline with `16 / num_stages` cores
//!   per stage, regardless of stage weight.
//! * **LogNIC-opt** — a pipeline with the max-min optimal integer
//!   core allocation.

use crate::scenario::Scenario;
use lognic_devices::cost::CostModel;
use lognic_devices::host::HostXeon;
use lognic_devices::liquidio::LiquidIo;
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{EdgeParams, IpParams, TrafficProfile};
use lognic_model::units::{Bandwidth, Bytes, Seconds};

/// NIC cores available for allocation.
pub const TOTAL_CORES: u32 = LiquidIo::CORES;

/// Microservice request size on the wire.
pub const REQUEST_SIZE: Bytes = Bytes::new(512);

/// Locality penalty of run-to-completion execution: every core drags
/// all services' state through its cache, inflating each request by
/// this fraction relative to pipelined stage-local execution.
pub const RTC_PENALTY: f64 = 0.3;

/// The five E3 applications of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Flow monitoring.
    NfvFin,
    /// Intrusion detection.
    NfvDin,
    /// Spam filter.
    RtaSf,
    /// Server health monitoring.
    RtaShm,
    /// IoT data hub.
    IotDh,
}

impl App {
    /// All five applications.
    pub const ALL: [App; 5] = [
        App::NfvFin,
        App::NfvDin,
        App::RtaSf,
        App::RtaShm,
        App::IotDh,
    ];

    /// The paper's label.
    pub fn name(self) -> &'static str {
        match self {
            App::NfvFin => "NFV-FIN",
            App::NfvDin => "NFV-DIN",
            App::RtaSf => "RTA-SF",
            App::RtaShm => "RTA-SHM",
            App::IotDh => "IOT-DH",
        }
    }

    /// The service-chain stages: `(name, per-request cost on one
    /// core)`. Stage weights are deliberately skewed — the situation
    /// in which allocation quality matters.
    pub fn stages(self) -> Vec<(&'static str, Seconds)> {
        match self {
            App::NfvFin => vec![
                ("parse", Seconds::micros(0.9)),
                ("flow-count", Seconds::micros(1.4)),
                ("export", Seconds::micros(0.7)),
            ],
            App::NfvDin => vec![
                ("parse", Seconds::micros(1.0)),
                ("detect", Seconds::micros(1.8)),
                ("classify", Seconds::micros(1.1)),
                ("log", Seconds::micros(0.8)),
            ],
            App::RtaSf => vec![
                ("tokenize", Seconds::micros(1.1)),
                ("score", Seconds::micros(1.9)),
                ("verdict", Seconds::micros(0.9)),
            ],
            App::RtaShm => vec![
                ("collect", Seconds::micros(0.6)),
                ("aggregate", Seconds::micros(1.1)),
                ("alarm", Seconds::micros(0.5)),
            ],
            App::IotDh => vec![
                ("decode", Seconds::micros(0.8)),
                ("transform", Seconds::micros(1.5)),
                ("store", Seconds::micros(1.2)),
                ("ack", Seconds::micros(0.7)),
            ],
        }
    }

    /// Total per-request chain cost.
    pub fn chain_cost(self) -> Seconds {
        self.stages().into_iter().map(|(_, c)| c).sum()
    }
}

/// The NIC-core allocation schemes compared in Figs. 11/12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationScheme {
    /// E3's default: round-robin run-to-completion.
    RoundRobin,
    /// Equal cores per stage.
    EqualPartition,
    /// The LogNIC optimizer's max-min allocation.
    LogNicOpt,
}

impl AllocationScheme {
    /// All three schemes in figure order.
    pub const ALL: [AllocationScheme; 3] = [
        AllocationScheme::RoundRobin,
        AllocationScheme::EqualPartition,
        AllocationScheme::LogNicOpt,
    ];

    /// The figure label.
    pub fn name(self) -> &'static str {
        match self {
            AllocationScheme::RoundRobin => "Round-Robin",
            AllocationScheme::EqualPartition => "Equal-Partition",
            AllocationScheme::LogNicOpt => "LogNIC-Opt",
        }
    }
}

/// Splits `total` cores equally across `stages`, spreading the
/// remainder over the first stages. Every stage gets at least one
/// core.
///
/// # Panics
///
/// Panics if there are more stages than cores, or no stages.
pub fn equal_allocation(stages: usize, total: u32) -> Vec<u32> {
    assert!(stages > 0, "no stages");
    assert!(stages as u32 <= total, "more stages than cores");
    let base = total / stages as u32;
    let extra = (total % stages as u32) as usize;
    (0..stages).map(|i| base + u32::from(i < extra)).collect()
}

/// Max-min optimal integer allocation: start with one core per stage
/// and repeatedly grant a core to the stage with the lowest capacity
/// `D_k / c_k`. Greedy is optimal for this max-min objective because
/// capacities are concave in the allocation.
///
/// # Panics
///
/// Panics if there are more stages than cores, or no stages.
pub fn optimal_allocation(costs: &[Seconds], total: u32) -> Vec<u32> {
    assert!(!costs.is_empty(), "no stages");
    assert!(costs.len() as u32 <= total, "more stages than cores");
    let mut alloc = vec![1u32; costs.len()];
    for _ in 0..(total - costs.len() as u32) {
        let worst = (0..costs.len())
            .min_by(|&a, &b| {
                let ca = alloc[a] as f64 / costs[a].as_secs();
                let cb = alloc[b] as f64 / costs[b].as_secs();
                ca.partial_cmp(&cb).expect("finite")
            })
            .expect("non-empty");
        alloc[worst] += 1;
    }
    alloc
}

/// The request rate a pipeline sustains under an allocation:
/// `min_k (D_k / c_k)` requests per second.
pub fn pipeline_capacity(costs: &[Seconds], alloc: &[u32]) -> f64 {
    costs
        .iter()
        .zip(alloc)
        .map(|(c, d)| *d as f64 / c.as_secs())
        .fold(f64::INFINITY, f64::min)
}

/// The request rate the round-robin run-to-completion scheme
/// sustains: all cores, each paying the locality penalty.
pub fn round_robin_capacity(app: App) -> f64 {
    TOTAL_CORES as f64 / (app.chain_cost().as_secs() * (1.0 + RTC_PENALTY))
}

/// The sustainable request rate of an app under a scheme (the model's
/// saturation bound).
pub fn capacity(app: App, scheme: AllocationScheme) -> f64 {
    let costs: Vec<Seconds> = app.stages().into_iter().map(|(_, c)| c).collect();
    match scheme {
        AllocationScheme::RoundRobin => round_robin_capacity(app),
        AllocationScheme::EqualPartition => {
            pipeline_capacity(&costs, &equal_allocation(costs.len(), TOTAL_CORES))
        }
        AllocationScheme::LogNicOpt => {
            pipeline_capacity(&costs, &optimal_allocation(&costs, TOTAL_CORES))
        }
    }
}

fn stage_params(cost: Seconds, cores: u32) -> IpParams {
    let model = CostModel::per_request(cost);
    IpParams::new(model.peak(REQUEST_SIZE, cores))
        .with_parallelism(cores)
        .with_queue_capacity(64)
}

/// Builds the scenario for `app` under `scheme` at `offered_rps`
/// requests per second.
pub fn scenario(app: App, scheme: AllocationScheme, offered_rps: f64) -> Scenario {
    let traffic = TrafficProfile::fixed(
        Bandwidth::bps(offered_rps * REQUEST_SIZE.bits() as f64),
        REQUEST_SIZE,
    );
    let graph = match scheme {
        AllocationScheme::RoundRobin => round_robin_graph(app),
        AllocationScheme::EqualPartition => {
            let costs: Vec<Seconds> = app.stages().into_iter().map(|(_, c)| c).collect();
            pipeline_graph(app, &equal_allocation(costs.len(), TOTAL_CORES))
        }
        AllocationScheme::LogNicOpt => {
            let costs: Vec<Seconds> = app.stages().into_iter().map(|(_, c)| c).collect();
            pipeline_graph(app, &optimal_allocation(&costs, TOTAL_CORES))
        }
    };
    Scenario::new(
        &format!("{}-{}", app.name(), scheme.name()),
        graph,
        LiquidIo::hardware(),
        traffic,
    )
}

/// Builds a pipeline graph with `alloc[k]` cores on stage `k`.
pub fn pipeline_graph(app: App, alloc: &[u32]) -> ExecutionGraph {
    let stages = app.stages();
    assert_eq!(stages.len(), alloc.len(), "allocation length mismatch");
    let mut b = ExecutionGraph::builder(&format!("{}-pipeline", app.name()));
    let ing = b.ingress("rx");
    let mut prev = ing;
    for ((name, cost), cores) in stages.into_iter().zip(alloc) {
        let ip = b.ip(name, stage_params(cost, *cores));
        // Stage handoff moves request descriptors across cores: a
        // small share of the request crosses the interconnect.
        b.edge(prev, ip, EdgeParams::full().with_interface_fraction(0.1));
        prev = ip;
    }
    let eg = b.egress("tx");
    b.edge(prev, eg, EdgeParams::full().with_interface_fraction(0.1));
    b.build().expect("pipeline graph is valid by construction")
}

/// Which side of the PCIe bus each chain stage runs on (`true` =
/// host). The E3 orchestrator's migration question, answered by the
/// model instead of a queue-length heuristic.
pub type HostSplit = Vec<bool>;

/// Builds a NIC/host split pipeline: NIC stages get the max-min
/// optimal share of the NIC cores, host stages get host cores (3×
/// faster per core), and every NIC↔host boundary pays the PCIe
/// crossing overhead with its data moving over the PCIe link.
///
/// # Panics
///
/// Panics if `split.len()` differs from the app's stage count, or if
/// either side has more resident stages than cores.
pub fn split_graph(app: App, split: &[bool]) -> ExecutionGraph {
    let stages = app.stages();
    assert_eq!(stages.len(), split.len(), "split length mismatch");
    let nic_costs: Vec<Seconds> = stages
        .iter()
        .zip(split)
        .filter(|(_, on_host)| !**on_host)
        .map(|((_, c), _)| *c)
        .collect();
    let host_count = split.iter().filter(|h| **h).count() as u32;
    assert!(
        host_count <= HostXeon::CORES,
        "more host stages than host cores"
    );
    // NIC cores go to the NIC-resident stages (max-min optimal); host
    // stages share the host cores equally.
    let nic_alloc = if nic_costs.is_empty() {
        Vec::new()
    } else {
        optimal_allocation(&nic_costs, TOTAL_CORES)
    };
    let host_alloc_each = (HostXeon::CORES).checked_div(host_count).unwrap_or(0);

    let mut b = ExecutionGraph::builder(&format!("{}-split", app.name()));
    let ing = b.ingress("rx");
    let mut prev = ing;
    let mut prev_on_host = false;
    let mut nic_idx = 0usize;
    for ((name, cost), on_host) in stages.into_iter().zip(split) {
        let crossing = *on_host != prev_on_host;
        // The PCIe crossing cost is part of the stage's per-request
        // work (doorbell + DMA setup on the receiving side), so it
        // must reduce the stage's capacity, not just its latency.
        let params = if *on_host {
            let mut host_cost = HostXeon::host_cost(CostModel::per_request(cost));
            if crossing {
                host_cost = host_cost.plus_fixed(HostXeon::pcie_crossing_overhead());
            }
            IpParams::new(host_cost.peak(REQUEST_SIZE, host_alloc_each.max(1)))
                .with_parallelism(host_alloc_each.max(1))
                .with_queue_capacity(64)
        } else {
            let cores = nic_alloc[nic_idx];
            nic_idx += 1;
            let stage_cost = if crossing {
                Seconds::new(cost.as_secs() + HostXeon::pcie_crossing_overhead().as_secs())
            } else {
                cost
            };
            stage_params(stage_cost, cores)
        };
        let ip = b.ip(name, params);
        let edge = if *on_host != prev_on_host {
            // Crossing PCIe: the request's data moves over the bus.
            EdgeParams::full()
                .with_interface_fraction(0.0)
                .with_dedicated_bandwidth(HostXeon::pcie_bandwidth())
        } else {
            EdgeParams::full().with_interface_fraction(0.1)
        };
        b.edge(prev, ip, edge);
        prev = ip;
        prev_on_host = *on_host;
    }
    let eg = b.egress("tx");
    let back = if prev_on_host {
        EdgeParams::full()
            .with_interface_fraction(0.0)
            .with_dedicated_bandwidth(HostXeon::pcie_bandwidth())
    } else {
        EdgeParams::full().with_interface_fraction(0.1)
    };
    b.edge(prev, eg, back);
    b.build().expect("split graph is valid by construction")
}

/// The sustainable request rate of a NIC/host split (model saturation
/// bound in requests per second).
pub fn split_capacity(app: App, split: &[bool]) -> f64 {
    let g = split_graph(app, split);
    let traffic = TrafficProfile::fixed(
        Bandwidth::bps(1e6 * REQUEST_SIZE.bits() as f64),
        REQUEST_SIZE,
    );
    let est = lognic_model::throughput::estimate_throughput(&g, &LiquidIo::hardware(), &traffic)
        .expect("valid graph");
    match est.saturation_bound() {
        Some(b) => b.limit.as_bps() / REQUEST_SIZE.bits() as f64,
        None => f64::INFINITY,
    }
}

/// The best NIC/host split for an app: exhaustive over the 2^S
/// assignments (S ≤ 4), maximizing capacity; ties prefer fewer PCIe
/// crossings.
pub fn optimal_split(app: App) -> HostSplit {
    let stages = app.stages().len();
    let crossings = |split: &[bool]| -> usize {
        let mut c = 0;
        let mut prev = false;
        for h in split {
            if *h != prev {
                c += 1;
            }
            prev = *h;
        }
        c + usize::from(prev)
    };
    let mut best: Option<(HostSplit, f64, usize)> = None;
    for bits in 0..(1u32 << stages) {
        let split: HostSplit = (0..stages).map(|i| bits & (1 << i) != 0).collect();
        let cap = split_capacity(app, &split);
        let cross = crossings(&split);
        let better = match &best {
            None => true,
            Some((_, bc, bx)) => {
                cap > bc * 1.0001 || ((cap - bc).abs() <= bc * 1e-4 && cross < *bx)
            }
        };
        if better {
            best = Some((split, cap, cross));
        }
    }
    best.expect("at least one split").0
}

fn round_robin_graph(app: App) -> ExecutionGraph {
    let per_request = Seconds::new(app.chain_cost().as_secs() * (1.0 + RTC_PENALTY));
    let mut b = ExecutionGraph::builder(&format!("{}-rr", app.name()));
    let ing = b.ingress("rx");
    let eg = b.egress("tx");
    let share = 1.0 / TOTAL_CORES as f64;
    for core in 0..TOTAL_CORES {
        // E3's per-core rings are shallow; a saturated core drops
        // rather than queueing deeply.
        let ip = b.ip(
            &format!("core{core}"),
            stage_params(per_request, 1).with_queue_capacity(4),
        );
        b.edge(ing, ip, EdgeParams::new(share).expect("valid share"));
        b.edge(ip, eg, EdgeParams::new(share).expect("valid share"));
    }
    b.build()
        .expect("round-robin graph is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::units::Seconds;
    use lognic_sim::sim::SimConfig;

    #[test]
    fn allocations_sum_to_total() {
        for app in App::ALL {
            let costs: Vec<Seconds> = app.stages().into_iter().map(|(_, c)| c).collect();
            let opt = optimal_allocation(&costs, TOTAL_CORES);
            assert_eq!(opt.iter().sum::<u32>(), TOTAL_CORES);
            assert!(opt.iter().all(|&d| d >= 1));
            let eq = equal_allocation(costs.len(), TOTAL_CORES);
            assert_eq!(eq.iter().sum::<u32>(), TOTAL_CORES);
        }
    }

    #[test]
    fn optimal_beats_equal_on_skewed_chains() {
        for app in App::ALL {
            let opt = capacity(app, AllocationScheme::LogNicOpt);
            let eq = capacity(app, AllocationScheme::EqualPartition);
            assert!(opt >= eq, "{}: opt {opt} < equal {eq}", app.name());
        }
        // On the most skewed chain the gap is substantial.
        let opt = capacity(App::NfvFin, AllocationScheme::LogNicOpt);
        let eq = capacity(App::NfvFin, AllocationScheme::EqualPartition);
        assert!(opt / eq > 1.25, "opt {opt} / eq {eq}");
    }

    #[test]
    fn optimal_beats_round_robin() {
        for app in App::ALL {
            let opt = capacity(app, AllocationScheme::LogNicOpt);
            let rr = capacity(app, AllocationScheme::RoundRobin);
            assert!(opt > rr, "{}: opt {opt} <= rr {rr}", app.name());
        }
    }

    #[test]
    fn greedy_allocation_is_max_min_optimal_on_small_case() {
        // Exhaustive check for a 3-stage, 8-core instance.
        let costs = [
            Seconds::micros(0.6),
            Seconds::micros(2.2),
            Seconds::micros(0.5),
        ];
        let greedy = optimal_allocation(&costs, 8);
        let greedy_cap = pipeline_capacity(&costs, &greedy);
        let mut best = 0.0f64;
        for a in 1..=6u32 {
            for b in 1..=6u32 {
                if a + b >= 8 {
                    continue;
                }
                let c = 8 - a - b;
                best = best.max(pipeline_capacity(&costs, &[a, b, c]));
            }
        }
        assert!(
            (greedy_cap - best).abs() / best < 1e-9,
            "greedy {greedy_cap} vs best {best}"
        );
    }

    #[test]
    fn model_capacity_matches_graph_estimate() {
        // The graph-level throughput estimate divided by request size
        // equals the closed-form pipeline capacity.
        let app = App::RtaSf;
        let s = scenario(app, AllocationScheme::LogNicOpt, 10e6);
        let est = s.estimator().throughput().unwrap();
        let rps = est.attainable().as_bps() / REQUEST_SIZE.bits() as f64;
        let expect = capacity(app, AllocationScheme::LogNicOpt);
        assert!((rps - expect).abs() / expect < 1e-6, "{rps} vs {expect}");
    }

    #[test]
    fn round_robin_graph_has_sixteen_branches() {
        let s = scenario(App::NfvFin, AllocationScheme::RoundRobin, 1e6);
        assert_eq!(s.graph.paths().unwrap().len(), TOTAL_CORES as usize);
    }

    #[test]
    fn at_80_percent_load_opt_delivers_more_and_faster() {
        let app = App::NfvDin;
        let offered = 0.8 * capacity(app, AllocationScheme::LogNicOpt);
        let cfg = SimConfig {
            duration: Seconds::millis(40.0),
            warmup: Seconds::millis(8.0),
            ..SimConfig::default()
        };
        let opt = scenario(app, AllocationScheme::LogNicOpt, offered).simulate(cfg);
        let rr = scenario(app, AllocationScheme::RoundRobin, offered).simulate(cfg);
        let eq = scenario(app, AllocationScheme::EqualPartition, offered).simulate(cfg);
        assert!(
            opt.throughput.as_bps() >= rr.throughput.as_bps(),
            "opt {} vs rr {}",
            opt.throughput,
            rr.throughput
        );
        assert!(opt.throughput.as_bps() > eq.throughput.as_bps());
        assert!(opt.latency.mean < rr.latency.mean);
    }

    #[test]
    fn split_all_nic_matches_pipeline_capacity() {
        let app = App::RtaSf;
        let all_nic = vec![false; app.stages().len()];
        let cap = split_capacity(app, &all_nic);
        let expect = capacity(app, AllocationScheme::LogNicOpt);
        assert!((cap - expect).abs() / expect < 1e-6, "{cap} vs {expect}");
    }

    #[test]
    fn split_all_host_is_faster_per_core_but_pays_pcie() {
        let app = App::NfvDin;
        let all_host = vec![true; app.stages().len()];
        let g = split_graph(app, &all_host);
        // Two PCIe crossings: rx->stage1 and last->tx.
        let dedicated = g
            .edges()
            .iter()
            .filter(|e| e.params().dedicated_bandwidth().is_some())
            .count();
        assert_eq!(dedicated, 2);
        assert!(split_capacity(app, &all_host) > 0.0);
    }

    #[test]
    fn optimal_split_dominates_pure_placements() {
        for app in [App::NfvFin, App::IotDh] {
            let n = app.stages().len();
            let best = optimal_split(app);
            let best_cap = split_capacity(app, &best);
            let all_nic = split_capacity(app, &vec![false; n]);
            let all_host = split_capacity(app, &vec![true; n]);
            assert!(
                best_cap + 1.0 >= all_nic,
                "{}: {best_cap} < {all_nic}",
                app.name()
            );
            assert!(
                best_cap + 1.0 >= all_host,
                "{}: {best_cap} < {all_host}",
                app.name()
            );
        }
    }

    #[test]
    fn split_scenario_simulates_consistently() {
        use lognic_sim::sim::{SimConfig, Simulation};
        let app = App::RtaShm;
        let split = optimal_split(app);
        let g = split_graph(app, &split);
        let offered = 0.7 * split_capacity(app, &split);
        let t = TrafficProfile::fixed(
            Bandwidth::bps(offered * REQUEST_SIZE.bits() as f64),
            REQUEST_SIZE,
        );
        let cfg = SimConfig {
            duration: Seconds::millis(30.0),
            warmup: Seconds::millis(6.0),
            ..SimConfig::default()
        };
        let r = Simulation::builder(&g, &LiquidIo::hardware(), &t)
            .config(cfg)
            .run()
            .expect("valid scenario");
        let rps = r.throughput.as_bps() / REQUEST_SIZE.bits() as f64;
        assert!(
            (rps - offered).abs() / offered < 0.06,
            "sim {rps} vs offered {offered}"
        );
    }

    #[test]
    #[should_panic(expected = "more stages than cores")]
    fn allocation_rejects_too_many_stages() {
        let costs = vec![Seconds::micros(1.0); 20];
        let _ = optimal_allocation(&costs, 16);
    }
}
