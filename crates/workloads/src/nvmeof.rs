//! Case study #2: the NVMe-oF target on the Broadcom Stingray
//! (§4.3, Figs. 6 and 7).
//!
//! The execution graph is Fig. 2c of the paper: RDMA packets arrive at
//! the Ethernet ingress, a NIC-core stage (IP1) runs the
//! NVMe-over-RDMA target protocol and fabricates NVMe commands, the
//! SSD (IP2) executes the I/O, and a second NIC-core stage (IP3)
//! builds the response. Edges 2/3 traverse both the SoC interconnect
//! and DRAM.
//!
//! The SSD is opaque: the model's parameters for it come from the
//! paper's curve-fitting technique ([`characterize_ssd`] +
//! [`lognic_devices::stingray::fit_service`]), while the simulator
//! runs the stateful [`lognic_devices::stingray::SsdService`]
//! (optionally with garbage collection for the Fig. 7 mismatch).

use crate::scenario::Scenario;
use lognic_devices::stingray::{IoPattern, SsdProfile, Stingray};
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{EdgeParams, IpParams, PacketSizeDist, TrafficProfile};
use lognic_model::units::{Bandwidth, Seconds};
use lognic_sim::metrics::SimReport;
use lognic_sim::service::ServiceDist;
use lognic_sim::sim::{SimConfig, Simulation};

/// Cores assigned to each of the submission (IP1) and completion
/// (IP3) paths.
const CORES_PER_PATH: u32 = 4;

/// The traffic profile realizing `pattern` at `rate` (I/O bytes per
/// second on the wire).
pub fn traffic_for(pattern: IoPattern, rate: Bandwidth) -> TrafficProfile {
    let g = pattern.granularity();
    match pattern {
        IoPattern::MixedRand4k { read_ratio } => {
            let dist = if read_ratio <= 0.0 {
                // All writes: a single class, which must be class 1.
                PacketSizeDist::mix([(g, 1e-9), (g, 1.0)]).expect("valid weights")
            } else if read_ratio >= 1.0 {
                PacketSizeDist::fixed(g)
            } else {
                PacketSizeDist::mix([(g, read_ratio), (g, 1.0 - read_ratio)])
                    .expect("valid weights")
            };
            TrafficProfile::new(rate, dist).with_granularity(g)
        }
        IoPattern::SeqWrite4k => {
            // Class 1 = write.
            let dist = PacketSizeDist::mix([(g, 1e-9), (g, 1.0)]).expect("valid weights");
            TrafficProfile::new(rate, dist).with_granularity(g)
        }
        _ => TrafficProfile::fixed(rate, g),
    }
}

/// Builds the full NVMe-oF target scenario with the SSD's model
/// parameters taken from `ssd` (either the ground-truth profile or a
/// curve fit).
pub fn nvmeof_with_ssd_params(pattern: IoPattern, rate: Bandwidth, ssd: IpParams) -> Scenario {
    let g = pattern.granularity();
    let cost = Stingray::nvmeof_core_cost();
    let mut b = ExecutionGraph::builder("nvmeof-target");
    let ing = b.ingress("eth-ingress");
    let ip1 = b.ip(
        "nic-core-submit",
        IpParams::new(cost.peak(g, CORES_PER_PATH))
            .with_parallelism(CORES_PER_PATH)
            .with_queue_capacity(256),
    );
    let ssd_node = b.ip("ssd", ssd);
    let ip3 = b.ip(
        "nic-core-complete",
        IpParams::new(cost.peak(g, CORES_PER_PATH))
            .with_parallelism(CORES_PER_PATH)
            .with_queue_capacity(256),
    );
    let eg = b.egress("eth-egress");
    b.edge(ing, ip1, EdgeParams::full());
    b.edge(ip1, ssd_node, EdgeParams::full().with_memory_fraction(1.0));
    b.edge(ssd_node, ip3, EdgeParams::full().with_memory_fraction(1.0));
    b.edge(ip3, eg, EdgeParams::full());
    let graph = b.build().expect("nvmeof graph is valid by construction");

    Scenario::new(
        &format!("nvmeof-{pattern:?}-{rate}"),
        graph,
        Stingray::hardware(),
        traffic_for(pattern, rate),
    )
}

/// Builds the NVMe-oF target scenario with the ground-truth SSD
/// profile as the model's parameters.
pub fn nvmeof(pattern: IoPattern, rate: Bandwidth) -> Scenario {
    nvmeof_with_ssd_params(pattern, rate, SsdProfile::for_pattern(pattern).ip_params())
}

/// Simulates `scenario` with the stateful SSD device model attached
/// to its `ssd` vertex. `gc` enables garbage collection (Fig. 7).
pub fn simulate_with_ssd(
    scenario: &Scenario,
    pattern: IoPattern,
    gc: bool,
    config: SimConfig,
) -> SimReport {
    let profile = SsdProfile::for_pattern(pattern);
    Simulation::builder(&scenario.graph, &scenario.hardware, &scenario.traffic)
        .config(config)
        .override_service(
            "ssd",
            Box::new(profile.service_model(ServiceDist::Exponential, gc)),
        )
        .run()
        .expect("nvmeof scenarios are valid by construction")
}

/// The offered wire rate corresponding to `iops` I/Os of the pattern's
/// granularity per second.
pub fn rate_for_iops(pattern: IoPattern, iops: f64) -> Bandwidth {
    Bandwidth::bps(iops * pattern.granularity().bits() as f64)
}

/// The paper's characterization step: drive the raw SSD (a minimal
/// ingress → ssd → egress graph, no core stages) at each utilization
/// fraction of its nominal capacity and record `(IOPS, mean latency)`
/// observations for curve fitting.
pub fn characterize_ssd(pattern: IoPattern, fractions: &[f64], seed: u64) -> Vec<(f64, Seconds)> {
    let profile = SsdProfile::for_pattern(pattern);
    let mut out = Vec::with_capacity(fractions.len());
    for (i, frac) in fractions.iter().enumerate() {
        let iops = profile.peak_iops() * frac;
        let rate = rate_for_iops(pattern, iops);
        let mut b = ExecutionGraph::builder("ssd-raw");
        let ing = b.ingress("in");
        let ssd = b.ip("ssd", profile.ip_params());
        let eg = b.egress("out");
        b.edge(ing, ssd, EdgeParams::full().with_interface_fraction(0.0));
        b.edge(ssd, eg, EdgeParams::full().with_interface_fraction(0.0));
        let graph = b.build().expect("valid");
        let report =
            Simulation::builder(&graph, &Stingray::hardware(), &traffic_for(pattern, rate))
                .seed(seed + i as u64)
                .duration(Seconds::millis(400.0))
                .warmup(Seconds::millis(80.0))
                .override_service(
                    "ssd",
                    Box::new(profile.service_model(ServiceDist::Exponential, false)),
                )
                .run()
                .expect("ssd characterization graphs are valid by construction");
        let delivered_iops = report.throughput.as_bps() / pattern.granularity().bits() as f64;
        out.push((delivered_iops, report.latency.mean));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_devices::stingray::fit_service;

    fn cfg() -> SimConfig {
        SimConfig {
            duration: Seconds::millis(300.0),
            warmup: Seconds::millis(60.0),
            ..SimConfig::default()
        }
    }

    #[test]
    fn graph_matches_fig2c_shape() {
        let s = nvmeof(IoPattern::RandRead4k, Bandwidth::gbps(5.0));
        assert_eq!(s.graph.nodes().len(), 5);
        assert_eq!(s.graph.edges().len(), 4);
        let paths = s.graph.paths().unwrap();
        assert_eq!(paths.len(), 1);
        assert!(s.graph.node_by_name("ssd").is_some());
    }

    #[test]
    fn ssd_binds_throughput() {
        let s = nvmeof(IoPattern::RandRead4k, Bandwidth::gbps(80.0));
        let est = s.estimator().throughput().unwrap();
        // 640 K IOPS × 4 KiB × 8 ≈ 21 Gb/s.
        assert!(
            (est.attainable().as_gbps() - 20.97).abs() < 0.1,
            "{}",
            est.attainable()
        );
    }

    #[test]
    fn latency_dominated_by_ssd_at_low_load() {
        let s = nvmeof(
            IoPattern::RandRead4k,
            rate_for_iops(IoPattern::RandRead4k, 64_000.0),
        );
        let est = s.estimator().latency().unwrap();
        // ~100 µs SSD + ~6.6 µs cores + transfers.
        assert!(est.mean().as_micros() > 100.0);
        assert!(est.mean().as_micros() < 125.0, "{}", est.mean());
    }

    #[test]
    fn model_latency_tracks_sim_for_rand_read() {
        // The Fig. 6 headline: < a few percent latency error at
        // moderate load.
        let pattern = IoPattern::RandRead4k;
        for frac in [0.3, 0.6, 0.8] {
            let rate = rate_for_iops(pattern, SsdProfile::for_pattern(pattern).peak_iops() * frac);
            let s = nvmeof(pattern, rate);
            let model = s.estimator().latency().unwrap().mean();
            let sim = simulate_with_ssd(&s, pattern, false, cfg());
            let err =
                (model.as_secs() - sim.latency.mean.as_secs()).abs() / sim.latency.mean.as_secs();
            assert!(
                err < 0.08,
                "frac={frac}: model {model} vs sim {} (err {err})",
                sim.latency.mean
            );
        }
    }

    #[test]
    fn write_pattern_routes_to_class_one() {
        let t = traffic_for(IoPattern::SeqWrite4k, Bandwidth::gbps(1.0));
        // Essentially all probability mass on the write class.
        let entries = t.sizes().entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[1].1 > 0.999);
    }

    #[test]
    fn mixed_pattern_splits_classes_by_ratio() {
        let t = traffic_for(
            IoPattern::MixedRand4k { read_ratio: 0.7 },
            Bandwidth::gbps(1.0),
        );
        let entries = t.sizes().entries();
        assert_eq!(entries.len(), 2);
        assert!((entries[0].1 - 0.7).abs() < 1e-9);
        assert!((entries[1].1 - 0.3).abs() < 1e-9);
    }

    #[test]
    fn gc_makes_write_heavy_sim_beat_the_model() {
        // Fig. 7: the analytical model (GC always at its steady cost)
        // underpredicts the characterized bandwidth.
        let pattern = IoPattern::MixedRand4k { read_ratio: 0.3 };
        let rate = rate_for_iops(pattern, 500_000.0); // overdrive
        let s = nvmeof(pattern, rate);
        let model = s.estimate().unwrap().delivered;
        let sim = simulate_with_ssd(&s, pattern, true, cfg());
        assert!(
            sim.throughput.as_bps() > model.as_bps(),
            "sim {} must exceed model {}",
            sim.throughput,
            model
        );
    }

    #[test]
    fn characterize_and_fit_recovers_ssd_capacity() {
        let pattern = IoPattern::RandRead4k;
        let obs = characterize_ssd(pattern, &[0.3, 0.6, 0.8, 0.9, 0.96], 7);
        assert_eq!(obs.len(), 5);
        let fit = fit_service(&obs, 256);
        let profile = SsdProfile::for_pattern(pattern);
        let fit_iops = fit.parallelism as f64 / fit.service.as_secs();
        let err = (fit_iops - profile.peak_iops()).abs() / profile.peak_iops();
        assert!(
            err < 0.25,
            "fit {fit_iops} vs truth {} ({err})",
            profile.peak_iops()
        );
    }

    #[test]
    fn rate_for_iops_round_trips() {
        let r = rate_for_iops(IoPattern::RandRead4k, 100_000.0);
        assert!((r.as_bps() - 100_000.0 * 4096.0 * 8.0).abs() < 1.0);
    }
}
