//! Deliberately broken scenarios: the analyzer's regression corpus.
//!
//! Each [`BrokenCase`] is a misconfiguration users actually write — a
//! traffic split that loses flow, a partition that saturates before
//! the run starts, consolidated tenants that can deadlock — paired
//! with the diagnostic codes the analyzer must raise for it. The
//! `lognic-lint` CLI ships them as its `broken` fixture set, and the
//! golden-rendering tests pin their human and JSON output.

use lognic_model::analyze::{AnalysisConfig, AnalysisReport, Analyzer, Code};
use lognic_model::fault::FaultPlan;
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{EdgeParams, HardwareModel, IpParams, TrafficProfile};
use lognic_model::units::{Bandwidth, Bytes, Seconds};

use crate::scenario::Scenario;

/// One curated misconfiguration and the codes it must trip.
#[derive(Debug, Clone)]
pub struct BrokenCase {
    /// The scenario, named after its defect.
    pub scenario: Scenario,
    /// A fault plan accompanying the scenario, when the defect lives
    /// in the chaos schedule.
    pub plan: Option<FaultPlan>,
    /// The diagnostic codes the analyzer must report for this case.
    pub expect: &'static [Code],
}

impl BrokenCase {
    /// Runs the analyzer over the case under `config`.
    pub fn analyze(&self, config: &AnalysisConfig) -> AnalysisReport {
        let mut analyzer = Analyzer::new(&self.scenario.graph)
            .with_hardware(&self.scenario.hardware)
            .with_traffic(&self.scenario.traffic);
        if let Some(plan) = &self.plan {
            analyzer = analyzer.with_fault_plan(plan);
        }
        analyzer.run(config)
    }
}

fn hw() -> HardwareModel {
    HardwareModel::new(Bandwidth::gbps(400.0), Bandwidth::gbps(300.0))
}

fn traffic(gbps: f64) -> TrafficProfile {
    TrafficProfile::fixed(Bandwidth::gbps(gbps), Bytes::new(1500))
}

/// Conservation violations: a parser that amplifies traffic out of
/// thin air, a starved scrubber behind a zero-δ edge, and an edge
/// charging the interface for data that never flows.
pub fn leaky_pipeline() -> BrokenCase {
    let mut b = ExecutionGraph::builder("leaky-pipeline");
    let ing = b.ingress("in");
    let parser = b.ip("parser", IpParams::new(Bandwidth::gbps(100.0)));
    let scrubber = b.ip("scrubber", IpParams::new(Bandwidth::gbps(100.0)));
    let eg = b.egress("out");
    b.edge(ing, parser, EdgeParams::new(0.4).unwrap());
    b.edge(parser, eg, EdgeParams::new(1.0).unwrap());
    b.edge(ing, scrubber, EdgeParams::new(0.0).unwrap());
    b.edge(
        scrubber,
        eg,
        EdgeParams::new(0.0).unwrap().with_interface_fraction(0.3),
    );
    BrokenCase {
        scenario: Scenario::new("leaky-pipeline", b.build().unwrap(), hw(), traffic(10.0)),
        plan: None,
        expect: &[
            Code::TrafficCreated,
            Code::StarvedNode,
            Code::MediumOnEmptyEdge,
        ],
    }
}

/// A 4 KB-random-read NVMe-oF target offered twice what its SSD
/// partition can absorb: ρ ≥ 1 on the compute bound before any
/// simulation is run.
pub fn saturated_nvmeof() -> BrokenCase {
    use lognic_devices::stingray::IoPattern;
    let mut scenario = crate::nvmeof::nvmeof(IoPattern::RandRead4k, Bandwidth::gbps(1.0));
    let est = scenario.estimate().expect("nvmeof scenario estimates");
    let sat = est
        .throughput
        .saturation_bound()
        .expect("nvmeof has a capacity bound")
        .limit;
    scenario.traffic = scenario.traffic.at_rate(sat * 2.0);
    scenario.name = "saturated-nvmeof".to_owned();
    BrokenCase {
        scenario,
        plan: None,
        expect: &[Code::SaturatedPartition],
    }
}

/// Two consolidated tenants traversing shared crypto and compression
/// engines in opposite orders: a credit cycle that can deadlock under
/// back-pressure, on engines whose queues cannot even feed all their
/// lanes.
pub fn deadlocked_tenants() -> BrokenCase {
    let engine = |peak: f64| {
        IpParams::new(Bandwidth::gbps(peak))
            .with_partition(0.5)
            .with_parallelism(16)
            .with_queue_capacity(8)
    };
    let mut b = ExecutionGraph::builder("deadlocked-tenants");
    let ing = b.ingress("in");
    let c1 = b.ip("crypto", engine(80.0));
    let z1 = b.ip("zip", engine(60.0));
    let z2 = b.ip("zip", engine(60.0));
    let c2 = b.ip("crypto", engine(80.0));
    let eg = b.egress("out");
    b.edge(ing, c1, EdgeParams::new(0.5).unwrap());
    b.edge(c1, z1, EdgeParams::new(0.5).unwrap());
    b.edge(z1, eg, EdgeParams::new(0.5).unwrap());
    b.edge(ing, z2, EdgeParams::new(0.5).unwrap());
    b.edge(z2, c2, EdgeParams::new(0.5).unwrap());
    b.edge(c2, eg, EdgeParams::new(0.5).unwrap());
    BrokenCase {
        scenario: Scenario::new(
            "deadlocked-tenants",
            b.build().unwrap(),
            hw(),
            traffic(20.0),
        ),
        plan: None,
        expect: &[Code::CreditCycle, Code::QueueBelowParallelism],
    }
}

/// A profile whose quantities are dimensionally degenerate: a
/// zero-bandwidth memory, a zero offered rate, and an edge whose data
/// teleports (δ > 0 with no medium).
pub fn degenerate_units() -> BrokenCase {
    let mut b = ExecutionGraph::builder("degenerate-units");
    let ing = b.ingress("in");
    let core = b.ip("core", IpParams::new(Bandwidth::gbps(50.0)));
    let eg = b.egress("out");
    b.edge(ing, core, EdgeParams::full());
    b.edge(core, eg, EdgeParams::full().with_interface_fraction(0.0));
    BrokenCase {
        scenario: Scenario::new(
            "degenerate-units",
            b.build().unwrap(),
            HardwareModel::new(Bandwidth::gbps(400.0), Bandwidth::ZERO),
            TrafficProfile::fixed(Bandwidth::ZERO, Bytes::new(1500)),
        ),
        plan: None,
        expect: &[
            Code::DegenerateMedium,
            Code::ZeroIngressRate,
            Code::EdgeWithoutMedium,
        ],
    }
}

/// Three tenants packed onto one physical core complex: their γ
/// partitions sum to 1.5 and their joint demand exceeds the engine's
/// peak even though each fits alone.
pub fn oversubscribed_consolidation() -> BrokenCase {
    let core = |gamma: f64| {
        IpParams::new(Bandwidth::gbps(30.0))
            .with_partition(gamma)
            .with_queue_capacity(64)
    };
    let mut b = ExecutionGraph::builder("oversubscribed-consolidation");
    let ing = b.ingress("in");
    let t1 = b.ip("arm-cores", core(0.5));
    let t2 = b.ip("arm-cores", core(0.5));
    let t3 = b.ip("arm-cores", core(0.5));
    let eg = b.egress("out");
    for t in [t1, t2, t3] {
        b.edge(ing, t, EdgeParams::new(1.0 / 3.0).unwrap());
        b.edge(t, eg, EdgeParams::new(1.0 / 3.0).unwrap());
    }
    BrokenCase {
        scenario: Scenario::new(
            "oversubscribed-consolidation",
            b.build().unwrap(),
            hw(),
            traffic(100.0),
        ),
        plan: None,
        expect: &[Code::OversubscribedPartition, Code::ConsolidationOverload],
    }
}

/// A chaos schedule misaligned with the data path: one window targets
/// a node that does not exist, another a node traffic never reaches,
/// two overlap, and the retry budget is zero for a loss-inducing drop.
pub fn dead_chaos() -> BrokenCase {
    use lognic_model::fault::RetryPolicy;
    let mut b = ExecutionGraph::builder("dead-chaos");
    let ing = b.ingress("in");
    let live = b.ip("datapath", IpParams::new(Bandwidth::gbps(50.0)));
    let idle = b.ip("standby", IpParams::new(Bandwidth::gbps(50.0)));
    let eg = b.egress("out");
    b.edge(ing, live, EdgeParams::full());
    b.edge(live, eg, EdgeParams::full());
    b.edge(ing, idle, EdgeParams::new(0.0).unwrap());
    b.edge(idle, eg, EdgeParams::new(0.0).unwrap());
    let plan = FaultPlan::new()
        .outage("standby", Seconds::ZERO, Seconds::millis(5.0))
        .outage("ghost", Seconds::ZERO, Seconds::millis(1.0))
        .drop_packets("datapath", 0.2, Seconds::millis(1.0), Seconds::millis(4.0))
        .drop_packets("datapath", 0.2, Seconds::millis(3.0), Seconds::millis(6.0))
        .with_retry(RetryPolicy::new(0, Seconds::micros(10.0)));
    BrokenCase {
        scenario: Scenario::new("dead-chaos", b.build().unwrap(), hw(), traffic(10.0)),
        plan: Some(plan),
        expect: &[
            Code::DeadFaultWindow,
            Code::FaultUnknownNode,
            Code::FaultOverlappingWindows,
            Code::FaultZeroRetryBudget,
        ],
    }
}

/// Every curated broken case, in rendering order.
pub fn all_broken() -> Vec<BrokenCase> {
    vec![
        leaky_pipeline(),
        saturated_nvmeof(),
        deadlocked_tenants(),
        degenerate_units(),
        oversubscribed_consolidation(),
        dead_chaos(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_case_trips_exactly_its_expected_codes() {
        for case in all_broken() {
            let report = case.analyze(&AnalysisConfig::default());
            let got: BTreeSet<&str> = report
                .diagnostics()
                .iter()
                .map(|d| d.code.as_str())
                .collect();
            for code in case.expect {
                assert!(
                    got.contains(code.as_str()),
                    "case `{}` missing {} — reported {:?}",
                    case.scenario.name,
                    code.as_str(),
                    got
                );
            }
        }
    }

    #[test]
    fn corpus_covers_all_six_pass_families() {
        let mut families = BTreeSet::new();
        for case in all_broken() {
            let report = case.analyze(&AnalysisConfig::default());
            for d in report.diagnostics() {
                families.insert(&d.code.as_str()[..3]);
            }
        }
        for family in ["L01", "L02", "L03", "L04", "L05", "L06"] {
            assert!(families.contains(family), "missing family {family}");
        }
    }

    #[test]
    fn every_case_is_rejected_under_deny_warnings() {
        let strict = AnalysisConfig::default().deny_warnings(true);
        for case in all_broken() {
            assert!(
                case.analyze(&strict).is_rejected(),
                "case `{}` not rejected under --deny warnings",
                case.scenario.name
            );
        }
    }
}
