//! Case study #1: bump-in-the-wire inline acceleration on the
//! LiquidIO-II (§4.2, Figs. 5, 9, 10).
//!
//! The program extends a UDP echo server: NIC cores pull packets from
//! the RX port, perform L3/L4 processing, trigger an accelerator, and
//! fabricate the response after the completion signal. On-chip crypto
//! units move data over the CMI (the shared interface of the hardware
//! model); the off-chip HFA/ZIP engines use the 40 Gb/s I/O
//! interconnect (a dedicated link in the graph).

use crate::scenario::Scenario;
use lognic_devices::liquidio::{Accelerator, LiquidIo};
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{EdgeParams, IpParams, TrafficProfile};
use lognic_model::units::{Bandwidth, Bytes};

/// The engines of the Fig. 5 granularity sweep.
pub const FIG5_ACCELS: [Accelerator; 4] = [
    Accelerator::Crc,
    Accelerator::Des3,
    Accelerator::Md5,
    Accelerator::Hfa,
];

/// The engines of the Fig. 9 parallelism sweep.
pub const FIG9_ACCELS: [Accelerator; 3] = [Accelerator::Md5, Accelerator::Kasumi, Accelerator::Hfa];

/// The engines of the Fig. 10 packet-size sweep.
pub const FIG10_ACCELS: [Accelerator; 6] = [
    Accelerator::Crc,
    Accelerator::Aes,
    Accelerator::Md5,
    Accelerator::Sha1,
    Accelerator::Sms4,
    Accelerator::Hfa,
];

/// The packet sizes of the Fig. 10 sweep.
pub const PACKET_SIZES: [u64; 6] = [64, 128, 256, 512, 1024, 1500];

/// The data-access granularities of the Fig. 5 sweep.
pub const GRANULARITIES: [u64; 6] = [512, 1024, 2048, 4096, 8192, 16384];

/// Internal pipelining of an accelerator engine (concurrent buffers).
const ACCEL_PIPELINE: u32 = 4;

/// Builds the inline-acceleration scenario: `cores` NIC cores feeding
/// `accel` with `size`-byte packets offered at `rate`.
///
/// # Panics
///
/// Panics if `cores` is 0 or exceeds the card's core count.
pub fn inline(accel: Accelerator, cores: u32, size: Bytes, rate: Bandwidth) -> Scenario {
    assert!(
        (1..=LiquidIo::CORES).contains(&cores),
        "invalid core count {cores}"
    );
    let spec = LiquidIo::accelerator(accel);
    let core_params = IpParams::new(LiquidIo::core_path_cost(accel).peak(size, cores))
        .with_parallelism(cores)
        .with_queue_capacity(256);
    let accel_params = IpParams::new(spec.compute_rate(size))
        .with_parallelism(ACCEL_PIPELINE)
        .with_queue_capacity(64);

    let mut b = ExecutionGraph::builder(&format!("inline-{}", spec.kind.name()));
    let ing = b.ingress("rx-port");
    let nic = b.ip("nic-cores", core_params);
    let acc = b.ip("accelerator", accel_params);
    let eg = b.egress("tx-port");
    // RX DMA to cores: modeled by the arrival pacing, no shared medium.
    b.edge(ing, nic, EdgeParams::full().with_interface_fraction(0.0));
    // Core → accelerator data movement: a point-to-point DMA channel
    // over the engine's fabric (CMI for on-chip crypto, the I/O
    // interconnect for the off-chip engines).
    let to_accel = EdgeParams::full()
        .with_interface_fraction(0.0)
        .with_dedicated_bandwidth(spec.fabric.bandwidth());
    b.edge(nic, acc, to_accel);
    // Completion signal / digest back and TX: negligible data volume.
    b.edge(acc, eg, EdgeParams::full().with_interface_fraction(0.05));
    let graph = b.build().expect("inline graph is valid by construction");

    Scenario::new(
        &format!("inline-{}-{}cores-{}", spec.kind.name(), cores, size),
        graph,
        LiquidIo::hardware(),
        TrafficProfile::fixed(rate.min(LiquidIo::line_rate()), size),
    )
}

/// Builds the Fig. 5 scenario: the accelerator running at full tilt
/// with per-operation data-access granularity `granularity`. Each
/// simulated request carries one access-granularity buffer; all 16
/// NIC cores submit, so the engine (or its fabric) is the binding
/// component.
pub fn granularity(accel: Accelerator, granularity: Bytes) -> Scenario {
    let spec = LiquidIo::accelerator(accel);
    // Offered load: enough to saturate the engine at every granularity.
    let offered = Bandwidth::gbps(60.0);
    let mut s = inline_unclamped(accel, LiquidIo::CORES, granularity, offered);
    s.name = format!("granularity-{}-{}", spec.kind.name(), granularity);
    s
}

/// Like [`inline`], but without clamping the offered rate to the
/// Ethernet line rate: Fig. 5 exercises the DMA path between DRAM and
/// the engine, which is not subject to the 25 GbE port.
fn inline_unclamped(accel: Accelerator, cores: u32, size: Bytes, rate: Bandwidth) -> Scenario {
    let mut s = inline(accel, cores, size, LiquidIo::line_rate());
    s.traffic = TrafficProfile::fixed(rate, size);
    s
}

/// The Fig. 5 expected operation rate from the extended roofline
/// (compute peak capped by the fabric ceiling).
pub fn roofline_ops(accel: Accelerator, g: Bytes) -> f64 {
    LiquidIo::accelerator(accel)
        .roofline()
        .attainable_ops(g)
        .as_per_sec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::throughput::Component;
    use lognic_model::units::Seconds;
    use lognic_sim::sim::SimConfig;

    fn mtu() -> Bytes {
        Bytes::new(1500)
    }

    #[test]
    fn few_cores_bind_on_the_core_stage() {
        let s = inline(Accelerator::Md5, 2, mtu(), LiquidIo::line_rate());
        let est = s.estimator().throughput().unwrap();
        assert!(matches!(
            est.bottleneck().component,
            Component::Node(_, ref n) if n == "nic-cores"
        ));
        // 2 cores at 4.7 µs → 0.426 Mpps → 5.1 Gb/s.
        assert!((est.attainable().as_gbps() - 5.106).abs() < 0.05);
    }

    #[test]
    fn many_cores_shift_bottleneck_to_accelerator() {
        let s = inline(Accelerator::Md5, 12, mtu(), LiquidIo::line_rate());
        let est = s.estimator().throughput().unwrap();
        assert!(matches!(
            est.bottleneck().component,
            Component::Node(_, ref n) if n == "accelerator"
        ));
        // MD5 plateau: 1.8 MOPS × 1500 B = 21.6 Gb/s.
        assert!((est.attainable().as_gbps() - 21.6).abs() < 0.05);
    }

    #[test]
    fn fig9_model_saturation_matches_device_anchor() {
        for accel in FIG9_ACCELS {
            let expect = LiquidIo::cores_to_saturate(accel, mtu());
            let plateau = {
                let s = inline(accel, LiquidIo::CORES, mtu(), LiquidIo::line_rate());
                s.estimator().throughput().unwrap().attainable()
            };
            // Smallest core count whose attainable reaches the plateau.
            let mut found = None;
            for cores in 1..=LiquidIo::CORES {
                let s = inline(accel, cores, mtu(), LiquidIo::line_rate());
                let att = s.estimator().throughput().unwrap().attainable();
                if (att.as_bps() - plateau.as_bps()).abs() / plateau.as_bps() < 1e-9 {
                    found = Some(cores);
                    break;
                }
            }
            assert_eq!(found, Some(expect), "{}", accel.name());
        }
    }

    #[test]
    fn fig10_achieved_bandwidth_follows_min_formula() {
        // Attainable ≈ min(P_IP2 × pktsize, line rate) once cores
        // are plentiful.
        for accel in FIG10_ACCELS {
            for size in PACKET_SIZES {
                let size = Bytes::new(size);
                let s = inline(accel, LiquidIo::CORES, size, LiquidIo::line_rate());
                let att = s.estimator().throughput().unwrap().attainable();
                let spec = LiquidIo::accelerator(accel);
                let expect = spec.compute_rate(size).min(LiquidIo::line_rate());
                let err = (att.as_bps() - expect.as_bps()).abs() / expect.as_bps();
                assert!(
                    err < 0.02,
                    "{} at {}: {} vs {}",
                    accel.name(),
                    size,
                    att,
                    expect
                );
            }
        }
    }

    #[test]
    fn fig5_granularity_scenario_tracks_roofline() {
        for accel in FIG5_ACCELS {
            for g in GRANULARITIES {
                let g = Bytes::new(g);
                let s = granularity(accel, g);
                let att = s.estimator().throughput().unwrap().attainable();
                let ops = att.as_bps() / g.bits() as f64;
                let expect = roofline_ops(accel, g);
                let err = (ops - expect).abs() / expect;
                assert!(
                    err < 0.06,
                    "{} at {}: model {ops} vs roofline {expect}",
                    accel.name(),
                    g
                );
            }
        }
    }

    #[test]
    fn sim_matches_model_for_md5_parallelism_sweep() {
        // The Fig. 9 headline: model-vs-measured < a few percent.
        for cores in [2, 6, 12] {
            let s = inline(Accelerator::Md5, cores, mtu(), LiquidIo::line_rate());
            let cfg = SimConfig {
                duration: Seconds::millis(30.0),
                warmup: Seconds::millis(6.0),
                ..SimConfig::default()
            };
            let est = s.estimator().throughput().unwrap().attainable();
            let sim = s.simulate(cfg);
            let err = (est.as_bps() - sim.throughput.as_bps()).abs() / sim.throughput.as_bps();
            assert!(
                err < 0.08,
                "cores={cores}: model {est} vs sim {}",
                sim.throughput
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid core count")]
    fn rejects_zero_cores() {
        let _ = inline(Accelerator::Crc, 0, Bytes::new(64), LiquidIo::line_rate());
    }
}
