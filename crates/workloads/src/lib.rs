//! # lognic-workloads
//!
//! The five case-study workloads of the LogNIC paper, each expressed
//! as a [`scenario::Scenario`] (execution graph + hardware model +
//! traffic profile) that drives both the analytical model and the
//! discrete-event simulator:
//!
//! * [`inline_accel`] — bump-in-the-wire acceleration on the
//!   LiquidIO-II (§4.2, Figs. 5/9/10);
//! * [`nvmeof`] — the NVMe-oF target on the Stingray (§4.3,
//!   Figs. 6/7);
//! * [`microservices`] — E3 microservice chains and core-allocation
//!   schemes (§4.4, Figs. 11/12);
//! * [`nf_placement`] — the BlueField-2 network-function chain and
//!   placement strategies (§4.5, Figs. 13/14);
//! * [`panic_scenarios`] — PANIC hardware design exploration (§4.6,
//!   Figs. 15–19);
//! * [`switch_kv`] — the §5.3 future-work extension: a programmable
//!   RMT switch running a NetCache-style in-network KV cache;
//! * [`chaos`] — the robustness counterpart: the inline-acceleration
//!   pipeline under an accelerator brownout with retry/backoff
//!   recovery, driving the chaos-sweep experiment;
//! * [`corpus`] — the protocol workload corpus (TLS handshake, DNS/KV,
//!   storage RPC, HTTP/2 multiplexing) plus the seeded random-scenario
//!   generator and differential oracle ([`corpus::gen`]);
//! * [`registry`] — the single scenario registry every CLI fixture
//!   set (trace_dump, lognic-lint) resolves through.

#![warn(missing_docs)]

pub mod broken;
pub mod chaos;
pub mod compression;
pub mod corpus;
pub mod inline_accel;
pub mod microservices;
pub mod nf_placement;
pub mod nvmeof;
pub mod panic_scenarios;
pub mod registry;
pub mod scenario;
pub mod switch_kv;

pub use scenario::{Comparison, Scenario};

/// The workspace-wide blessed surface (model + simulator preludes)
/// plus this crate's scenario entry points.
pub mod prelude {
    pub use lognic_sim::prelude::*;

    pub use crate::chaos::{accelerator_brownout, duty_cycle_sweep, ChaosPoint, ChaosScenario};
    pub use crate::corpus::gen::{differential_check, fuzz_config, ScenarioSpec};
    pub use crate::registry::{self, RegistryEntry};
    pub use crate::scenario::{Comparison, Scenario};
}
