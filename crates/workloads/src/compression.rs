//! Inline (de)compression on the LiquidIO-II ZIP engine — the
//! remaining §4.2 accelerator, which needs *size-changing* edges: the
//! data leaving the compressor is smaller than the data entering it,
//! so every downstream stage (and the TX wire) sees the reduced
//! volume.

use crate::scenario::Scenario;
use lognic_devices::liquidio::{Accelerator, Fabric, LiquidIo};
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{EdgeParams, IpParams, TrafficProfile};
use lognic_model::units::{Bandwidth, Bytes};

/// Builds the inline-compression scenario: NIC cores feed the ZIP
/// engine; compressed output (at `ratio` ≤ 1 of the input size)
/// continues to the TX port.
///
/// # Panics
///
/// Panics if `ratio` is not in `(0, 1]` or `cores` is invalid.
pub fn compress(ratio: f64, cores: u32, size: Bytes, rate: Bandwidth) -> Scenario {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "compression ratio must lie in (0, 1]"
    );
    assert!(
        (1..=LiquidIo::CORES).contains(&cores),
        "invalid core count {cores}"
    );
    let spec = LiquidIo::accelerator(Accelerator::Zip);
    let core_params = IpParams::new(LiquidIo::core_path_cost(Accelerator::Zip).peak(size, cores))
        .with_parallelism(cores)
        .with_queue_capacity(256);
    let zip_params = IpParams::new(spec.compute_rate(size))
        .with_parallelism(4)
        .with_queue_capacity(64);

    let mut b = ExecutionGraph::builder("inline-zip");
    let ing = b.ingress("rx-port");
    let nic = b.ip("nic-cores", core_params);
    let zip = b.ip("zip-engine", zip_params);
    let eg = b.egress("tx-port");
    b.edge(ing, nic, EdgeParams::full().with_interface_fraction(0.0));
    b.edge(
        nic,
        zip,
        EdgeParams::full()
            .with_interface_fraction(0.0)
            .with_dedicated_bandwidth(Fabric::Io.bandwidth()),
    );
    // The compressed output leaves the engine: δ shrinks to the ratio
    // (aggregate volume) and the per-request size shrinks with it.
    b.edge(
        zip,
        eg,
        EdgeParams::new(ratio)
            .expect("ratio within (0, 1]")
            .with_interface_fraction(0.1 * ratio)
            .with_size_factor(ratio),
    );
    let graph = b
        .build()
        .expect("compression graph is valid by construction");

    Scenario::new(
        &format!("inline-zip-{ratio:.2}-{size}"),
        graph,
        LiquidIo::hardware(),
        TrafficProfile::fixed(rate.min(LiquidIo::line_rate()), size),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::units::Seconds;
    use lognic_sim::sim::SimConfig;

    fn cfg() -> SimConfig {
        SimConfig {
            duration: Seconds::millis(30.0),
            warmup: Seconds::millis(6.0),
            ..SimConfig::default()
        }
    }

    #[test]
    fn egress_rate_is_compressed() {
        // 2.5:1 compression at 8 Gb/s ingress → ~3.2 Gb/s egress.
        let s = compress(0.4, 12, Bytes::kib(4), Bandwidth::gbps(8.0));
        let r = s.simulate(cfg());
        assert!(r.loss_rate() < 0.01, "loss {}", r.loss_rate());
        let out = r.throughput.as_gbps();
        assert!((out - 3.2).abs() / 3.2 < 0.05, "egress {out} Gb/s");
    }

    #[test]
    fn model_matches_simulated_compressed_output() {
        let s = compress(0.4, 12, Bytes::kib(4), Bandwidth::gbps(8.0));
        // Model attainable is an ingress rate; the delivered *egress*
        // volume is ratio × ingress. Compare latency instead, which
        // includes the resized downstream transfer.
        let model = s.estimator().latency().unwrap().mean();
        let sim = s.simulate(cfg()).latency.mean;
        let err = (model.as_secs() - sim.as_secs()).abs() / sim.as_secs();
        assert!(err < 0.10, "model {model} sim {sim} err {err}");
    }

    #[test]
    fn stronger_compression_lowers_downstream_latency() {
        let strong = compress(0.2, 12, Bytes::kib(4), Bandwidth::gbps(6.0));
        let weak = compress(0.9, 12, Bytes::kib(4), Bandwidth::gbps(6.0));
        let l_strong = strong.estimator().latency().unwrap().mean();
        let l_weak = weak.estimator().latency().unwrap().mean();
        assert!(
            l_strong < l_weak,
            "smaller output crosses the egress path faster: {l_strong} vs {l_weak}"
        );
    }

    #[test]
    fn zip_engine_binds_throughput_at_high_rate() {
        let s = compress(0.4, 16, Bytes::kib(4), Bandwidth::gbps(25.0));
        let est = s.estimator().throughput().unwrap();
        // ZIP: 0.9 MOPS × 4 KiB = 29.5 Gb/s — line rate binds first;
        // with fewer cores, the core stage binds.
        let few = compress(0.4, 2, Bytes::kib(4), Bandwidth::gbps(25.0));
        let few_est = few.estimator().throughput().unwrap();
        assert!(few_est.attainable() < est.attainable());
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn rejects_bad_ratio() {
        let _ = compress(0.0, 4, Bytes::kib(4), Bandwidth::gbps(1.0));
    }
}
