//! Case study #5: hardware design-space exploration on PANIC
//! (§4.6, Figs. 15–19).
//!
//! Three scenarios on the PANIC prototype:
//!
//! 1. **Credit sizing** (Fig. 15, "Pipelined Chain" / Model 1): a
//!    compute unit's credit count is its in-flight window; delivered
//!    bandwidth saturates once the window covers the unit's
//!    rate × credit-return-delay product. LogNIC finds the minimal
//!    credit count that preserves throughput.
//! 2. **Traffic steering** (Figs. 16/17, "Parallelized Chain" /
//!    Model 2): traffic splits 20 % / X % / (80−X) % across three
//!    accelerators with capacity ratio 4:7:3; LogNIC steers in
//!    proportion to capacity.
//! 3. **Parallelism sizing** (Figs. 18/19, "Hybrid Chain" / Model 3):
//!    three execution paths share IP4; LogNIC suggests its minimal
//!    adequate parallel degree for each traffic split.

use crate::scenario::Scenario;
use lognic_devices::panic::Panic;
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{EdgeParams, IpParams, PacketSizeDist, TrafficProfile};
use lognic_model::units::{Bandwidth, Bytes, Seconds};

/// The four mixed traffic profiles of Fig. 15 (equal bandwidth split
/// across flow sizes).
pub const CREDIT_PROFILES: [&[u64]; 4] = [
    &[64, 512],
    &[64, 512, 1024],
    &[64, 256, 512, 1500],
    &[64, 128, 256, 1024, 1500],
];

/// Per-engine rate of the credited compute units (Model 1).
pub fn unit_rate() -> Bandwidth {
    Bandwidth::gbps(89.6)
}

/// The credit-return delay of the PANIC scheduler loop.
pub fn credit_return_delay() -> Seconds {
    Seconds::nanos(50.0)
}

/// Builds a traffic profile that splits `rate` equally **by bytes**
/// across the given flow sizes (the paper's profile construction).
///
/// # Panics
///
/// Panics if `sizes` is empty.
pub fn equal_bandwidth_profile(sizes: &[u64], rate: Bandwidth) -> TrafficProfile {
    let dist = PacketSizeDist::mix(sizes.iter().map(|&s| (Bytes::new(s), 1.0 / s as f64)))
        .expect("non-empty size list");
    TrafficProfile::new(rate, dist)
}

/// A credited compute unit as an execution-graph vertex: `credits`
/// concurrent slots, each occupied for the credit-return delay, with
/// the unit's actual processing rate enforced by the dedicated link
/// feeding it. The scheduler holds (rather than drops) packets waiting
/// for a credit, with buffering proportional to the credit provision —
/// which is why the paper observes *lower latency* at the minimal
/// credit count.
fn credited_unit(credits: u32, mean_size: Bytes) -> IpParams {
    let slot_rate = Bandwidth::bps(mean_size.bits() as f64 / credit_return_delay().as_secs());
    IpParams::new(slot_rate * credits as f64)
        .with_parallelism(credits)
        .with_queue_capacity(credits * 8)
}

/// Scenario 1 (Fig. 15): the Model-1 pipelined chain
/// `RMT → scheduler → CU1 → CU2` with `credits` per compute unit,
/// under traffic profile `sizes` at `rate`.
pub fn pipelined_chain(credits: u32, sizes: &[u64], rate: Bandwidth) -> Scenario {
    let traffic = equal_bandwidth_profile(sizes, rate);
    let mean = traffic.sizes().mean_size();
    let mut b = ExecutionGraph::builder("panic-model1");
    let ing = b.ingress("rx");
    let rmt = b.ip("rmt", Panic::rmt_params(mean));
    let sched = b.ip("scheduler", Panic::scheduler_params(mean));
    let cu1 = b.ip("cu1", credited_unit(credits, mean));
    let cu2 = b.ip("cu2", credited_unit(credits, mean));
    let eg = b.egress("tx");
    b.edge(ing, rmt, EdgeParams::full().with_interface_fraction(0.2));
    b.edge(rmt, sched, EdgeParams::full().with_interface_fraction(0.2));
    b.edge(
        sched,
        cu1,
        EdgeParams::full()
            .with_interface_fraction(0.0)
            .with_dedicated_bandwidth(unit_rate()),
    );
    b.edge(
        cu1,
        cu2,
        EdgeParams::full()
            .with_interface_fraction(0.0)
            .with_dedicated_bandwidth(unit_rate()),
    );
    b.edge(cu2, eg, EdgeParams::full().with_interface_fraction(0.2));
    let graph = b.build().expect("model-1 graph is valid by construction");
    Scenario::new(
        &format!("panic-credits-{credits}"),
        graph,
        Panic::hardware(),
        traffic,
    )
}

/// The smallest credit count whose model-attainable throughput matches
/// the 8-credit (default) provision within 0.5 % — the LogNIC
/// suggestion of scenario #1.
pub fn min_credits_to_saturate(sizes: &[u64], rate: Bandwidth) -> u32 {
    let reference = pipelined_chain(Panic::DEFAULT_CREDITS, sizes, rate)
        .estimator()
        .throughput()
        .expect("valid scenario")
        .attainable();
    for credits in 1..Panic::DEFAULT_CREDITS {
        let att = pipelined_chain(credits, sizes, rate)
            .estimator()
            .throughput()
            .expect("valid scenario")
            .attainable();
        if att.as_bps() >= reference.as_bps() * 0.995 {
            return credits;
        }
    }
    Panic::DEFAULT_CREDITS
}

/// Scenario 2 (Figs. 16/17): the Model-2 parallelized chain. Traffic
/// splits 20 % to A1, `split_a2` to A2 and the rest of 80 % to A3
/// (capacities 4 : 7 : 3).
///
/// # Panics
///
/// Panics if `split_a2` is outside `[0, 0.8]`.
pub fn steering(split_a2: f64, size: Bytes, rate: Bandwidth) -> Scenario {
    assert!(
        (0.0..=0.8).contains(&split_a2),
        "A2 share must lie in [0, 0.8]"
    );
    let split_a3 = 0.8 - split_a2;
    let [a1p, a2p, a3p] = Panic::steering_units(Panic::DEFAULT_CREDITS);
    let mut b = ExecutionGraph::builder("panic-model2");
    let ing = b.ingress("rx");
    let rmt = b.ip("rmt", Panic::rmt_params(size));
    let sched = b.ip("scheduler", Panic::scheduler_params(size));
    let a1 = b.ip("a1", a1p.with_queue_capacity(64));
    let a2 = b.ip("a2", a2p.with_queue_capacity(64));
    let a3 = b.ip("a3", a3p.with_queue_capacity(64));
    let eg = b.egress("tx");
    b.edge(ing, rmt, EdgeParams::full().with_interface_fraction(0.2));
    b.edge(rmt, sched, EdgeParams::full().with_interface_fraction(0.2));
    b.edge(
        sched,
        a1,
        EdgeParams::new(0.2)
            .expect("valid")
            .with_interface_fraction(0.2),
    );
    b.edge(
        sched,
        a2,
        EdgeParams::new(split_a2)
            .expect("valid")
            .with_interface_fraction(split_a2),
    );
    b.edge(
        sched,
        a3,
        EdgeParams::new(split_a3)
            .expect("valid")
            .with_interface_fraction(split_a3),
    );
    b.edge(
        a1,
        eg,
        EdgeParams::new(0.2)
            .expect("valid")
            .with_interface_fraction(0.2),
    );
    b.edge(
        a2,
        eg,
        EdgeParams::new(split_a2)
            .expect("valid")
            .with_interface_fraction(split_a2),
    );
    b.edge(
        a3,
        eg,
        EdgeParams::new(split_a3)
            .expect("valid")
            .with_interface_fraction(split_a3),
    );
    let graph = b.build().expect("model-2 graph is valid by construction");
    Scenario::new(
        &format!("panic-steering-{split_a2:.2}-{size}"),
        graph,
        Panic::hardware(),
        TrafficProfile::fixed(rate, size),
    )
}

/// The static A2 shares compared against LogNIC in Figs. 16/17
/// (the paper's 10/70, 30/50, 50/30, 70/10 partitions of the 80 %).
pub const STATIC_SPLITS: [f64; 4] = [0.1, 0.3, 0.5, 0.7];

/// The LogNIC-suggested A2 share: proportional to the A2 : A3
/// capacity ratio, `0.8 × 52.5 / (52.5 + 22.5) = 0.56`.
pub fn lognic_steering_split() -> f64 {
    let [_, a2, a3] = Panic::steering_units(Panic::DEFAULT_CREDITS);
    0.8 * a2.peak().as_bps() / (a2.peak().as_bps() + a3.peak().as_bps())
}

/// Per-engine rate of IP4 in the hybrid chain.
pub fn ip4_engine_rate() -> Bandwidth {
    Bandwidth::gbps(11.0)
}

/// The two traffic splits of Figs. 18/19: the fraction of IP1's
/// output going to IP3 (the rest goes to IP4).
pub const HYBRID_SPLITS: [f64; 2] = [0.5, 0.8];

/// Scenario 3 (Figs. 18/19): the Model-3 hybrid chain with execution
/// paths IP1→IP3, IP1→IP4 and IP2→IP4. 60 % of ingress traffic enters
/// IP1, 40 % enters IP2; `ip3_share` of IP1's output goes to IP3.
pub fn hybrid(ip4_degree: u32, ip3_share: f64, size: Bytes, rate: Bandwidth) -> Scenario {
    assert!((0.0..=1.0).contains(&ip3_share), "share must lie in [0, 1]");
    assert!(ip4_degree >= 1, "IP4 needs at least one engine");
    let d1 = 0.6 * ip3_share; // ingress fraction on IP1→IP3
    let d2 = 0.6 * (1.0 - ip3_share); // ingress fraction on IP1→IP4
    let mut b = ExecutionGraph::builder("panic-model3");
    let ing = b.ingress("rx");
    let rmt = b.ip("rmt", Panic::rmt_params(size));
    let sched = b.ip("scheduler", Panic::scheduler_params(size));
    let ip1 = b.ip(
        "ip1",
        IpParams::new(Bandwidth::gbps(60.0))
            .with_parallelism(4)
            .with_queue_capacity(64),
    );
    let ip2 = b.ip(
        "ip2",
        IpParams::new(Bandwidth::gbps(40.0))
            .with_parallelism(4)
            .with_queue_capacity(64),
    );
    let ip3 = b.ip(
        "ip3",
        IpParams::new(Bandwidth::gbps(40.0))
            .with_parallelism(4)
            .with_queue_capacity(64),
    );
    let ip4 = b.ip(
        "ip4",
        IpParams::new(ip4_engine_rate() * ip4_degree as f64)
            .with_parallelism(ip4_degree)
            .with_queue_capacity(64),
    );
    let eg = b.egress("tx");
    let e = |d: f64| {
        EdgeParams::new(d)
            .expect("valid")
            .with_interface_fraction(d * 0.2)
    };
    b.edge(ing, rmt, e(1.0));
    b.edge(rmt, sched, e(1.0));
    b.edge(sched, ip1, e(0.6));
    b.edge(sched, ip2, e(0.4));
    b.edge(ip1, ip3, e(d1));
    b.edge(ip1, ip4, e(d2));
    b.edge(ip2, ip4, e(0.4));
    b.edge(ip3, eg, e(d1));
    b.edge(ip4, eg, e(d2 + 0.4));
    let graph = b.build().expect("model-3 graph is valid by construction");
    Scenario::new(
        &format!("panic-hybrid-d{ip4_degree}-{ip3_share:.1}"),
        graph,
        Panic::hardware(),
        TrafficProfile::fixed(rate, size),
    )
}

/// The smallest IP4 degree whose model throughput matches degree 8
/// within 0.5 % — the LogNIC suggestion of scenario #3.
pub fn min_ip4_degree(ip3_share: f64, size: Bytes, rate: Bandwidth) -> u32 {
    let reference = hybrid(8, ip3_share, size, rate)
        .estimator()
        .throughput()
        .expect("valid scenario")
        .attainable();
    for degree in 1..8 {
        let att = hybrid(degree, ip3_share, size, rate)
            .estimator()
            .throughput()
            .expect("valid scenario")
            .attainable();
        if att.as_bps() >= reference.as_bps() * 0.995 {
            return degree;
        }
    }
    8
}

#[cfg(test)]
mod tests {
    use super::*;

    const OFFERED: f64 = 80.0;
    /// The credit scan drives the chain at the full line rate so the
    /// compute units' 89.6 Gb/s feed link (not the offered load) is
    /// the saturation reference.
    const CREDIT_OFFERED: f64 = 100.0;

    #[test]
    fn equal_bandwidth_profile_mean_sizes() {
        // Profile 1 (64/512 equal bytes): mean packet ≈ 113.8 B.
        let t = equal_bandwidth_profile(CREDIT_PROFILES[0], Bandwidth::gbps(10.0));
        assert!((t.sizes().mean_size().as_f64() - 114.0).abs() <= 1.0);
    }

    #[test]
    fn paper_fig15_credit_suggestions() {
        let rate = Bandwidth::gbps(CREDIT_OFFERED);
        let got: Vec<u32> = CREDIT_PROFILES
            .iter()
            .map(|sizes| min_credits_to_saturate(sizes, rate))
            .collect();
        assert_eq!(got, vec![5, 4, 4, 4], "LogNIC credit suggestions");
    }

    #[test]
    fn fewer_credits_reduce_model_throughput() {
        let rate = Bandwidth::gbps(CREDIT_OFFERED);
        let att = |c: u32| {
            pipelined_chain(c, CREDIT_PROFILES[0], rate)
                .estimator()
                .throughput()
                .unwrap()
                .attainable()
                .as_bps()
        };
        assert!(att(1) < att(3));
        assert!(att(3) < att(5));
        assert!(
            (att(5) - att(8)).abs() / att(8) < 0.005,
            "saturated by 5 credits"
        );
    }

    #[test]
    fn steering_lognic_split_is_proportional() {
        assert!((lognic_steering_split() - 0.56).abs() < 1e-9);
    }

    #[test]
    fn steering_lognic_beats_static_splits_in_model_throughput() {
        let rate = Bandwidth::gbps(OFFERED);
        let size = Bytes::new(512);
        let tput = |x: f64| {
            steering(x, size, rate)
                .estimator()
                .throughput()
                .unwrap()
                .attainable()
                .as_bps()
        };
        let ours = tput(lognic_steering_split());
        for x in STATIC_SPLITS {
            assert!(ours >= tput(x), "x={x}");
        }
        // The extreme splits are far worse.
        assert!(ours / tput(0.1) > 1.5);
    }

    #[test]
    fn steering_bottleneck_shifts_with_split() {
        let rate = Bandwidth::gbps(OFFERED);
        let size = Bytes::new(512);
        // A3 binds when starved of share going to A2... i.e. when A3
        // receives 0.7 of traffic at x = 0.1.
        let est = steering(0.1, size, rate).estimator().throughput().unwrap();
        let b = est.bottleneck();
        assert!(format!("{}", b.component).contains("a3"), "{}", b.component);
    }

    #[test]
    #[should_panic(expected = "[0, 0.8]")]
    fn steering_rejects_bad_split() {
        let _ = steering(0.9, Bytes::new(64), Bandwidth::gbps(10.0));
    }

    #[test]
    fn paper_fig18_19_degree_suggestions() {
        let rate = Bandwidth::gbps(OFFERED);
        let size = Bytes::new(1024);
        // Traffic profile 1 (50/50 split of IP1's output): degree 6.
        assert_eq!(min_ip4_degree(0.5, size, rate), 6);
        // Traffic profile 2 (80/20): degree 4.
        assert_eq!(min_ip4_degree(0.8, size, rate), 4);
    }

    #[test]
    fn hybrid_has_three_paths() {
        let s = hybrid(4, 0.5, Bytes::new(1024), Bandwidth::gbps(10.0));
        assert_eq!(s.graph.paths().unwrap().len(), 3);
        let total: f64 = s.graph.paths().unwrap().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_throughput_grows_then_saturates_with_degree() {
        let rate = Bandwidth::gbps(OFFERED);
        let size = Bytes::new(1024);
        let att = |d: u32| {
            hybrid(d, 0.5, size, rate)
                .estimator()
                .throughput()
                .unwrap()
                .attainable()
                .as_bps()
        };
        assert!(att(2) > att(1));
        assert!(att(6) > att(4));
        assert!((att(7) - att(6)).abs() / att(6) < 0.005);
    }
}
