//! A scenario bundles the three model inputs so that one description
//! drives both the analytical estimate and the simulation, and pairs
//! the two results for validation.

use lognic_model::error::{LogNicResult, Result};
use lognic_model::estimate::{Estimate, Estimator};
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{HardwareModel, TrafficProfile};
use lognic_model::units::{Bandwidth, Seconds};
use lognic_sim::metrics::SimReport;
use lognic_sim::sim::{SimConfig, Simulation};

/// One evaluable workload configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// The program's execution graph.
    pub graph: ExecutionGraph,
    /// The device's hardware model.
    pub hardware: HardwareModel,
    /// The offered traffic.
    pub traffic: TrafficProfile,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(
        name: &str,
        graph: ExecutionGraph,
        hardware: HardwareModel,
        traffic: TrafficProfile,
    ) -> Self {
        Scenario {
            name: name.to_owned(),
            graph,
            hardware,
            traffic,
        }
    }

    /// Returns a copy at a different offered rate.
    pub fn at_rate(&self, rate: Bandwidth) -> Scenario {
        let mut s = self.clone();
        s.traffic = s.traffic.at_rate(rate);
        s
    }

    /// The analytical estimator over this scenario.
    pub fn estimator(&self) -> Estimator<'_> {
        Estimator::new(&self.graph, &self.hardware, &self.traffic)
    }

    /// Runs the analytical model.
    ///
    /// # Errors
    ///
    /// Propagates model-evaluation errors.
    pub fn estimate(&self) -> Result<Estimate> {
        self.estimator().estimate()
    }

    /// Runs the simulator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the scenario description is invalid; scenarios built
    /// by this crate's constructors always are valid. Use
    /// [`Scenario::try_simulate`] to handle the error instead.
    pub fn simulate(&self, config: SimConfig) -> SimReport {
        self.try_simulate(config)
            .expect("workload scenarios are valid by construction")
    }

    /// Runs the simulator with the given configuration, propagating
    /// configuration errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`lognic_model::error::LogNicError`]
    /// when the scenario or configuration is rejected, or when the
    /// run trips the event watchdog.
    pub fn try_simulate(&self, config: SimConfig) -> LogNicResult<SimReport> {
        Simulation::builder(&self.graph, &self.hardware, &self.traffic)
            .config(config)
            .run()
    }

    /// Runs both the model and the simulator and pairs the results.
    ///
    /// # Errors
    ///
    /// Propagates model-evaluation errors.
    pub fn compare(&self, config: SimConfig) -> Result<Comparison> {
        let est = self.estimate()?;
        let sim = self.simulate(config);
        Ok(Comparison {
            model_throughput: est.delivered,
            model_latency: est.latency.mean(),
            sim_throughput: sim.throughput,
            sim_latency: sim.latency.mean,
        })
    }
}

/// Model-vs-simulation result pair for one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// The model's delivered-throughput estimate.
    pub model_throughput: Bandwidth,
    /// The model's mean-latency estimate.
    pub model_latency: Seconds,
    /// The simulator's measured throughput.
    pub sim_throughput: Bandwidth,
    /// The simulator's measured mean latency.
    pub sim_latency: Seconds,
}

impl Comparison {
    /// Relative throughput error of the model against the simulation.
    pub fn throughput_error(&self) -> f64 {
        relative_error(self.model_throughput.as_bps(), self.sim_throughput.as_bps())
    }

    /// Relative latency error of the model against the simulation.
    pub fn latency_error(&self) -> f64 {
        relative_error(self.model_latency.as_secs(), self.sim_latency.as_secs())
    }
}

/// `|predicted − measured| / measured`, with a zero measurement
/// treated as zero error only when the prediction is also zero.
pub fn relative_error(predicted: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (predicted - measured).abs() / measured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::params::IpParams;
    use lognic_model::units::Bytes;

    fn scenario() -> Scenario {
        let g = ExecutionGraph::chain(
            "t",
            &[(
                "ip",
                IpParams::new(Bandwidth::gbps(10.0)).with_queue_capacity(64),
            )],
        )
        .unwrap();
        Scenario::new(
            "test",
            g,
            HardwareModel::default(),
            TrafficProfile::fixed(Bandwidth::gbps(5.0), Bytes::new(1500)),
        )
    }

    #[test]
    fn compare_model_and_sim_agree_at_half_load() {
        let s = scenario();
        let cfg = SimConfig {
            duration: Seconds::millis(20.0),
            warmup: Seconds::millis(4.0),
            ..SimConfig::default()
        };
        let c = s.compare(cfg).unwrap();
        assert!(
            c.throughput_error() < 0.05,
            "tput err = {}",
            c.throughput_error()
        );
        assert!(c.latency_error() < 0.10, "lat err = {}", c.latency_error());
    }

    #[test]
    fn at_rate_changes_only_the_rate() {
        let s = scenario();
        let s2 = s.at_rate(Bandwidth::gbps(1.0));
        assert_eq!(s2.traffic.ingress_bandwidth(), Bandwidth::gbps(1.0));
        assert_eq!(s2.name, s.name);
        assert_eq!(s2.graph, s.graph);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
    }
}
