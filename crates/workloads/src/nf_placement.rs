//! Case study #4: network-function placement on the BlueField-2
//! (§4.5, Figs. 13 and 14).
//!
//! The middlebox chain FW → LB → DPI → NAT → PE runs on the DPU. Each
//! NF (except DPI) can execute either on the ARM cores or on a
//! hardware module; offloading trades a per-packet submission
//! overhead and extra crossbar hops for the module's much lower
//! per-byte cost. The best placement therefore depends on the packet
//! size — which is exactly what the LogNIC optimizer exploits.

use crate::scenario::Scenario;
use lognic_devices::bluefield::{BlueField2, NetworkFunction};
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{EdgeParams, IpParams, TrafficProfile};
use lognic_model::units::{Bandwidth, Bytes, Seconds};

/// Which NFs run on an accelerator module (`true`) vs the ARM cores.
/// Index order follows [`NetworkFunction::CHAIN`]; DPI (index 2) can
/// never be offloaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement(pub [bool; 5]);

impl Placement {
    /// Everything on the ARM cores.
    pub fn arm_only() -> Placement {
        Placement([false; 5])
    }

    /// Every NF with a module offloaded ("Accelerator-only").
    pub fn accel_only() -> Placement {
        Placement([true, true, false, true, true])
    }

    /// Every valid placement (DPI stays on ARM): 16 combinations.
    pub fn all() -> Vec<Placement> {
        let mut out = Vec::with_capacity(16);
        for bits in 0..16u32 {
            let mut p = [false; 5];
            // Map 4 bits onto the offloadable NFs (skip DPI).
            let offloadable = [0usize, 1, 3, 4];
            for (bit, &idx) in offloadable.iter().enumerate() {
                p[idx] = bits & (1 << bit) != 0;
            }
            out.push(Placement(p));
        }
        out
    }

    /// True when `nf` is offloaded under this placement.
    pub fn offloads(&self, nf: NetworkFunction) -> bool {
        let idx = NetworkFunction::CHAIN
            .iter()
            .position(|n| *n == nf)
            .expect("chain NF");
        self.0[idx]
    }

    /// Number of offloaded NFs.
    pub fn offloaded_count(&self) -> usize {
        self.0.iter().filter(|b| **b).count()
    }
}

/// The ARM-side per-packet cost under a placement: full NF cost for
/// ARM-resident NFs, submission overhead for offloaded ones.
pub fn arm_packet_cost(placement: Placement, size: Bytes) -> Seconds {
    NetworkFunction::CHAIN
        .iter()
        .map(|nf| {
            let spec = BlueField2::nf(*nf);
            if placement.offloads(*nf) {
                spec.accel
                    .expect("offloadable NF has a module")
                    .offload_overhead
            } else {
                spec.arm_cost.time(size)
            }
        })
        .sum()
}

/// Builds the scenario for one placement at packet size `size` and
/// offered rate `rate`.
pub fn scenario(placement: Placement, size: Bytes, rate: Bandwidth) -> Scenario {
    let arm_cost = arm_packet_cost(placement, size);
    let arm_rate =
        Bandwidth::bps(BlueField2::CORES as f64 * size.bits() as f64 / arm_cost.as_secs());
    let arm_params = IpParams::new(arm_rate)
        .with_parallelism(BlueField2::CORES)
        .with_queue_capacity(256);

    // FW and NAT share the connection-tracking module: partition it.
    let conntrack_shared =
        placement.offloads(NetworkFunction::Firewall) && placement.offloads(NetworkFunction::Nat);

    let mut b = ExecutionGraph::builder("nf-chain");
    let ing = b.ingress("rx");
    let arm = b.ip("arm-cores", arm_params);
    b.edge(ing, arm, EdgeParams::full().with_interface_fraction(0.1));
    let mut prev = arm;
    for nf in NetworkFunction::CHAIN {
        if !placement.offloads(nf) {
            continue;
        }
        let spec = BlueField2::nf(nf);
        let accel = spec.accel.expect("offloadable NF has a module");
        let mut params = IpParams::new(accel.engine_cost.peak(size, accel.engines))
            .with_parallelism(accel.engines)
            .with_queue_capacity(64);
        if conntrack_shared && matches!(nf, NetworkFunction::Firewall | NetworkFunction::Nat) {
            params = params.with_partition(0.5);
        }
        let node = b.ip(&format!("{}-module", nf.name()), params);
        // Off-chip round trip over the crossbar.
        b.edge(prev, node, EdgeParams::full().with_interface_fraction(0.3));
        prev = node;
    }
    let eg = b.egress("tx");
    b.edge(prev, eg, EdgeParams::full().with_interface_fraction(0.1));
    let graph = b.build().expect("placement graph is valid by construction");

    Scenario::new(
        &format!("nf-{:?}-{}", placement.0, size),
        graph,
        BlueField2::hardware(),
        TrafficProfile::fixed(rate.min(BlueField2::line_rate()), size),
    )
}

/// The model's sustainable throughput of a placement at this size
/// (its hardware saturation bound, capped at the line rate).
pub fn capacity(placement: Placement, size: Bytes) -> Bandwidth {
    let s = scenario(placement, size, BlueField2::line_rate());
    let est = s.estimator().throughput().expect("valid scenario");
    match est.saturation_bound() {
        Some(b) => b.limit.min(BlueField2::line_rate()),
        None => BlueField2::line_rate(),
    }
}

/// The LogNIC-opt placement for this packet size: the throughput
/// maximizer (ties broken by model latency at 60 % of the winner's
/// capacity).
pub fn optimal_for(size: Bytes) -> Placement {
    let mut best: Option<(Placement, Bandwidth, Seconds)> = None;
    for p in Placement::all() {
        let cap = capacity(p, size);
        let lat = scenario(p, size, cap * 0.6)
            .estimator()
            .latency()
            .expect("valid scenario")
            .mean();
        let better = match &best {
            None => true,
            Some((_, bc, bl)) => {
                cap.as_bps() > bc.as_bps() * 1.0001
                    || ((cap.as_bps() - bc.as_bps()).abs() <= bc.as_bps() * 1e-4 && lat < *bl)
            }
        };
        if better {
            best = Some((p, cap, lat));
        }
    }
    best.expect("at least one placement").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_placements_and_dpi_never_offloaded() {
        let all = Placement::all();
        assert_eq!(all.len(), 16);
        for p in &all {
            assert!(!p.offloads(NetworkFunction::Dpi));
        }
        assert_eq!(Placement::accel_only().offloaded_count(), 4);
        assert_eq!(Placement::arm_only().offloaded_count(), 0);
    }

    #[test]
    fn arm_cost_shrinks_when_offloading_byte_heavy_nfs_at_mtu() {
        let mtu = Bytes::new(1500);
        let all_arm = arm_packet_cost(Placement::arm_only(), mtu);
        let offload_pe = arm_packet_cost(Placement([false, false, false, false, true]), mtu);
        assert!(
            offload_pe < all_arm,
            "PE offload must relieve the cores at MTU"
        );
    }

    #[test]
    fn arm_cost_grows_when_offloading_at_64b() {
        let small = Bytes::new(64);
        let all_arm = arm_packet_cost(Placement::arm_only(), small);
        let accel = arm_packet_cost(Placement::accel_only(), small);
        assert!(accel > all_arm, "offload overhead dominates at 64 B");
    }

    #[test]
    fn capacity_crossover_between_strategies() {
        // ARM-only wins at 64 B, loses at MTU.
        let small = Bytes::new(64);
        let mtu = Bytes::new(1500);
        assert!(
            capacity(Placement::arm_only(), small).as_bps()
                > capacity(Placement::accel_only(), small).as_bps()
        );
        assert!(
            capacity(Placement::accel_only(), mtu).as_bps()
                > capacity(Placement::arm_only(), mtu).as_bps()
        );
    }

    #[test]
    fn optimal_matches_or_beats_both_baselines_everywhere() {
        for size in [64u64, 256, 1024, 1500] {
            let size = Bytes::new(size);
            let opt = capacity(optimal_for(size), size).as_bps();
            let arm = capacity(Placement::arm_only(), size).as_bps();
            let acc = capacity(Placement::accel_only(), size).as_bps();
            assert!(opt + 1.0 >= arm, "size {size}: opt {opt} < arm {arm}");
            assert!(opt + 1.0 >= acc, "size {size}: opt {opt} < accel {acc}");
        }
    }

    #[test]
    fn optimal_is_arm_only_at_64b_and_offloads_pe_at_mtu() {
        assert_eq!(optimal_for(Bytes::new(64)), Placement::arm_only());
        let opt = optimal_for(Bytes::new(1500));
        assert!(
            opt.offloads(NetworkFunction::Encryption),
            "PE must offload at MTU: {opt:?}"
        );
    }

    #[test]
    fn shared_conntrack_halves_module_capacity() {
        let both = Placement([true, false, false, true, false]);
        let s = scenario(both, Bytes::new(512), Bandwidth::gbps(50.0));
        let fw = s.graph.node_by_name("FW-module").unwrap();
        assert_eq!(s.graph.node(fw).params().unwrap().partition(), 0.5);
        let only_fw = Placement([true, false, false, false, false]);
        let s2 = scenario(only_fw, Bytes::new(512), Bandwidth::gbps(50.0));
        let fw2 = s2.graph.node_by_name("FW-module").unwrap();
        assert_eq!(s2.graph.node(fw2).params().unwrap().partition(), 1.0);
    }

    #[test]
    fn graph_chains_offloaded_modules_in_order() {
        let s = scenario(
            Placement::accel_only(),
            Bytes::new(512),
            Bandwidth::gbps(10.0),
        );
        // ingress, arm, 4 modules, egress.
        assert_eq!(s.graph.nodes().len(), 7);
        assert_eq!(s.graph.paths().unwrap().len(), 1);
    }
}
