//! Seeded random-scenario generation and the differential oracle.
//!
//! This is the scenario-shaped half of the fuzzing harness: the
//! generic shrink-capable driver lives in `lognic_testkit::fuzz`,
//! while this module knows how to *generate* a LogNIC scenario from a
//! [`Gen`] stream, how to *shrink* one toward a minimal
//! counterexample, how to *render* one as JSON for a CI artifact, and
//! what the standing correctness oracle is:
//!
//! 1. Realize the spec and run the static analyzer. Scenarios the
//!    analyzer flags are **skipped** (out of domain — the harness
//!    generates replacements), because the pipeline's contract is
//!    only claimed for analyzer-clean inputs.
//! 2. Simulate on **both** scheduler engines with the same seed. Both
//!    must terminate without a watchdog abort and produce
//!    byte-identical reports (`==` and the rendered `Debug` string).
//! 3. Replicate the run across 5 seeds and require the analytical
//!    model's delivered throughput to land inside the replicated 95 %
//!    confidence interval (±3 % slack for finite-horizon noise) — the
//!    PR-1 agreement discipline, applied to generated scenarios.
//!
//! Loads are expressed as a fraction of the realized scenario's
//! saturation bound (the `lognic-lint` derating discipline), so
//! generated scenarios are clean by construction most of the time and
//! the skip rate stays low.
//!
//! Generated graphs deliberately avoid per-node overhead: the
//! analytical throughput bound charges only the computing throughput
//! `P_vi`, while the simulator charges overhead to engine occupancy,
//! so a dominant overhead opens a model-vs-sim gap that is a known
//! modeling limitation, not a defect the fuzzer should report.

use crate::scenario::Scenario;
use lognic_model::analyze::AnalysisConfig;
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{EdgeParams, HardwareModel, IpParams, PacketSizeDist, TrafficProfile};
use lognic_model::throughput::estimate_throughput;
use lognic_model::units::{Bandwidth, Bytes, Seconds};
use lognic_sim::replicate::Replication;
use lognic_sim::sim::{Engine, SimConfig, Simulation};
use lognic_testkit::fuzz::FuzzOutcome;
use lognic_testkit::Gen;

/// Packet-size palette the generator draws mixture buckets from:
/// minimum frames through jumbo, the spread real protocol mixes span.
const SIZE_PALETTE: [u64; 8] = [64, 128, 256, 512, 1024, 1500, 4096, 9000];

/// One service stage of a generated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Computing throughput `P_vi` in Gb/s.
    pub peak_gbps: f64,
    /// Parallelism degree `D_vi`.
    pub parallelism: u32,
    /// Virtual-queue capacity `N_vi` (kept ≥ parallelism so the
    /// generator never trips the L0302 lint by construction).
    pub queue_capacity: u32,
}

/// Topology of a generated scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// `ingress → s0 → s1 → … → egress`.
    Chain,
    /// The second stage is split into two parallel copies carrying
    /// δ = 0.5 each (exercises fan-out/fan-in bookkeeping). Falls
    /// back to a chain when the spec has fewer than two nodes.
    Fanout,
}

/// A complete, serializable description of one generated scenario:
/// everything needed to rebuild and replay it by hand from a CI
/// artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Service stages, ingress-to-egress order.
    pub nodes: Vec<NodeSpec>,
    /// Graph topology.
    pub shape: Shape,
    /// Offered load as a fraction of the realized scenario's
    /// saturation bound.
    pub load: f64,
    /// Per-edge interface fraction α.
    pub alpha: f64,
    /// Packet-size mixture as `(bytes, weight)` buckets.
    pub sizes: Vec<(u64, f64)>,
    /// Simulation seed for the differential run.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Draws a random spec from the generator stream.
    pub fn arbitrary(g: &mut Gen) -> Self {
        let nodes = g.vec(1..5, |g| NodeSpec {
            peak_gbps: g.f64(2.0..60.0),
            parallelism: g.u32(1..9),
            queue_capacity: g.u32(8..129),
        });
        let nodes = nodes
            .into_iter()
            .map(|mut n| {
                n.queue_capacity = n.queue_capacity.max(n.parallelism);
                n
            })
            .collect::<Vec<_>>();
        let shape = if nodes.len() >= 2 && g.bool(0.25) {
            Shape::Fanout
        } else {
            Shape::Chain
        };
        let buckets = g.vec(1..4, |g| (*g.pick(&SIZE_PALETTE), g.u32(1..5) as f64));
        let mut sizes: Vec<(u64, f64)> = Vec::new();
        for (b, w) in buckets {
            match sizes.iter_mut().find(|(s, _)| *s == b) {
                Some((_, acc)) => *acc += w,
                None => sizes.push((b, w)),
            }
        }
        sizes.sort_unstable_by_key(|(s, _)| *s);
        ScenarioSpec {
            nodes,
            shape,
            load: g.f64(0.1..0.8),
            alpha: g.f64(0.0..0.1),
            sizes,
            seed: g.u64(0..u64::MAX),
        }
    }

    /// Shrink candidates, most aggressive first: drop a stage,
    /// collapse the fan-out, drop a size bucket, halve the load,
    /// simplify node parameters, zero the interface fraction. Each
    /// candidate stays within the generator's own domain so the
    /// shrink walk never wanders into specs [`arbitrary`] could not
    /// have produced.
    ///
    /// [`arbitrary`]: ScenarioSpec::arbitrary
    pub fn shrink(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::new();
        if self.nodes.len() > 1 {
            for i in 0..self.nodes.len() {
                let mut c = self.clone();
                c.nodes.remove(i);
                if c.nodes.len() < 2 {
                    c.shape = Shape::Chain;
                }
                out.push(c);
            }
        }
        if self.shape == Shape::Fanout {
            let mut c = self.clone();
            c.shape = Shape::Chain;
            out.push(c);
        }
        if self.sizes.len() > 1 {
            for i in 0..self.sizes.len() {
                let mut c = self.clone();
                c.sizes.remove(i);
                out.push(c);
            }
        }
        if self.load > 0.2 {
            let mut c = self.clone();
            c.load = (self.load * 0.5).max(0.1);
            out.push(c);
        }
        for i in 0..self.nodes.len() {
            if self.nodes[i].parallelism > 1 {
                let mut c = self.clone();
                c.nodes[i].parallelism = 1;
                out.push(c);
            }
            if self.nodes[i].queue_capacity > 16 {
                let mut c = self.clone();
                c.nodes[i].queue_capacity = 16.max(c.nodes[i].parallelism);
                out.push(c);
            }
            if self.nodes[i].peak_gbps > 4.0 {
                let mut c = self.clone();
                c.nodes[i].peak_gbps = (self.nodes[i].peak_gbps * 0.5).max(2.0);
                out.push(c);
            }
        }
        if self.alpha > 1e-9 {
            let mut c = self.clone();
            c.alpha = 0.0;
            out.push(c);
        }
        out
    }

    /// Renders the spec as a self-contained JSON object — the CI
    /// artifact format for failing scenarios.
    pub fn to_json(&self) -> String {
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{{\"peak_gbps\":{},\"parallelism\":{},\"queue_capacity\":{}}}",
                    n.peak_gbps, n.parallelism, n.queue_capacity
                )
            })
            .collect();
        let sizes: Vec<String> = self
            .sizes
            .iter()
            .map(|(b, w)| format!("{{\"bytes\":{b},\"weight\":{w}}}"))
            .collect();
        format!(
            "{{\"shape\":\"{}\",\"load\":{},\"alpha\":{},\"seed\":{},\
             \"nodes\":[{}],\"sizes\":[{}]}}",
            match self.shape {
                Shape::Chain => "chain",
                Shape::Fanout => "fanout",
            },
            self.load,
            self.alpha,
            self.seed,
            nodes.join(","),
            sizes.join(",")
        )
    }

    /// Builds the execution graph described by the spec.
    fn build_graph(&self) -> ExecutionGraph {
        let params = |n: &NodeSpec| {
            IpParams::new(Bandwidth::gbps(n.peak_gbps))
                .with_parallelism(n.parallelism)
                .with_queue_capacity(n.queue_capacity.max(n.parallelism))
        };
        let edge = |delta: f64| {
            EdgeParams::new(delta)
                .expect("generated deltas lie in (0, 1]")
                .with_interface_fraction(self.alpha * delta)
        };
        let mut b = ExecutionGraph::builder("fuzz");
        let ing = b.ingress("rx");
        let node_params: Vec<IpParams> = self.nodes.iter().map(params).collect();
        if self.shape == Shape::Fanout && self.nodes.len() >= 2 {
            // s0 feeds two copies of s1 (δ = 0.5 each), which merge
            // into the rest of the chain (or straight into egress).
            let head = b.ip("s0", node_params[0]);
            b.edge(ing, head, edge(1.0));
            let left = b.ip("s1a", node_params[1]);
            let right = b.ip("s1b", node_params[1]);
            b.edge(head, left, edge(0.5));
            b.edge(head, right, edge(0.5));
            if self.nodes.len() > 2 {
                let mut prev = b.ip("s2", node_params[2]);
                b.edge(left, prev, edge(0.5));
                b.edge(right, prev, edge(0.5));
                for (i, p) in node_params.iter().enumerate().skip(3) {
                    let node = b.ip(&format!("s{i}"), *p);
                    b.edge(prev, node, edge(1.0));
                    prev = node;
                }
                let eg = b.egress("tx");
                b.edge(prev, eg, edge(1.0));
            } else {
                let eg = b.egress("tx");
                b.edge(left, eg, edge(0.5));
                b.edge(right, eg, edge(0.5));
            }
        } else {
            let mut prev = ing;
            for (i, p) in node_params.iter().enumerate() {
                let node = b.ip(&format!("s{i}"), *p);
                b.edge(prev, node, edge(1.0));
                prev = node;
            }
            let eg = b.egress("tx");
            b.edge(prev, eg, edge(1.0));
        }
        b.build().expect("generated graphs are valid")
    }

    /// Realizes the spec into a concrete scenario: builds the graph,
    /// derives the size mixture, probes the saturation bound at a
    /// nominal rate and re-rates the traffic to `load ×` that bound.
    pub fn realize(&self) -> Scenario {
        let graph = self.build_graph();
        let hw = HardwareModel::default();
        let dist = PacketSizeDist::mix(self.sizes.iter().map(|(b, w)| (Bytes::new(*b), *w)))
            .expect("generated mixtures are valid");
        let probe = TrafficProfile::new(Bandwidth::gbps(1.0), dist);
        let bound = estimate_throughput(&graph, &hw, &probe)
            .expect("generated scenarios estimate")
            .saturation_bound()
            .expect("generated scenarios have capacity bounds")
            .limit;
        let traffic = probe.at_rate(bound.scaled(self.load));
        Scenario::new("fuzz", graph, hw, traffic)
    }
}

/// The differential fuzz config: short horizons keep a 32-scenario
/// budget inside a CI smoke job while leaving enough packets per run
/// for stable replication statistics.
pub fn fuzz_config(seed: u64, engine: Engine) -> SimConfig {
    SimConfig {
        seed,
        duration: Seconds::millis(3.0),
        warmup: Seconds::millis(1.0),
        engine,
        ..SimConfig::default()
    }
}

/// The standing oracle over one generated spec — analyzer gate, then
/// engine byte-identity, then model-vs-replicated-sim CI agreement.
/// Returns [`FuzzOutcome::Skip`] for analyzer-flagged specs and
/// [`FuzzOutcome::Fail`] with a replay-ready description for every
/// violated invariant.
pub fn differential_check(spec: &ScenarioSpec) -> FuzzOutcome {
    let scenario = spec.realize();

    // Gate: the pipeline contract is claimed for analyzer-clean
    // scenarios only.
    let report = scenario.estimator().analyze(&AnalysisConfig::default());
    if !report.is_clean() {
        let codes: Vec<&str> = report
            .diagnostics()
            .iter()
            .map(|d| d.code.as_str())
            .collect();
        return FuzzOutcome::Skip(format!("analyzer flagged: {}", codes.join(",")));
    }

    // Invariant 1+2: both engines terminate (no watchdog abort) and
    // report byte-identically.
    let run = |engine| {
        Simulation::builder(&scenario.graph, &scenario.hardware, &scenario.traffic)
            .config(fuzz_config(spec.seed, engine))
            .run()
    };
    let wheel = match run(Engine::Calendar) {
        Ok(r) => r,
        Err(e) => return FuzzOutcome::Fail(format!("calendar engine failed: {e}")),
    };
    let heap = match run(Engine::ReferenceHeap) {
        Ok(r) => r,
        Err(e) => return FuzzOutcome::Fail(format!("reference-heap engine failed: {e}")),
    };
    if wheel != heap || format!("{wheel:?}") != format!("{heap:?}") {
        return FuzzOutcome::Fail(format!(
            "engines diverged: calendar {:?} vs heap {:?}",
            wheel, heap
        ));
    }
    if wheel.completed == 0 {
        return FuzzOutcome::Fail("clean scenario completed no packets".into());
    }

    // Invariant 3: the model's delivered throughput lands inside the
    // replicated 95 % CI (±3 % slack), converted to egress volume.
    let estimate = match scenario.estimate() {
        Ok(e) => e,
        Err(e) => return FuzzOutcome::Fail(format!("model failed to estimate: {e}")),
    };
    let egress_fraction = scenario.graph.delta_in_sum(scenario.graph.egress());
    let predicted = estimate.delivered.as_gbps() * egress_fraction;
    let rep = match Replication::new(5).run_sim(
        &scenario.graph,
        &scenario.hardware,
        &scenario.traffic,
        fuzz_config(spec.seed, Engine::Calendar),
    ) {
        Ok(r) => r,
        Err(e) => return FuzzOutcome::Fail(format!("replication failed: {e}")),
    };
    let slack = predicted * 0.03;
    if rep.throughput_gbps.ci_lo - slack > predicted
        || predicted > rep.throughput_gbps.ci_hi + slack
    {
        return FuzzOutcome::Fail(format!(
            "model-vs-sim disagreement: predicted {predicted:.4} Gb/s outside \
             replicated CI [{:.4}, {:.4}] (±3% slack)",
            rep.throughput_gbps.ci_lo, rep.throughput_gbps.ci_hi
        ));
    }
    FuzzOutcome::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_testkit::fuzz::Fuzz;

    #[test]
    fn arbitrary_specs_are_deterministic_and_valid() {
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..16 {
            let sa = ScenarioSpec::arbitrary(&mut a);
            let sb = ScenarioSpec::arbitrary(&mut b);
            assert_eq!(sa, sb, "same seed must generate the same spec");
            assert!(!sa.nodes.is_empty() && sa.nodes.len() <= 4);
            assert!(!sa.sizes.is_empty());
            for n in &sa.nodes {
                assert!(n.queue_capacity >= n.parallelism);
            }
            // Every spec realizes into a buildable scenario.
            let s = sa.realize();
            assert!(s.traffic.ingress_bandwidth().as_bps() > 0.0);
        }
    }

    #[test]
    fn shrink_candidates_stay_in_domain_and_get_smaller() {
        let mut g = Gen::new(11);
        let spec = ScenarioSpec::arbitrary(&mut g);
        for c in spec.shrink() {
            assert!(!c.nodes.is_empty());
            assert!(!c.sizes.is_empty());
            assert!(c.load >= 0.1 - 1e-12);
            for n in &c.nodes {
                assert!(n.queue_capacity >= n.parallelism, "{c:?}");
            }
            // Candidates still realize.
            let _ = c.realize();
        }
    }

    #[test]
    fn json_rendering_is_complete() {
        let mut g = Gen::new(13);
        let spec = ScenarioSpec::arbitrary(&mut g);
        let json = spec.to_json();
        assert!(json.contains("\"shape\""));
        assert!(json.contains("\"nodes\""));
        assert!(json.contains("\"sizes\""));
        assert!(json.contains("\"seed\""));
        assert!(json.contains(&format!("\"seed\":{}", spec.seed)));
    }

    #[test]
    fn differential_check_passes_a_known_good_spec() {
        let spec = ScenarioSpec {
            nodes: vec![NodeSpec {
                peak_gbps: 10.0,
                parallelism: 2,
                queue_capacity: 64,
            }],
            shape: Shape::Chain,
            load: 0.5,
            alpha: 0.02,
            sizes: vec![(1500, 1.0)],
            seed: 42,
        };
        assert_eq!(differential_check(&spec), FuzzOutcome::Pass);
    }

    #[test]
    fn differential_smoke_runs_a_small_budget() {
        // A fast in-crate smoke of the full harness; the 32-case run
        // lives in tests/properties.rs and the fuzz_smoke CI binary.
        Fuzz::new("gen_differential_smoke")
            .cases(4)
            .run(
                ScenarioSpec::arbitrary,
                ScenarioSpec::shrink,
                differential_check,
            )
            .assert_ok(ScenarioSpec::to_json);
    }
}
