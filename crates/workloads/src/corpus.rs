//! The protocol workload corpus: request-shaped scenarios beyond the
//! paper's five case studies.
//!
//! The LogNIC validation (§4) runs on curated accelerator pipelines;
//! the application breadth that motivates the model — λ-NIC's
//! per-request serverless NFs, NetCache-style in-network services,
//! storage targets — is request/response traffic with protocol-shaped
//! size mixtures. This module contributes four such scenarios, each a
//! [`Scenario`] driving both the analytical model and the simulator,
//! and each registered in [`crate::registry`] so `trace_dump`, the
//! `lognic-lint` clean fixture set and the corpus tests all see them
//! automatically:
//!
//! * [`tls_handshake`] — inline asymmetric crypto on handshake
//!   records (the LiquidIO-II crypto-offload shape of §4.2, applied
//!   to TLS 1.3 record sizes);
//! * [`dns_kv`] — a small-packet request/response service in the
//!   NetCache/λ-NIC mold: parse, hash lookup, respond;
//! * [`storage_rpc`] — an NVMe/SMB-style storage target: command
//!   capsules and 4 KiB data blocks crossing a dedicated DMA fabric
//!   (the Stingray shape of §4.3 without the SSD state machine);
//! * [`http2_mux`] — multiplexed streams: a frame demultiplexer
//!   fanning out to parallel stream processors, mixing tiny control
//!   frames with MTU and bulk data frames.
//!
//! The random-scenario generator that fuzzes the analyzer → engines →
//! model pipeline lives in the [`gen`] submodule.

pub mod gen;

use crate::scenario::Scenario;
use lognic_model::graph::ExecutionGraph;
use lognic_model::params::{EdgeParams, HardwareModel, IpParams, PacketSizeDist, TrafficProfile};
use lognic_model::units::{Bandwidth, Bytes, Seconds};

/// TLS-handshake inline crypto: NIC cores parse handshake records and
/// hand the asymmetric work (signature, key exchange) to a crypto
/// engine, the §4.2 bump-in-the-wire shape at TLS 1.3 record sizes —
/// small ClientHello/Finished records mixed with multi-KiB
/// certificate chains.
///
/// The crypto engine is the deliberate bottleneck: its peak is far
/// below the parser cores', and its per-record overhead models the
/// fixed cost of scheduling a private-key operation. (Overheads here
/// are kept small relative to the per-record service time: the
/// analytical throughput bound charges only `P_vi`, so a dominant
/// overhead would open a model-vs-sim gap by construction.)
pub fn tls_handshake(rate: Bandwidth) -> Scenario {
    let sizes = PacketSizeDist::mix([
        // ClientHello / ServerHello records.
        (Bytes::new(512), 0.40),
        // Certificate chains (split across records).
        (Bytes::new(2048), 0.20),
        // CertificateVerify / Finished / session tickets.
        (Bytes::new(128), 0.40),
    ])
    .expect("static mixture is valid");

    let mut b = ExecutionGraph::builder("tls-handshake");
    let ing = b.ingress("rx-port");
    let parser = b.ip(
        "record-parser",
        IpParams::new(Bandwidth::gbps(40.0))
            .with_parallelism(4)
            .with_queue_capacity(128),
    );
    let crypto = b.ip(
        "crypto-engine",
        IpParams::new(Bandwidth::gbps(12.0))
            .with_parallelism(2)
            .with_queue_capacity(64)
            .with_overhead(Seconds::micros(0.2)),
    );
    let eg = b.egress("tx-port");
    b.edge(ing, parser, EdgeParams::full().with_interface_fraction(0.0));
    b.edge(
        parser,
        crypto,
        EdgeParams::full().with_interface_fraction(0.1),
    );
    b.edge(crypto, eg, EdgeParams::full().with_interface_fraction(0.1));
    let graph = b.build().expect("corpus graph is valid by construction");

    Scenario::new(
        "tls-handshake",
        graph,
        HardwareModel::new(Bandwidth::gbps(50.0), Bandwidth::gbps(100.0)),
        TrafficProfile::new(rate, sizes),
    )
}

/// DNS/KV request-response: the λ-NIC / NetCache small-packet shape.
/// A UDP parser feeds a memory-resident hash lookup; the lookup stage
/// leans on the memory subsystem (β = 0.5 on its in-edge), so at high
/// rates the Eq. 3 memory bound — not any compute stage — binds.
pub fn dns_kv(rate: Bandwidth) -> Scenario {
    let sizes = PacketSizeDist::mix([
        // Queries: QNAME + fixed header.
        (Bytes::new(80), 0.55),
        // Responses with a couple of records / small KV values.
        (Bytes::new(240), 0.35),
        // EDNS0 / larger values.
        (Bytes::new(512), 0.10),
    ])
    .expect("static mixture is valid");

    let mut b = ExecutionGraph::builder("dns-kv");
    let ing = b.ingress("rx-port");
    let parser = b.ip(
        "udp-parser",
        IpParams::new(Bandwidth::gbps(25.0))
            .with_parallelism(4)
            .with_queue_capacity(128),
    );
    let lookup = b.ip(
        "kv-lookup",
        IpParams::new(Bandwidth::gbps(15.0))
            .with_parallelism(8)
            .with_queue_capacity(256),
    );
    let eg = b.egress("tx-port");
    b.edge(ing, parser, EdgeParams::full().with_interface_fraction(0.0));
    b.edge(
        parser,
        lookup,
        EdgeParams::full()
            .with_interface_fraction(0.1)
            .with_memory_fraction(0.5),
    );
    b.edge(lookup, eg, EdgeParams::full().with_interface_fraction(0.1));
    let graph = b.build().expect("corpus graph is valid by construction");

    Scenario::new(
        "dns-kv",
        graph,
        HardwareModel::new(Bandwidth::gbps(40.0), Bandwidth::gbps(30.0)),
        TrafficProfile::new(rate, sizes),
    )
}

/// NVMe/SMB-style storage RPC: command capsules and 4 KiB blocks flow
/// through protocol parsing into a DMA engine whose link to the
/// egress is a dedicated fabric (the PCIe/DDR path of the §4.3
/// Stingray target), with a per-command doorbell overhead.
pub fn storage_rpc(rate: Bandwidth) -> Scenario {
    let sizes = PacketSizeDist::mix([
        // Command/response capsules.
        (Bytes::new(192), 0.45),
        // 4 KiB data blocks (with headers).
        (Bytes::new(4224), 0.50),
        // Jumbo multi-block transfers.
        (Bytes::new(8320), 0.05),
    ])
    .expect("static mixture is valid");

    let mut b = ExecutionGraph::builder("storage-rpc");
    let ing = b.ingress("rx-port");
    let proto = b.ip(
        "rpc-parser",
        IpParams::new(Bandwidth::gbps(35.0))
            .with_parallelism(4)
            .with_queue_capacity(128),
    );
    let dma = b.ip(
        "dma-engine",
        IpParams::new(Bandwidth::gbps(20.0))
            .with_parallelism(4)
            .with_queue_capacity(128)
            .with_overhead(Seconds::micros(0.5)),
    );
    let eg = b.egress("tx-port");
    b.edge(ing, proto, EdgeParams::full().with_interface_fraction(0.0));
    b.edge(
        proto,
        dma,
        EdgeParams::full()
            .with_interface_fraction(0.0)
            .with_dedicated_bandwidth(Bandwidth::gbps(32.0)),
    );
    b.edge(dma, eg, EdgeParams::full().with_interface_fraction(0.1));
    let graph = b.build().expect("corpus graph is valid by construction");

    Scenario::new(
        "storage-rpc",
        graph,
        HardwareModel::new(Bandwidth::gbps(60.0), Bandwidth::gbps(100.0)),
        TrafficProfile::new(rate, sizes),
    )
}

/// HTTP/2-style multiplexed streams: a frame demultiplexer splits
/// traffic across two parallel stream processors (δ = 0.5 each), and
/// the size mixture spans tiny HEADERS/WINDOW_UPDATE control frames,
/// MTU-sized DATA frames and 16 KiB bulk DATA frames — the widest
/// size spread in the corpus, which is what stresses the Eq. 4 mean
/// service-size machinery.
pub fn http2_mux(rate: Bandwidth) -> Scenario {
    let sizes = PacketSizeDist::mix([
        // HEADERS / SETTINGS / WINDOW_UPDATE frames.
        (Bytes::new(64), 0.50),
        // MTU-bounded DATA frames.
        (Bytes::new(1380), 0.35),
        // Max-size bulk DATA frames.
        (Bytes::new(16384), 0.15),
    ])
    .expect("static mixture is valid");

    let mut b = ExecutionGraph::builder("http2-mux");
    let ing = b.ingress("rx-port");
    let demux = b.ip(
        "frame-demux",
        IpParams::new(Bandwidth::gbps(30.0))
            .with_parallelism(2)
            .with_queue_capacity(128),
    );
    let s0 = b.ip(
        "stream-proc-0",
        IpParams::new(Bandwidth::gbps(12.0))
            .with_parallelism(4)
            .with_queue_capacity(128),
    );
    let s1 = b.ip(
        "stream-proc-1",
        IpParams::new(Bandwidth::gbps(12.0))
            .with_parallelism(4)
            .with_queue_capacity(128),
    );
    let eg = b.egress("tx-port");
    let half = || EdgeParams::new(0.5).expect("0.5 is a valid delta");
    b.edge(ing, demux, EdgeParams::full().with_interface_fraction(0.0));
    b.edge(demux, s0, half().with_interface_fraction(0.05));
    b.edge(demux, s1, half().with_interface_fraction(0.05));
    b.edge(s0, eg, half().with_interface_fraction(0.05));
    b.edge(s1, eg, half().with_interface_fraction(0.05));
    let graph = b.build().expect("corpus graph is valid by construction");

    Scenario::new(
        "http2-mux",
        graph,
        HardwareModel::new(Bandwidth::gbps(50.0), Bandwidth::gbps(80.0)),
        TrafficProfile::new(rate, sizes),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lognic_model::analyze::{AnalysisConfig, Analyzer};
    use lognic_sim::sim::SimConfig;

    fn all_corpus(rate: Bandwidth) -> Vec<Scenario> {
        vec![
            tls_handshake(rate),
            dns_kv(rate),
            storage_rpc(rate),
            http2_mux(rate),
        ]
    }

    /// Half the saturating rate: the posture corpus scenarios ship in.
    fn derate(s: Scenario) -> Scenario {
        let limit = s
            .estimate()
            .expect("corpus scenario estimates")
            .throughput
            .saturation_bound()
            .expect("finite bound")
            .limit;
        let name = s.name.clone();
        let mut d = s.at_rate(limit * 0.5);
        d.name = name;
        d
    }

    #[test]
    fn corpus_scenarios_are_analyzer_clean_when_derated() {
        for s in all_corpus(Bandwidth::gbps(1.0)) {
            let s = derate(s);
            let report = Analyzer::new(&s.graph)
                .with_hardware(&s.hardware)
                .with_traffic(&s.traffic)
                .run(&AnalysisConfig::default().deny_warnings(true));
            assert!(report.is_clean(), "{}: {:?}", s.name, report.diagnostics());
        }
    }

    #[test]
    fn corpus_scenarios_simulate_and_agree_with_the_model() {
        let cfg = SimConfig {
            duration: Seconds::millis(30.0),
            warmup: Seconds::millis(6.0),
            ..SimConfig::default()
        };
        for s in all_corpus(Bandwidth::gbps(1.0)) {
            let s = derate(s);
            let c = s.compare(cfg).expect("derated corpus scenario runs");
            assert!(
                c.throughput_error().abs() < 0.05,
                "{}: model {} sim {} err {}",
                s.name,
                c.model_throughput,
                c.sim_throughput,
                c.throughput_error()
            );
        }
    }

    #[test]
    fn crypto_engine_binds_tls_throughput() {
        let est = tls_handshake(Bandwidth::gbps(30.0))
            .estimator()
            .throughput()
            .expect("estimates");
        // Crypto peak 12 Gb/s with δ = 1 through it.
        assert!(
            est.attainable() <= Bandwidth::gbps(12.0),
            "attainable {}",
            est.attainable()
        );
    }

    #[test]
    fn dns_kv_hits_the_memory_wall() {
        // β = 0.5 over BW_MEM = 30 Gb/s caps the lookup path at
        // 60 Gb/s of offered load — but compute binds earlier; what
        // matters is that the memory term participates in the bound
        // set at all.
        let s = dns_kv(Bandwidth::gbps(10.0));
        let est = s.estimator().throughput().expect("estimates");
        assert!(est.attainable() <= Bandwidth::gbps(15.0));
    }

    #[test]
    fn http2_mux_splits_load_evenly() {
        let s = http2_mux(Bandwidth::gbps(8.0));
        let cfg = SimConfig {
            duration: Seconds::millis(20.0),
            warmup: Seconds::millis(4.0),
            ..SimConfig::default()
        };
        let r = s.simulate(cfg);
        let s0 = r.node("stream-proc-0").expect("s0").served;
        let s1 = r.node("stream-proc-1").expect("s1").served;
        let skew = (s0 as f64 - s1 as f64).abs() / (s0 + s1) as f64;
        assert!(skew < 0.05, "stream split skew {skew} ({s0} vs {s1})");
    }
}
