//! Fault plans: declarative fault injection and recovery semantics.
//!
//! LogNIC's value is predicting SmartNIC behaviour under stress, not
//! just steady state. A [`FaultPlan`] describes *when* and *how* the
//! hardware degrades — full outages, rate degradation (an IP running
//! at a fraction of its op rate for a window), probabilistic packet
//! drop or corruption, and credit loss on bounded queues — plus the
//! recovery semantics layered on top: per-packet retry with
//! exponential backoff and a retry budget, and per-packet deadlines.
//!
//! The same plan drives two consumers:
//!
//! * the discrete-event simulator (`lognic-sim`) compiles it into
//!   per-node schedules and executes faults packet by packet;
//! * the analytical model folds it into *availability-adjusted*
//!   estimates ([`crate::estimate::Estimator::estimate_degraded`]):
//!   effective service rates are degraded by each fault's duty cycle
//!   and retry traffic inflates the M/M/1/N arrival rate (Eq. 9–12
//!   under degraded service).

use crate::error::{LogNicError, LogNicResult};
use crate::graph::ExecutionGraph;
use crate::units::Seconds;

/// What a fault does to the node it targets while its window is
/// active.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Engines crashed / firmware reset: every arriving packet is
    /// refused. Packets already in service complete normally.
    Outage,
    /// The node serves at `factor ×` its nominal op rate (thermal
    /// throttling, partial engine loss). `factor` ∈ (0, 1].
    RateDegradation {
        /// Fraction of the nominal service rate that remains.
        factor: f64,
    },
    /// Each arriving packet is independently dropped with this
    /// probability (lossy link, parity kill).
    PacketDrop {
        /// Per-packet drop probability ∈ [0, 1].
        probability: f64,
    },
    /// Each arriving packet is independently corrupted with this
    /// probability. Corrupted packets still traverse the pipeline and
    /// consume resources, but count against goodput at the egress.
    PacketCorruption {
        /// Per-packet corruption probability ∈ [0, 1].
        probability: f64,
    },
    /// The node's bounded queue temporarily loses this many credits
    /// (buffer slots), shrinking its admission capacity.
    CreditLoss {
        /// Credits (queue slots) removed while the window is active.
        credits: u32,
    },
}

impl FaultKind {
    fn same_kind(self, other: FaultKind) -> bool {
        std::mem::discriminant(&self) == std::mem::discriminant(&other)
    }

    /// True when this fault can cause packet loss at the node.
    pub fn is_lossy(self) -> bool {
        matches!(
            self,
            FaultKind::Outage | FaultKind::PacketDrop { .. } | FaultKind::CreditLoss { .. }
        )
    }

    fn validate(self, node: &str) -> LogNicResult<()> {
        let _ = node;
        match self {
            FaultKind::Outage => Ok(()),
            FaultKind::RateDegradation { factor } => {
                if factor.is_finite() && factor > 0.0 && factor <= 1.0 {
                    Ok(())
                } else {
                    Err(LogNicError::InvalidFaultParameter {
                        parameter: "rate degradation factor",
                        value: factor,
                        constraint: "must lie in (0, 1]",
                    })
                }
            }
            FaultKind::PacketDrop { probability } => {
                validate_probability(probability, "drop probability")
            }
            FaultKind::PacketCorruption { probability } => {
                validate_probability(probability, "corruption probability")
            }
            FaultKind::CreditLoss { credits } => {
                if credits == 0 {
                    Err(LogNicError::InvalidFaultParameter {
                        parameter: "credit loss",
                        value: 0.0,
                        constraint: "must remove at least one credit",
                    })
                } else {
                    Ok(())
                }
            }
        }
    }
}

fn validate_probability(p: f64, parameter: &'static str) -> LogNicResult<()> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(LogNicError::InvalidFaultParameter {
            parameter,
            value: p,
            constraint: "must lie in [0, 1]",
        })
    }
}

/// One scheduled fault: a [`FaultKind`] applied to a named node during
/// `[from, until)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    node: String,
    kind: FaultKind,
    from: Seconds,
    until: Seconds,
}

impl FaultWindow {
    /// The targeted node name.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// What the fault does.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Window start (inclusive).
    pub fn from(&self) -> Seconds {
        self.from
    }

    /// Window end (exclusive).
    pub fn until(&self) -> Seconds {
        self.until
    }

    /// True when this window overlaps `other` in time.
    pub fn overlaps(&self, other: &FaultWindow) -> bool {
        self.from < other.until && other.from < self.until
    }

    /// The fraction of `[0, horizon]` this window covers.
    pub fn duty_cycle(&self, horizon: Seconds) -> f64 {
        if horizon.as_secs() <= 0.0 {
            return 0.0;
        }
        let lo = self.from.as_secs().max(0.0);
        let hi = self.until.as_secs().min(horizon.as_secs());
        ((hi - lo).max(0.0) / horizon.as_secs()).min(1.0)
    }
}

/// Per-packet retry with exponential backoff and a finite budget.
///
/// A packet refused by a faulted or overflowing node is retried up to
/// `budget` times; the `k`-th retry waits `base · multiplier^k`
/// (capped at `max_backoff`) before re-presenting the packet to the
/// node.
///
/// # Examples
///
/// ```
/// use lognic_model::fault::RetryPolicy;
/// use lognic_model::units::Seconds;
///
/// let rp = RetryPolicy::new(3, Seconds::micros(2.0));
/// assert_eq!(rp.budget(), 3);
/// assert_eq!(rp.backoff_for(1), Seconds::micros(4.0));
/// // With per-attempt loss 0.5 the expected attempts are
/// // (1 - 0.5^4) / (1 - 0.5) = 1.875.
/// assert!((rp.expected_attempts(0.5) - 1.875).abs() < 1e-12);
/// assert!((rp.residual_loss(0.5) - 0.0625).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    budget: u32,
    base_backoff: Seconds,
    multiplier: f64,
    max_backoff: Seconds,
}

impl RetryPolicy {
    /// A policy of `budget` retries starting at `base_backoff`, with
    /// doubling backoff capped at `1024 × base_backoff`.
    pub fn new(budget: u32, base_backoff: Seconds) -> Self {
        RetryPolicy {
            budget,
            base_backoff,
            multiplier: 2.0,
            max_backoff: base_backoff.scaled(1024.0),
        }
    }

    /// Overrides the backoff growth factor (≥ 1).
    pub fn with_multiplier(mut self, multiplier: f64) -> Self {
        self.multiplier = multiplier.max(1.0);
        self
    }

    /// Overrides the backoff ceiling.
    pub fn with_max_backoff(mut self, max_backoff: Seconds) -> Self {
        self.max_backoff = max_backoff;
        self
    }

    /// Maximum retries per packet (0 = never retry).
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// The first retry's backoff.
    pub fn base_backoff(&self) -> Seconds {
        self.base_backoff
    }

    /// The backoff growth factor.
    pub fn multiplier(&self) -> f64 {
        self.multiplier
    }

    /// The backoff ceiling.
    pub fn max_backoff(&self) -> Seconds {
        self.max_backoff
    }

    /// The absolute ceiling [`RetryPolicy::backoff_for`] saturates
    /// at regardless of the configured [`RetryPolicy::max_backoff`]:
    /// 10⁶ seconds. The simulator clocks time in `u64` picoseconds
    /// (max ≈ 1.8 × 10⁷ s), so an unconstrained `base · mⁿ` at high
    /// attempt counts would overflow the clock — or reach `∞`
    /// outright once `powi` leaves `f64` range — and panic the
    /// scheduler. 10⁶ s is far beyond any plausible horizon while
    /// leaving headroom for time addition.
    pub fn saturation_ceiling() -> Seconds {
        Seconds::new(1.0e6)
    }

    /// The backoff before retry number `attempt` (0-based): `base ·
    /// multiplier^attempt`, capped at the policy ceiling and
    /// saturating at [`RetryPolicy::saturation_ceiling`].
    ///
    /// Saturation is what makes high attempt counts safe: for
    /// `multiplier ≥ 2` the exponential passes the ceiling within a
    /// few dozen attempts, and without the clamp the product would
    /// overflow the simulator's integer picosecond clock (a panic,
    /// not an error) long before `u32::MAX` attempts.
    pub fn backoff_for(&self, attempt: u32) -> Seconds {
        let ceiling = self.max_backoff.min(RetryPolicy::saturation_ceiling());
        // powi overflows f64 to ∞ near attempt ≈ 1024/log₂(m); clamp
        // the exponent first so the product is NaN-free, then the
        // result. A non-finite product (0 · ∞) also saturates.
        let factor = self.multiplier.powi(attempt.min(1024) as i32);
        let raw = self.base_backoff.scaled(factor.min(f64::MAX));
        if raw.as_secs().is_finite() {
            raw.min(ceiling)
        } else {
            ceiling
        }
    }

    /// Expected number of attempts per packet when each attempt
    /// independently fails with probability `p_fail`:
    /// `(1 − p^(budget+1)) / (1 − p)`. This is the arrival-rate
    /// inflation factor fed into the M/M/1/N model.
    pub fn expected_attempts(&self, p_fail: f64) -> f64 {
        let p = p_fail.clamp(0.0, 1.0);
        if p <= 0.0 {
            return 1.0;
        }
        if (1.0 - p).abs() < 1e-12 {
            return (self.budget + 1) as f64;
        }
        (1.0 - p.powi(self.budget as i32 + 1)) / (1.0 - p)
    }

    /// The probability a packet is lost even after exhausting its
    /// retry budget: `p^(budget+1)`.
    pub fn residual_loss(&self, p_fail: f64) -> f64 {
        p_fail.clamp(0.0, 1.0).powi(self.budget as i32 + 1)
    }
}

/// A composable, schedulable fault-injection plan.
///
/// Windows accumulate via the builder-style methods; recovery
/// semantics (retry, deadline) apply plan-wide. The plan is inert
/// until handed to a simulation (`SimulationBuilder::with_fault_plan`)
/// or the degraded-mode estimator.
///
/// # Examples
///
/// ```
/// use lognic_model::fault::{FaultPlan, RetryPolicy};
/// use lognic_model::units::Seconds;
///
/// let plan = FaultPlan::new()
///     .outage("crypto", Seconds::millis(2.0), Seconds::millis(4.0))
///     .degrade_rate("cores", 0.5, Seconds::millis(1.0), Seconds::millis(8.0))
///     .drop_packets("dma", 0.05, Seconds::ZERO, Seconds::millis(10.0))
///     .with_retry(RetryPolicy::new(3, Seconds::micros(5.0)))
///     .with_deadline(Seconds::millis(1.0));
/// assert_eq!(plan.windows().len(), 3);
/// assert!(plan.retry().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
    retry: Option<RetryPolicy>,
    deadline: Option<Seconds>,
}

impl FaultPlan {
    /// An empty plan (no faults, no recovery semantics).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules an arbitrary fault window.
    pub fn with_fault(
        mut self,
        node: &str,
        kind: FaultKind,
        from: Seconds,
        until: Seconds,
    ) -> Self {
        self.windows.push(FaultWindow {
            node: node.to_owned(),
            kind,
            from,
            until,
        });
        self
    }

    /// Schedules a full outage of `node` during `[from, until)`.
    pub fn outage(self, node: &str, from: Seconds, until: Seconds) -> Self {
        self.with_fault(node, FaultKind::Outage, from, until)
    }

    /// Schedules rate degradation: `node` serves at `factor ×` its
    /// nominal rate during `[from, until)`.
    pub fn degrade_rate(self, node: &str, factor: f64, from: Seconds, until: Seconds) -> Self {
        self.with_fault(node, FaultKind::RateDegradation { factor }, from, until)
    }

    /// Schedules probabilistic packet drop at `node`.
    pub fn drop_packets(self, node: &str, probability: f64, from: Seconds, until: Seconds) -> Self {
        self.with_fault(node, FaultKind::PacketDrop { probability }, from, until)
    }

    /// Schedules probabilistic packet corruption at `node`.
    pub fn corrupt_packets(
        self,
        node: &str,
        probability: f64,
        from: Seconds,
        until: Seconds,
    ) -> Self {
        self.with_fault(
            node,
            FaultKind::PacketCorruption { probability },
            from,
            until,
        )
    }

    /// Schedules credit loss: `node`'s bounded queue loses `credits`
    /// slots during `[from, until)`.
    pub fn lose_credits(self, node: &str, credits: u32, from: Seconds, until: Seconds) -> Self {
        self.with_fault(node, FaultKind::CreditLoss { credits }, from, until)
    }

    /// Installs plan-wide per-packet retry semantics.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Installs a plan-wide per-packet deadline: packets whose sojourn
    /// exceeds it are timed out instead of served.
    pub fn with_deadline(mut self, deadline: Seconds) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The scheduled fault windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The plan-wide retry policy, if any.
    pub fn retry(&self) -> Option<&RetryPolicy> {
        self.retry.as_ref()
    }

    /// The plan-wide packet deadline, if any.
    pub fn deadline(&self) -> Option<Seconds> {
        self.deadline
    }

    /// True when the plan schedules no faults and installs no
    /// recovery semantics.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.retry.is_none() && self.deadline.is_none()
    }

    /// Validates the plan against an execution graph: every window
    /// must target an existing node, carry in-range parameters, and
    /// span a non-empty time range.
    ///
    /// # Errors
    ///
    /// Returns the first violation as a typed [`LogNicError`].
    pub fn validate(&self, graph: &ExecutionGraph) -> LogNicResult<()> {
        for w in &self.windows {
            if graph.node_by_name(&w.node).is_none() {
                return Err(LogNicError::UnknownNode {
                    context: "fault window",
                    node: w.node.clone(),
                });
            }
            w.kind.validate(&w.node)?;
            let (from, until) = (w.from.as_secs(), w.until.as_secs());
            if !(from.is_finite() && until.is_finite()) || until <= from {
                return Err(LogNicError::InvalidFaultWindow {
                    node: w.node.clone(),
                    from,
                    until,
                });
            }
        }
        if let Some(rp) = &self.retry {
            if !rp.base_backoff().as_secs().is_finite() {
                return Err(LogNicError::InvalidFaultParameter {
                    parameter: "retry base backoff",
                    value: rp.base_backoff().as_secs(),
                    constraint: "must be finite",
                });
            }
        }
        if let Some(d) = self.deadline {
            if !(d.as_secs().is_finite() && d.as_secs() > 0.0) {
                return Err(LogNicError::InvalidFaultParameter {
                    parameter: "packet deadline",
                    value: d.as_secs(),
                    constraint: "must be positive and finite",
                });
            }
        }
        Ok(())
    }

    /// Pairs of window indices on the same node, same fault kind,
    /// whose time ranges overlap — duty-cycle math double-counts the
    /// overlap, so these are almost always specification mistakes.
    pub fn overlapping_windows(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for i in 0..self.windows.len() {
            for j in (i + 1)..self.windows.len() {
                let (a, b) = (&self.windows[i], &self.windows[j]);
                if a.node == b.node && a.kind.same_kind(b.kind) && a.overlaps(b) {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    // ── availability math over the horizon [0, H] ──────────────────
    //
    // These feed the analytical model. All assume arrivals uniform
    // over the horizon (Poisson), so a window's effect is weighted by
    // its duty cycle.

    /// The fraction of `[0, horizon]` during which `node` is fully
    /// out.
    pub fn outage_fraction(&self, node: &str, horizon: Seconds) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.node == node && matches!(w.kind, FaultKind::Outage))
            .map(|w| w.duty_cycle(horizon))
            .sum::<f64>()
            .min(1.0)
    }

    /// The time-averaged service-rate multiplier of `node` over the
    /// horizon: 1 outside fault windows, `factor` under rate
    /// degradation, 0 during an outage.
    pub fn rate_factor(&self, node: &str, horizon: Seconds) -> f64 {
        let mut factor = 1.0;
        for w in self.windows.iter().filter(|w| w.node == node) {
            let duty = w.duty_cycle(horizon);
            match w.kind {
                FaultKind::Outage => factor -= duty,
                FaultKind::RateDegradation { factor: f } => factor -= duty * (1.0 - f),
                _ => {}
            }
        }
        factor.clamp(0.0, 1.0)
    }

    /// The probability a packet arriving at `node` (uniformly over the
    /// horizon) is refused by a fault: outage windows refuse
    /// everything, drop windows refuse with their probability.
    pub fn drop_probability(&self, node: &str, horizon: Seconds) -> f64 {
        let mut p = 0.0;
        for w in self.windows.iter().filter(|w| w.node == node) {
            let duty = w.duty_cycle(horizon);
            match w.kind {
                FaultKind::Outage => p += duty,
                FaultKind::PacketDrop { probability } => p += duty * probability,
                _ => {}
            }
        }
        p.min(1.0)
    }

    /// The probability a packet traversing `node` is corrupted.
    pub fn corruption_probability(&self, node: &str, horizon: Seconds) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.node == node)
            .map(|w| match w.kind {
                FaultKind::PacketCorruption { probability } => w.duty_cycle(horizon) * probability,
                _ => 0.0,
            })
            .sum::<f64>()
            .min(1.0)
    }

    /// The time-averaged credits lost by `node`'s bounded queue.
    pub fn mean_credit_loss(&self, node: &str, horizon: Seconds) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.node == node)
            .map(|w| match w.kind {
                FaultKind::CreditLoss { credits } => w.duty_cycle(horizon) * credits as f64,
                _ => 0.0,
            })
            .sum()
    }

    /// The per-attempt probability that a packet is refused somewhere
    /// on the ingress→egress path: `1 − Π (1 − p_node)` over the
    /// graph's nodes.
    pub fn path_drop_probability(&self, graph: &ExecutionGraph, horizon: Seconds) -> f64 {
        let mut survive = 1.0;
        for node in graph.nodes() {
            survive *= 1.0 - self.drop_probability(node.name(), horizon);
        }
        (1.0 - survive).clamp(0.0, 1.0)
    }

    /// The per-packet probability of corruption somewhere on the path.
    pub fn path_corruption_probability(&self, graph: &ExecutionGraph, horizon: Seconds) -> f64 {
        let mut clean = 1.0;
        for node in graph.nodes() {
            clean *= 1.0 - self.corruption_probability(node.name(), horizon);
        }
        (1.0 - clean).clamp(0.0, 1.0)
    }

    /// The arrival-rate inflation from retries: expected attempts per
    /// offered packet given the path drop probability, under the
    /// plan's retry policy (1.0 without one).
    pub fn retry_inflation(&self, graph: &ExecutionGraph, horizon: Seconds) -> f64 {
        match &self.retry {
            Some(rp) => rp.expected_attempts(self.path_drop_probability(graph, horizon)),
            None => 1.0,
        }
    }

    /// The fraction of offered packets ultimately lost to faults after
    /// retries are exhausted (without a retry policy, the raw path
    /// drop probability).
    pub fn residual_loss(&self, graph: &ExecutionGraph, horizon: Seconds) -> f64 {
        let p = self.path_drop_probability(graph, horizon);
        match &self.retry {
            Some(rp) => rp.residual_loss(p),
            None => p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::IpParams;
    use crate::units::Bandwidth;

    fn graph() -> ExecutionGraph {
        ExecutionGraph::chain(
            "g",
            &[
                ("a", IpParams::new(Bandwidth::gbps(10.0))),
                ("b", IpParams::new(Bandwidth::gbps(10.0))),
            ],
        )
        .unwrap()
    }

    #[test]
    fn empty_plan_is_identity() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        let h = Seconds::millis(10.0);
        assert_eq!(p.rate_factor("a", h), 1.0);
        assert_eq!(p.drop_probability("a", h), 0.0);
        assert_eq!(p.retry_inflation(&graph(), h), 1.0);
        assert_eq!(p.residual_loss(&graph(), h), 0.0);
        assert!(p.validate(&graph()).is_ok());
    }

    #[test]
    fn duty_cycle_clamps_to_horizon() {
        let p = FaultPlan::new().outage("a", Seconds::millis(5.0), Seconds::millis(50.0));
        let w = &p.windows()[0];
        assert!((w.duty_cycle(Seconds::millis(10.0)) - 0.5).abs() < 1e-12);
        assert_eq!(w.duty_cycle(Seconds::ZERO), 0.0);
    }

    #[test]
    fn rate_factor_composes_outage_and_degradation() {
        let h = Seconds::millis(10.0);
        let p = FaultPlan::new()
            .outage("a", Seconds::ZERO, Seconds::millis(2.0)) // duty 0.2
            .degrade_rate("a", 0.5, Seconds::millis(5.0), Seconds::millis(10.0)); // duty 0.5
                                                                                  // 1 − 0.2 − 0.5·0.5 = 0.55
        assert!((p.rate_factor("a", h) - 0.55).abs() < 1e-12);
        assert_eq!(p.rate_factor("b", h), 1.0);
        assert!((p.outage_fraction("a", h) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn drop_probability_mixes_outage_and_drops() {
        let h = Seconds::millis(10.0);
        let p = FaultPlan::new()
            .outage("a", Seconds::ZERO, Seconds::millis(1.0)) // 0.1
            .drop_packets("a", 0.5, Seconds::millis(5.0), Seconds::millis(10.0)); // 0.25
        assert!((p.drop_probability("a", h) - 0.35).abs() < 1e-12);
        // Path combines both nodes.
        let p = p.drop_packets("b", 0.2, Seconds::ZERO, Seconds::millis(10.0));
        let path = p.path_drop_probability(&graph(), h);
        assert!((path - (1.0 - 0.65 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn corruption_and_credit_math() {
        let h = Seconds::millis(10.0);
        let p = FaultPlan::new()
            .corrupt_packets("a", 0.4, Seconds::ZERO, Seconds::millis(5.0))
            .lose_credits("b", 8, Seconds::ZERO, Seconds::millis(5.0));
        assert!((p.corruption_probability("a", h) - 0.2).abs() < 1e-12);
        assert!((p.mean_credit_loss("b", h) - 4.0).abs() < 1e-12);
        assert!((p.path_corruption_probability(&graph(), h) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn backoff_saturates_at_high_attempt_counts_instead_of_overflowing() {
        // A hostile policy: maximal budget, aggressive growth, an
        // unbounded ceiling. Without the saturation guard the
        // attempt-64 product already exceeds what fits in the
        // simulator's u64 picosecond clock.
        let rp = RetryPolicy::new(u32::MAX, Seconds::micros(1.0))
            .with_multiplier(10.0)
            .with_max_backoff(Seconds::INFINITY);
        for attempt in [64, 100, 1024, 1_000_000, u32::MAX] {
            let b = rp.backoff_for(attempt);
            assert!(b.as_secs().is_finite(), "attempt {attempt}: {b}");
            assert!(
                b <= RetryPolicy::saturation_ceiling(),
                "attempt {attempt}: {b}"
            );
            assert!(
                b.as_secs() * 1e12 <= u64::MAX as f64,
                "attempt {attempt} must stay on the picosecond clock"
            );
        }
        // Once saturated, the schedule is flat at the ceiling.
        assert_eq!(rp.backoff_for(64), rp.backoff_for(u32::MAX));
        assert_eq!(rp.backoff_for(64), RetryPolicy::saturation_ceiling());
        // An in-range policy is untouched by the guard.
        let tame = RetryPolicy::new(5, Seconds::micros(1.0));
        assert_eq!(tame.backoff_for(3), Seconds::micros(8.0));
        // A finite policy ceiling below the absolute one still wins.
        let capped =
            RetryPolicy::new(90, Seconds::micros(1.0)).with_max_backoff(Seconds::micros(64.0));
        assert_eq!(capped.backoff_for(64), Seconds::micros(64.0));
    }

    #[test]
    fn retry_policy_backoff_grows_and_caps() {
        let rp = RetryPolicy::new(5, Seconds::micros(1.0))
            .with_multiplier(2.0)
            .with_max_backoff(Seconds::micros(4.0));
        assert_eq!(rp.backoff_for(0), Seconds::micros(1.0));
        assert_eq!(rp.backoff_for(1), Seconds::micros(2.0));
        assert_eq!(rp.backoff_for(2), Seconds::micros(4.0));
        assert_eq!(rp.backoff_for(10), Seconds::micros(4.0), "capped");
    }

    #[test]
    fn retry_inflation_feeds_off_path_loss() {
        let h = Seconds::millis(10.0);
        let p = FaultPlan::new()
            .drop_packets("a", 0.2, Seconds::ZERO, Seconds::millis(10.0))
            .with_retry(RetryPolicy::new(3, Seconds::micros(1.0)));
        let infl = p.retry_inflation(&graph(), h);
        assert!((infl - (1.0 - 0.2f64.powi(4)) / 0.8).abs() < 1e-12);
        assert!((p.residual_loss(&graph(), h) - 0.2f64.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_unknown_node() {
        let p = FaultPlan::new().outage("ghost", Seconds::ZERO, Seconds::millis(1.0));
        assert!(matches!(
            p.validate(&graph()),
            Err(LogNicError::UnknownNode { node, .. }) if node == "ghost"
        ));
    }

    #[test]
    fn validate_rejects_bad_parameters_and_windows() {
        let g = graph();
        let p = FaultPlan::new().drop_packets("a", 1.5, Seconds::ZERO, Seconds::millis(1.0));
        assert!(matches!(
            p.validate(&g),
            Err(LogNicError::InvalidFaultParameter { .. })
        ));
        let p = FaultPlan::new().degrade_rate("a", 0.0, Seconds::ZERO, Seconds::millis(1.0));
        assert!(p.validate(&g).is_err());
        let p = FaultPlan::new().outage("a", Seconds::millis(2.0), Seconds::millis(1.0));
        assert!(matches!(
            p.validate(&g),
            Err(LogNicError::InvalidFaultWindow { .. })
        ));
        let p = FaultPlan::new().lose_credits("a", 0, Seconds::ZERO, Seconds::millis(1.0));
        assert!(p.validate(&g).is_err());
        let p = FaultPlan::new().with_deadline(Seconds::ZERO);
        assert!(p.validate(&g).is_err());
    }

    #[test]
    fn overlapping_windows_detected_per_kind() {
        let p = FaultPlan::new()
            .outage("a", Seconds::millis(1.0), Seconds::millis(3.0))
            .outage("a", Seconds::millis(2.0), Seconds::millis(4.0)) // overlaps #0
            .drop_packets("a", 0.1, Seconds::millis(1.0), Seconds::millis(3.0)) // different kind
            .outage("b", Seconds::millis(1.0), Seconds::millis(3.0)); // different node
        assert_eq!(p.overlapping_windows(), vec![(0, 1)]);
        // Back-to-back windows do not overlap.
        let p = FaultPlan::new()
            .outage("a", Seconds::ZERO, Seconds::millis(1.0))
            .outage("a", Seconds::millis(1.0), Seconds::millis(2.0));
        assert!(p.overlapping_windows().is_empty());
    }
}
