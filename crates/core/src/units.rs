//! Strongly-typed physical quantities used throughout the model.
//!
//! The model works in three unit domains: data volumes ([`Bytes`]), data
//! rates ([`Bandwidth`], [`OpsRate`]) and time (`std::time::Duration`
//! via the [`Seconds`] alias on the float side). Newtypes keep packet
//! sizes, bandwidths and op rates from being mixed up in the formulas
//! of §3.5–§3.6 of the paper.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A data volume in bytes.
///
/// # Examples
///
/// ```
/// use lognic_model::units::Bytes;
///
/// let mtu = Bytes::new(1500);
/// assert_eq!(mtu.get(), 1500);
/// assert_eq!(Bytes::kib(4), Bytes::new(4096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Creates a volume of `n` bytes.
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// Creates a volume of `n` kibibytes (1024 bytes each).
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// Creates a volume of `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// Returns the raw byte count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the volume in bits.
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }

    /// Returns the volume as a floating-point byte count.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Scales the volume by a dimensionless factor, rounding to the
    /// nearest byte.
    pub fn scaled(self, factor: f64) -> Bytes {
        Bytes((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 && self.0.is_multiple_of(1024 * 1024) {
            write!(f, "{}MiB", self.0 / (1024 * 1024))
        } else if self.0 >= 1024 && self.0.is_multiple_of(1024) {
            write!(f, "{}KiB", self.0 / 1024)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl From<u64> for Bytes {
    fn from(n: u64) -> Self {
        Bytes(n)
    }
}

/// A data-transfer or data-processing rate, stored as bits per second.
///
/// Bandwidths describe interconnects (`BW_INTF`, `BW_MEM`, `BW_mn`),
/// ingress rates (`BW_in`) and IP computing throughputs (`P_vi`).
///
/// # Examples
///
/// ```
/// use lognic_model::units::Bandwidth;
///
/// let line_rate = Bandwidth::gbps(25.0);
/// assert_eq!(line_rate.as_gbps(), 25.0);
/// assert!(line_rate > Bandwidth::gbps(10.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// A zero rate.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a bandwidth from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or not finite.
    pub fn bps(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps >= 0.0,
            "bandwidth must be finite and non-negative"
        );
        Bandwidth(bps)
    }

    /// Creates a bandwidth from gigabits per second.
    pub fn gbps(gbps: f64) -> Self {
        Self::bps(gbps * 1e9)
    }

    /// Creates a bandwidth from megabits per second.
    pub fn mbps(mbps: f64) -> Self {
        Self::bps(mbps * 1e6)
    }

    /// Creates a bandwidth from gigabytes per second.
    pub fn gbytes_per_sec(gb: f64) -> Self {
        Self::bps(gb * 8e9)
    }

    /// Creates a bandwidth from megabytes per second.
    pub fn mbytes_per_sec(mb: f64) -> Self {
        Self::bps(mb * 8e6)
    }

    /// Returns the rate in bits per second.
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// Returns the rate in gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Returns the rate in megabytes per second.
    pub fn as_mbytes_per_sec(self) -> f64 {
        self.0 / 8e6
    }

    /// Returns the rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// Returns true if the rate is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Scales the rate by a dimensionless factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(self, factor: f64) -> Bandwidth {
        Self::bps(self.0 * factor)
    }

    /// Time to move `volume` at this rate.
    ///
    /// Returns [`Seconds::INFINITY`] when the rate is zero and the
    /// volume is non-zero.
    pub fn transfer_time(self, volume: Bytes) -> Seconds {
        if volume.get() == 0 {
            return Seconds::ZERO;
        }
        if self.0 == 0.0 {
            return Seconds::INFINITY;
        }
        Seconds::new(volume.bits() as f64 / self.0)
    }

    /// The smaller of two rates.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two rates.
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3}Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.3}Mbps", self.0 / 1e6)
        } else {
            write!(f, "{:.1}bps", self.0)
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        self.scaled(rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        assert!(rhs > 0.0, "cannot divide bandwidth by non-positive factor");
        Bandwidth(self.0 / rhs)
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        Bandwidth(iter.map(|b| b.0).sum())
    }
}

/// An operation rate for domain-specific engines (ops per second).
///
/// The extended-Roofline formulation of §3.2 replaces arithmetic
/// intensity with *packet intensity*: engine performance is expressed
/// as IP-specific operations per second rather than FLOPs.
///
/// # Examples
///
/// ```
/// use lognic_model::units::{Bytes, OpsRate};
///
/// let crc = OpsRate::mops(2.8);
/// // At one op per packet, 64 B packets: data rate the engine can absorb.
/// let bw = crc.data_rate(Bytes::new(64));
/// assert!((bw.as_gbps() - 2.8e6 * 64.0 * 8.0 / 1e9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct OpsRate(f64);

impl OpsRate {
    /// A zero rate.
    pub const ZERO: OpsRate = OpsRate(0.0);

    /// Creates a rate from operations per second.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is negative or not finite.
    pub fn per_sec(ops: f64) -> Self {
        assert!(
            ops.is_finite() && ops >= 0.0,
            "ops rate must be finite and non-negative"
        );
        OpsRate(ops)
    }

    /// Creates a rate from millions of operations per second.
    pub fn mops(mops: f64) -> Self {
        Self::per_sec(mops * 1e6)
    }

    /// Creates a rate from thousands of operations per second.
    pub fn kops(kops: f64) -> Self {
        Self::per_sec(kops * 1e3)
    }

    /// Returns the rate in operations per second.
    pub fn as_per_sec(self) -> f64 {
        self.0
    }

    /// Returns the rate in millions of operations per second.
    pub fn as_mops(self) -> f64 {
        self.0 / 1e6
    }

    /// Data rate when every operation consumes `per_op` bytes.
    pub fn data_rate(self, per_op: Bytes) -> Bandwidth {
        Bandwidth::bps(self.0 * per_op.bits() as f64)
    }

    /// The smaller of two rates.
    pub fn min(self, other: OpsRate) -> OpsRate {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for OpsRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3}Mops", self.0 / 1e6)
        } else {
            write!(f, "{:.1}ops", self.0)
        }
    }
}

impl Mul<f64> for OpsRate {
    type Output = OpsRate;
    fn mul(self, rhs: f64) -> OpsRate {
        OpsRate::per_sec(self.0 * rhs)
    }
}

/// A time interval in seconds, with explicit infinity for starved
/// components.
///
/// `std::time::Duration` cannot represent the infinite latencies that
/// arise when a component has zero service capacity, so the model uses
/// this float-backed type and converts at the API boundary where
/// convenient.
///
/// # Examples
///
/// ```
/// use lognic_model::units::Seconds;
///
/// let t = Seconds::micros(3.5);
/// assert!((t.as_micros() - 3.5).abs() < 1e-12);
/// assert!(t + Seconds::micros(0.5) == Seconds::micros(4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero elapsed time.
    pub const ZERO: Seconds = Seconds(0.0);
    /// An unbounded interval (starved or unstable component).
    pub const INFINITY: Seconds = Seconds(f64::INFINITY);

    /// Creates an interval from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn new(secs: f64) -> Self {
        assert!(
            !secs.is_nan() && secs >= 0.0,
            "time must be non-negative, got {secs}"
        );
        Seconds(secs)
    }

    /// Creates an interval from milliseconds.
    pub fn millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// Creates an interval from microseconds.
    pub fn micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// Creates an interval from nanoseconds.
    pub fn nanos(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Returns the interval in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the interval in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the interval in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the interval in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns true when the interval is unbounded.
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Returns true when the interval is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Scales the interval by a non-negative dimensionless factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn scaled(self, factor: f64) -> Seconds {
        assert!(
            !factor.is_nan() && factor >= 0.0,
            "scale factor must be non-negative"
        );
        Seconds(self.0 * factor)
    }

    /// The smaller of two intervals.
    pub fn min(self, other: Seconds) -> Seconds {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two intervals.
    pub fn max(self, other: Seconds) -> Seconds {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "inf")
        } else if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else if self.0 >= 1e-6 {
            write!(f, "{:.3}us", self.0 * 1e6)
        } else {
            write!(f, "{:.1}ns", self.0 * 1e9)
        }
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        Seconds(iter.map(|s| s.0).sum())
    }
}

impl From<std::time::Duration> for Seconds {
    fn from(d: std::time::Duration) -> Self {
        Seconds(d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_and_accessors() {
        assert_eq!(Bytes::new(10).get(), 10);
        assert_eq!(Bytes::kib(2).get(), 2048);
        assert_eq!(Bytes::mib(1).get(), 1 << 20);
        assert_eq!(Bytes::new(3).bits(), 24);
    }

    #[test]
    fn bytes_arithmetic() {
        assert_eq!(Bytes::new(5) + Bytes::new(7), Bytes::new(12));
        assert_eq!(
            Bytes::new(5) - Bytes::new(7),
            Bytes::new(0),
            "subtraction saturates"
        );
        let total: Bytes = [Bytes::new(1), Bytes::new(2)].into_iter().sum();
        assert_eq!(total, Bytes::new(3));
    }

    #[test]
    fn bytes_scaled_rounds() {
        assert_eq!(Bytes::new(100).scaled(0.5), Bytes::new(50));
        assert_eq!(
            Bytes::new(3).scaled(0.5),
            Bytes::new(2),
            "rounds to nearest"
        );
        assert_eq!(
            Bytes::new(100).scaled(-1.0),
            Bytes::new(0),
            "clamped at zero"
        );
    }

    #[test]
    fn bytes_display() {
        assert_eq!(Bytes::new(64).to_string(), "64B");
        assert_eq!(Bytes::kib(4).to_string(), "4KiB");
        assert_eq!(Bytes::mib(2).to_string(), "2MiB");
        assert_eq!(Bytes::new(1500).to_string(), "1500B");
    }

    #[test]
    fn bandwidth_unit_conversions() {
        let bw = Bandwidth::gbps(25.0);
        assert_eq!(bw.as_bps(), 25e9);
        assert_eq!(bw.as_gbps(), 25.0);
        assert_eq!(Bandwidth::mbps(1.0).as_bps(), 1e6);
        assert_eq!(Bandwidth::gbytes_per_sec(1.0).as_bps(), 8e9);
        assert_eq!(Bandwidth::mbytes_per_sec(1.0).as_bps(), 8e6);
        assert_eq!(bw.as_bytes_per_sec(), 25e9 / 8.0);
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::gbps(8.0);
        let t = bw.transfer_time(Bytes::new(1000));
        assert!((t.as_micros() - 1.0).abs() < 1e-12);
        assert_eq!(
            Bandwidth::ZERO.transfer_time(Bytes::new(1)),
            Seconds::INFINITY
        );
        assert_eq!(Bandwidth::ZERO.transfer_time(Bytes::new(0)), Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn bandwidth_rejects_negative() {
        let _ = Bandwidth::bps(-1.0);
    }

    #[test]
    fn bandwidth_min_max_sum() {
        let a = Bandwidth::gbps(1.0);
        let b = Bandwidth::gbps(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let s: Bandwidth = [a, b].into_iter().sum();
        assert_eq!(s, Bandwidth::gbps(3.0));
    }

    #[test]
    fn bandwidth_sub_saturates() {
        assert_eq!(Bandwidth::gbps(1.0) - Bandwidth::gbps(2.0), Bandwidth::ZERO);
    }

    #[test]
    fn ops_rate_data_rate() {
        let r = OpsRate::mops(1.0);
        assert_eq!(r.data_rate(Bytes::new(125)).as_bps(), 1e6 * 1000.0);
        assert_eq!(OpsRate::kops(5.0).as_per_sec(), 5000.0);
    }

    #[test]
    fn seconds_constructors() {
        assert!((Seconds::millis(1.0).as_secs() - 1e-3).abs() < 1e-15);
        assert!((Seconds::micros(1.0).as_secs() - 1e-6).abs() < 1e-15);
        assert!((Seconds::nanos(1.0).as_secs() - 1e-9).abs() < 1e-18);
        assert!((Seconds::micros(2.0).as_nanos() - 2000.0).abs() < 1e-9);
        assert!((Seconds::new(0.25).as_millis() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn seconds_infinity_and_zero() {
        assert!(Seconds::INFINITY.is_infinite());
        assert!(Seconds::ZERO.is_zero());
        assert!(!Seconds::new(1.0).is_infinite());
    }

    #[test]
    fn seconds_arithmetic_saturating_sub() {
        assert_eq!(Seconds::new(1.0) - Seconds::new(2.0), Seconds::ZERO);
        assert_eq!(Seconds::new(2.0) - Seconds::new(0.5), Seconds::new(1.5));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn seconds_rejects_negative() {
        let _ = Seconds::new(-0.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::gbps(25.0).to_string(), "25.000Gbps");
        assert_eq!(Bandwidth::mbps(1.5).to_string(), "1.500Mbps");
        assert_eq!(OpsRate::mops(2.5).to_string(), "2.500Mops");
        assert_eq!(Seconds::INFINITY.to_string(), "inf");
        assert_eq!(Seconds::micros(3.0).to_string(), "3.000us");
        assert_eq!(Seconds::millis(3.0).to_string(), "3.000ms");
    }

    #[test]
    fn duration_conversion() {
        let s: Seconds = std::time::Duration::from_micros(10).into();
        assert!((s.as_micros() - 10.0).abs() < 1e-9);
    }
}
