//! M/M/1/N queueing used for intra-IP queueing delay (§3.6, Eq. 9–12).
//!
//! LogNIC concatenates an IP's disjoint queues into one *virtual shared
//! queue* and models it as an M/M/1/N system: Poisson arrivals
//! (data-center request arrivals), exponential service times, a single
//! logical server and a finite capacity of `N` requests.
//!
//! The closed form of Eq. 12 is
//! `Q = (1/μ) · (ρ/(1−ρ) − N·ρ^N/(1−ρ^N))`, which this module
//! evaluates stably for all loads: ρ < 1, the ρ → 1 limit
//! (`Q = (N−1)/(2μ)`) and overload (ρ > 1, where the finite queue
//! keeps the delay bounded).

use crate::error::{ModelError, Result};
use crate::units::Seconds;

/// Window around ρ = 1 inside which the closed forms suffer
/// catastrophic cancellation (they subtract two ~1/(ρ−1) terms), so
/// first-order series expansions about ρ = 1 are used instead.
const RHO_ONE_EPS: f64 = 1e-6;

/// An M/M/1/N queue at a given utilization.
///
/// # Examples
///
/// ```
/// use lognic_model::queueing::Mm1n;
/// use lognic_model::units::Seconds;
///
/// let q = Mm1n::new(0.5, 2)?;
/// // Hand-computed: P = {4/7, 2/7, 1/7}; Q = service / 3.
/// assert!((q.blocking_probability() - 1.0 / 7.0).abs() < 1e-12);
/// let delay = q.queueing_delay(Seconds::micros(3.0));
/// assert!((delay.as_micros() - 1.0).abs() < 1e-9);
/// # Ok::<(), lognic_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1n {
    rho: f64,
    capacity: u32,
}

impl Mm1n {
    /// Creates a queue with utilization `rho = λ/μ` and capacity
    /// `capacity = N` (requests that fit in the system).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `rho` is negative
    /// or not finite, or when `capacity` is zero.
    pub fn new(rho: f64, capacity: u32) -> Result<Self> {
        if !(rho.is_finite() && rho >= 0.0) {
            return Err(ModelError::InvalidParameter {
                parameter: "rho",
                value: rho,
                constraint: "must be finite and non-negative",
            });
        }
        if capacity == 0 {
            return Err(ModelError::InvalidParameter {
                parameter: "capacity",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        Ok(Mm1n { rho, capacity })
    }

    /// The offered utilization `ρ = λ/μ`.
    pub fn utilization(self) -> f64 {
        self.rho
    }

    /// The queue capacity `N`.
    pub fn capacity(self) -> u32 {
        self.capacity
    }

    fn is_critical(self) -> bool {
        (self.rho - 1.0).abs() < RHO_ONE_EPS
    }

    /// Steady-state probability of exactly `k` requests in the system
    /// (Eq. 10). Zero for `k > N`.
    pub fn occupancy_probability(self, k: u32) -> f64 {
        let n = self.capacity;
        if k > n {
            return 0.0;
        }
        if self.is_critical() {
            // Series about ρ = 1: P_k ≈ (1 + (k − N/2)·(ρ−1)) / (N+1).
            let d = self.rho - 1.0;
            let nf = n as f64;
            return ((1.0 + (k as f64 - nf / 2.0) * d) / (nf + 1.0)).clamp(0.0, 1.0);
        }
        let rho = self.rho;
        if rho == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if rho < 1.0 {
            // ρ^k (1−ρ) / (1−ρ^{N+1})
            rho.powi(k as i32) * (1.0 - rho) / (1.0 - rho.powi(n as i32 + 1))
        } else {
            // Multiply through by ρ^{-N}: σ^{N−k} (1−ρ) / (σ^N − ρ),
            // with σ = 1/ρ < 1, to avoid overflowing ρ^N.
            let sigma = 1.0 / rho;
            sigma.powi((n - k) as i32) * (1.0 - rho) / (sigma.powi(n as i32) - rho)
        }
    }

    /// Probability that an arriving request finds the queue full and
    /// is dropped (`Pro_N`, the packet dropping rate of §3.6).
    pub fn blocking_probability(self) -> f64 {
        self.occupancy_probability(self.capacity)
    }

    /// Fraction of offered load that is actually admitted:
    /// `λ_e / λ = 1 − Pro_N`.
    pub fn delivered_fraction(self) -> f64 {
        1.0 - self.blocking_probability()
    }

    /// Mean number of requests in the system,
    /// `L = Σ n · Pro_n = ρ/(1−ρ) − (N+1)·ρ^{N+1}/(1−ρ^{N+1})`.
    pub fn mean_occupancy(self) -> f64 {
        let n = self.capacity as f64;
        if self.is_critical() {
            // Series about ρ = 1: L ≈ N/2 + N(N+2)·(ρ−1)/12.
            return n / 2.0 + n * (n + 2.0) * (self.rho - 1.0) / 12.0;
        }
        let rho = self.rho;
        if rho == 0.0 {
            return 0.0;
        }
        let tail = if rho < 1.0 {
            (n + 1.0) * rho.powi(self.capacity as i32 + 1)
                / (1.0 - rho.powi(self.capacity as i32 + 1))
        } else {
            // (N+1)/(σ^{N+1} − 1) with σ = 1/ρ, negated sign folded in.
            let sigma = 1.0 / rho;
            (n + 1.0) / (sigma.powi(self.capacity as i32 + 1) - 1.0)
        };
        rho / (1.0 - rho) - tail
    }

    /// The dimensionless queueing factor
    /// `ρ/(1−ρ) − N·ρ^N/(1−ρ^N)` from Eq. 12, such that
    /// `Q = service_time × factor`.
    pub fn queueing_factor(self) -> f64 {
        let n = self.capacity as f64;
        if self.is_critical() {
            // Series about ρ = 1: factor ≈ (N−1)/2 + (N²−1)·(ρ−1)/12.
            return ((n - 1.0) / 2.0 + (n * n - 1.0) * (self.rho - 1.0) / 12.0).max(0.0);
        }
        let rho = self.rho;
        if rho == 0.0 {
            return 0.0;
        }
        let tail = if rho < 1.0 {
            let rn = rho.powi(self.capacity as i32);
            n * rn / (1.0 - rn)
        } else {
            // N·ρ^N/(1−ρ^N) = −N/(1−σ^N), σ = 1/ρ.
            let sigma = 1.0 / rho;
            -n / (1.0 - sigma.powi(self.capacity as i32))
        };
        (rho / (1.0 - rho) - tail).max(0.0)
    }

    /// Average queueing delay `Q = (1/μ) · queueing_factor` (Eq. 12),
    /// where `service_time = 1/μ` is the mean request service time.
    pub fn queueing_delay(self, service_time: Seconds) -> Seconds {
        service_time.scaled(self.queueing_factor())
    }
}

/// An M/M/c/N queue: the multi-engine generalization of [`Mm1n`].
///
/// The paper's Eq. 9–12 model an IP's virtual shared queue with a
/// single logical server. For an IP whose parallelism degree `D` is
/// large (the SSD's 64 internal channels, a 16-core complex), the
/// single-server formula charges queueing delay that `D` concurrent
/// engines never exhibit at moderate load. `MmcN` keeps the same
/// assumptions (Poisson arrivals, exponential service, finite
/// capacity) but serves with `c` engines; at `c = 1` it reduces
/// exactly to [`Mm1n`].
///
/// # Examples
///
/// ```
/// use lognic_model::queueing::{Mm1n, MmcN};
/// use lognic_model::units::Seconds;
///
/// let single = Mm1n::new(0.6, 32)?;
/// let multi = MmcN::new(0.6, 8, 32)?;
/// let service = Seconds::micros(10.0);
/// // Eight engines at the same total utilization queue far less.
/// assert!(multi.queueing_delay(service) < single.queueing_delay(service));
/// // c = 1 reduces to the Eq. 12 closed form.
/// let reduced = MmcN::new(0.6, 1, 32)?;
/// let a = reduced.queueing_delay(service).as_secs();
/// let b = single.queueing_delay(service).as_secs();
/// assert!((a - b).abs() < 1e-12);
/// # Ok::<(), lognic_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MmcN {
    rho: f64,
    engines: u32,
    capacity: u32,
    /// Stationary occupancy distribution, `probs[k]` = P(k in system).
    probs: Vec<f64>,
}

impl MmcN {
    /// Creates a queue at system utilization `rho = λ/(c·μ)` with `c =
    /// engines` servers and total capacity `capacity` (in service +
    /// queued). Capacity below the engine count is treated as
    /// `engines` (every engine can hold a request).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `rho` is negative
    /// or not finite, or when `engines`/`capacity` is zero.
    pub fn new(rho: f64, engines: u32, capacity: u32) -> Result<Self> {
        if !(rho.is_finite() && rho >= 0.0) {
            return Err(ModelError::InvalidParameter {
                parameter: "rho",
                value: rho,
                constraint: "must be finite and non-negative",
            });
        }
        if engines == 0 {
            return Err(ModelError::InvalidParameter {
                parameter: "engines",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        if capacity == 0 {
            return Err(ModelError::InvalidParameter {
                parameter: "capacity",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        let capacity = capacity.max(engines);
        // Offered load in erlangs: a = λ/μ = ρ·c.
        let a = rho * engines as f64;
        let n = capacity as usize;
        // Log-space weights: ln w_{k+1} = ln w_k + ln a − ln min(k+1, c).
        let mut log_w = Vec::with_capacity(n + 1);
        log_w.push(0.0f64);
        if a == 0.0 {
            let mut probs = vec![0.0; n + 1];
            probs[0] = 1.0;
            return Ok(MmcN {
                rho,
                engines,
                capacity,
                probs,
            });
        }
        let ln_a = a.ln();
        for k in 0..n {
            let srv = (k + 1).min(engines as usize) as f64;
            let prev = *log_w.last().expect("non-empty");
            log_w.push(prev + ln_a - srv.ln());
        }
        let max = log_w.iter().copied().fold(f64::MIN, f64::max);
        let mut probs: Vec<f64> = log_w.iter().map(|l| (l - max).exp()).collect();
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        Ok(MmcN {
            rho,
            engines,
            capacity,
            probs,
        })
    }

    /// The system utilization `ρ`.
    pub fn utilization(&self) -> f64 {
        self.rho
    }

    /// The engine count `c`.
    pub fn engines(&self) -> u32 {
        self.engines
    }

    /// The total capacity `N`.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Steady-state probability of exactly `k` requests in the system.
    pub fn occupancy_probability(&self, k: u32) -> f64 {
        self.probs.get(k as usize).copied().unwrap_or(0.0)
    }

    /// Probability an arriving request finds the system full.
    pub fn blocking_probability(&self) -> f64 {
        self.probs[self.capacity as usize]
    }

    /// Mean requests in the system.
    pub fn mean_occupancy(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(k, p)| k as f64 * p)
            .sum()
    }

    /// Mean requests *waiting* (beyond the `c` in service).
    pub fn mean_queue_length(&self) -> f64 {
        let c = self.engines as usize;
        self.probs
            .iter()
            .enumerate()
            .skip(c + 1)
            .map(|(k, p)| (k - c) as f64 * p)
            .sum()
    }

    /// Mean queueing delay for a per-request service time
    /// (Little's law on the waiting line: `Q = L_q / λ_e`).
    pub fn queueing_delay(&self, service_time: Seconds) -> Seconds {
        if self.rho == 0.0 {
            return Seconds::ZERO;
        }
        let lambda = self.rho * self.engines as f64 / service_time.as_secs().max(f64::MIN_POSITIVE);
        let lambda_e = lambda * (1.0 - self.blocking_probability());
        if lambda_e <= 0.0 {
            return Seconds::ZERO;
        }
        Seconds::new(self.mean_queue_length() / lambda_e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(rho: f64, n: u32) -> Mm1n {
        Mm1n::new(rho, n).unwrap()
    }

    /// Brute-force reference implementation of the occupancy
    /// distribution from the geometric series in Eq. 10.
    fn reference_probs(rho: f64, n: u32) -> Vec<f64> {
        let weights: Vec<f64> = (0..=n).map(|k| rho.powi(k as i32)).collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(Mm1n::new(-0.1, 4).is_err());
        assert!(Mm1n::new(f64::NAN, 4).is_err());
        assert!(Mm1n::new(f64::INFINITY, 4).is_err());
        assert!(Mm1n::new(0.5, 0).is_err());
        assert!(Mm1n::new(0.0, 1).is_ok());
    }

    #[test]
    fn occupancy_matches_reference_underload() {
        for &rho in &[0.1, 0.5, 0.9, 0.99] {
            for &n in &[1u32, 2, 8, 64] {
                let m = q(rho, n);
                let reference = reference_probs(rho, n);
                for (k, &want) in reference.iter().enumerate() {
                    let got = m.occupancy_probability(k as u32);
                    assert!(
                        (got - want).abs() < 1e-12,
                        "rho={rho} n={n} k={k}: got {got}, want {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn occupancy_matches_reference_overload() {
        for &rho in &[1.5, 2.0, 4.0] {
            for &n in &[1u32, 2, 8, 32] {
                let m = q(rho, n);
                let reference = reference_probs(rho, n);
                for (k, &want) in reference.iter().enumerate() {
                    let got = m.occupancy_probability(k as u32);
                    assert!(
                        (got - want).abs() < 1e-12,
                        "rho={rho} n={n} k={k}: got {got}, want {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn occupancy_is_stable_for_huge_queues_under_overload() {
        // Naive ρ^N would overflow: 3^1000.
        let m = q(3.0, 1000);
        let p = m.blocking_probability();
        assert!(p.is_finite());
        // At heavy overload almost every slot distribution mass sits at N.
        assert!(p > 0.66 && p <= 1.0, "p = {p}");
    }

    #[test]
    fn occupancy_sums_to_one() {
        for &rho in &[0.0, 0.3, 1.0, 2.5] {
            let m = q(rho, 16);
            let total: f64 = (0..=16).map(|k| m.occupancy_probability(k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "rho={rho}: sum={total}");
        }
    }

    #[test]
    fn occupancy_beyond_capacity_is_zero() {
        assert_eq!(q(0.5, 4).occupancy_probability(5), 0.0);
    }

    #[test]
    fn empty_system_at_zero_load() {
        let m = q(0.0, 8);
        assert_eq!(m.occupancy_probability(0), 1.0);
        assert_eq!(m.blocking_probability(), 0.0);
        assert_eq!(m.mean_occupancy(), 0.0);
        assert_eq!(m.queueing_factor(), 0.0);
        assert_eq!(m.queueing_delay(Seconds::micros(5.0)), Seconds::ZERO);
    }

    #[test]
    fn hand_computed_case_rho_half_n_two() {
        // P = {4/7, 2/7, 1/7}, L = 4/7, factor = 1/3.
        let m = q(0.5, 2);
        assert!((m.occupancy_probability(0) - 4.0 / 7.0).abs() < 1e-12);
        assert!((m.occupancy_probability(1) - 2.0 / 7.0).abs() < 1e-12);
        assert!((m.blocking_probability() - 1.0 / 7.0).abs() < 1e-12);
        assert!((m.mean_occupancy() - 4.0 / 7.0).abs() < 1e-12);
        assert!((m.queueing_factor() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_overload_rho_two_n_two() {
        // Weights {1, 2, 4} → P = {1/7, 2/7, 4/7}; factor = −2 + 8/3 = 2/3.
        let m = q(2.0, 2);
        assert!((m.blocking_probability() - 4.0 / 7.0).abs() < 1e-12);
        assert!((m.queueing_factor() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn critical_load_limits() {
        // At ρ = 1 the distribution is uniform.
        let m = q(1.0, 4);
        for k in 0..=4 {
            assert!((m.occupancy_probability(k) - 0.2).abs() < 1e-12);
        }
        assert!((m.mean_occupancy() - 2.0).abs() < 1e-12);
        assert!(
            (m.queueing_factor() - 1.5).abs() < 1e-12,
            "(N−1)/2 with N = 4"
        );
    }

    #[test]
    fn formulas_are_continuous_through_rho_one() {
        let n = 8;
        let below = q(1.0 - 1e-7, n);
        let at = q(1.0, n);
        let above = q(1.0 + 1e-7, n);
        assert!((below.queueing_factor() - at.queueing_factor()).abs() < 1e-4);
        assert!((above.queueing_factor() - at.queueing_factor()).abs() < 1e-4);
        assert!((below.mean_occupancy() - at.mean_occupancy()).abs() < 1e-4);
        assert!((above.blocking_probability() - at.blocking_probability()).abs() < 1e-4);
    }

    #[test]
    fn eq9_identity_l_over_lambda_e_minus_service() {
        // Verify Eq. 12 equals Eq. 9: Q = L/λe − 1/μ, with λ = ρμ and
        // λe = λ(1 − P_N). Take μ = 1 so times are dimensionless.
        for &rho in &[0.2, 0.7, 0.95, 1.3, 3.0] {
            for &n in &[1u32, 2, 5, 20] {
                let m = q(rho, n);
                let lambda_e = rho * (1.0 - m.blocking_probability());
                let eq9 = m.mean_occupancy() / lambda_e - 1.0;
                let eq12 = m.queueing_factor();
                assert!(
                    (eq9 - eq12).abs() < 1e-9,
                    "rho={rho} n={n}: eq9={eq9} eq12={eq12}"
                );
            }
        }
    }

    #[test]
    fn queueing_factor_monotone_in_load() {
        let n = 16;
        let mut last = -1.0;
        for i in 1..40 {
            let rho = i as f64 * 0.1;
            let f = q(rho, n).queueing_factor();
            assert!(f >= last, "factor decreased at rho={rho}");
            last = f;
        }
    }

    #[test]
    fn queueing_factor_bounded_by_capacity() {
        // Delay through an N-slot queue can never exceed N−1 services.
        for &rho in &[0.5, 1.0, 10.0, 1e6] {
            for &n in &[1u32, 4, 128] {
                let f = q(rho, n).queueing_factor();
                assert!(
                    f <= (n as f64 - 1.0) + 1e-9,
                    "rho={rho} n={n}: factor {f} exceeds N−1"
                );
            }
        }
    }

    #[test]
    fn blocking_increases_with_load_and_decreases_with_capacity() {
        assert!(q(0.9, 8).blocking_probability() > q(0.5, 8).blocking_probability());
        assert!(q(0.9, 4).blocking_probability() > q(0.9, 16).blocking_probability());
    }

    #[test]
    fn capacity_one_system_has_no_queueing() {
        // N = 1: a request in service is the only request; Q = 0.
        for &rho in &[0.2, 1.0, 5.0] {
            assert!(q(rho, 1).queueing_factor().abs() < 1e-12, "rho={rho}");
        }
    }

    #[test]
    fn delivered_fraction_complements_blocking() {
        let m = q(1.4, 6);
        assert!((m.delivered_fraction() + m.blocking_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn queueing_delay_scales_service_time() {
        let m = q(0.5, 2);
        let d = m.queueing_delay(Seconds::micros(9.0));
        assert!((d.as_micros() - 3.0).abs() < 1e-9);
    }

    // --- M/M/c/N ---

    #[test]
    fn mmcn_rejects_invalid_inputs() {
        assert!(MmcN::new(-1.0, 1, 1).is_err());
        assert!(MmcN::new(f64::NAN, 1, 1).is_err());
        assert!(MmcN::new(0.5, 0, 1).is_err());
        assert!(MmcN::new(0.5, 1, 0).is_err());
    }

    #[test]
    fn mmcn_reduces_to_mm1n_at_one_engine() {
        for &rho in &[0.2, 0.5, 0.9, 1.5] {
            for &n in &[2u32, 8, 64] {
                let single = q(rho, n);
                let multi = MmcN::new(rho, 1, n).unwrap();
                for k in 0..=n {
                    assert!(
                        (single.occupancy_probability(k) - multi.occupancy_probability(k)).abs()
                            < 1e-9,
                        "rho={rho} n={n} k={k}"
                    );
                }
                let s = Seconds::micros(7.0);
                assert!(
                    (single.queueing_delay(s).as_secs() - multi.queueing_delay(s).as_secs()).abs()
                        < 1e-12,
                    "rho={rho} n={n}"
                );
            }
        }
    }

    #[test]
    fn mmcn_occupancy_sums_to_one() {
        for &(rho, c, n) in &[(0.5, 4, 16), (0.9, 64, 256), (2.0, 8, 32)] {
            let m = MmcN::new(rho, c, n).unwrap();
            let total: f64 = (0..=n).map(|k| m.occupancy_probability(k)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mmcn_multi_engine_queues_less_than_single() {
        let s = Seconds::micros(100.0);
        let single = MmcN::new(0.3, 1, 256).unwrap();
        let multi = MmcN::new(0.3, 64, 256).unwrap();
        assert!(multi.queueing_delay(s).as_secs() < single.queueing_delay(s).as_secs() / 100.0);
    }

    #[test]
    fn mmcn_high_parallelism_at_moderate_load_has_negligible_queueing() {
        // The SSD case: 64 channels at 30% load.
        let m = MmcN::new(0.3, 64, 256).unwrap();
        let delay = m.queueing_delay(Seconds::micros(100.0));
        assert!(delay.as_micros() < 0.2, "delay = {delay}");
        assert!(m.blocking_probability() < 1e-12);
    }

    #[test]
    fn mmcn_zero_load_is_empty() {
        let m = MmcN::new(0.0, 4, 16).unwrap();
        assert_eq!(m.occupancy_probability(0), 1.0);
        assert_eq!(m.queueing_delay(Seconds::micros(5.0)), Seconds::ZERO);
        assert_eq!(m.mean_queue_length(), 0.0);
    }

    #[test]
    fn mmcn_overload_blocks_heavily() {
        let m = MmcN::new(3.0, 4, 16).unwrap();
        assert!(m.blocking_probability() > 0.5);
        // Delivered ≈ capacity: λe = λ(1−pN) ≈ cμ.
        let delivered = 3.0 * 4.0 * (1.0 - m.blocking_probability());
        assert!(
            (delivered - 4.0).abs() < 0.1,
            "delivered = {delivered} engines' worth"
        );
    }

    #[test]
    fn mmcn_capacity_clamped_to_engines() {
        let m = MmcN::new(0.5, 8, 2).unwrap();
        assert_eq!(m.capacity(), 8);
        assert_eq!(m.engines(), 8);
    }

    #[test]
    fn mmcn_numerically_stable_for_large_systems() {
        let m = MmcN::new(0.95, 256, 1024).unwrap();
        let total: f64 = (0..=1024).map(|k| m.occupancy_probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(m.mean_occupancy().is_finite());
        assert!(m
            .queueing_delay(Seconds::micros(10.0))
            .as_secs()
            .is_finite());
    }

    #[test]
    fn mmcn_monotone_in_load() {
        let s = Seconds::micros(10.0);
        let mut last = -1.0;
        for i in 1..30 {
            let rho = i as f64 * 0.1;
            let d = MmcN::new(rho, 4, 64).unwrap().queueing_delay(s).as_secs();
            assert!(d >= last - 1e-15, "delay decreased at rho={rho}");
            last = d;
        }
    }
}
