//! Error types returned by model construction and evaluation.

use core::fmt;

/// Errors produced while building or evaluating a LogNIC model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The execution graph contains a cycle; LogNIC graphs are DAGs
    /// (§3.3). Recirculation must be unrolled into extra vertices.
    CycleDetected {
        /// Name of a node participating in the cycle.
        node: String,
    },
    /// A node other than an egress engine has no outgoing edges, or a
    /// node other than an ingress engine has no incoming edges.
    Disconnected {
        /// Name of the dangling node.
        node: String,
    },
    /// The graph has no ingress vertex.
    MissingIngress,
    /// The graph has no egress vertex.
    MissingEgress,
    /// The graph has no vertices at all.
    EmptyGraph,
    /// No ingress→egress path exists.
    NoPath,
    /// A numeric parameter is outside its valid domain.
    InvalidParameter {
        /// Which parameter was rejected (e.g. `"delta"`).
        parameter: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable constraint, e.g. `"must lie in [0, 1]"`.
        constraint: &'static str,
    },
    /// An edge references a node id that does not belong to this graph.
    UnknownNode {
        /// The raw index that was out of range.
        index: usize,
    },
    /// Two graphs being consolidated disagree on shared hardware.
    IncompatibleGraphs {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// A weight vector (tenant weights, traffic mix) does not form a
    /// valid convex combination.
    InvalidWeights {
        /// Explanation of the violation.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CycleDetected { node } => {
                write!(f, "execution graph contains a cycle through node `{node}`")
            }
            ModelError::Disconnected { node } => {
                write!(
                    f,
                    "node `{node}` is not connected on the ingress-egress data path"
                )
            }
            ModelError::MissingIngress => write!(f, "execution graph has no ingress vertex"),
            ModelError::MissingEgress => write!(f, "execution graph has no egress vertex"),
            ModelError::EmptyGraph => write!(f, "execution graph has no vertices"),
            ModelError::NoPath => write!(f, "no ingress-to-egress path exists"),
            ModelError::InvalidParameter {
                parameter,
                value,
                constraint,
            } => {
                write!(
                    f,
                    "parameter `{parameter}` = {value} is invalid: {constraint}"
                )
            }
            ModelError::UnknownNode { index } => {
                write!(f, "node index {index} does not belong to this graph")
            }
            ModelError::IncompatibleGraphs { reason } => {
                write!(f, "graphs cannot be consolidated: {reason}")
            }
            ModelError::InvalidWeights { reason } => {
                write!(f, "invalid weight vector: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::CycleDetected { node: "ip1".into() };
        assert!(e.to_string().contains("ip1"));
        let e = ModelError::InvalidParameter {
            parameter: "delta",
            value: 1.5,
            constraint: "must lie in [0, 1]",
        };
        assert!(e.to_string().contains("delta"));
        assert!(e.to_string().contains("1.5"));
        assert!(!ModelError::MissingIngress.to_string().is_empty());
        assert!(!ModelError::NoPath.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ModelError>();
    }
}
