//! Error types returned by model construction and evaluation.

use core::fmt;

/// Errors produced while building or evaluating a LogNIC model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The execution graph contains a cycle; LogNIC graphs are DAGs
    /// (§3.3). Recirculation must be unrolled into extra vertices.
    CycleDetected {
        /// Name of a node participating in the cycle.
        node: String,
    },
    /// A node other than an egress engine has no outgoing edges, or a
    /// node other than an ingress engine has no incoming edges.
    Disconnected {
        /// Name of the dangling node.
        node: String,
    },
    /// The graph has no ingress vertex.
    MissingIngress,
    /// The graph has no egress vertex.
    MissingEgress,
    /// The graph has no vertices at all.
    EmptyGraph,
    /// No ingress→egress path exists.
    NoPath,
    /// A numeric parameter is outside its valid domain.
    InvalidParameter {
        /// Which parameter was rejected (e.g. `"delta"`).
        parameter: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable constraint, e.g. `"must lie in [0, 1]"`.
        constraint: &'static str,
    },
    /// An edge references a node id that does not belong to this graph.
    UnknownNode {
        /// The raw index that was out of range.
        index: usize,
    },
    /// Two graphs being consolidated disagree on shared hardware.
    IncompatibleGraphs {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// A weight vector (tenant weights, traffic mix) does not form a
    /// valid convex combination.
    InvalidWeights {
        /// Explanation of the violation.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CycleDetected { node } => {
                write!(f, "execution graph contains a cycle through node `{node}`")
            }
            ModelError::Disconnected { node } => {
                write!(
                    f,
                    "node `{node}` is not connected on the ingress-egress data path"
                )
            }
            ModelError::MissingIngress => write!(f, "execution graph has no ingress vertex"),
            ModelError::MissingEgress => write!(f, "execution graph has no egress vertex"),
            ModelError::EmptyGraph => write!(f, "execution graph has no vertices"),
            ModelError::NoPath => write!(f, "no ingress-to-egress path exists"),
            ModelError::InvalidParameter {
                parameter,
                value,
                constraint,
            } => {
                write!(
                    f,
                    "parameter `{parameter}` = {value} is invalid: {constraint}"
                )
            }
            ModelError::UnknownNode { index } => {
                write!(f, "node index {index} does not belong to this graph")
            }
            ModelError::IncompatibleGraphs { reason } => {
                write!(f, "graphs cannot be consolidated: {reason}")
            }
            ModelError::InvalidWeights { reason } => {
                write!(f, "invalid weight vector: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

/// The workspace-wide error type: everything that can go wrong while
/// building, validating or running a LogNIC scenario — structural
/// model errors ([`ModelError`]), malformed fault plans, invalid
/// device profiles or run configurations, and the simulation
/// watchdog's structured abort report.
///
/// `SimulationBuilder::build`, the degraded-mode estimators and the
/// replication engine all return this type so that malformed inputs
/// surface as diagnostics instead of panics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LogNicError {
    /// A structural or parameter error from the analytical model.
    Model(ModelError),
    /// A name (service override, queue plan, fault window, …) refers
    /// to a node that does not exist in the execution graph.
    UnknownNode {
        /// What referenced the node (e.g. `"fault window"`).
        context: &'static str,
        /// The dangling name.
        node: String,
    },
    /// Several names across a builder's overrides, queue plans and
    /// fault windows refer to nodes absent from the execution graph.
    /// Reported as one aggregate so a misconfigured scenario surfaces
    /// every dangling reference in a single round trip instead of
    /// failing on the first.
    UnknownNodes {
        /// `(context, name)` pairs, in the order the references were
        /// declared (e.g. `("service override", "ghost")`).
        references: Vec<(&'static str, String)>,
    },
    /// A fault-plan parameter is outside its valid domain.
    InvalidFaultParameter {
        /// Which parameter was rejected (e.g. `"drop probability"`).
        parameter: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable constraint, e.g. `"must lie in (0, 1]"`.
        constraint: &'static str,
    },
    /// A fault window is empty or inverted (`until <= from`).
    InvalidFaultWindow {
        /// The targeted node.
        node: String,
        /// Window start, in seconds.
        from: f64,
        /// Window end, in seconds.
        until: f64,
    },
    /// A run configuration is unusable (e.g. warmup past the horizon).
    InvalidConfig {
        /// Explanation of the problem.
        reason: String,
    },
    /// A hardware model, traffic profile or device profile fails
    /// validation.
    InvalidProfile {
        /// The component that failed (e.g. `"hardware model"`).
        component: String,
        /// Explanation of the violation.
        reason: String,
    },
    /// The static analyzer rejected the scenario: at least one
    /// diagnostic is at `Deny` level under the active
    /// [`crate::analyze::AnalysisConfig`]. All findings (including the
    /// non-gating ones) ride along so callers can render the full
    /// report.
    AnalysisRejected {
        /// Every finding from the run, in pass-registry order; at
        /// least one is at `Deny` level.
        diagnostics: Vec<crate::analyze::Diagnostic>,
    },
    /// A recorded packet trace is malformed: truncated or mislabeled
    /// binary framing, an unparsable CSV field, a zero-byte packet, or
    /// arrival timestamps that run backwards. Trace ingest reports the
    /// defect as a diagnostic instead of panicking so that corrupt
    /// capture files surface like any other bad input.
    InvalidTrace {
        /// Explanation of the defect.
        reason: String,
        /// Index of the offending record, when the defect is local to
        /// one record rather than the file framing.
        record: Option<u64>,
    },
    /// A multi-seed replication partially failed: some replicas
    /// completed and some aborted (typically on the event-budget
    /// watchdog). The report names every seed on both sides — in seed
    /// order, independent of the thread schedule — so a capacity
    /// query can tell "one pathological seed" from "the scenario
    /// never terminates".
    ReplicationPartial {
        /// Seeds whose replicas completed, in aggregation order.
        completed: Vec<u64>,
        /// `(seed, error)` for every failed replica, in aggregation
        /// order.
        failed: Vec<(u64, Box<LogNicError>)>,
    },
    /// The simulation watchdog aborted a run that exceeded its event
    /// budget — the structured report replaces an apparent hang.
    WatchdogAbort {
        /// Events processed when the watchdog fired.
        events: u64,
        /// Simulated time reached, in seconds.
        sim_time: f64,
        /// Packets injected so far (all-time).
        injected: u64,
        /// Requests still queued or in service across all nodes.
        in_flight: u64,
    },
}

impl fmt::Display for LogNicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogNicError::Model(e) => e.fmt(f),
            LogNicError::UnknownNode { context, node } => {
                write!(f, "{context} references unknown node `{node}`")
            }
            LogNicError::UnknownNodes { references } => {
                write!(f, "{} unknown node references:", references.len())?;
                for (context, node) in references {
                    write!(f, " {context}→`{node}`")?;
                }
                Ok(())
            }
            LogNicError::InvalidFaultParameter {
                parameter,
                value,
                constraint,
            } => write!(
                f,
                "fault parameter `{parameter}` = {value} is invalid: {constraint}"
            ),
            LogNicError::InvalidFaultWindow { node, from, until } => write!(
                f,
                "fault window [{from}s, {until}s) on node `{node}` is empty or inverted"
            ),
            LogNicError::InvalidConfig { reason } => {
                write!(f, "invalid run configuration: {reason}")
            }
            LogNicError::InvalidProfile { component, reason } => {
                write!(f, "invalid {component}: {reason}")
            }
            LogNicError::AnalysisRejected { diagnostics } => {
                let denied: Vec<&crate::analyze::Diagnostic> =
                    diagnostics.iter().filter(|d| d.is_denied()).collect();
                write!(
                    f,
                    "static analysis rejected the scenario with {} denied diagnostic{}:",
                    denied.len(),
                    if denied.len() == 1 { "" } else { "s" }
                )?;
                for d in denied {
                    write!(f, " [{}] {};", d.code.as_str(), d.message)?;
                }
                Ok(())
            }
            LogNicError::InvalidTrace { reason, record } => match record {
                Some(idx) => write!(f, "invalid packet trace at record {idx}: {reason}"),
                None => write!(f, "invalid packet trace: {reason}"),
            },
            LogNicError::ReplicationPartial { completed, failed } => {
                write!(
                    f,
                    "replication partially failed: {} of {} seeds aborted;",
                    failed.len(),
                    completed.len() + failed.len()
                )?;
                for (seed, err) in failed {
                    write!(f, " seed {seed}: {err};")?;
                }
                Ok(())
            }
            LogNicError::WatchdogAbort {
                events,
                sim_time,
                injected,
                in_flight,
            } => write!(
                f,
                "watchdog aborted non-terminating run after {events} events \
                 (sim time {sim_time}s, {injected} injected, {in_flight} in flight)"
            ),
        }
    }
}

impl std::error::Error for LogNicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogNicError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for LogNicError {
    fn from(e: ModelError) -> Self {
        LogNicError::Model(e)
    }
}

/// Convenience alias for results carrying the workspace-wide error.
pub type LogNicResult<T> = std::result::Result<T, LogNicError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::CycleDetected { node: "ip1".into() };
        assert!(e.to_string().contains("ip1"));
        let e = ModelError::InvalidParameter {
            parameter: "delta",
            value: 1.5,
            constraint: "must lie in [0, 1]",
        };
        assert!(e.to_string().contains("delta"));
        assert!(e.to_string().contains("1.5"));
        assert!(!ModelError::MissingIngress.to_string().is_empty());
        assert!(!ModelError::NoPath.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ModelError>();
        assert_send_sync::<LogNicError>();
    }

    #[test]
    fn lognic_error_wraps_model_error() {
        let e: LogNicError = ModelError::MissingIngress.into();
        assert!(matches!(e, LogNicError::Model(_)));
        assert!(e.to_string().contains("ingress"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn lognic_error_display_is_informative() {
        let e = LogNicError::UnknownNode {
            context: "fault window",
            node: "crypto".into(),
        };
        assert!(e.to_string().contains("crypto"));
        let e = LogNicError::WatchdogAbort {
            events: 1000,
            sim_time: 0.5,
            injected: 42,
            in_flight: 7,
        };
        assert!(e.to_string().contains("1000"));
        assert!(e.to_string().contains("watchdog"));
        let e = LogNicError::InvalidFaultWindow {
            node: "ip".into(),
            from: 2.0,
            until: 1.0,
        };
        assert!(e.to_string().contains("ip"));
        let e = LogNicError::UnknownNodes {
            references: vec![
                ("service override", "ghost".into()),
                ("outage", "phantom".into()),
            ],
        };
        let msg = e.to_string();
        assert!(msg.contains("ghost") && msg.contains("phantom"), "{msg}");
        assert!(msg.contains('2'), "aggregate count: {msg}");
    }
}
