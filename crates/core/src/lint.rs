//! Consistency linting for execution graphs.
//!
//! The builder enforces structural validity (DAG, connectivity); this
//! pass flags *semantic* suspicions in the `δ/α/β` annotations that
//! typically indicate a mis-specified program: vertices that emit more
//! traffic than they receive, media fractions on edges that carry
//! nothing, starved vertices, and saturating partitions. Warnings are
//! advisory — all of these are occasionally intentional (e.g. `α > δ`
//! folds an IP's internal traffic into its ingress edge, §4.7).

use crate::graph::{ExecutionGraph, NodeId, NodeKind};

/// One advisory finding.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LintWarning {
    /// A vertex's outgoing `Σδ` exceeds its incoming `Σδ`: the graph
    /// creates traffic out of thin air.
    AmplifyingNode {
        /// The vertex.
        node: NodeId,
        /// Its name.
        name: String,
        /// Incoming `Σδ`.
        delta_in: f64,
        /// Outgoing `Σδ`.
        delta_out: f64,
    },
    /// An edge declares interface/memory usage but carries no traffic
    /// (`δ = 0`): the media fractions will charge the Eq. 2 bounds for
    /// data that never flows.
    MediumOnEmptyEdge {
        /// The edge index.
        edge: usize,
    },
    /// An IP vertex receives no traffic (`Σδ_in = 0`) yet sits on the
    /// data path.
    StarvedNode {
        /// The vertex.
        node: NodeId,
        /// Its name.
        name: String,
    },
    /// Partitions of same-named vertices sum above 1: the virtual IPs
    /// oversubscribe the physical one.
    OversubscribedPartition {
        /// The shared physical name.
        name: String,
        /// The summed `γ`.
        total: f64,
    },
}

impl core::fmt::Display for LintWarning {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LintWarning::AmplifyingNode { name, delta_in, delta_out, .. } => write!(
                f,
                "node `{name}` emits more than it receives (Σδ_out {delta_out:.3} > Σδ_in {delta_in:.3})"
            ),
            LintWarning::MediumOnEmptyEdge { edge } => {
                write!(f, "edge #{edge} declares medium usage but carries no traffic (δ = 0)")
            }
            LintWarning::StarvedNode { name, .. } => {
                write!(f, "node `{name}` receives no traffic (Σδ_in = 0)")
            }
            LintWarning::OversubscribedPartition { name, total } => write!(
                f,
                "vertices named `{name}` hold γ partitions summing to {total:.2} > 1"
            ),
        }
    }
}

/// Lints a graph, returning advisory warnings (empty = clean).
///
/// # Examples
///
/// ```
/// use lognic_model::graph::ExecutionGraph;
/// use lognic_model::lint::lint;
/// use lognic_model::params::IpParams;
/// use lognic_model::units::Bandwidth;
///
/// # fn main() -> lognic_model::error::Result<()> {
/// let g = ExecutionGraph::chain("ok", &[("ip", IpParams::new(Bandwidth::gbps(1.0)))])?;
/// assert!(lint(&g).is_empty());
/// # Ok(())
/// # }
/// ```
pub fn lint(graph: &ExecutionGraph) -> Vec<LintWarning> {
    let mut warnings = Vec::new();
    const EPS: f64 = 1e-9;

    for (i, node) in graph.nodes().iter().enumerate() {
        let id = NodeId(i);
        match node.kind() {
            NodeKind::Ingress => {}
            NodeKind::Egress => {}
            _ => {
                let din = graph.delta_in_sum(id);
                let dout = graph.delta_out_sum(id);
                if dout > din + EPS {
                    warnings.push(LintWarning::AmplifyingNode {
                        node: id,
                        name: node.name().to_owned(),
                        delta_in: din,
                        delta_out: dout,
                    });
                }
                if din <= EPS {
                    warnings.push(LintWarning::StarvedNode {
                        node: id,
                        name: node.name().to_owned(),
                    });
                }
            }
        }
    }

    for (i, e) in graph.edges().iter().enumerate() {
        let p = e.params();
        if p.delta() <= EPS && (p.interface_fraction() > EPS || p.memory_fraction() > EPS) {
            warnings.push(LintWarning::MediumOnEmptyEdge { edge: i });
        }
    }

    // γ oversubscription across same-named vertices.
    let mut seen: Vec<(&str, f64, usize)> = Vec::new();
    for node in graph.nodes() {
        let Some(p) = node.params() else { continue };
        match seen.iter_mut().find(|(n, _, _)| *n == node.name()) {
            Some(entry) => {
                entry.1 += p.partition();
                entry.2 += 1;
            }
            None => seen.push((node.name(), p.partition(), 1)),
        }
    }
    for (name, total, count) in seen {
        if count > 1 && total > 1.0 + EPS {
            warnings.push(LintWarning::OversubscribedPartition {
                name: name.to_owned(),
                total,
            });
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EdgeParams, IpParams};
    use crate::units::Bandwidth;

    fn ip(gbps: f64) -> IpParams {
        IpParams::new(Bandwidth::gbps(gbps))
    }

    #[test]
    fn clean_chain_has_no_warnings() {
        let g = ExecutionGraph::chain("c", &[("a", ip(1.0)), ("b", ip(2.0))]).unwrap();
        assert!(lint(&g).is_empty());
    }

    #[test]
    fn amplifying_node_flagged() {
        let mut b = ExecutionGraph::builder("amp");
        let ing = b.ingress("in");
        let a = b.ip("a", ip(1.0));
        let eg = b.egress("out");
        b.edge(ing, a, EdgeParams::new(0.5).unwrap());
        b.edge(a, eg, EdgeParams::new(1.0).unwrap()); // emits 2× its input
        let g = b.build().unwrap();
        let warnings = lint(&g);
        assert!(
            warnings
                .iter()
                .any(|w| matches!(w, LintWarning::AmplifyingNode { name, .. } if name == "a")),
            "{warnings:?}"
        );
        let text = warnings[0].to_string();
        assert!(text.contains("a"), "{text}");
    }

    #[test]
    fn thinning_node_is_fine() {
        // Dropping traffic (filters, caches) is normal.
        let mut b = ExecutionGraph::builder("thin");
        let ing = b.ingress("in");
        let a = b.ip("a", ip(1.0));
        let eg = b.egress("out");
        b.edge(ing, a, EdgeParams::new(1.0).unwrap());
        b.edge(a, eg, EdgeParams::new(0.3).unwrap());
        let g = b.build().unwrap();
        assert!(lint(&g).is_empty());
    }

    #[test]
    fn medium_on_empty_edge_flagged() {
        let mut b = ExecutionGraph::builder("m");
        let ing = b.ingress("in");
        let a = b.ip("a", ip(1.0));
        let eg = b.egress("out");
        b.edge(ing, a, EdgeParams::full());
        b.edge(
            a,
            eg,
            EdgeParams::new(0.0).unwrap().with_interface_fraction(0.5),
        );
        let g = b.build().unwrap();
        let warnings = lint(&g);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::MediumOnEmptyEdge { edge: 1 })));
    }

    #[test]
    fn starved_node_flagged() {
        let mut b = ExecutionGraph::builder("s");
        let ing = b.ingress("in");
        let a = b.ip("a", ip(1.0));
        let eg = b.egress("out");
        b.edge(ing, a, EdgeParams::new(0.0).unwrap());
        b.edge(a, eg, EdgeParams::new(0.0).unwrap());
        let g = b.build().unwrap();
        let warnings = lint(&g);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::StarvedNode { name, .. } if name == "a")));
    }

    #[test]
    fn oversubscribed_partition_flagged() {
        let mut b = ExecutionGraph::builder("g");
        let ing = b.ingress("in");
        let a1 = b.ip("cores", ip(10.0).with_partition(0.7));
        let a2 = b.ip("cores", ip(10.0).with_partition(0.7));
        let eg = b.egress("out");
        b.edge(ing, a1, EdgeParams::new(0.5).unwrap());
        b.edge(ing, a2, EdgeParams::new(0.5).unwrap());
        b.edge(a1, eg, EdgeParams::new(0.5).unwrap());
        b.edge(a2, eg, EdgeParams::new(0.5).unwrap());
        let g = b.build().unwrap();
        let warnings = lint(&g);
        assert!(warnings.iter().any(
            |w| matches!(w, LintWarning::OversubscribedPartition { name, total } if name == "cores" && (*total - 1.4).abs() < 1e-9)
        ));
    }

    #[test]
    fn distinct_names_never_oversubscribe() {
        let g = ExecutionGraph::chain(
            "d",
            &[
                ("x", ip(1.0).with_partition(0.9)),
                ("y", ip(1.0).with_partition(0.9)),
            ],
        )
        .unwrap();
        assert!(lint(&g).is_empty());
    }
}
