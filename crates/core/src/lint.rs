//! Consistency linting for execution graphs.
//!
//! The builder enforces structural validity (DAG, connectivity); this
//! pass flags *semantic* suspicions in the `δ/α/β` annotations that
//! typically indicate a mis-specified program: vertices that emit more
//! traffic than they receive, media fractions on edges that carry
//! nothing, starved vertices, and saturating partitions. Warnings are
//! advisory — all of these are occasionally intentional (e.g. `α > δ`
//! folds an IP's internal traffic into its ingress edge, §4.7).

use crate::fault::FaultPlan;
use crate::graph::{ExecutionGraph, NodeId, NodeKind};

/// One advisory finding.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LintWarning {
    /// A vertex's outgoing `Σδ` exceeds its incoming `Σδ`: the graph
    /// creates traffic out of thin air.
    AmplifyingNode {
        /// The vertex.
        node: NodeId,
        /// Its name.
        name: String,
        /// Incoming `Σδ`.
        delta_in: f64,
        /// Outgoing `Σδ`.
        delta_out: f64,
    },
    /// An edge declares interface/memory usage but carries no traffic
    /// (`δ = 0`): the media fractions will charge the Eq. 2 bounds for
    /// data that never flows.
    MediumOnEmptyEdge {
        /// The edge index.
        edge: usize,
    },
    /// An IP vertex receives no traffic (`Σδ_in = 0`) yet sits on the
    /// data path.
    StarvedNode {
        /// The vertex.
        node: NodeId,
        /// Its name.
        name: String,
    },
    /// Partitions of same-named vertices sum above 1: the virtual IPs
    /// oversubscribe the physical one.
    OversubscribedPartition {
        /// The shared physical name.
        name: String,
        /// The summed `γ`.
        total: f64,
    },
    /// A fault window targets a node name absent from the execution
    /// graph: the fault would silently never fire.
    FaultUnknownNode {
        /// Index of the window inside the fault plan.
        window: usize,
        /// The dangling node name.
        node: String,
    },
    /// Two same-kind fault windows on the same node overlap in time:
    /// duty-cycle math double-counts the overlap, which is almost
    /// always a specification mistake.
    FaultOverlappingWindows {
        /// The shared node name.
        node: String,
        /// Index of the earlier window inside the fault plan.
        first: usize,
        /// Index of the later window inside the fault plan.
        second: usize,
    },
    /// The plan schedules loss-inducing faults (outage, drop, credit
    /// loss) but installs a retry policy with a zero budget: packets
    /// refused by the fault are never retried, so the policy is dead
    /// weight.
    FaultZeroRetryBudget {
        /// Index of the loss-inducing window inside the fault plan.
        window: usize,
        /// The targeted node name.
        node: String,
    },
}

impl core::fmt::Display for LintWarning {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LintWarning::AmplifyingNode { name, delta_in, delta_out, .. } => write!(
                f,
                "node `{name}` emits more than it receives (Σδ_out {delta_out:.3} > Σδ_in {delta_in:.3})"
            ),
            LintWarning::MediumOnEmptyEdge { edge } => {
                write!(f, "edge #{edge} declares medium usage but carries no traffic (δ = 0)")
            }
            LintWarning::StarvedNode { name, .. } => {
                write!(f, "node `{name}` receives no traffic (Σδ_in = 0)")
            }
            LintWarning::OversubscribedPartition { name, total } => write!(
                f,
                "vertices named `{name}` hold γ partitions summing to {total:.2} > 1"
            ),
            LintWarning::FaultUnknownNode { window, node } => write!(
                f,
                "fault-plan[{window}]: window targets unknown node `{node}` and will never fire"
            ),
            LintWarning::FaultOverlappingWindows {
                node,
                first,
                second,
            } => write!(
                f,
                "fault-plan[{second}]: window overlaps fault-plan[{first}] of the same kind on node `{node}`"
            ),
            LintWarning::FaultZeroRetryBudget { window, node } => write!(
                f,
                "fault-plan[{window}]: loss-inducing fault on node `{node}` with a zero retry budget — refused packets are never retried"
            ),
        }
    }
}

/// Lints a graph, returning advisory warnings (empty = clean).
///
/// # Examples
///
/// ```
/// use lognic_model::graph::ExecutionGraph;
/// use lognic_model::lint::lint;
/// use lognic_model::params::IpParams;
/// use lognic_model::units::Bandwidth;
///
/// # fn main() -> lognic_model::error::Result<()> {
/// let g = ExecutionGraph::chain("ok", &[("ip", IpParams::new(Bandwidth::gbps(1.0)))])?;
/// assert!(lint(&g).is_empty());
/// # Ok(())
/// # }
/// ```
pub fn lint(graph: &ExecutionGraph) -> Vec<LintWarning> {
    let mut warnings = Vec::new();
    const EPS: f64 = 1e-9;

    for (i, node) in graph.nodes().iter().enumerate() {
        let id = NodeId(i);
        match node.kind() {
            NodeKind::Ingress => {}
            NodeKind::Egress => {}
            _ => {
                let din = graph.delta_in_sum(id);
                let dout = graph.delta_out_sum(id);
                if dout > din + EPS {
                    warnings.push(LintWarning::AmplifyingNode {
                        node: id,
                        name: node.name().to_owned(),
                        delta_in: din,
                        delta_out: dout,
                    });
                }
                if din <= EPS {
                    warnings.push(LintWarning::StarvedNode {
                        node: id,
                        name: node.name().to_owned(),
                    });
                }
            }
        }
    }

    for (i, e) in graph.edges().iter().enumerate() {
        let p = e.params();
        if p.delta() <= EPS && (p.interface_fraction() > EPS || p.memory_fraction() > EPS) {
            warnings.push(LintWarning::MediumOnEmptyEdge { edge: i });
        }
    }

    // γ oversubscription across same-named vertices.
    let mut seen: Vec<(&str, f64, usize)> = Vec::new();
    for node in graph.nodes() {
        let Some(p) = node.params() else { continue };
        match seen.iter_mut().find(|(n, _, _)| *n == node.name()) {
            Some(entry) => {
                entry.1 += p.partition();
                entry.2 += 1;
            }
            None => seen.push((node.name(), p.partition(), 1)),
        }
    }
    for (name, total, count) in seen {
        if count > 1 && total > 1.0 + EPS {
            warnings.push(LintWarning::OversubscribedPartition {
                name: name.to_owned(),
                total,
            });
        }
    }
    warnings
}

/// Lints a fault plan against the graph it will run on, returning
/// advisory warnings (empty = clean).
///
/// Unlike [`FaultPlan::validate`] — which rejects malformed plans with
/// a typed error — these findings are advisories about plans that are
/// *valid* but probably not what the author meant: windows that target
/// nodes the graph does not contain, same-kind windows overlapping on
/// one node, and loss-inducing faults paired with a zero retry budget.
///
/// # Examples
///
/// ```
/// use lognic_model::fault::FaultPlan;
/// use lognic_model::graph::ExecutionGraph;
/// use lognic_model::lint::lint_faults;
/// use lognic_model::params::IpParams;
/// use lognic_model::units::{Bandwidth, Seconds};
///
/// # fn main() -> lognic_model::error::Result<()> {
/// let g = ExecutionGraph::chain("ok", &[("ip", IpParams::new(Bandwidth::gbps(1.0)))])?;
/// let plan = FaultPlan::new().outage("ghost", Seconds::ZERO, Seconds::millis(1.0));
/// assert_eq!(lint_faults(&g, &plan).len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn lint_faults(graph: &ExecutionGraph, plan: &FaultPlan) -> Vec<LintWarning> {
    let mut warnings = Vec::new();

    for (i, w) in plan.windows().iter().enumerate() {
        if graph.node_by_name(w.node()).is_none() {
            warnings.push(LintWarning::FaultUnknownNode {
                window: i,
                node: w.node().to_owned(),
            });
        }
    }

    for (first, second) in plan.overlapping_windows() {
        warnings.push(LintWarning::FaultOverlappingWindows {
            node: plan.windows()[first].node().to_owned(),
            first,
            second,
        });
    }

    if plan.retry().is_some_and(|rp| rp.budget() == 0) {
        for (i, w) in plan.windows().iter().enumerate() {
            if w.kind().is_lossy() {
                warnings.push(LintWarning::FaultZeroRetryBudget {
                    window: i,
                    node: w.node().to_owned(),
                });
            }
        }
    }

    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EdgeParams, IpParams};
    use crate::units::Bandwidth;

    fn ip(gbps: f64) -> IpParams {
        IpParams::new(Bandwidth::gbps(gbps))
    }

    #[test]
    fn clean_chain_has_no_warnings() {
        let g = ExecutionGraph::chain("c", &[("a", ip(1.0)), ("b", ip(2.0))]).unwrap();
        assert!(lint(&g).is_empty());
    }

    #[test]
    fn amplifying_node_flagged() {
        let mut b = ExecutionGraph::builder("amp");
        let ing = b.ingress("in");
        let a = b.ip("a", ip(1.0));
        let eg = b.egress("out");
        b.edge(ing, a, EdgeParams::new(0.5).unwrap());
        b.edge(a, eg, EdgeParams::new(1.0).unwrap()); // emits 2× its input
        let g = b.build().unwrap();
        let warnings = lint(&g);
        assert!(
            warnings
                .iter()
                .any(|w| matches!(w, LintWarning::AmplifyingNode { name, .. } if name == "a")),
            "{warnings:?}"
        );
        let text = warnings[0].to_string();
        assert!(text.contains("a"), "{text}");
    }

    #[test]
    fn thinning_node_is_fine() {
        // Dropping traffic (filters, caches) is normal.
        let mut b = ExecutionGraph::builder("thin");
        let ing = b.ingress("in");
        let a = b.ip("a", ip(1.0));
        let eg = b.egress("out");
        b.edge(ing, a, EdgeParams::new(1.0).unwrap());
        b.edge(a, eg, EdgeParams::new(0.3).unwrap());
        let g = b.build().unwrap();
        assert!(lint(&g).is_empty());
    }

    #[test]
    fn medium_on_empty_edge_flagged() {
        let mut b = ExecutionGraph::builder("m");
        let ing = b.ingress("in");
        let a = b.ip("a", ip(1.0));
        let eg = b.egress("out");
        b.edge(ing, a, EdgeParams::full());
        b.edge(
            a,
            eg,
            EdgeParams::new(0.0).unwrap().with_interface_fraction(0.5),
        );
        let g = b.build().unwrap();
        let warnings = lint(&g);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::MediumOnEmptyEdge { edge: 1 })));
    }

    #[test]
    fn starved_node_flagged() {
        let mut b = ExecutionGraph::builder("s");
        let ing = b.ingress("in");
        let a = b.ip("a", ip(1.0));
        let eg = b.egress("out");
        b.edge(ing, a, EdgeParams::new(0.0).unwrap());
        b.edge(a, eg, EdgeParams::new(0.0).unwrap());
        let g = b.build().unwrap();
        let warnings = lint(&g);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::StarvedNode { name, .. } if name == "a")));
    }

    #[test]
    fn oversubscribed_partition_flagged() {
        let mut b = ExecutionGraph::builder("g");
        let ing = b.ingress("in");
        let a1 = b.ip("cores", ip(10.0).with_partition(0.7));
        let a2 = b.ip("cores", ip(10.0).with_partition(0.7));
        let eg = b.egress("out");
        b.edge(ing, a1, EdgeParams::new(0.5).unwrap());
        b.edge(ing, a2, EdgeParams::new(0.5).unwrap());
        b.edge(a1, eg, EdgeParams::new(0.5).unwrap());
        b.edge(a2, eg, EdgeParams::new(0.5).unwrap());
        let g = b.build().unwrap();
        let warnings = lint(&g);
        assert!(warnings.iter().any(
            |w| matches!(w, LintWarning::OversubscribedPartition { name, total } if name == "cores" && (*total - 1.4).abs() < 1e-9)
        ));
    }

    #[test]
    fn fault_lint_clean_plan_has_no_warnings() {
        use crate::fault::{FaultPlan, RetryPolicy};
        use crate::units::Seconds;
        let g = ExecutionGraph::chain("c", &[("a", ip(1.0))]).unwrap();
        let plan = FaultPlan::new()
            .outage("a", Seconds::ZERO, Seconds::millis(1.0))
            .with_retry(RetryPolicy::new(3, Seconds::micros(1.0)));
        assert!(lint_faults(&g, &plan).is_empty());
    }

    #[test]
    fn fault_lint_unknown_node_flagged() {
        use crate::fault::FaultPlan;
        use crate::units::Seconds;
        let g = ExecutionGraph::chain("c", &[("a", ip(1.0))]).unwrap();
        let plan = FaultPlan::new()
            .outage("a", Seconds::ZERO, Seconds::millis(1.0))
            .drop_packets("ghost", 0.1, Seconds::ZERO, Seconds::millis(1.0));
        let warnings = lint_faults(&g, &plan);
        assert!(
            warnings.iter().any(|w| matches!(
                w,
                LintWarning::FaultUnknownNode { window: 1, node } if node == "ghost"
            )),
            "{warnings:?}"
        );
        let text = warnings[0].to_string();
        assert!(text.contains("fault-plan[1]"), "{text}");
        assert!(text.contains("ghost"), "{text}");
    }

    #[test]
    fn fault_lint_overlapping_windows_flagged() {
        use crate::fault::FaultPlan;
        use crate::units::Seconds;
        let g = ExecutionGraph::chain("c", &[("a", ip(1.0))]).unwrap();
        let plan = FaultPlan::new()
            .outage("a", Seconds::millis(1.0), Seconds::millis(3.0))
            .outage("a", Seconds::millis(2.0), Seconds::millis(4.0));
        let warnings = lint_faults(&g, &plan);
        assert!(warnings.iter().any(|w| matches!(
            w,
            LintWarning::FaultOverlappingWindows {
                node,
                first: 0,
                second: 1,
            } if node == "a"
        )));
        assert!(warnings[0].to_string().contains("fault-plan[1]"));
    }

    #[test]
    fn fault_lint_zero_retry_budget_flagged() {
        use crate::fault::{FaultPlan, RetryPolicy};
        use crate::units::Seconds;
        let g = ExecutionGraph::chain("c", &[("a", ip(1.0))]).unwrap();
        let plan = FaultPlan::new()
            .drop_packets("a", 0.1, Seconds::ZERO, Seconds::millis(1.0))
            .corrupt_packets("a", 0.1, Seconds::ZERO, Seconds::millis(1.0))
            .with_retry(RetryPolicy::new(0, Seconds::micros(1.0)));
        let warnings = lint_faults(&g, &plan);
        // Only the loss-inducing window (the drop) is flagged;
        // corruption does not refuse packets.
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(matches!(
            &warnings[0],
            LintWarning::FaultZeroRetryBudget { window: 0, node } if node == "a"
        ));
        // A non-zero budget silences the lint.
        let plan = plan.with_retry(RetryPolicy::new(1, Seconds::micros(1.0)));
        assert!(lint_faults(&g, &plan).is_empty());
    }

    #[test]
    fn distinct_names_never_oversubscribe() {
        let g = ExecutionGraph::chain(
            "d",
            &[
                ("x", ip(1.0).with_partition(0.9)),
                ("y", ip(1.0).with_partition(0.9)),
            ],
        )
        .unwrap();
        assert!(lint(&g).is_empty());
    }
}
