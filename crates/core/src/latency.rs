//! Latency modeling (§3.6, Eq. 5–8).
//!
//! The latency of a request follows its path through the execution
//! graph. Each traversed IP contributes queueing (`Q_i`, from the
//! M/M/1/N model of [`crate::queueing`]), execution (`C_i / A_i`) and
//! the computation-transfer overhead (`O_i`); each edge contributes the
//! data movement time over its media. The application latency is the
//! weighted average over all ingress→egress paths (Eq. 8).

use crate::error::Result;
use crate::graph::{ExecutionGraph, NodeId, Path};
use crate::params::{HardwareModel, TrafficProfile};
use crate::queueing::MmcN;
use crate::throughput::effective_delta_in;
use crate::units::{Bytes, Seconds};

/// Per-node timing derived from Eq. 7 and Eq. 11 at one ingress
/// granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTiming {
    /// The vertex this timing describes.
    pub node: NodeId,
    /// Mean request execution time `C_i / A_i` at the node.
    pub service: Seconds,
    /// Offered utilization `ρ = BW_in · Σδ_in / P_vi`.
    pub utilization: f64,
    /// Mean queueing delay `Q_i` (Eq. 12).
    pub queueing_delay: Seconds,
    /// Probability an arriving request is dropped (`Pro_N`).
    pub drop_probability: f64,
}

/// Latency of a single ingress→egress path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathLatency {
    /// The path (edges, vertices, traffic weight `w_Pk`).
    pub path: Path,
    /// The end-to-end latency `T_Pk` (Eq. 6).
    pub latency: Seconds,
}

/// The result of latency modeling at one granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyEstimate {
    mean: Seconds,
    per_path: Vec<PathLatency>,
    per_node: Vec<NodeTiming>,
}

impl LatencyEstimate {
    /// The traffic-weighted mean latency `T_attainable` (Eq. 8).
    pub fn mean(&self) -> Seconds {
        self.mean
    }

    /// Latency of every path, in graph enumeration order.
    pub fn per_path(&self) -> &[PathLatency] {
        &self.per_path
    }

    /// Timing of every compute vertex that has parameters.
    pub fn per_node(&self) -> &[NodeTiming] {
        &self.per_node
    }

    /// The timing entry for a specific vertex, if it computes.
    pub fn node_timing(&self, node: NodeId) -> Option<&NodeTiming> {
        self.per_node.iter().find(|t| t.node == node)
    }

    /// The worst per-path latency (an upper envelope, not a tail
    /// estimate — the model cannot predict tails, §4.7).
    pub fn max_path(&self) -> Seconds {
        self.per_path
            .iter()
            .map(|p| p.latency)
            .fold(Seconds::ZERO, Seconds::max)
    }
}

/// Computes the per-node timing (Eq. 7 service time, Eq. 11
/// utilization, Eq. 12 queueing delay) for vertex `node` at ingress
/// granularity `granularity`.
///
/// Returns `None` for pure data movers (ingress/egress vertices
/// without parameters).
pub fn node_timing(
    graph: &ExecutionGraph,
    node: NodeId,
    traffic: &TrafficProfile,
    granularity: Bytes,
) -> Option<NodeTiming> {
    let params = graph.node(node).params()?;
    let delta_in = effective_delta_in(graph, node);
    let peak = params.effective_peak();
    let work = params.work_factor();

    // C_i/A_i = D · g · w / P_eff   (Eq. 7 with routed granularity:
    // each request carries its full `g` bytes, of which the node
    // computes on the `w` fraction; on single-path graphs with w = 1
    // this is exactly the paper's D·g·Σδ/(P·indegree)).
    let service = if peak.is_zero() {
        Seconds::INFINITY
    } else {
        Seconds::new(params.parallelism() as f64 * granularity.bits() as f64 * work / peak.as_bps())
    };

    // ρ = BW_in · Σδ · w / P_eff   (Eq. 11)
    let utilization = if peak.is_zero() {
        f64::INFINITY
    } else {
        traffic.ingress_bandwidth().as_bps() * delta_in * work / peak.as_bps()
    };

    // The paper's Eq. 12 is the D = 1 case; for multi-engine IPs the
    // M/M/c/N generalization avoids charging queueing delay that D
    // concurrent engines never exhibit (DESIGN.md §5b).
    let (queueing_delay, drop_probability) = if utilization.is_finite() {
        let queue = MmcN::new(
            utilization,
            params.parallelism(),
            params.effective_queue_capacity(),
        )
        .expect("utilization is finite and non-negative");
        (queue.queueing_delay(service), queue.blocking_probability())
    } else {
        (Seconds::INFINITY, 1.0)
    };

    Some(NodeTiming {
        node,
        service,
        utilization,
        queueing_delay,
        drop_probability,
    })
}

/// The data movement time across one edge at granularity `g` (Eq. 7
/// in routed form): a packet on this edge moves `g·α/δ` bytes over
/// the interface, `g·β/δ` over memory and `g` over a dedicated link.
///
/// `δ`, `α` and `β` are *aggregate* fractions of the total ingress
/// volume (used that way by the Eq. 2 medium bounds); dividing by `δ`
/// converts them to per-packet usage for the packets actually routed
/// through the edge. On full edges (`δ = α = 1`) this is exactly the
/// paper's `g·α/BW_INTF + g·β/BW_MEM`.
pub fn edge_transfer_time(
    graph: &ExecutionGraph,
    edge: crate::graph::EdgeId,
    hw: &HardwareModel,
    granularity: Bytes,
) -> Seconds {
    let p = graph.edge(edge).params();
    let delta = if p.delta() > 0.0 { p.delta() } else { 1.0 };
    let mut t = Seconds::ZERO;
    if p.interface_fraction() > 0.0 {
        t += hw
            .interface_bandwidth()
            .transfer_time(granularity.scaled(p.interface_fraction() / delta));
    }
    if p.memory_fraction() > 0.0 {
        t += hw
            .memory_bandwidth()
            .transfer_time(granularity.scaled(p.memory_fraction() / delta));
    }
    if p.dedicated_bandwidth().is_some() && p.delta() > 0.0 {
        t += p
            .dedicated_bandwidth()
            .expect("checked")
            .transfer_time(granularity);
    }
    t
}

/// Estimates latency at one explicit ingress granularity (packet or
/// message size). Mixed-size profiles are handled by
/// [`estimate_latency`], which weights per-size estimates (§3.7,
/// extension #2).
///
/// # Errors
///
/// Propagates [`crate::error::ModelError::NoPath`] for degenerate
/// graphs (cannot happen for graphs built through the builder).
pub fn estimate_latency_at(
    graph: &ExecutionGraph,
    hw: &HardwareModel,
    traffic: &TrafficProfile,
    granularity: Bytes,
) -> Result<LatencyEstimate> {
    let timings: Vec<Option<NodeTiming>> = (0..graph.nodes().len())
        .map(|i| node_timing(graph, NodeId(i), traffic, granularity))
        .collect();

    let paths = graph.paths()?;
    let mut per_path = Vec::with_capacity(paths.len());
    let mut mean = Seconds::ZERO;
    for path in paths {
        let mut latency = Seconds::ZERO;
        // Requests may be resized along the path (compression edges);
        // each stage executes and transfers at the size it sees.
        let mut g_cur = granularity;
        // Σ over edges: Q_src + C_src + O_src + transfer  (Eq. 6).
        for eid in &path.edges {
            let src = graph.edge(*eid).src();
            if let Some(t) = node_timing(graph, src, traffic, g_cur) {
                latency += t.queueing_delay;
                latency += t.service;
            }
            if let Some(p) = graph.node(src).params() {
                latency += p.overhead();
            }
            g_cur = g_cur.scaled(graph.edge(*eid).params().size_factor());
            latency += edge_transfer_time(graph, *eid, hw, g_cur);
        }
        // Terminal vertex: Q + C (egress engines without params add 0).
        let last = *path.nodes.last().expect("paths have at least one node");
        if let Some(t) = node_timing(graph, last, traffic, g_cur) {
            latency += t.queueing_delay;
            latency += t.service;
        }
        mean += latency.scaled(path.weight);
        per_path.push(PathLatency { path, latency });
    }

    let per_node = timings.into_iter().flatten().collect();
    Ok(LatencyEstimate {
        mean,
        per_path,
        per_node,
    })
}

/// Per-node timing for a packet-size *mixture* (§3.7, extension #2).
///
/// A queued request waits behind the mixture, not behind its own
/// class, so the queueing delay uses the mixture's mean service time
/// scaled by the Pollaczek–Khinchine variability factor
/// `κ = E[S²] / (2·E[S]²)` — equal to 1 for a single exponential
/// class, larger for hyperexponential mixtures of small and large
/// packets.
pub fn mixture_node_timing(
    graph: &ExecutionGraph,
    node: NodeId,
    traffic: &TrafficProfile,
) -> Option<NodeTiming> {
    let params = graph.node(node).params()?;
    let entries = traffic.sizes().entries();
    let mut mean_service = 0.0;
    let mut second_moment = 0.0;
    for (size, p) in entries {
        let g = traffic.granularity_for(*size);
        let t = node_timing(graph, node, traffic, g)?;
        let s = t.service.as_secs();
        mean_service += p * s;
        // Exponential class service: E[S_i²] = 2·m_i².
        second_moment += p * 2.0 * s * s;
    }
    let kappa = if mean_service > 0.0 {
        second_moment / (2.0 * mean_service * mean_service)
    } else {
        1.0
    };
    // Utilization is size-independent (Eq. 11 uses rates, not sizes);
    // reuse any class's value.
    let reference = node_timing(graph, node, traffic, traffic.sizes().mean_size())?;
    let base_queue = {
        let q = Mm1cApprox::new(
            reference.utilization,
            params.parallelism(),
            params.effective_queue_capacity(),
        );
        q.delay(Seconds::new(mean_service))
    };
    Some(NodeTiming {
        node,
        service: Seconds::new(mean_service),
        utilization: reference.utilization,
        queueing_delay: base_queue.scaled(kappa),
        drop_probability: reference.drop_probability,
    })
}

/// Internal shim so the mixture path shares the M/M/c/N machinery.
struct Mm1cApprox {
    queue: Option<MmcN>,
}

impl Mm1cApprox {
    fn new(utilization: f64, engines: u32, capacity: u32) -> Self {
        let queue = if utilization.is_finite() {
            Some(MmcN::new(utilization, engines, capacity).expect("finite utilization"))
        } else {
            None
        };
        Mm1cApprox { queue }
    }

    fn delay(&self, service: Seconds) -> Seconds {
        match &self.queue {
            Some(q) => q.queueing_delay(service),
            None => Seconds::INFINITY,
        }
    }
}

/// Estimates the application latency for the full traffic profile: a
/// single evaluation for fixed-size traffic, a `dist_size`-weighted
/// average of per-size estimates for mixtures (Eq. 8 combined with
/// §3.7 extension #2). For mixtures, each class executes and transfers
/// at its own size but queues behind the mixture (see
/// [`mixture_node_timing`]).
///
/// # Errors
///
/// Propagates errors from [`estimate_latency_at`].
///
/// # Examples
///
/// ```
/// use lognic_model::graph::ExecutionGraph;
/// use lognic_model::latency::estimate_latency;
/// use lognic_model::params::{HardwareModel, IpParams, TrafficProfile};
/// use lognic_model::units::{Bandwidth, Bytes};
///
/// # fn main() -> Result<(), lognic_model::error::ModelError> {
/// let g = ExecutionGraph::chain("echo", &[("core", IpParams::new(Bandwidth::gbps(10.0)))])?;
/// let hw = HardwareModel::default();
/// let t = TrafficProfile::fixed(Bandwidth::gbps(2.0), Bytes::new(1500));
/// let est = estimate_latency(&g, &hw, &t)?;
/// assert!(est.mean() > lognic_model::units::Seconds::ZERO);
/// # Ok(())
/// # }
/// ```
pub fn estimate_latency(
    graph: &ExecutionGraph,
    hw: &HardwareModel,
    traffic: &TrafficProfile,
) -> Result<LatencyEstimate> {
    let entries = traffic.sizes().entries().to_vec();
    if entries.len() == 1 {
        let g_in = traffic.granularity_for(entries[0].0);
        return estimate_latency_at(graph, hw, traffic, g_in);
    }
    // Mixture: per-node queueing comes from the mixture service
    // distribution; execution and transfers are per class.
    let timings: Vec<Option<NodeTiming>> = (0..graph.nodes().len())
        .map(|i| mixture_node_timing(graph, NodeId(i), traffic))
        .collect();
    let paths = graph.paths()?;
    let mut per_path = Vec::with_capacity(paths.len());
    let mut mean = Seconds::ZERO;
    for path in paths {
        let mut latency = Seconds::ZERO;
        for (size, weight) in &entries {
            let mut g_cur = traffic.granularity_for(*size);
            let mut class_latency = Seconds::ZERO;
            for eid in &path.edges {
                let src = graph.edge(*eid).src();
                if let Some(t) = &timings[src.index()] {
                    class_latency += t.queueing_delay;
                    if let Some(ct) = node_timing(graph, src, traffic, g_cur) {
                        class_latency += ct.service;
                    }
                }
                if let Some(p) = graph.node(src).params() {
                    class_latency += p.overhead();
                }
                let factor = graph.edge(*eid).params().size_factor();
                g_cur = g_cur.scaled(factor);
                class_latency += edge_transfer_time(graph, *eid, hw, g_cur);
            }
            let last = *path.nodes.last().expect("paths have at least one node");
            if let Some(t) = &timings[last.index()] {
                class_latency += t.queueing_delay;
                if let Some(ct) = node_timing(graph, last, traffic, g_cur) {
                    class_latency += ct.service;
                }
            }
            latency += class_latency.scaled(*weight);
        }
        mean += latency.scaled(path.weight);
        per_path.push(PathLatency { path, latency });
    }
    let per_node = timings.into_iter().flatten().collect();
    Ok(LatencyEstimate {
        mean,
        per_path,
        per_node,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EdgeParams, IpParams, PacketSizeDist};
    use crate::units::Bandwidth;

    fn hw() -> HardwareModel {
        HardwareModel::new(Bandwidth::gbps(100.0), Bandwidth::gbps(100.0))
    }

    #[test]
    fn single_node_service_time_matches_eq7() {
        // P = 10 Gbps, D = 1, δ = 1, indeg = 1, g = 1250 B = 10 kbit
        // → C = 10e3 / 10e9 = 1 µs.
        let g =
            ExecutionGraph::chain("t", &[("ip", IpParams::new(Bandwidth::gbps(10.0)))]).unwrap();
        let traffic = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(1250));
        let node = g.node_by_name("ip").unwrap();
        let t = node_timing(&g, node, &traffic, Bytes::new(1250)).unwrap();
        assert!((t.service.as_micros() - 1.0).abs() < 1e-9);
        assert!((t.utilization - 0.1).abs() < 1e-12);
    }

    #[test]
    fn parallelism_scales_per_request_service_time() {
        // Aggregate P fixed; D engines each run at P/D → request takes
        // D times longer but D run concurrently.
        let params = IpParams::new(Bandwidth::gbps(10.0)).with_parallelism(4);
        let g = ExecutionGraph::chain("t", &[("ip", params)]).unwrap();
        let traffic = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(1250));
        let node = g.node_by_name("ip").unwrap();
        let t = node_timing(&g, node, &traffic, Bytes::new(1250)).unwrap();
        assert!((t.service.as_micros() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn pure_movers_have_no_timing() {
        let g = ExecutionGraph::chain("t", &[("ip", IpParams::new(Bandwidth::gbps(1.0)))]).unwrap();
        let traffic = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(64));
        assert!(node_timing(&g, g.ingress(), &traffic, Bytes::new(64)).is_none());
        assert!(node_timing(&g, g.egress(), &traffic, Bytes::new(64)).is_none());
    }

    #[test]
    fn edge_transfer_combines_media() {
        let mut b = ExecutionGraph::builder("e");
        let ing = b.ingress("in");
        let ip = b.ip("ip", IpParams::new(Bandwidth::gbps(100.0)));
        let eg = b.egress("out");
        let e1 = b.edge(
            ing,
            ip,
            EdgeParams::full()
                .with_interface_fraction(1.0)
                .with_memory_fraction(1.0),
        );
        b.edge(ip, eg, EdgeParams::full());
        let g = b.build().unwrap();
        let hw = HardwareModel::new(Bandwidth::gbps(10.0), Bandwidth::gbps(20.0));
        // g = 1250 B = 10 kbit: 1 µs over interface + 0.5 µs over memory.
        let t = edge_transfer_time(&g, e1, &hw, Bytes::new(1250));
        assert!((t.as_micros() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn dedicated_link_adds_transfer_time() {
        let mut b = ExecutionGraph::builder("e");
        let ing = b.ingress("in");
        let ip = b.ip("ip", IpParams::new(Bandwidth::gbps(100.0)));
        let eg = b.egress("out");
        let e1 = b.edge(
            ing,
            ip,
            EdgeParams::full()
                .with_interface_fraction(0.0)
                .with_dedicated_bandwidth(Bandwidth::gbps(10.0)),
        );
        b.edge(ip, eg, EdgeParams::full());
        let g = b.build().unwrap();
        let t = edge_transfer_time(&g, e1, &hw(), Bytes::new(1250));
        assert!((t.as_micros() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_accumulates_along_chain() {
        // Two IPs at 10 Gbps each, plus overheads of 1 µs each, light
        // load (queueing ≈ 0 at ρ = 0.01 is small but non-zero).
        let p = IpParams::new(Bandwidth::gbps(10.0)).with_overhead(Seconds::micros(1.0));
        let g = ExecutionGraph::chain("t", &[("a", p), ("b", p)]).unwrap();
        let traffic = TrafficProfile::fixed(Bandwidth::mbps(100.0), Bytes::new(1250));
        let est = estimate_latency(&g, &hw(), &traffic).unwrap();
        // Lower bound: 2 × (C = 1 µs) + 2 × (O = 1 µs) + 3 transfers
        // of 0.1 µs = 4.3 µs.
        assert!(est.mean().as_micros() >= 4.3 - 1e-6);
        assert!(est.mean().as_micros() < 5.0, "queueing at 1% load is small");
        assert_eq!(est.per_path().len(), 1);
        assert_eq!(est.per_node().len(), 2);
    }

    #[test]
    fn queueing_grows_with_load() {
        let p = IpParams::new(Bandwidth::gbps(10.0)).with_queue_capacity(64);
        let g = ExecutionGraph::chain("t", &[("a", p)]).unwrap();
        let low = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(1250));
        let high = TrafficProfile::fixed(Bandwidth::gbps(9.5), Bytes::new(1250));
        let l = estimate_latency(&g, &hw(), &low).unwrap();
        let h = estimate_latency(&g, &hw(), &high).unwrap();
        assert!(h.mean() > l.mean(), "latency must grow with utilization");
        let ht = h.node_timing(g.node_by_name("a").unwrap()).unwrap();
        assert!(ht.utilization > 0.9);
        assert!(ht.drop_probability > 0.0);
    }

    #[test]
    fn overload_latency_is_finite() {
        let p = IpParams::new(Bandwidth::gbps(1.0)).with_queue_capacity(16);
        let g = ExecutionGraph::chain("t", &[("a", p)]).unwrap();
        let t = TrafficProfile::fixed(Bandwidth::gbps(50.0), Bytes::new(1250));
        let est = estimate_latency(&g, &hw(), &t).unwrap();
        assert!(!est.mean().is_infinite());
        // Bounded by N−1 = 15 services + service + overheads.
        let timing = est.node_timing(g.node_by_name("a").unwrap()).unwrap();
        assert!(timing.drop_probability > 0.9);
    }

    #[test]
    fn multi_path_weighting() {
        // Fast path (90%) and slow path (10%).
        let mut b = ExecutionGraph::builder("w");
        let ing = b.ingress("in");
        let fast = b.ip("fast", IpParams::new(Bandwidth::gbps(100.0)));
        let slow = b.ip("slow", IpParams::new(Bandwidth::gbps(1.0)));
        let eg = b.egress("out");
        b.edge(ing, fast, EdgeParams::new(0.9).unwrap());
        b.edge(ing, slow, EdgeParams::new(0.1).unwrap());
        b.edge(fast, eg, EdgeParams::new(0.9).unwrap());
        b.edge(slow, eg, EdgeParams::new(0.1).unwrap());
        let g = b.build().unwrap();
        let traffic = TrafficProfile::fixed(Bandwidth::gbps(0.5), Bytes::new(1250));
        let est = estimate_latency(&g, &hw(), &traffic).unwrap();
        assert_eq!(est.per_path().len(), 2);
        let weighted: f64 = est
            .per_path()
            .iter()
            .map(|p| p.latency.as_secs() * p.path.weight)
            .sum();
        assert!((weighted - est.mean().as_secs()).abs() < 1e-12);
        assert!(est.max_path() >= est.mean());
    }

    #[test]
    fn mixed_sizes_queue_behind_the_mixture() {
        // A size mixture queues each class behind the *mixture's*
        // service distribution (hyperexponential), so the mean latency
        // exceeds the naive weighted average of the per-size runs.
        let p = IpParams::new(Bandwidth::gbps(10.0));
        let g = ExecutionGraph::chain("t", &[("a", p)]).unwrap();
        let small = TrafficProfile::fixed(Bandwidth::gbps(6.0), Bytes::new(64));
        let large = TrafficProfile::fixed(Bandwidth::gbps(6.0), Bytes::new(1500));
        let mix = TrafficProfile::new(
            Bandwidth::gbps(6.0),
            PacketSizeDist::mix([(Bytes::new(64), 0.5), (Bytes::new(1500), 0.5)]).unwrap(),
        );
        let ls = estimate_latency(&g, &hw(), &small).unwrap().mean();
        let ll = estimate_latency(&g, &hw(), &large).unwrap().mean();
        let lm = estimate_latency(&g, &hw(), &mix).unwrap().mean();
        let naive = 0.5 * ls.as_secs() + 0.5 * ll.as_secs();
        assert!(
            lm.as_secs() > naive,
            "mixture {lm} must exceed naive {naive}"
        );
        // Pollaczek-Khinchine hand check at rho = 0.6, N = 16:
        // E[S] = 0.625us, kappa = 1.847 -> Q ~ 1.7us; total ~ 2.3us.
        assert!((lm.as_micros() - 2.36).abs() < 0.35, "lm = {lm}");
    }

    #[test]
    fn mixture_timing_reduces_to_single_class() {
        // kappa = 1 for a single exponential class: mixture timing and
        // plain timing agree.
        let p = IpParams::new(Bandwidth::gbps(10.0)).with_queue_capacity(32);
        let g = ExecutionGraph::chain("t", &[("a", p)]).unwrap();
        let t = TrafficProfile::fixed(Bandwidth::gbps(6.0), Bytes::new(1000));
        let node = g.node_by_name("a").unwrap();
        let plain = node_timing(&g, node, &t, Bytes::new(1000)).unwrap();
        let mixed = mixture_node_timing(&g, node, &t).unwrap();
        assert!((plain.service.as_secs() - mixed.service.as_secs()).abs() < 1e-15);
        assert!((plain.queueing_delay.as_secs() - mixed.queueing_delay.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn granularity_override_applies() {
        // NVMe-style: 4 KB commands even though packets are 1500 B.
        let p = IpParams::new(Bandwidth::gbps(10.0));
        let g = ExecutionGraph::chain("t", &[("a", p)]).unwrap();
        let base = TrafficProfile::fixed(Bandwidth::gbps(1.0), Bytes::new(1500));
        let nvme = base.clone().with_granularity(Bytes::kib(4));
        let lb = estimate_latency(&g, &hw(), &base).unwrap().mean();
        let ln = estimate_latency(&g, &hw(), &nvme).unwrap().mean();
        assert!(ln > lb, "larger granularity → longer service time");
    }
}
